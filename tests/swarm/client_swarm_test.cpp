// ClientSwarm against the real broker/BDN plane (SwarmScenario): discovery
// completion, per-endpoint memory ceiling, NAT churn, breaker behaviour and
// the determinism satellite (same seed -> identical 100k digest).
#include "swarm/client_swarm.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/swarm_scenario.hpp"
#include "swarm/workload.hpp"

namespace narada::swarm {
namespace {

scenario::SwarmScenarioOptions small_options(std::uint32_t capacity, std::uint64_t seed = 1) {
    scenario::SwarmScenarioOptions options;
    options.capacity = capacity;
    options.broker_count = 4;
    options.bdn_count = 2;
    options.seed = seed;
    return options;
}

TEST(ClientSwarmTest, FlashCrowdMostlyConnects) {
    scenario::SwarmScenario sc(small_options(2000));
    WorkloadPlan plan;
    plan.flash_crowd(0, 2000, 5 * kSecond);
    sc.run_plan(plan, /*drain=*/30 * kSecond);

    const SwarmCounters& c = sc.swarm().counters();
    EXPECT_EQ(c.started, 2000u);
    EXPECT_EQ(sc.swarm().active(), 2000u);
    // Lossy WAN + shedding BDNs: not everyone connects on attempt one, but
    // retransmit + failover must land the overwhelming majority.
    EXPECT_GE(sc.swarm().connected(), 1900u);
    EXPECT_EQ(c.connects, sc.swarm().discovery_latency_ms().size());
    EXPECT_GT(c.acks, 0u);
}

TEST(ClientSwarmTest, StateStaysUnderPerEndpointBudget) {
    scenario::SwarmScenario sc(small_options(10'000));
    WorkloadPlan plan;
    plan.flash_crowd(0, 10'000, 5 * kSecond);
    sc.run_plan(plan, /*drain=*/20 * kSecond);

    const double per_endpoint = static_cast<double>(sc.swarm().state_bytes()) /
                                static_cast<double>(sc.swarm().capacity());
    EXPECT_LE(per_endpoint, 256.0) << "swarm state grew past the SoA budget";
}

TEST(ClientSwarmTest, RebindMovesClientsAndRediscovers) {
    scenario::SwarmScenario sc(small_options(1000));
    WorkloadPlan plan;
    plan.flash_crowd(0, 1000, 2 * kSecond);
    sc.run_plan(plan, /*drain=*/20 * kSecond);
    const std::uint64_t connects_before = sc.swarm().counters().connects;

    EXPECT_EQ(sc.swarm().rebind_clients(200), 200u);
    sc.kernel().run_until(sc.kernel().now() + 30 * kSecond);

    const SwarmCounters& c = sc.swarm().counters();
    EXPECT_EQ(c.rebinds, 200u);
    // Rebound clients rediscover from their new address.
    EXPECT_GT(c.connects, connects_before);
    EXPECT_GE(sc.swarm().connected(), 950u);
}

TEST(ClientSwarmTest, StopClientsFreesSlotsForReuse) {
    scenario::SwarmScenario sc(small_options(500));
    WorkloadPlan plan;
    plan.flash_crowd(0, 500, kSecond);
    sc.run_plan(plan, /*drain=*/15 * kSecond);
    EXPECT_EQ(sc.swarm().stop_clients(500), 500u);
    EXPECT_EQ(sc.swarm().active(), 0u);
    EXPECT_EQ(sc.swarm().connected(), 0u);
    // The slots (and their ports) are reusable.
    EXPECT_EQ(sc.swarm().start_clients(500), 500u);
    sc.kernel().run_until(sc.kernel().now() + 20 * kSecond);
    EXPECT_GE(sc.swarm().connected(), 450u);
}

TEST(ClientSwarmTest, GarbageDatagramCountsAsMisdeliveredNotCrash) {
    scenario::SwarmScenario sc(small_options(100));
    WorkloadPlan plan;
    plan.flash_crowd(0, 100, kSecond);
    sc.run_plan(plan, /*drain=*/10 * kSecond);

    // Spray junk at a swarm port from the first broker's host.
    const Endpoint from{sc.broker_at(0).endpoint().host, 9999};
    Bytes junk = {0xFF, 0x00, 0xDE, 0xAD};
    sc.network().send_datagram(from, Endpoint{sc.swarm_host(), 1024}, std::move(junk));
    sc.kernel().run_until(sc.kernel().now() + kSecond);
    EXPECT_GE(sc.swarm().counters().misdelivered + sc.swarm().counters().stale_responses, 1u);
}

TEST(ClientSwarmTest, SameSeedSameDigestAt100k) {
    // The determinism satellite at the 100k scale gate: two fresh systems,
    // same seed, same plan -> byte-identical metrics digests.
    std::string digest[2];
    for (int run = 0; run < 2; ++run) {
        scenario::SwarmScenario sc(small_options(100'000, /*seed=*/77));
        WorkloadPlan plan;
        plan.flash_crowd(0, 100'000, 10 * kSecond);
        plan.mobile_churn(12 * kSecond, 0.02, kSecond, 3 * kSecond);
        sc.run_plan(plan, /*drain=*/25 * kSecond);
        digest[run] = sc.swarm().metrics_digest_hex();
        EXPECT_GE(sc.swarm().connected(), 95'000u) << "run " << run;
    }
    EXPECT_EQ(digest[0], digest[1]);
}

TEST(ClientSwarmTest, DifferentSeedDifferentDigest) {
    std::string digest[2];
    for (int run = 0; run < 2; ++run) {
        scenario::SwarmScenario sc(small_options(1000, /*seed=*/run + 1));
        WorkloadPlan plan;
        plan.flash_crowd(0, 1000, 2 * kSecond);
        sc.run_plan(plan, /*drain=*/15 * kSecond);
        digest[run] = sc.swarm().metrics_digest_hex();
    }
    EXPECT_NE(digest[0], digest[1]);
}

}  // namespace
}  // namespace narada::swarm
