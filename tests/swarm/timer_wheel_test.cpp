// Hierarchical timer wheel unit tests: rounding, cascade boundaries,
// far-future deadlines, cancellation, hint-driven progress and the
// satellite guarantees (never fires early; fixed schedule -> fixed order).
#include "swarm/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace narada::swarm {
namespace {

constexpr TimeUs kGranule = 1 << 10;  // default tick, ~1.024 ms

TEST(TimerWheelTest, FiresAtFirstTickBoundaryAtOrAfterDeadline) {
    TimerWheel wheel(4);
    wheel.schedule(0, 5000);  // ceil(5000 / 1024) = tick 5
    EXPECT_TRUE(wheel.armed(0));
    EXPECT_EQ(wheel.ceil_to_tick(5000), 5 * kGranule);

    std::vector<std::uint32_t> due;
    wheel.advance(5 * kGranule - 1, due);
    EXPECT_TRUE(due.empty()) << "fired before the deadline's tick boundary";
    wheel.advance(5 * kGranule, due);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 0u);
    EXPECT_FALSE(wheel.armed(0));
    EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, ExactTickDeadlineDoesNotRoundUp) {
    TimerWheel wheel(1);
    wheel.schedule(0, 8 * kGranule);
    std::vector<std::uint32_t> due;
    wheel.advance(8 * kGranule, due);
    ASSERT_EQ(due.size(), 1u);
}

TEST(TimerWheelTest, RescheduleReplacesEarlierDeadline) {
    TimerWheel wheel(2);
    wheel.schedule(0, 4 * kGranule);
    wheel.schedule(0, 20 * kGranule);  // re-arm further out
    std::vector<std::uint32_t> due;
    wheel.advance(10 * kGranule, due);
    EXPECT_TRUE(due.empty()) << "stale slot entry fired after reschedule";
    wheel.advance(20 * kGranule, due);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, CancelledTimerNeverFires) {
    TimerWheel wheel(8);
    for (std::uint32_t i = 0; i < 8; ++i) wheel.schedule(i, (i + 2) * kGranule);
    wheel.cancel(3);
    wheel.cancel(5);
    EXPECT_EQ(wheel.armed_count(), 6u);
    std::vector<std::uint32_t> due;
    wheel.advance(64 * kGranule, due);
    EXPECT_EQ(due.size(), 6u);
    EXPECT_TRUE(std::find(due.begin(), due.end(), 3u) == due.end());
    EXPECT_TRUE(std::find(due.begin(), due.end(), 5u) == due.end());
    wheel.cancel(3);  // cancelling an idle timer is a no-op
    EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, CascadeBoundaryLevels) {
    // One timer per level: just inside level 0, just past the level-0 span
    // (level 1), past the level-1 span (level 2), past the level-2 span
    // (level 3). Each must fire exactly at its ceil tick, which requires
    // the entry to cascade down as the wheel crosses 256^k boundaries.
    TimerWheel wheel(4);
    const TimeUs deadlines[] = {
        255 * kGranule,                      // level 0
        (256 + 7) * kGranule,                // level 1
        ((1 << 16) + 300) * kGranule,        // level 2
        ((std::uint64_t{1} << 24) + 77) * kGranule,  // level 3
    };
    for (std::uint32_t i = 0; i < 4; ++i) wheel.schedule(i, deadlines[i]);

    std::map<std::uint32_t, TimeUs> fired;
    std::vector<std::uint32_t> due;
    while (wheel.armed_count() > 0) {
        const TimeUs hint = wheel.next_deadline_hint();
        ASSERT_NE(hint, TimerWheel::kUnarmed);
        due.clear();
        wheel.advance(hint, due);
        for (std::uint32_t idx : due) fired[idx] = hint;
    }
    ASSERT_EQ(fired.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(fired[i], wheel.ceil_to_tick(deadlines[i])) << "timer " << i;
    }
}

TEST(TimerWheelTest, FarFutureBeyondTotalSpanStillFires) {
    // ~100 virtual days is past the 4-level span (~51 days at 1 ms ticks):
    // the entry parks at the outer edge and re-cascades with its true
    // deadline. The fast-forward makes this cheap enough to test directly.
    TimerWheel wheel(1);
    const TimeUs deadline = TimeUs{100} * 24 * 3600 * kSecond;
    wheel.schedule(0, deadline);
    std::vector<std::uint32_t> due;
    TimeUs fired_at = -1;
    int wakes = 0;
    while (wheel.armed_count() > 0) {
        ASSERT_LT(++wakes, 64) << "hint-driven drain did not converge";
        const TimeUs hint = wheel.next_deadline_hint();
        due.clear();
        wheel.advance(hint, due);
        if (!due.empty()) fired_at = hint;
    }
    EXPECT_EQ(fired_at, wheel.ceil_to_tick(deadline));
}

TEST(TimerWheelTest, HintNeverOvershootsAndAlwaysProgresses) {
    TimerWheel wheel(256);
    Rng rng(42);
    std::vector<TimeUs> deadline(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
        deadline[i] = static_cast<TimeUs>(rng.uniform_int(1, 90 * kSecond));
        wheel.schedule(i, deadline[i]);
    }
    std::vector<std::uint32_t> due;
    TimeUs last_hint = -1;
    while (wheel.armed_count() > 0) {
        const TimeUs hint = wheel.next_deadline_hint();
        ASSERT_NE(hint, TimerWheel::kUnarmed);
        ASSERT_GT(hint, last_hint) << "hint must strictly progress";
        // Conservative: never past the earliest live deadline's tick.
        TimeUs earliest = TimerWheel::kUnarmed;
        for (std::uint32_t i = 0; i < 256; ++i) {
            if (wheel.armed(i)) earliest = std::min(earliest, wheel.ceil_to_tick(deadline[i]));
        }
        ASSERT_LE(hint, earliest);
        last_hint = hint;
        due.clear();
        wheel.advance(hint, due);
        for (std::uint32_t idx : due) {
            EXPECT_EQ(hint, wheel.ceil_to_tick(deadline[idx])) << "timer " << idx;
        }
    }
}

TEST(TimerWheelTest, RandomizedNeverEarlyAlwaysEventually) {
    // Random deadlines across all levels, advanced in random strides (not
    // hint-driven): nothing fires before its deadline, everything fires
    // once reached, regardless of how advance() calls chunk the time.
    TimerWheel wheel(512);
    Rng rng(7);
    std::vector<TimeUs> deadline(512);
    for (std::uint32_t i = 0; i < 512; ++i) {
        const int level = static_cast<int>(rng.uniform_int(0, 3));
        const TimeUs span = kGranule << (8 * level);
        deadline[i] = static_cast<TimeUs>(rng.uniform_int(1, 4 * span));
        wheel.schedule(i, deadline[i]);
    }
    std::vector<bool> fired(512, false);
    std::vector<std::uint32_t> due;
    TimeUs now = 0;
    const TimeUs horizon = 5 * (kGranule << 24);
    while (now < horizon && wheel.armed_count() > 0) {
        now += static_cast<TimeUs>(rng.uniform_int(1, kGranule << 12));
        due.clear();
        wheel.advance(now, due);
        for (std::uint32_t idx : due) {
            EXPECT_FALSE(fired[idx]) << "timer " << idx << " fired twice";
            fired[idx] = true;
            EXPECT_GE(now, deadline[idx]) << "timer " << idx << " fired early";
        }
    }
    EXPECT_EQ(wheel.armed_count(), 0u);
    for (std::uint32_t i = 0; i < 512; ++i) EXPECT_TRUE(fired[i]) << "timer " << i;
}

TEST(TimerWheelTest, DeterministicDueOrder) {
    // Two wheels fed the same schedule yield byte-identical due sequences.
    const auto run = [] {
        TimerWheel wheel(128);
        Rng rng(99);
        for (std::uint32_t i = 0; i < 128; ++i) {
            wheel.schedule(i, static_cast<TimeUs>(rng.uniform_int(1, 10 * kSecond)));
        }
        std::vector<std::uint32_t> order;
        std::vector<std::uint32_t> due;
        for (TimeUs now = 0; wheel.armed_count() > 0; now += 64 * kGranule) {
            due.clear();
            wheel.advance(now, due);
            order.insert(order.end(), due.begin(), due.end());
        }
        return order;
    };
    EXPECT_EQ(run(), run());
}

TEST(TimerWheelTest, StartOffsetAndMemoryAccounting) {
    TimerWheel wheel(1024, /*start=*/60 * kSecond);
    EXPECT_EQ(wheel.capacity(), 1024u);
    wheel.schedule(0, 61 * kSecond);
    std::vector<std::uint32_t> due;
    // 61 s is not on a tick boundary; the wheel fires at the next one.
    wheel.advance(wheel.ceil_to_tick(61 * kSecond), due);
    EXPECT_EQ(due.size(), 1u);
    // deadline + gen arrays dominate; the accounting must at least cover them.
    EXPECT_GE(wheel.memory_bytes(), 1024 * (sizeof(TimeUs) + sizeof(std::uint32_t)));
}

}  // namespace
}  // namespace narada::swarm
