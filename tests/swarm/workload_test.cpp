// Workload wave mechanics: plan builders, linear ramps, sine population
// tracking, departures and NAT churn, played against a small SwarmScenario.
#include "swarm/workload.hpp"

#include <gtest/gtest.h>

#include "scenario/swarm_scenario.hpp"

namespace narada::swarm {
namespace {

scenario::SwarmScenarioOptions tiny_options(std::uint32_t capacity) {
    scenario::SwarmScenarioOptions options;
    options.capacity = capacity;
    options.broker_count = 3;
    options.bdn_count = 1;
    options.seed = 5;
    return options;
}

TEST(WorkloadPlanTest, BuildersFillWavesAndEnd) {
    WorkloadPlan plan;
    plan.flash_crowd(kSecond, 1000, 4 * kSecond)
        .departures(10 * kSecond, 500, 2 * kSecond)
        .diurnal(2 * kSecond, 300, 0.5, 8 * kSecond, 16 * kSecond)
        .mobile_churn(3 * kSecond, 0.1, kSecond, 6 * kSecond);
    ASSERT_EQ(plan.waves.size(), 4u);
    EXPECT_EQ(plan.waves[0].kind, WorkloadPlan::Kind::kFlashCrowd);
    EXPECT_EQ(plan.waves[0].count, 1000u);
    EXPECT_EQ(plan.waves[1].kind, WorkloadPlan::Kind::kDepartures);
    EXPECT_EQ(plan.waves[2].kind, WorkloadPlan::Kind::kDiurnal);
    EXPECT_DOUBLE_EQ(plan.waves[2].amplitude, 0.5);
    EXPECT_EQ(plan.waves[3].kind, WorkloadPlan::Kind::kMobileChurn);
    // diurnal runs 2s..18s, the latest activity in the plan.
    EXPECT_EQ(plan.end(), 18 * kSecond);
}

TEST(WorkloadPlanTest, RejectsDegenerateParameters) {
    WorkloadPlan plan;
    EXPECT_THROW(plan.diurnal(0, 100, 0.5, 0, kSecond), std::invalid_argument);
    EXPECT_THROW(plan.mobile_churn(0, 0.5, 0, kSecond), std::invalid_argument);
    // Churn fraction is clamped, not rejected.
    plan.mobile_churn(0, 7.0, kSecond, kSecond);
    EXPECT_DOUBLE_EQ(plan.waves.back().fraction, 1.0);
}

TEST(WorkloadTest, FlashCrowdDeliversWholeCohort) {
    scenario::SwarmScenario sc(tiny_options(1200));
    WorkloadPlan plan;
    plan.flash_crowd(0, 1200, 6 * kSecond);
    sc.run_plan(plan, /*drain=*/15 * kSecond);
    EXPECT_EQ(sc.workload().stats().arrivals, 1200u);
    EXPECT_EQ(sc.swarm().active(), 1200u);
    EXPECT_GT(sc.workload().stats().ticks, 10u) << "ramp should be spread over many ticks";
}

TEST(WorkloadTest, DeparturesDrainThePopulation) {
    scenario::SwarmScenario sc(tiny_options(600));
    WorkloadPlan plan;
    plan.flash_crowd(0, 600, 2 * kSecond);
    plan.departures(20 * kSecond, 600, 2 * kSecond);
    sc.run_plan(plan, /*drain=*/10 * kSecond);
    EXPECT_EQ(sc.workload().stats().arrivals, 600u);
    EXPECT_EQ(sc.workload().stats().departures, 600u);
    EXPECT_EQ(sc.swarm().active(), 0u);
    EXPECT_EQ(sc.swarm().counters().departed, 600u);
}

TEST(WorkloadTest, DiurnalTracksTheSine) {
    scenario::SwarmScenario sc(tiny_options(1000));
    WorkloadPlan plan;
    // One full period: up to 1.5x base at the crest, down to 0.5x in the
    // trough, back near base at the end.
    plan.diurnal(0, 400, 0.5, 20 * kSecond, 20 * kSecond);
    sc.run_plan(plan, /*drain=*/10 * kSecond);
    const auto& stats = sc.workload().stats();
    EXPECT_GE(stats.arrivals, 550u) << "crest should reach ~600 active";
    EXPECT_GT(stats.departures, 0u) << "downslope must shed clients";
    EXPECT_GE(sc.swarm().active(), 300u);
    EXPECT_LE(sc.swarm().active(), 500u) << "population should end near base";
}

TEST(WorkloadTest, MobileChurnRebindsActiveFraction) {
    scenario::SwarmScenario sc(tiny_options(500));
    WorkloadPlan plan;
    plan.flash_crowd(0, 500, kSecond);
    plan.mobile_churn(10 * kSecond, 0.1, kSecond, 5 * kSecond);
    sc.run_plan(plan, /*drain=*/20 * kSecond);
    // 5 churn ticks x 10% of ~500 active.
    EXPECT_GE(sc.workload().stats().rebinds, 200u);
    EXPECT_EQ(sc.workload().stats().rebinds, sc.swarm().counters().rebinds);
    EXPECT_GE(sc.swarm().connected(), 450u) << "churned clients must rediscover";
}

}  // namespace
}  // namespace narada::swarm
