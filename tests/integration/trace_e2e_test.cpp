// End-to-end observability: one traced discovery run must reconstruct the
// full causal chain (client -> BDN -> injection -> broker -> response) from
// the span recorder, and the metric counters must match the component
// stats they mirror.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>

#include "scenario/scenario.hpp"
#include "sim/site_catalog.hpp"

namespace narada {
namespace {

using scenario::Scenario;
using scenario::ScenarioOptions;
using scenario::Topology;

ScenarioOptions traced_options(std::uint64_t seed = 1) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = seed;
    opts.per_hop_loss = 0;  // every response arrives: exact span counts
    // Spans are stamped from NTP-corrected UTC on each host; zero the
    // residual band so cross-host timestamp comparisons are exact.
    opts.ntp_residual_min = 0;
    opts.ntp_residual_max = 0;
    opts.obs.enabled = true;
    opts.obs.trace_sample_rate = 1.0;
    return opts;
}

TEST(TraceE2E, DiscoveryRunReconstructsCausalChain) {
    Scenario s(traced_options());
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    ASSERT_TRUE(s.observed());

    const obs::TraceContext& ctx = s.client().trace_context();
    ASSERT_TRUE(ctx.sampled());
    const auto spans = s.spans().trace(ctx.trace_id);
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(s.spans().dropped(), 0u);

    std::map<std::string, std::size_t> by_name;
    for (const auto& span : spans) ++by_name[span.name];

    // Every stage of the pipeline shows up.
    EXPECT_EQ(by_name["client.discover"], 1u);
    EXPECT_EQ(by_name["client.collect"], 1u);
    EXPECT_EQ(by_name["client.ping"], 1u);
    EXPECT_EQ(by_name["bdn.request"], 1u);
    EXPECT_GE(by_name["bdn.inject"], 1u);
    // The request floods the star: every broker processes it at least once.
    EXPECT_GE(by_name["broker.process"], s.broker_count());
    // One response-accepted instant per collected candidate.
    EXPECT_EQ(by_name["client.response"], report.candidates.size());

    // Structural checks: exactly one root, every parent id resolves within
    // the trace, and children never start before their parents (clock
    // residuals are zeroed above, so no tolerance is needed).
    std::unordered_map<std::uint64_t, const obs::SpanRecord*> by_id;
    for (const auto& span : spans) by_id[span.span_id] = &span;
    std::size_t roots = 0;
    for (const auto& span : spans) {
        EXPECT_TRUE(span.finished()) << span.name << " was never ended";
        EXPECT_LE(span.start_utc, span.end_utc) << span.name;
        if (span.parent_span == 0) {
            ++roots;
            EXPECT_EQ(span.name, "client.discover");
            continue;
        }
        const auto parent = by_id.find(span.parent_span);
        ASSERT_NE(parent, by_id.end()) << span.name << " has a dangling parent id";
        EXPECT_GE(span.start_utc, parent->second->start_utc)
            << span.name << " starts before its parent " << parent->second->name;
    }
    EXPECT_EQ(roots, 1u);

    // Expected parentage along the pipeline.
    for (const auto& span : spans) {
        if (span.name == "bdn.request") {
            EXPECT_EQ(by_id.at(span.parent_span)->name, "client.discover");
        } else if (span.name == "bdn.inject") {
            EXPECT_EQ(by_id.at(span.parent_span)->name, "bdn.request");
        } else if (span.name == "broker.process") {
            const std::string& parent_name = by_id.at(span.parent_span)->name;
            EXPECT_TRUE(parent_name == "bdn.inject" || parent_name == "broker.process")
                << "broker.process hangs off " << parent_name;
        } else if (span.name == "client.response") {
            const std::string& parent_name = by_id.at(span.parent_span)->name;
            EXPECT_TRUE(parent_name == "broker.process" || parent_name == "client.discover")
                << "client.response hangs off " << parent_name;
        }
    }
}

TEST(TraceE2E, CountersMatchComponentGroundTruth) {
    Scenario s(traced_options(/*seed=*/5));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    auto& m = s.metrics();

    const std::string client_node =
        "client." + sim::site_info(s.options().client_site).machine;
    EXPECT_EQ(m.counter_value("client_discoveries", client_node), 1u);
    EXPECT_EQ(m.counter_value("client_successes", client_node), 1u);
    EXPECT_EQ(m.counter_value("client_responses", client_node), report.candidates.size());

    const std::string bdn_node = s.bdn().name();
    EXPECT_EQ(m.counter_value("bdn_requests_received", bdn_node),
              s.bdn().stats().requests_received);
    EXPECT_GE(m.counter_value("bdn_requests_received", bdn_node), 1u);
    EXPECT_EQ(m.counter_value("bdn_injections", bdn_node), s.bdn().stats().injections);

    std::uint64_t seen = 0, dups = 0, responses = 0;
    std::uint64_t seen_truth = 0, dups_truth = 0, responses_truth = 0;
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        const std::string& node = s.broker_at(i).name();
        seen += m.counter_value("plugin_requests_seen", node);
        dups += m.counter_value("plugin_duplicates_suppressed", node);
        responses += m.counter_value("plugin_responses_sent", node);
        const auto& stats = s.plugin_at(i).stats();
        seen_truth += stats.requests_seen;
        dups_truth += stats.duplicates_suppressed;
        responses_truth += stats.responses_sent;
    }
    EXPECT_EQ(seen, seen_truth);
    EXPECT_EQ(dups, dups_truth);
    EXPECT_EQ(responses, responses_truth);
    EXPECT_GE(responses, report.candidates.size());

    // The aggregate introspection dump covers every wired component.
    const std::string snapshot = s.debug_snapshot();
    EXPECT_NE(snapshot.find("\"bdn\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"client\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"brokers\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"plugins\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"metrics\""), std::string::npos);
    EXPECT_EQ(snapshot.find('\n'), std::string::npos);
}

TEST(TraceE2E, UnsampledRunRecordsNothing) {
    ScenarioOptions opts = traced_options(/*seed=*/9);
    opts.obs.trace_sample_rate = 0.0;  // metrics on, tracing off
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_FALSE(s.client().trace_context().sampled());
    EXPECT_EQ(s.spans().size(), 0u);
    // Counters still accumulate: the metrics plane is sampling-independent.
    const std::string client_node =
        "client." + sim::site_info(s.options().client_site).machine;
    EXPECT_EQ(s.metrics().counter_value("client_responses", client_node),
              report.candidates.size());
}

}  // namespace
}  // namespace narada
