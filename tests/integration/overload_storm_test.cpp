// Fixed-seed storm soak (the PR's acceptance scenario): a scripted
// request_storm floods a bounded-ingest BDN in front of a 16-broker
// overlay. The BDN queue must stay bounded, no advertisement lease may
// lapse during the storm, the client must keep selecting brokers in
// bounded time by breaker-failover to a healthy secondary BDN, and two
// same-seed runs must produce bit-identical shed/breaker digests.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "discovery/bdn.hpp"
#include "scenario/chaos.hpp"
#include "scenario/scenario.hpp"
#include "sim/fault_plan.hpp"
#include "sim/site_catalog.hpp"

namespace narada {
namespace {

constexpr std::uint64_t kStormSeed = 20260806;
constexpr std::size_t kBrokers = 16;
constexpr DurationUs kStormLength = 20 * kSecond;

struct StormSoakResult {
    std::size_t runs = 0;
    std::size_t successes = 0;
    DurationUs worst_selection = 0;  ///< max total_duration across runs
    std::uint64_t leases_expired = 0;
    std::uint64_t queue_depth_peak = 0;
    std::size_t queue_limit = 0;
    std::uint64_t requests_shed = 0;
    std::uint64_t storm_requests_sent = 0;
    std::uint64_t breaker_opens = 0;
    std::vector<std::uint64_t> digest;
};

StormSoakResult run_storm_soak() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = kStormSeed;
    // 16 brokers cycling through the paper's site catalog.
    opts.broker_sites.clear();
    for (std::size_t i = 0; i < kBrokers; ++i) {
        opts.broker_sites.push_back(static_cast<sim::Site>(i % sim::kSiteCount));
    }
    opts.broker.advertise_interval = 5 * kSecond;
    opts.bdn.ad_lease = 15 * kSecond;  // renewals must keep beating this
    opts.bdn.ingest_queue_limit = 16;
    opts.bdn.request_service_cost = from_ms(2);
    opts.bdn.per_source_rate = 4.0;  // the storm source is quota-shed hard
    opts.bdn.per_source_burst = 8.0;
    opts.discovery.response_window = from_ms(1200);
    opts.discovery.retransmit_interval = from_ms(400);
    opts.discovery.max_responses = 8;
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 4 * kSecond;
    scenario::Scenario s(opts);
    s.warm_up();
    auto& kernel = s.kernel();
    auto& net = s.network();

    // A healthy, unthrottled secondary BDN that already knows every broker:
    // the breaker failover target.
    const HostId backup_host = net.add_host({"bdn2.backup.net", "BACKUP", "", 0});
    discovery::Bdn secondary(kernel, net, Endpoint{backup_host, 7100},
                             net.host_clock(backup_host), config::BdnConfig{},
                             "secondary-bdn");
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        secondary.register_broker(s.plugin_at(i).advertisement());
    }
    secondary.start();
    s.client().mutable_config().bdns.push_back(secondary.endpoint());
    kernel.run_until(kernel.now() + 2 * kSecond);  // secondary pings settle

    StormSoakResult result;
    result.queue_limit = opts.bdn.ingest_queue_limit;
    auto discover_once = [&] {
        const auto report = s.run_discovery();
        ++result.runs;
        if (report.success) ++result.successes;
        result.worst_selection = std::max(result.worst_selection, report.total_duration);
    };

    discover_once();  // baseline before the storm

    // 16 synthetic clients flood the primary BDN every 20 ms for 20 s.
    sim::ChaosInjector chaos(kernel, net);
    chaos.run(scenario::request_storm_plan(s, 1 * kSecond, 16, from_ms(20),
                                           kStormLength));
    const TimeUs storm_end = kernel.now() + 1 * kSecond + kStormLength;
    kernel.run_until(kernel.now() + 2 * kSecond);  // storm well underway

    // Discovery keeps working mid-storm, in bounded time per run.
    for (int i = 0; i < 4; ++i) {
        discover_once();
        kernel.run_until(kernel.now() + 2 * kSecond);
    }

    kernel.run_until(storm_end + 5 * kSecond);
    discover_once();  // and after the storm subsides

    result.leases_expired = s.bdn().stats().leases_expired;
    result.queue_depth_peak = s.bdn().stats().queue_depth_peak;
    result.requests_shed = s.bdn().stats().requests_shed();
    result.storm_requests_sent = chaos.stats().storm_requests_sent;
    result.breaker_opens = s.client().bdn_breaker(0).stats().opens;

    result.digest = scenario::overload_digest(s);
    result.digest.push_back(chaos.stats().storm_requests_sent);
    result.digest.push_back(secondary.stats().requests_received);
    result.digest.push_back(secondary.stats().acks_sent);
    result.digest.push_back(secondary.stats().injections);
    return result;
}

TEST(OverloadStormSoak, BoundedQueuesLeasesAndSelectionUnderStorm) {
    const StormSoakResult r = run_storm_soak();

    // The storm really happened and really got shed.
    EXPECT_GT(r.storm_requests_sent, 1000u);
    EXPECT_GT(r.requests_shed, 0u);

    // 1. No BDN queue grows unbounded: the high-water mark respects the cap.
    EXPECT_LE(r.queue_depth_peak, r.queue_limit);

    // 2. Zero lease expiries during the storm: advertisement renewals are
    //    never shed, so no registration lapsed.
    EXPECT_EQ(r.leases_expired, 0u);

    // 3. Every client run selected a broker in bounded time — the breaker
    //    opened on the shedding primary and failover kept selections fast.
    EXPECT_EQ(r.successes, r.runs);
    EXPECT_GE(r.breaker_opens, 1u);
    EXPECT_LT(r.worst_selection, 5 * kSecond);
}

TEST(OverloadStormSoak, SameSeedRunsProduceIdenticalDigests) {
    const StormSoakResult a = run_storm_soak();
    const StormSoakResult b = run_storm_soak();
    ASSERT_FALSE(a.digest.empty());
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.storm_requests_sent, b.storm_requests_sent);
    EXPECT_EQ(a.worst_selection, b.worst_selection);
}

}  // namespace
}  // namespace narada
