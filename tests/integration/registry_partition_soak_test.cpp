// Registry-partition soak: a three-member federated BDN peer group at
// replication factor 2 rides out a flapping partition, a rolling wave of
// BDN crashes and a membership change executed while one member is down
// (crash-during-rebalance). Throughout, a client keeps issuing discovery
// requests; afterwards the federation must have lost no unexpired lease —
// every live broker is held by at least R owners — and discovery success
// must stay at/above 99 %.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace narada {
namespace {

constexpr std::uint64_t kSoakSeed = 20260808;
constexpr int kDiscoveryRounds = 100;

struct SoakResult {
    int successes = 0;
    int rounds = 0;
    /// Brokers held, unexpired, by fewer than R members after the heal.
    std::size_t under_replicated = 0;
    std::size_t brokers_lost = 0;  ///< brokers no member holds at all
    std::uint64_t gathers = 0;
    std::uint64_t gathers_partial = 0;
    std::uint64_t ads_forwarded = 0;
    std::uint64_t anti_entropy_rounds = 0;
    std::uint64_t digest_mismatch_pushes = 0;
    std::uint64_t ring_mismatches = 0;
    std::uint64_t rebalance_handoffs = 0;
    std::uint64_t midflight_failovers = 0;
    std::size_t stale_ads = 0;
    /// Bit-for-bit reproducibility digest.
    std::vector<std::uint64_t> digest;
};

SoakResult run_soak() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = kSoakSeed;
    opts.bdn_count = 3;
    opts.bdn.replication_factor = 2;
    opts.bdn.anti_entropy_interval = 1 * kSecond;
    opts.bdn.ad_lease = 20 * kSecond;
    opts.broker.advertise_interval = 5 * kSecond;
    opts.discovery.response_window = from_ms(1200);
    opts.discovery.retransmit_interval = from_ms(400);
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 2 * kSecond;
    scenario::Scenario s(opts);
    s.warm_up();
    auto& kernel = s.kernel();
    auto& net = s.network();

    const std::vector<HostId> bdn_hosts = {s.bdn_host(0), s.bdn_host(1), s.bdn_host(2)};
    std::vector<Endpoint> bdn_eps;
    for (std::size_t i = 0; i < 3; ++i) bdn_eps.push_back(s.bdn_at(i).endpoint());
    std::vector<HostId> everyone_else = {s.client_host(), bdn_hosts[0], bdn_hosts[1]};
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        everyone_else.push_back(s.broker_host(i));
    }

    // The scripted outage, relative to the injector's start:
    //   5-26 s   bdn2 flaps in and out of a partition, three times
    //   30-44 s  rolling crash wave across all three BDNs (overlapping)
    //   33 s     membership shrinks to {bdn1, bdn2} while bdn0 is down —
    //            the rebalance handoffs race the next crash in the wave
    //   48 s     full membership restored on every member
    sim::ChaosInjector injector(kernel, net);
    sim::FaultPlan plan;
    plan.flapping_partition(5 * kSecond, {bdn_hosts[2]}, everyone_else,
                            /*rounds=*/3, /*down_for=*/4 * kSecond, /*gap=*/3 * kSecond)
        .rolling_crashes(30 * kSecond, bdn_hosts, /*down_for=*/6 * kSecond,
                         /*stagger=*/4 * kSecond);
    injector.run(plan);
    const TimeUs injected_at = kernel.now();
    kernel.schedule_at(injected_at + 33 * kSecond, [&s, bdn_eps] {
        s.bdn_at(1).set_peer_group({bdn_eps[1], bdn_eps[2]});
        s.bdn_at(2).set_peer_group({bdn_eps[1], bdn_eps[2]});
    });
    kernel.schedule_at(injected_at + 48 * kSecond, [&s, bdn_eps] {
        for (std::size_t i = 0; i < 3; ++i) s.bdn_at(i).set_peer_group(bdn_eps);
    });

    // Discovery never stops during the outage: one run roughly every
    // second, spanning the whole plan and the heal.
    SoakResult result;
    for (int round = 0; round < kDiscoveryRounds; ++round) {
        const auto report = s.run_discovery();
        ++result.rounds;
        if (report.success) ++result.successes;
        result.digest.push_back(report.success ? 1 : 0);
        kernel.run_until(kernel.now() + kSecond);
    }
    kernel.run_until(std::max(kernel.now(), injector.plan_end()));

    // Heal: one advertise interval plus anti-entropy rounds to re-replicate,
    // then one lease interval so stale residue is swept.
    kernel.run_until(kernel.now() + 30 * kSecond);

    // Zero permanent lease loss at R = 2: every broker (all kept
    // advertising) is held unexpired by at least two members.
    for (std::size_t b = 0; b < s.broker_count(); ++b) {
        const Endpoint broker_ep = s.broker_at(b).endpoint();
        std::size_t holders = 0;
        for (std::size_t i = 0; i < 3; ++i) {
            for (const auto& rb : s.bdn_at(i).registry()) {
                if (rb.ad.endpoint != broker_ep) continue;
                if (rb.lease_expires_at == 0 || rb.lease_expires_at > kernel.now()) ++holders;
                break;
            }
        }
        if (holders == 0) ++result.brokers_lost;
        if (holders < 2) ++result.under_replicated;
    }

    for (std::size_t i = 0; i < 3; ++i) {
        const auto& st = s.bdn_at(i).stats();
        result.gathers += st.gathers;
        result.gathers_partial += st.gathers_partial;
        result.ads_forwarded += st.ads_forwarded;
        result.anti_entropy_rounds += st.anti_entropy_rounds;
        result.digest_mismatch_pushes += st.digest_mismatch_pushes;
        result.ring_mismatches += st.digest_ring_mismatches;
        result.rebalance_handoffs += st.rebalance_handoffs;
        result.stale_ads += s.bdn_at(i).stale_count();
        result.digest.push_back(st.ads_received);
        result.digest.push_back(st.ads_forwarded);
        result.digest.push_back(st.forwards_received);
        result.digest.push_back(st.gathers);
        result.digest.push_back(st.gathers_partial);
        result.digest.push_back(st.shard_queries_sent);
        result.digest.push_back(st.shard_replies_received);
        result.digest.push_back(st.anti_entropy_rounds);
        result.digest.push_back(st.digests_matched);
        result.digest.push_back(st.digest_mismatch_pushes);
        result.digest.push_back(st.digest_ring_mismatches);
        result.digest.push_back(st.rebalance_handoffs);
        result.digest.push_back(st.sync_expired_dropped);
        result.digest.push_back(s.bdn_at(i).registered_count());
    }
    result.midflight_failovers = s.client().stats().midflight_failovers;
    result.digest.push_back(result.midflight_failovers);
    result.digest.push_back(s.client().stats().breaker_skips);
    result.digest.push_back(static_cast<std::uint64_t>(result.successes));
    result.digest.push_back(static_cast<std::uint64_t>(kernel.now()));
    result.digest.push_back(net.stats().datagrams_sent);
    return result;
}

TEST(RegistryPartitionSoak, FederationSurvivesPartitionAndRollingCrashes) {
    const SoakResult r = run_soak();

    // Discovery stayed available through the whole outage (>= 99 %).
    EXPECT_EQ(r.rounds, kDiscoveryRounds);
    EXPECT_GE(r.successes * 100, r.rounds * 99)
        << r.successes << "/" << r.rounds << " discoveries succeeded";

    // No unexpired lease was permanently lost, and R = 2 re-established.
    EXPECT_EQ(r.brokers_lost, 0u);
    EXPECT_EQ(r.under_replicated, 0u);
    EXPECT_EQ(r.stale_ads, 0u) << "expired residue survived the sweep";

    // The machinery under test actually engaged.
    EXPECT_GT(r.gathers, 0u);
    EXPECT_GT(r.gathers_partial, 0u) << "no gather ever degraded to partial results";
    EXPECT_GT(r.ads_forwarded, 0u);
    EXPECT_GT(r.anti_entropy_rounds, 0u);
    EXPECT_GT(r.digest_mismatch_pushes, 0u) << "anti-entropy never repaired anything";
    EXPECT_GT(r.ring_mismatches, 0u) << "epoch fencing never engaged";
    EXPECT_GT(r.rebalance_handoffs, 0u);
}

TEST(RegistryPartitionSoak, DeterministicAcrossRepeatedRuns) {
    const SoakResult a = run_soak();
    const SoakResult b = run_soak();
    EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace narada
