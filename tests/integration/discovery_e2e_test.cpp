// End-to-end discovery runs on the paper's three topologies.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace narada {
namespace {

using scenario::Scenario;
using scenario::ScenarioOptions;
using scenario::Topology;

ScenarioOptions base_options(Topology topology, std::uint64_t seed = 1) {
    ScenarioOptions opts;
    opts.topology = topology;
    opts.seed = seed;
    if (topology == Topology::kUnconnected) {
        // Figure 1: no broker network; the BDN distributes to each
        // registered broker itself (O(N) distribution).
        opts.bdn.injection = config::InjectionStrategy::kAll;
    }
    if (topology == Topology::kLinear) {
        // Figure 10: "only one broker is registered with the BDN".
        opts.register_with_bdn = 1;
    }
    return opts;
}

TEST(DiscoveryE2E, StarTopologySelectsABroker) {
    Scenario s(base_options(Topology::kStar));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.candidates.size(), 5u);  // all five brokers answered
    ASSERT_TRUE(report.selected.has_value());
    const auto* chosen = report.selected_candidate();
    ASSERT_NE(chosen, nullptr);
    EXPECT_GE(chosen->ping_rtt, 0);
}

TEST(DiscoveryE2E, UnconnectedTopologyStillDiscovers) {
    Scenario s(base_options(Topology::kUnconnected));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_GE(report.candidates.size(), 4u);
}

TEST(DiscoveryE2E, LinearTopologyReachesUnregisteredBrokers) {
    Scenario s(base_options(Topology::kLinear));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    // Only broker 0 registered, but the request floods the chain: brokers
    // that never advertised still respond (§2.1, §10).
    EXPECT_EQ(s.bdn().registered_count(), 1u);
    EXPECT_GE(report.candidates.size(), 4u);
}

TEST(DiscoveryE2E, SelectedBrokerIsNearestByPing) {
    Scenario s(base_options(Topology::kStar, /*seed=*/7));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    const auto* chosen = report.selected_candidate();
    ASSERT_NE(chosen, nullptr);
    for (std::size_t index : report.target_set) {
        const auto& candidate = report.candidates[index];
        if (candidate.ping_rtt < 0) continue;
        EXPECT_LE(chosen->ping_rtt, candidate.ping_rtt);
    }
}

TEST(DiscoveryE2E, PhaseTimingsAreConsistent) {
    Scenario s(base_options(Topology::kStar, /*seed=*/3));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_GE(report.time_to_ack, 0);
    EXPECT_GE(report.time_to_first_response, report.time_to_ack);
    EXPECT_GE(report.collection_duration, report.time_to_first_response);
    EXPECT_GE(report.total_duration,
              report.collection_duration + report.scoring_duration + report.ping_duration);
    const auto breakdown = scenario::phase_breakdown(report);
    const double sum = breakdown.request_and_ack_pct + breakdown.wait_responses_pct +
                       breakdown.shortlist_pct + breakdown.ping_select_pct;
    EXPECT_GT(sum, 50.0);
    EXPECT_LE(sum, 100.5);
}

TEST(DiscoveryE2E, EstimatedDelaysWithinClockErrorBand) {
    Scenario s(base_options(Topology::kStar, /*seed=*/11));
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    for (const auto& candidate : report.candidates) {
        // One-way delay estimate = true one-way + NTP errors of both ends;
        // each end is within +-20 ms (paper §5), so the estimate is within
        // about +-40 ms of truth and must stay inside a sane WAN envelope.
        EXPECT_GT(candidate.estimated_delay, -from_ms(45.0));
        EXPECT_LT(candidate.estimated_delay, from_ms(150.0));
    }
}

TEST(DiscoveryE2E, DeterministicUnderSeed) {
    auto run = [](std::uint64_t seed) {
        Scenario s(base_options(Topology::kStar, seed));
        return s.run_discovery();
    };
    const auto a = run(99);
    const auto b = run(99);
    ASSERT_EQ(a.success, b.success);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    EXPECT_EQ(a.total_duration, b.total_duration);
    ASSERT_TRUE(a.selected.has_value());
    ASSERT_TRUE(b.selected.has_value());
    EXPECT_EQ(a.candidates[*a.selected].response.broker_name,
              b.candidates[*b.selected].response.broker_name);
}

TEST(DiscoveryE2E, StarWaitsLessThanUnconnected) {
    // The paper's central comparative finding (Figures 2 vs 9): the broker
    // network disseminates requests faster than the BDN's O(N) fan-out.
    // Loss disabled: a single lost response costs a full collection window
    // and would drown the dissemination-time comparison in noise.
    ScenarioOptions star_opts = base_options(Topology::kStar, 5);
    ScenarioOptions unc_opts = base_options(Topology::kUnconnected, 5);
    star_opts.per_hop_loss = 0;
    unc_opts.per_hop_loss = 0;
    Scenario star(star_opts);
    Scenario unconnected(unc_opts);
    const auto star_report = star.run_discovery();
    const auto unc_report = unconnected.run_discovery();
    ASSERT_TRUE(star_report.success);
    ASSERT_TRUE(unc_report.success);
    EXPECT_LT(star_report.collection_duration, unc_report.collection_duration);
}

TEST(DiscoveryE2E, OversizedResponsesTravelTheRudpLane) {
    // Force every discovery response over the reliable-UDP bulk lane (a
    // 1-byte threshold makes them all "oversized"): the client must
    // reassemble the fragmented responses and discovery must end exactly
    // where the plain-datagram path ends.
    ScenarioOptions opts = base_options(Topology::kStar);
    opts.broker.response_rudp_threshold = 1;
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.candidates.size(), 5u);
    ASSERT_TRUE(report.selected.has_value());

    std::uint64_t rudp_responses = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        rudp_responses += s.plugin_at(i).stats().responses_rudp;
        EXPECT_EQ(s.plugin_at(i).stats().responses_sent,
                  s.plugin_at(i).stats().responses_rudp)
            << "broker " << i << " bypassed the lane despite the threshold";
    }
    EXPECT_GE(rudp_responses, 5u);
}

TEST(DiscoveryE2E, RudpResponsesMatchDatagramResponses) {
    // Same scenario, same seed, lane on vs off: the discovery outcome
    // (candidate set and selection) must be identical — the lane changes
    // delivery, not semantics.
    ScenarioOptions plain_opts = base_options(Topology::kStar, 21);
    plain_opts.per_hop_loss = 0;
    ScenarioOptions rudp_opts = plain_opts;
    rudp_opts.broker.response_rudp_threshold = 1;

    Scenario plain(plain_opts);
    Scenario rudp(rudp_opts);
    const auto plain_report = plain.run_discovery();
    const auto rudp_report = rudp.run_discovery();
    ASSERT_TRUE(plain_report.success);
    ASSERT_TRUE(rudp_report.success);
    ASSERT_EQ(plain_report.candidates.size(), rudp_report.candidates.size());
    ASSERT_TRUE(plain_report.selected.has_value());
    ASSERT_TRUE(rudp_report.selected.has_value());
    for (std::size_t i = 0; i < plain_report.candidates.size(); ++i) {
        EXPECT_EQ(plain_report.candidates[i].response.broker_name,
                  rudp_report.candidates[i].response.broker_name);
    }
}

}  // namespace
}  // namespace narada
