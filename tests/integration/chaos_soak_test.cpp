// Chaos soak: a scripted multi-fault outage (broker crashes, a realm
// partition, a loss storm, a clock-skew step) played deterministically on
// the virtual-time kernel. After the plan ends and backoff quiesces, the
// overlay must be one component again, every managed client re-attached,
// a publish from any client delivered to every matching subscriber, and
// the BDN registry free of stale advertisements.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "broker/client.hpp"
#include "discovery/managed_connection.hpp"
#include "scenario/chaos.hpp"
#include "scenario/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace narada {
namespace {

constexpr std::uint64_t kSoakSeed = 20250806;

struct SoakResult {
    bool overlay_connected = false;
    bool clients_attached = false;
    bool deliveries_complete = false;
    std::size_t stale_ads = 0;
    std::uint64_t rejoin_attempts = 0;
    std::uint64_t rejoin_successes = 0;
    sim::ChaosInjector::Stats chaos;
    /// Bit-for-bit reproducibility digest over every interesting counter.
    std::vector<std::uint64_t> digest;
};

SoakResult run_soak() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = kSoakSeed;
    opts.enable_rejoin = true;
    opts.rejoin.peer_floor = 1;
    opts.rejoin.backoff_max = 8 * kSecond;  // quiesce within the test horizon
    opts.broker.peer_heartbeat_interval = 1 * kSecond;
    opts.broker.advertise_interval = 5 * kSecond;
    opts.bdn.ad_lease = 15 * kSecond;
    opts.discovery.response_window = from_ms(1200);
    opts.discovery.retransmit_interval = from_ms(400);
    scenario::Scenario s(opts);
    s.warm_up();
    auto& net = s.network();
    auto& kernel = s.kernel();

    // Two managed clients sharing one discovery client (the busy-deferral
    // path is part of the chaos surface). Both subscribe; both publish.
    const HostId ch = s.client_host();
    broker::PubSubClient pubsub_a(kernel, net, Endpoint{ch, 9600});
    broker::PubSubClient pubsub_b(kernel, net, Endpoint{ch, 9610});
    std::set<int> seen_a, seen_b;
    pubsub_a.on_event([&](const broker::Event& e) {
        if (!e.payload.empty()) seen_a.insert(e.payload[0]);
    });
    pubsub_b.on_event([&](const broker::Event& e) {
        if (!e.payload.empty()) seen_b.insert(e.payload[0]);
    });
    pubsub_a.subscribe("chaos/feed");
    pubsub_b.subscribe("chaos/feed");

    discovery::ManagedConnection::Options mc_options;
    mc_options.heartbeat_interval = from_ms(500);
    mc_options.max_missed = 2;
    discovery::ManagedConnection mc_a(kernel, net, Endpoint{ch, 9601}, net.host_clock(ch),
                                      pubsub_a, s.client(), mc_options);
    discovery::ManagedConnection mc_b(kernel, net, Endpoint{ch, 9611}, net.host_clock(ch),
                                      pubsub_b, s.client(), mc_options);
    mc_a.start();
    mc_b.start();
    scenario::run_until(s, 30 * kSecond,
                        [&] { return mc_a.attached() && mc_b.attached(); });

    // The scripted outage: hub crash, spoke crash, partition of another
    // spoke, a loss storm and a clock-skew step, spanning 60 s.
    sim::ChaosInjector injector(kernel, net);
    sim::FaultPlan plan;
    plan.crash(5 * kSecond, s.broker_host(0), 10 * kSecond)       // the hub
        .crash(20 * kSecond, s.broker_host(1), 8 * kSecond)       // a spoke
        .partition(35 * kSecond, {s.broker_host(3)},
                   {s.broker_host(0), s.broker_host(1), s.broker_host(2),
                    s.broker_host(4), s.client_host(), s.bdn().endpoint().host},
                   10 * kSecond)
        .skew_step(45 * kSecond, s.broker_host(4), from_ms(150))
        .loss_storm(50 * kSecond, 0.05, 10 * kSecond);
    injector.run(plan);
    kernel.run_until(injector.plan_end());

    // Quiesce: overlay reconnected, every supervisor stood down, both
    // clients re-attached to live brokers.
    auto healed = [&] {
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            if (s.rejoin_at(i).below_floor() || s.rejoin_at(i).healing()) return false;
        }
        if (!mc_a.attached() || !mc_b.attached()) return false;
        if (net.host_down(mc_a.current_broker()->host)) return false;
        if (net.host_down(mc_b.current_broker()->host)) return false;
        return scenario::overlay_connected(s);
    };
    const bool quiesced = scenario::run_until(s, 120 * kSecond, healed);

    SoakResult result;
    result.overlay_connected = scenario::overlay_connected(s);
    result.clients_attached = mc_a.attached() && mc_b.attached();

    // A publish from each client must reach every matching subscriber.
    pubsub_a.publish("chaos/feed", Bytes{7});
    pubsub_b.publish("chaos/feed", Bytes{8});
    kernel.run_until(kernel.now() + 5 * kSecond);
    result.deliveries_complete = quiesced && seen_a.count(7) && seen_a.count(8) &&
                                 seen_b.count(7) && seen_b.count(8);

    // Let one full lease interval pass so anything stale has been swept.
    kernel.run_until(kernel.now() + 20 * kSecond);
    result.stale_ads = s.bdn().stale_count();
    result.chaos = injector.stats();

    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        const auto& st = s.rejoin_at(i).stats();
        result.rejoin_attempts += st.attempts;
        result.rejoin_successes += st.successes;
        result.digest.push_back(st.attempts);
        result.digest.push_back(st.successes);
        result.digest.push_back(st.failures);
        result.digest.push_back(st.deferrals);
        result.digest.push_back(static_cast<std::uint64_t>(st.last_delay));
        result.digest.push_back(s.broker_at(i).established_peer_count());
    }
    result.digest.push_back(static_cast<std::uint64_t>(kernel.now()));
    result.digest.push_back(mc_a.stats().failovers);
    result.digest.push_back(mc_b.stats().failovers);
    result.digest.push_back(mc_a.stats().busy_deferrals + mc_b.stats().busy_deferrals);
    result.digest.push_back(net.stats().datagrams_sent);
    result.digest.push_back(net.stats().reliable_sent);
    result.digest.push_back(s.bdn().stats().leases_renewed);
    result.digest.push_back(s.bdn().stats().leases_expired);
    result.digest.push_back(result.overlay_connected ? 1 : 0);
    result.digest.push_back(result.deliveries_complete ? 1 : 0);
    return result;
}

TEST(ChaosSoak, OverlayAndClientsRecoverFromScriptedOutage) {
    const SoakResult r = run_soak();
    EXPECT_EQ(r.chaos.crashes, 2u);
    EXPECT_EQ(r.chaos.restarts, 2u);
    EXPECT_EQ(r.chaos.partitions, 1u);
    EXPECT_EQ(r.chaos.partition_heals, 1u);
    EXPECT_EQ(r.chaos.loss_storms, 1u);
    EXPECT_EQ(r.chaos.skew_steps, 1u);

    EXPECT_TRUE(r.overlay_connected);
    EXPECT_TRUE(r.clients_attached);
    EXPECT_TRUE(r.deliveries_complete);
    EXPECT_EQ(r.stale_ads, 0u);
    // The supervisors did real work and it is visible in their stats.
    EXPECT_GT(r.rejoin_attempts, 0u);
    EXPECT_GT(r.rejoin_successes, 0u);
}

TEST(ChaosSoak, DeterministicAcrossRepeatedRuns) {
    const SoakResult a = run_soak();
    const SoakResult b = run_soak();
    EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace narada
