// 10k-endpoint swarm soak: a flash crowd, NAT churn and a diurnal cycle
// against a federated BDN plane, on the sanitizer-matrix integration
// binary. Gates: a success floor under loss + shedding, the per-endpoint
// memory ceiling, and run-to-run digest determinism.
#include <gtest/gtest.h>

#include <string>

#include "scenario/swarm_scenario.hpp"
#include "swarm/client_swarm.hpp"
#include "swarm/workload.hpp"

namespace narada::swarm {
namespace {

scenario::SwarmScenarioOptions soak_options() {
    scenario::SwarmScenarioOptions options;
    options.capacity = 10'000;
    options.broker_count = 6;
    options.bdn_count = 3;
    options.seed = 2026;
    return options;
}

WorkloadPlan soak_plan() {
    WorkloadPlan plan;
    plan.flash_crowd(0, 10'000, 8 * kSecond);
    plan.mobile_churn(12 * kSecond, 0.05, 2 * kSecond, 10 * kSecond);
    plan.departures(25 * kSecond, 4'000, 4 * kSecond);
    plan.diurnal(32 * kSecond, 8'000, 0.25, 24 * kSecond, 24 * kSecond);
    return plan;
}

std::string run_soak(std::uint64_t* connects_out = nullptr) {
    scenario::SwarmScenario sc(soak_options());
    sc.run_plan(soak_plan(), /*drain=*/30 * kSecond);

    const SwarmCounters& c = sc.swarm().counters();
    EXPECT_GT(c.started, 10'000u);  // flash crowd + diurnal upswing reuse
    EXPECT_GT(c.rebinds, 0u);
    EXPECT_GT(c.departed, 0u);

    // Success floor: the population that stayed must be connected.
    const std::uint32_t active = sc.swarm().active();
    EXPECT_GT(active, 0u);
    EXPECT_GE(sc.swarm().connected(), active * 95 / 100)
        << sc.swarm().connected() << " of " << active << " active clients connected";

    // Memory ceiling holds through churn and reuse.
    const double per_endpoint = static_cast<double>(sc.swarm().state_bytes()) /
                                static_cast<double>(sc.swarm().capacity());
    EXPECT_LE(per_endpoint, 256.0);

    // The plane actually exercised shedding-capable ingest (received and
    // serviced work); shed itself depends on tuning and may be zero here.
    EXPECT_GT(sc.requests_received(), 0u);

    if (connects_out != nullptr) *connects_out = c.connects;
    return sc.swarm().metrics_digest_hex();
}

TEST(SwarmSoakTest, MixedWavesSurviveAndConverge) {
    std::uint64_t connects = 0;
    const std::string digest = run_soak(&connects);
    EXPECT_FALSE(digest.empty());
    EXPECT_GT(connects, 10'000u);
}

TEST(SwarmSoakTest, DigestIsDeterministicAcrossRuns) {
    const std::string first = run_soak();
    const std::string second = run_soak();
    EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace narada::swarm
