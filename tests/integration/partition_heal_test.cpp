// End-to-end partition heal: split the overlay with link faults, verify
// events stop crossing, heal the network, and assert the rejoin machinery
// re-peers the orphan, exchanges subscription summaries over the fresh
// link, and deliveries resume (§1.2's fluid overlay, closed-loop).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/client.hpp"
#include "scenario/chaos.hpp"
#include "scenario/scenario.hpp"

namespace narada {
namespace {

struct PartitionHealFixture : ::testing::Test {
    PartitionHealFixture() {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kStar;
        opts.seed = 4242;
        opts.enable_rejoin = true;
        opts.rejoin.peer_floor = 1;
        // Routed dissemination: delivery across the healed link only works
        // if the subscription summary actually crossed it.
        opts.broker.routing_mode = config::RoutingMode::kRouted;
        opts.broker.peer_heartbeat_interval = 1 * kSecond;
        opts.broker.advertise_interval = 5 * kSecond;
        opts.bdn.ad_lease = 15 * kSecond;
        opts.discovery.response_window = from_ms(1200);
        opts.discovery.retransmit_interval = from_ms(400);
        testbed = std::make_unique<scenario::Scenario>(opts);
        testbed->warm_up();
    }

    void settle(DurationUs d) {
        testbed->kernel().run_until(testbed->kernel().now() + d);
    }

    /// Every host except the isolated one.
    std::vector<HostId> other_hosts(HostId isolated) {
        std::vector<HostId> out;
        for (HostId h = 0; h < testbed->network().host_count(); ++h) {
            if (h != isolated) out.push_back(h);
        }
        return out;
    }

    std::unique_ptr<scenario::Scenario> testbed;
};

TEST_F(PartitionHealFixture, DeliveryStopsAcrossSplitAndResumesAfterHeal) {
    auto& net = testbed->network();
    const std::size_t spoke = 3;
    const HostId spoke_host = testbed->broker_host(spoke);

    // Subscriber rides the spoke's own host (loopback is partition-proof),
    // publisher rides the hub's host: events must cross the overlay.
    broker::PubSubClient subscriber(testbed->kernel(), net, Endpoint{spoke_host, 9600});
    int received = 0;
    subscriber.on_event([&](const broker::Event&) { ++received; });
    subscriber.connect(testbed->broker_at(spoke).endpoint());
    subscriber.subscribe("app/feed");

    broker::PubSubClient publisher(testbed->kernel(), net,
                                   Endpoint{testbed->broker_host(0), 9601});
    publisher.connect(testbed->broker_at(0).endpoint());
    settle(3 * kSecond);  // interest announcement propagates

    publisher.publish("app/feed", Bytes{1});
    settle(2 * kSecond);
    ASSERT_EQ(received, 1);

    // Split: the spoke's host against the rest of the world (including the
    // BDN, so rejoin attempts inside the partition fail and back off).
    sim::ChaosInjector injector(testbed->kernel(), net);
    sim::FaultPlan plan;
    plan.partition(0, {spoke_host}, other_hosts(spoke_host), /*down_for=*/0);
    injector.run(plan);
    settle(10 * kSecond);

    publisher.publish("app/feed", Bytes{2});
    settle(3 * kSecond);
    EXPECT_EQ(received, 1);  // events no longer cross the split
    EXPECT_EQ(testbed->broker_at(spoke).established_peer_count(), 0u);
    EXPECT_TRUE(testbed->rejoin_at(spoke).below_floor());
    EXPECT_GT(testbed->rejoin_at(spoke).stats().floor_violations, 0u);

    // Heal the split and let the supervisor re-peer.
    for (const HostId h : other_hosts(spoke_host)) net.set_link_down(spoke_host, h, false);
    settle(60 * kSecond);

    EXPECT_GE(testbed->broker_at(spoke).established_peer_count(), 1u);
    EXPECT_GT(testbed->rejoin_at(spoke).stats().successes, 0u);
    EXPECT_TRUE(scenario::overlay_connected(*testbed));

    // The re-established link carried the subscription summary: routed
    // delivery to the spoke's subscriber resumes.
    publisher.publish("app/feed", Bytes{3});
    settle(3 * kSecond);
    EXPECT_EQ(received, 2);
    // Backoff stood down after the successful re-peer.
    EXPECT_EQ(testbed->rejoin_at(spoke).current_backoff(),
              testbed->rejoin_at(spoke).config().backoff_initial);
}

TEST_F(PartitionHealFixture, TimedPartitionHealsThroughChaosInjector) {
    auto& net = testbed->network();
    const std::size_t spoke = 2;
    const HostId spoke_host = testbed->broker_host(spoke);

    sim::ChaosInjector injector(testbed->kernel(), net);
    sim::FaultPlan plan;
    plan.partition(1 * kSecond, {spoke_host}, other_hosts(spoke_host), 12 * kSecond);
    injector.run(plan);

    settle(8 * kSecond);
    EXPECT_EQ(testbed->broker_at(spoke).established_peer_count(), 0u);

    settle(70 * kSecond);
    EXPECT_TRUE(injector.done());
    EXPECT_EQ(injector.stats().partitions, 1u);
    EXPECT_EQ(injector.stats().partition_heals, 1u);
    EXPECT_GE(testbed->broker_at(spoke).established_peer_count(), 1u);
    EXPECT_TRUE(scenario::overlay_connected(*testbed));
}

}  // namespace
}  // namespace narada
