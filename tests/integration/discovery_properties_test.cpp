// Property-style invariants of the discovery protocol, swept over a grid
// of {topology x per-hop loss x collection window} configurations
// (parameterized gtest). Whatever the conditions, a successful discovery
// must satisfy the protocol's contracts.
#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/scenario.hpp"

namespace narada {
namespace {

struct GridPoint {
    scenario::Topology topology;
    double per_hop_loss;
    double window_ms;
    std::uint64_t seed;
};

std::string point_name(const ::testing::TestParamInfo<GridPoint>& info) {
    const GridPoint& p = info.param;
    std::string name = scenario::to_string(p.topology);
    name += "_loss" + std::to_string(static_cast<int>(p.per_hop_loss * 10000));
    name += "_win" + std::to_string(static_cast<int>(p.window_ms));
    name += "_seed" + std::to_string(p.seed);
    return name;
}

class DiscoveryGridTest : public ::testing::TestWithParam<GridPoint> {
protected:
    scenario::ScenarioOptions make_options() const {
        const GridPoint& p = GetParam();
        scenario::ScenarioOptions opts;
        opts.topology = p.topology;
        opts.per_hop_loss = p.per_hop_loss;
        opts.discovery.response_window = from_ms(p.window_ms);
        opts.seed = p.seed;
        if (p.topology == scenario::Topology::kUnconnected) {
            opts.bdn.injection = config::InjectionStrategy::kAll;
        }
        if (p.topology == scenario::Topology::kLinear) {
            opts.register_with_bdn = 1;
        }
        return opts;
    }
};

TEST_P(DiscoveryGridTest, InvariantsHold) {
    scenario::Scenario s(make_options());
    const auto report = s.run_discovery();
    if (!report.success) {
        // Failure is only legitimate when no candidate was ever received.
        EXPECT_TRUE(report.candidates.empty());
        return;
    }

    // 1. The selected broker is a member of the target set, which is a
    //    subset of the candidates, bounded by the configured size.
    ASSERT_TRUE(report.selected.has_value());
    EXPECT_NE(std::find(report.target_set.begin(), report.target_set.end(), *report.selected),
              report.target_set.end());
    EXPECT_LE(report.target_set.size(),
              static_cast<std::size_t>(s.client().config().target_set_size));
    for (std::size_t index : report.target_set) {
        EXPECT_LT(index, report.candidates.size());
    }

    // 2. Candidates are unique per broker.
    for (std::size_t i = 0; i < report.candidates.size(); ++i) {
        for (std::size_t j = i + 1; j < report.candidates.size(); ++j) {
            EXPECT_NE(report.candidates[i].response.broker_id,
                      report.candidates[j].response.broker_id);
        }
    }

    // 3. The target set is ordered by non-increasing score, and no
    //    non-member outscores a member (it is exactly the top-k).
    for (std::size_t i = 0; i + 1 < report.target_set.size(); ++i) {
        EXPECT_GE(report.candidates[report.target_set[i]].score,
                  report.candidates[report.target_set[i + 1]].score);
    }
    if (report.target_set.size() < report.candidates.size()) {
        const double worst_member =
            report.candidates[report.target_set.back()].score;
        for (std::size_t i = 0; i < report.candidates.size(); ++i) {
            if (std::find(report.target_set.begin(), report.target_set.end(), i) !=
                report.target_set.end()) {
                continue;
            }
            EXPECT_LE(report.candidates[i].score, worst_member + 1e-9);
        }
    }

    // 4. If any target answered a ping, the winner has the minimal RTT.
    const auto* chosen = report.selected_candidate();
    if (chosen->ping_rtt >= 0) {
        for (std::size_t index : report.target_set) {
            const auto& candidate = report.candidates[index];
            if (candidate.ping_rtt >= 0) {
                EXPECT_LE(chosen->ping_rtt, candidate.ping_rtt);
            }
        }
        // Ping RTTs are real round trips: non-negative and plausible.
        EXPECT_LT(chosen->ping_rtt, from_ms(500));
    }

    // 5. Delay estimates stay within the NTP error envelope: true one-way
    //    plus at most ~2x20 ms of clock error on either side.
    for (const auto& candidate : report.candidates) {
        EXPECT_GT(candidate.estimated_delay, -from_ms(45));
        EXPECT_LT(candidate.estimated_delay, from_ms(200));
    }

    // 6. Phase accounting: phases nest inside the total.
    EXPECT_GE(report.collection_duration, 0);
    EXPECT_GE(report.ping_duration, 0);
    EXPECT_LE(report.collection_duration + report.scoring_duration + report.ping_duration,
              report.total_duration + 1);

    // 7. Every broker processed the request at most once (dedup), and
    //    nobody responded more than once.
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        const auto& stats = s.plugin_at(i).stats();
        EXPECT_LE(stats.responses_sent, 1u) << "broker " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiscoveryGridTest,
    ::testing::ValuesIn([] {
        std::vector<GridPoint> points;
        const scenario::Topology topologies[] = {
            scenario::Topology::kUnconnected, scenario::Topology::kStar,
            scenario::Topology::kLinear, scenario::Topology::kFull,
            scenario::Topology::kRing,
        };
        const double losses[] = {0.0, 0.001, 0.01};
        const double windows_ms[] = {300, 4500};
        std::uint64_t seed = 1;
        for (const auto topology : topologies) {
            for (const double loss : losses) {
                for (const double window : windows_ms) {
                    points.push_back({topology, loss, window, seed += 13});
                }
            }
        }
        return points;
    }()),
    point_name);

}  // namespace
}  // namespace narada
