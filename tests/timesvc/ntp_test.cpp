#include "timesvc/ntp.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::timesvc {
namespace {

TEST(NtpEstimator, SymmetricPathExactOffset) {
    NtpEstimator est;
    // Client clock is 500 behind UTC; 100 each way.
    // t1=1000 (local), t2=1600 (utc), t3=1600, t4=1200 (local).
    est.add_sample(1000, 1600, 1600, 1200);
    ASSERT_TRUE(est.offset().has_value());
    EXPECT_EQ(*est.offset(), 500);
    EXPECT_EQ(*est.best_delay(), 200);
}

TEST(NtpEstimator, KeepsMinimumDelaySample) {
    NtpEstimator est;
    est.add_sample(0, 1000, 1000, 400);  // delay 400, offset 800
    est.add_sample(0, 600, 600, 200);    // delay 200, offset 500
    est.add_sample(0, 2000, 2000, 900);  // delay 900, offset 1550
    EXPECT_EQ(*est.offset(), 500);
    EXPECT_EQ(*est.best_delay(), 200);
    EXPECT_EQ(est.samples(), 3u);
}

TEST(NtpEstimator, EmptyHasNoOffset) {
    NtpEstimator est;
    EXPECT_FALSE(est.offset().has_value());
    EXPECT_FALSE(est.best_delay().has_value());
}

TEST(NtpEstimator, ResetClears) {
    NtpEstimator est;
    est.add_sample(0, 100, 100, 50);
    est.reset();
    EXPECT_FALSE(est.offset().has_value());
    EXPECT_EQ(est.samples(), 0u);
}

TEST(NtpEstimator, NegativeOffsetWhenClockAhead) {
    NtpEstimator est;
    // Client clock 300 ahead of UTC, symmetric 50 each way.
    // t1=1000(local)=700utc; t2=750; t3=750; t4=1100(local)=800utc.
    est.add_sample(1000, 750, 750, 1100);
    EXPECT_EQ(*est.offset(), -300);
}

struct NtpServiceFixture : ::testing::Test {
    NtpServiceFixture() : net(kernel, 11) {
        server_host = net.add_host({"time", "S", "r", 0});
        // Client clock is 1.5 s fast.
        client_host = net.add_host({"node", "S", "r", from_ms(1500)});
        net.set_link(server_host, client_host, {from_ms(8), from_ms(1), 4});
        server_ep = {server_host, 123};
        client_ep = {client_host, 5000};
        server = std::make_unique<TimeServer>(net, server_ep, net.true_clock());
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    HostId server_host{}, client_host{};
    Endpoint server_ep, client_ep;
    std::unique_ptr<TimeServer> server;
};

TEST_F(NtpServiceFixture, ConvergesWithinThreeToFiveSeconds) {
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep);
    svc.start();
    EXPECT_FALSE(svc.synchronized());
    kernel.run_until(10 * kSecond);
    ASSERT_TRUE(svc.synchronized());
    // Default schedule: 8 samples x 500 ms (§5: "3-5 seconds").
    // The estimated UTC must be close to true time despite the 1.5 s skew.
    const DurationUs error = std::abs(svc.utc_now() - net.true_clock().now());
    EXPECT_LT(error, from_ms(2.0));  // bounded by path asymmetry/jitter
}

TEST_F(NtpServiceFixture, ConvergenceTimeMatchesSchedule) {
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep);
    TimeUs synced_at = -1;
    svc.on_synchronized([&] { synced_at = kernel.now(); });
    svc.start();
    kernel.run_until(10 * kSecond);
    ASSERT_GE(synced_at, 0);
    EXPECT_GE(synced_at, 3 * kSecond);
    EXPECT_LE(synced_at, 5 * kSecond);
}

TEST_F(NtpServiceFixture, InjectedResidualShiftsEstimate) {
    NtpOptions options;
    options.injected_residual = from_ms(15);
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep, options);
    svc.start();
    kernel.run_until(10 * kSecond);
    ASSERT_TRUE(svc.synchronized());
    const DurationUs error = svc.utc_now() - net.true_clock().now();
    EXPECT_NEAR(static_cast<double>(error), static_cast<double>(from_ms(15)),
                static_cast<double>(from_ms(2)));
}

TEST_F(NtpServiceFixture, SurvivesProbeLoss) {
    net.set_per_hop_loss(0.08);  // heavy loss; some probes die
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep);
    svc.start();
    kernel.run_until(30 * kSecond);
    EXPECT_TRUE(svc.synchronized());
}

TEST_F(NtpServiceFixture, RetriesWhenServerInitiallyDead) {
    net.set_host_down(server_host, true);
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep);
    svc.start();
    kernel.run_until(6 * kSecond);
    EXPECT_FALSE(svc.synchronized());
    net.set_host_down(server_host, false);
    kernel.run_until(20 * kSecond);
    EXPECT_TRUE(svc.synchronized());
}

TEST_F(NtpServiceFixture, IgnoresMalformedAndForeignPackets) {
    NtpService svc(kernel, net, client_ep, net.host_clock(client_host), server_ep);
    svc.start();
    // Garbage from the server's address and valid-looking bytes from a
    // stranger must both be ignored without crashing.
    net.send_datagram(server_ep, client_ep, Bytes{0x72, 0x01});
    const Endpoint stranger{client_host, 999};
    net.send_datagram(stranger, client_ep, Bytes{0x72, 0, 0, 0, 1});
    kernel.run_until(10 * kSecond);
    EXPECT_TRUE(svc.synchronized());
}

TEST_F(NtpServiceFixture, FixedUtcSourcePassthrough) {
    ManualClock clock(1000);
    FixedUtcSource utc(clock, 50);
    EXPECT_TRUE(utc.synchronized());
    EXPECT_EQ(utc.utc_now(), 1050);
}

TEST_F(NtpServiceFixture, TimeServerIgnoresGarbage) {
    // Malformed requests must not crash the server or produce replies.
    net.send_datagram(client_ep, server_ep, Bytes{0x71});        // truncated
    net.send_datagram(client_ep, server_ep, Bytes{0xAA, 0xBB});  // wrong type
    kernel.run();
    EXPECT_EQ(net.stats().datagrams_delivered, 2u);  // received, no replies
}

}  // namespace
}  // namespace narada::timesvc
