// Subscription-aware routing (RoutingMode::kRouted): interest propagation
// across the overlay and selective event forwarding, versus flooding.
#include <gtest/gtest.h>

#include "broker/broker.hpp"
#include "broker/client.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::broker {
namespace {

struct RoutingFixture : ::testing::Test {
    void build(config::RoutingMode mode, int broker_count = 4) {
        config::BrokerConfig cfg;
        cfg.routing_mode = mode;
        cfg.processing_delay = from_ms(1);
        for (int i = 0; i < broker_count; ++i) {
            const HostId host = net.add_host({"h" + std::to_string(i), "S", "r", 0});
            hosts.push_back(host);
            brokers.push_back(std::make_unique<Broker>(kernel, net, Endpoint{host, 7000},
                                                       net.host_clock(host), utc, cfg,
                                                       "b" + std::to_string(i)));
        }
        client_host = net.add_host({"clients", "S", "r", 0});
        net.set_default_link({from_ms(2), 0, 2});
        for (auto& b : brokers) b->start();
    }

    void chain() {
        for (std::size_t i = 0; i + 1 < brokers.size(); ++i) {
            brokers[i]->connect_to_peer(brokers[i + 1]->endpoint());
        }
        kernel.run_until(kernel.now() + kSecond);
    }

    std::uint64_t total_forwards() const {
        std::uint64_t total = 0;
        for (const auto& b : brokers) total += b->stats().events_forwarded;
        return total;
    }

    sim::Kernel kernel;
    sim::SimNetwork net{kernel, 99};
    timesvc::FixedUtcSource utc{kernel.clock()};
    std::vector<HostId> hosts;
    std::vector<std::unique_ptr<Broker>> brokers;
    HostId client_host{};
};

TEST_F(RoutingFixture, RoutedDeliveryAcrossChain) {
    build(config::RoutingMode::kRouted);
    chain();
    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    int received = 0;
    sub.on_event([&](const Event&) { ++received; });
    sub.subscribe("news/#");
    sub.connect(brokers[3]->endpoint());  // far end
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    pub.publish("news/today", Bytes{1});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(received, 1);
    // The event crossed exactly the three chain links, no more.
    EXPECT_EQ(total_forwards(), 3u);
}

TEST_F(RoutingFixture, RoutedDropsUninterestedBranch) {
    build(config::RoutingMode::kRouted, 3);
    // Star: b0 is hub, b1/b2 leaves.
    brokers[1]->connect_to_peer(brokers[0]->endpoint());
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    sub.on_event([](const Event&) {});
    sub.subscribe("only/here");
    sub.connect(brokers[1]->endpoint());
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    pub.publish("only/here", Bytes{});
    pub.publish("nobody/cares", Bytes{});
    kernel.run_until(kernel.now() + kSecond);

    // 'only/here' forwarded hub->b1 once; 'nobody/cares' not forwarded at
    // all; b2 never ingested anything beyond its own link traffic.
    EXPECT_EQ(total_forwards(), 1u);
    EXPECT_EQ(brokers[2]->stats().events_ingested, 0u);
}

TEST_F(RoutingFixture, FloodForwardsEverywhere) {
    build(config::RoutingMode::kFlood, 3);
    brokers[1]->connect_to_peer(brokers[0]->endpoint());
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("nobody/cares", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(total_forwards(), 2u);  // hub blasted both leaves anyway
    EXPECT_EQ(brokers[2]->stats().events_ingested, 1u);
}

TEST_F(RoutingFixture, UnsubscribeWithdrawsInterest) {
    build(config::RoutingMode::kRouted, 2);
    chain();
    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    int received = 0;
    sub.on_event([&](const Event&) { ++received; });
    sub.subscribe("t/x");
    sub.connect(brokers[1]->endpoint());
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    pub.publish("t/x", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(received, 1);

    sub.unsubscribe("t/x");
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("t/x", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(received, 1);            // nothing new delivered
    EXPECT_EQ(total_forwards(), 1u);   // and nothing new forwarded
}

TEST_F(RoutingFixture, DisconnectWithdrawsInterest) {
    build(config::RoutingMode::kRouted, 2);
    chain();
    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    sub.on_event([](const Event&) {});
    sub.subscribe("t/x");
    sub.connect(brokers[1]->endpoint());
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    sub.disconnect();
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("t/x", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(total_forwards(), 0u);
}

TEST_F(RoutingFixture, LateLinkLearnsExistingInterests) {
    build(config::RoutingMode::kRouted, 3);
    // Only b0-b1 linked initially; the subscriber sits on b1.
    brokers[1]->connect_to_peer(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    int received = 0;
    sub.on_event([&](const Event&) { ++received; });
    sub.subscribe("late/topic");
    sub.connect(brokers[1]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    // b2 joins afterwards; the summary exchange must teach it the route.
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    pub.connect(brokers[2]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("late/topic", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(received, 1);
}

TEST_F(RoutingFixture, CyclicOverlayIsSafeAndDeliversOnce) {
    build(config::RoutingMode::kRouted, 3);
    brokers[0]->connect_to_peer(brokers[1]->endpoint());
    brokers[1]->connect_to_peer(brokers[2]->endpoint());
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);

    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    int received = 0;
    sub.on_event([&](const Event&) { ++received; });
    sub.subscribe("ring/t");
    sub.connect(brokers[2]->endpoint());
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("ring/t", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(received, 1);  // event dedup still guards the cycle
}

TEST_F(RoutingFixture, PluginInterestKeepsEventsFlowing) {
    build(config::RoutingMode::kRouted, 2);
    struct Probe final : BrokerPlugin {
        void on_attach(Broker& b) override { b.add_plugin_interest("probe/#"); }
        void on_event(const Event& e) override {
            if (e.topic == "probe/data") ++hits;
        }
        int hits = 0;
    } probe;
    brokers[1]->add_plugin(&probe);
    chain();

    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    pub.connect(brokers[0]->endpoint());
    kernel.run_until(kernel.now() + kSecond);
    pub.publish("probe/data", Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(probe.hits, 1);
}

}  // namespace
}  // namespace narada::broker
