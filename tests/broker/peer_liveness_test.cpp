// Peer-link liveness: brokers heartbeat their peers and shed dead links
// (§1.2's fluid broker network).
#include <gtest/gtest.h>

#include "broker/broker.hpp"
#include "broker/client.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::broker {
namespace {

struct LivenessFixture : ::testing::Test {
    LivenessFixture() : net(kernel, 404), utc(kernel.clock()) {
        config::BrokerConfig cfg;
        cfg.processing_delay = from_ms(1);
        cfg.peer_heartbeat_interval = from_ms(500);
        cfg.peer_max_missed = 2;
        for (int i = 0; i < 3; ++i) {
            const HostId host = net.add_host({"h" + std::to_string(i), "S", "r", 0});
            hosts.push_back(host);
            brokers.push_back(std::make_unique<Broker>(kernel, net, Endpoint{host, 7000},
                                                       net.host_clock(host), utc, cfg,
                                                       "b" + std::to_string(i)));
        }
        net.set_default_link({from_ms(2), 0, 2});
        brokers[1]->connect_to_peer(brokers[0]->endpoint());
        brokers[2]->connect_to_peer(brokers[0]->endpoint());
        for (auto& b : brokers) b->start();
        kernel.run_until(kernel.now() + kSecond);
    }

    void settle(DurationUs d) { kernel.run_until(kernel.now() + d); }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    std::vector<HostId> hosts;
    std::vector<std::unique_ptr<Broker>> brokers;
};

TEST_F(LivenessFixture, HealthyLinksStayUp) {
    settle(20 * kSecond);
    EXPECT_EQ(brokers[0]->peers().size(), 2u);
    EXPECT_EQ(brokers[0]->stats().peers_dropped, 0u);
}

TEST_F(LivenessFixture, DeadPeerIsShed) {
    ASSERT_EQ(brokers[0]->peers().size(), 2u);
    net.set_host_down(hosts[2], true);
    settle(5 * kSecond);  // several heartbeat rounds
    EXPECT_EQ(brokers[0]->peers().size(), 1u);
    EXPECT_EQ(brokers[0]->peers()[0], brokers[1]->endpoint());
    EXPECT_EQ(brokers[0]->stats().peers_dropped, 1u);
}

TEST_F(LivenessFixture, NoForwardingToDroppedPeer) {
    net.set_host_down(hosts[2], true);
    settle(5 * kSecond);
    const std::uint64_t before = brokers[0]->stats().events_forwarded;

    Event event;
    event.topic = "after/drop";
    brokers[0]->publish(event);
    settle(kSecond);
    // Forwarded only to the surviving peer.
    EXPECT_EQ(brokers[0]->stats().events_forwarded, before + 1);
}

TEST_F(LivenessFixture, RevivedBrokerRejoinsExplicitly) {
    net.set_host_down(hosts[2], true);
    settle(5 * kSecond);
    ASSERT_EQ(brokers[0]->peers().size(), 1u);

    net.set_host_down(hosts[2], false);
    // Rejoining is explicit (as with a real broker restart): reconnect.
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    settle(kSecond);
    EXPECT_EQ(brokers[0]->peers().size(), 2u);
}

TEST_F(LivenessFixture, RoutedInterestsRelearnedAfterRejoin) {
    // Routed-mode variant: dropping the link purges its interest table;
    // rejoining restores routing via the summary exchange.
    config::BrokerConfig cfg;
    cfg.processing_delay = from_ms(1);
    cfg.peer_heartbeat_interval = from_ms(500);
    cfg.peer_max_missed = 2;
    cfg.routing_mode = config::RoutingMode::kRouted;
    std::vector<std::unique_ptr<Broker>> routed;
    for (int i = 0; i < 2; ++i) {
        const HostId host = net.add_host({"r" + std::to_string(i), "S", "r", 0});
        hosts.push_back(host);
        routed.push_back(std::make_unique<Broker>(kernel, net, Endpoint{host, 7100},
                                                  net.host_clock(host), utc, cfg,
                                                  "r" + std::to_string(i)));
        routed.back()->start();
    }
    routed[1]->connect_to_peer(routed[0]->endpoint());
    const HostId client_host = net.add_host({"c", "S", "r", 0});
    PubSubClient sub(kernel, net, Endpoint{client_host, 8000});
    PubSubClient pub(kernel, net, Endpoint{client_host, 8001});
    int received = 0;
    sub.on_event([&](const Event&) { ++received; });
    sub.subscribe("routed/t");
    sub.connect(routed[1]->endpoint());
    pub.connect(routed[0]->endpoint());
    settle(kSecond);
    pub.publish("routed/t", Bytes{});
    settle(kSecond);
    ASSERT_EQ(received, 1);

    // r1's host dies long enough for r0 to shed the link, then revives.
    net.set_host_down(routed[1]->endpoint().host, true);
    settle(5 * kSecond);
    EXPECT_TRUE(routed[0]->peers().empty());
    net.set_host_down(routed[1]->endpoint().host, false);
    routed[1]->connect_to_peer(routed[0]->endpoint());
    settle(2 * kSecond);

    pub.publish("routed/t", Bytes{});
    settle(kSecond);
    EXPECT_EQ(received, 2);  // interest summary restored the route
}

}  // namespace
}  // namespace narada::broker
