#include "broker/subscription_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "broker/topic.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace narada::broker {
namespace {

bool contains(const std::vector<SubscriberToken>& v, SubscriberToken t) {
    return std::find(v.begin(), v.end(), t) != v.end();
}

TEST(SubscriptionTable, ExactMatch) {
    SubscriptionTable table;
    EXPECT_TRUE(table.subscribe("a/b", 1));
    EXPECT_TRUE(contains(table.match("a/b"), 1));
    EXPECT_TRUE(table.match("a/c").empty());
    EXPECT_TRUE(table.match("a").empty());
    EXPECT_TRUE(table.match("a/b/c").empty());
}

TEST(SubscriptionTable, RejectsInvalidFilter) {
    SubscriptionTable table;
    EXPECT_FALSE(table.subscribe("", 1));
    EXPECT_FALSE(table.subscribe("a//b", 1));
    EXPECT_FALSE(table.subscribe("a/#/b", 1));
    EXPECT_EQ(table.filter_count(), 0u);
}

TEST(SubscriptionTable, WildcardMatches) {
    SubscriptionTable table;
    table.subscribe("a/*/c", 1);
    table.subscribe("a/#", 2);
    table.subscribe("#", 3);
    const auto m = table.match("a/b/c");
    EXPECT_TRUE(contains(m, 1));
    EXPECT_TRUE(contains(m, 2));
    EXPECT_TRUE(contains(m, 3));
    const auto m2 = table.match("x/y");
    EXPECT_FALSE(contains(m2, 1));
    EXPECT_FALSE(contains(m2, 2));
    EXPECT_TRUE(contains(m2, 3));
}

TEST(SubscriptionTable, MultiWildcardMatchesZeroSegments) {
    SubscriptionTable table;
    table.subscribe("a/#", 1);
    EXPECT_TRUE(contains(table.match("a"), 1));
}

TEST(SubscriptionTable, DistinctTokensDeduplicated) {
    SubscriptionTable table;
    table.subscribe("a/b", 1);
    table.subscribe("a/*", 1);
    table.subscribe("a/#", 1);
    const auto m = table.match("a/b");
    EXPECT_EQ(m.size(), 1u);  // one token, many matching filters
}

TEST(SubscriptionTable, SubscribeIdempotent) {
    SubscriptionTable table;
    EXPECT_TRUE(table.subscribe("a/b", 1));
    EXPECT_TRUE(table.subscribe("a/b", 1));
    EXPECT_EQ(table.filter_count(), 1u);
}

TEST(SubscriptionTable, Unsubscribe) {
    SubscriptionTable table;
    table.subscribe("a/b", 1);
    table.subscribe("a/b", 2);
    EXPECT_TRUE(table.unsubscribe("a/b", 1));
    EXPECT_FALSE(contains(table.match("a/b"), 1));
    EXPECT_TRUE(contains(table.match("a/b"), 2));
    EXPECT_FALSE(table.unsubscribe("a/b", 1));  // already removed
    EXPECT_FALSE(table.unsubscribe("x/y", 9));  // never existed
}

TEST(SubscriptionTable, UnsubscribeWildcards) {
    SubscriptionTable table;
    table.subscribe("a/*/c", 1);
    table.subscribe("a/#", 1);
    EXPECT_TRUE(table.unsubscribe("a/*/c", 1));
    EXPECT_TRUE(contains(table.match("a/b/c"), 1));  // '#' still matches
    EXPECT_TRUE(table.unsubscribe("a/#", 1));
    EXPECT_TRUE(table.match("a/b/c").empty());
    EXPECT_EQ(table.filter_count(), 0u);
}

TEST(SubscriptionTable, RemoveSubscriberEverywhere) {
    SubscriptionTable table;
    table.subscribe("a/b", 1);
    table.subscribe("c/*", 1);
    table.subscribe("d/#", 1);
    table.subscribe("a/b", 2);
    table.remove_subscriber(1);
    EXPECT_TRUE(table.match("c/x").empty());
    EXPECT_TRUE(table.match("d/y").empty());
    EXPECT_TRUE(contains(table.match("a/b"), 2));
    EXPECT_EQ(table.filter_count(), 1u);
}

TEST(SubscriptionTable, PruningKeepsTableConsistent) {
    SubscriptionTable table;
    // Build and tear down a deep filter; an unrelated sibling must survive.
    table.subscribe("a/b/c/d/e", 1);
    table.subscribe("a/b/x", 2);
    EXPECT_TRUE(table.unsubscribe("a/b/c/d/e", 1));
    EXPECT_TRUE(contains(table.match("a/b/x"), 2));
    EXPECT_TRUE(table.match("a/b/c/d/e").empty());
}

TEST(SubscriptionTable, MatchesSubscriberHelper) {
    SubscriptionTable table;
    table.subscribe("a/#", 7);
    EXPECT_TRUE(table.matches_subscriber("a/b", 7));
    EXPECT_FALSE(table.matches_subscriber("b/a", 7));
    EXPECT_FALSE(table.matches_subscriber("a/b", 8));
}

// Property test: the trie must agree with brute-force topic_matches over
// randomized filters and topics.
TEST(SubscriptionTable, AgreesWithBruteForce) {
    Rng rng(2024);
    const std::vector<std::string> alphabet = {"a", "b", "c"};
    auto random_segments = [&](bool filter) {
        const int n = static_cast<int>(rng.bounded(4)) + 1;
        std::vector<std::string> segs;
        for (int i = 0; i < n; ++i) {
            const auto roll = rng.bounded(filter ? 6 : 3);
            if (filter && roll == 4) {
                segs.push_back("*");
            } else if (filter && roll == 5 && i == n - 1) {
                segs.push_back("#");
            } else {
                segs.push_back(alphabet[roll % alphabet.size()]);
            }
        }
        return segs;
    };

    for (int iteration = 0; iteration < 300; ++iteration) {
        SubscriptionTable table;
        std::vector<std::pair<std::string, SubscriberToken>> filters;
        for (SubscriberToken t = 1; t <= 8; ++t) {
            const std::string filter = join(random_segments(true), '/');
            if (table.subscribe(filter, t)) filters.emplace_back(filter, t);
        }
        for (int q = 0; q < 10; ++q) {
            const std::string topic = join(random_segments(false), '/');
            const auto matched = table.match(topic);
            for (const auto& [filter, token] : filters) {
                const bool expected = topic_matches(filter, topic);
                EXPECT_EQ(contains(matched, token), expected)
                    << "filter=" << filter << " topic=" << topic;
            }
        }
    }
}

}  // namespace
}  // namespace narada::broker
