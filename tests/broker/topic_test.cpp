#include "broker/topic.hpp"

#include <gtest/gtest.h>

namespace narada::broker {
namespace {

TEST(Topic, SegmentsSplit) {
    const auto segs = topic_segments("Services/BrokerDiscoveryNodes/BrokerAdvertisement");
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], "Services");
    EXPECT_EQ(segs[2], "BrokerAdvertisement");
}

TEST(Topic, ValidTopics) {
    EXPECT_TRUE(is_valid_topic("a"));
    EXPECT_TRUE(is_valid_topic("a/b/c"));
    EXPECT_TRUE(is_valid_topic(kBrokerAdvertisementTopic));
    EXPECT_TRUE(is_valid_topic(kDiscoveryRequestTopic));
}

TEST(Topic, InvalidTopics) {
    EXPECT_FALSE(is_valid_topic(""));
    EXPECT_FALSE(is_valid_topic("/a"));
    EXPECT_FALSE(is_valid_topic("a/"));
    EXPECT_FALSE(is_valid_topic("a//b"));
    EXPECT_FALSE(is_valid_topic("a/*/b"));  // wildcard not allowed in topics
    EXPECT_FALSE(is_valid_topic("a/#"));
}

TEST(Topic, ValidFilters) {
    EXPECT_TRUE(is_valid_filter("a/b"));
    EXPECT_TRUE(is_valid_filter("a/*/c"));
    EXPECT_TRUE(is_valid_filter("a/#"));
    EXPECT_TRUE(is_valid_filter("#"));
    EXPECT_TRUE(is_valid_filter("*"));
}

TEST(Topic, InvalidFilters) {
    EXPECT_FALSE(is_valid_filter(""));
    EXPECT_FALSE(is_valid_filter("a/#/b"));  // '#' must be final
    EXPECT_FALSE(is_valid_filter("a//b"));
    EXPECT_FALSE(is_valid_filter("/a"));
}

struct MatchCase {
    const char* filter;
    const char* topic;
    bool expected;
};

class TopicMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatchTest, Matches) {
    const MatchCase& c = GetParam();
    EXPECT_EQ(topic_matches(c.filter, c.topic), c.expected)
        << c.filter << " vs " << c.topic;
}

INSTANTIATE_TEST_SUITE_P(
    MatchMatrix, TopicMatchTest,
    ::testing::Values(
        // Exact matching.
        MatchCase{"a/b/c", "a/b/c", true},
        MatchCase{"a/b/c", "a/b", false},
        MatchCase{"a/b", "a/b/c", false},
        MatchCase{"a", "a", true},
        MatchCase{"a", "b", false},
        // Single-segment wildcard.
        MatchCase{"a/*/c", "a/b/c", true},
        MatchCase{"a/*/c", "a/x/c", true},
        MatchCase{"a/*/c", "a/b/d", false},
        MatchCase{"a/*/c", "a/c", false},
        MatchCase{"*", "a", true},
        MatchCase{"*", "a/b", false},
        MatchCase{"*/b", "a/b", true},
        MatchCase{"a/*", "a/b", true},
        MatchCase{"a/*", "a", false},
        // Multi-segment wildcard.
        MatchCase{"#", "a", true},
        MatchCase{"#", "a/b/c/d", true},
        MatchCase{"a/#", "a/b", true},
        MatchCase{"a/#", "a/b/c", true},
        MatchCase{"a/#", "a", true},  // '#' matches zero segments
        MatchCase{"a/#", "b/c", false},
        MatchCase{"a/*/#", "a/b", true},
        MatchCase{"a/*/#", "a", false},
        // Paper topics.
        MatchCase{"Services/#", "Services/BrokerDiscoveryNodes/BrokerAdvertisement", true},
        MatchCase{"Services/*/BrokerAdvertisement",
                  "Services/BrokerDiscoveryNodes/BrokerAdvertisement", true},
        MatchCase{"Services/*/BrokerAdvertisement",
                  "Services/BrokerDiscoveryNodes/DiscoveryRequest", false}));

}  // namespace
}  // namespace narada::broker
