#include "broker/broker.hpp"

#include <gtest/gtest.h>

#include "broker/client.hpp"
#include "broker/topic.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::broker {
namespace {

struct BrokerFixture : ::testing::Test {
    BrokerFixture() : net(kernel, 5), utc(kernel.clock()) {
        for (int i = 0; i < 4; ++i) {
            hosts.push_back(net.add_host({"h" + std::to_string(i), "S", "realm", 0}));
        }
        net.set_default_link({from_ms(2), 0, 2});
        config::BrokerConfig cfg;
        cfg.processing_delay = from_ms(1);
        // These tests drain the kernel to empty; periodic peer heartbeats
        // would keep it busy forever.
        cfg.peer_heartbeat_interval = 0;
        for (int i = 0; i < 3; ++i) {
            brokers.push_back(std::make_unique<Broker>(
                kernel, net, Endpoint{hosts[i], 7000}, net.host_clock(hosts[i]), utc, cfg,
                "b" + std::to_string(i)));
            brokers.back()->start();
        }
    }

    PubSubClient make_client(std::uint16_t port = 8000) {
        return PubSubClient(kernel, net, Endpoint{hosts[3], port});
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    std::vector<HostId> hosts;
    std::vector<std::unique_ptr<Broker>> brokers;
};

TEST_F(BrokerFixture, ClientConnectHandshake) {
    PubSubClient client = make_client();
    bool connected = false;
    client.on_connected([&] { connected = true; });
    client.connect(brokers[0]->endpoint());
    kernel.run();
    EXPECT_TRUE(connected);
    EXPECT_TRUE(client.connected());
    EXPECT_EQ(brokers[0]->clients().size(), 1u);
}

TEST_F(BrokerFixture, PublishDeliversToLocalSubscriber) {
    PubSubClient alice = make_client(8000);
    PubSubClient bob = make_client(8001);
    std::vector<Event> seen;
    bob.on_event([&](const Event& e) { seen.push_back(e); });
    alice.connect(brokers[0]->endpoint());
    bob.connect(brokers[0]->endpoint());
    bob.subscribe("news/sports");
    kernel.run();
    alice.publish("news/sports", Bytes{1, 2});
    alice.publish("news/politics", Bytes{3});
    kernel.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].topic, "news/sports");
    EXPECT_EQ(seen[0].payload, (Bytes{1, 2}));
}

TEST_F(BrokerFixture, WildcardSubscriptionDelivers) {
    PubSubClient alice = make_client(8000);
    PubSubClient bob = make_client(8001);
    int count = 0;
    bob.on_event([&](const Event&) { ++count; });
    alice.connect(brokers[0]->endpoint());
    bob.connect(brokers[0]->endpoint());
    bob.subscribe("news/#");
    kernel.run();
    alice.publish("news/sports", Bytes{});
    alice.publish("news/politics/us", Bytes{});
    alice.publish("weather/today", Bytes{});
    kernel.run();
    EXPECT_EQ(count, 2);
}

TEST_F(BrokerFixture, EventsFloodAcrossLinkedBrokers) {
    // b0 - b1 - b2 chain; publisher on b0, subscriber on b2.
    brokers[1]->connect_to_peer(brokers[0]->endpoint());
    brokers[2]->connect_to_peer(brokers[1]->endpoint());
    kernel.run();
    EXPECT_EQ(brokers[1]->peers().size(), 2u);

    PubSubClient alice = make_client(8000);
    PubSubClient carol = make_client(8001);
    int count = 0;
    carol.on_event([&](const Event&) { ++count; });
    alice.connect(brokers[0]->endpoint());
    carol.connect(brokers[2]->endpoint());
    carol.subscribe("chain/topic");
    kernel.run();
    alice.publish("chain/topic", Bytes{42});
    kernel.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(brokers[2]->stats().events_delivered, 1u);
}

TEST_F(BrokerFixture, FloodDuplicatesSuppressedInCycle) {
    // Triangle: every broker links to the others; each event must be
    // ingested exactly once per broker despite multiple arrival paths.
    brokers[0]->connect_to_peer(brokers[1]->endpoint());
    brokers[1]->connect_to_peer(brokers[2]->endpoint());
    brokers[2]->connect_to_peer(brokers[0]->endpoint());
    kernel.run();

    Event event;
    event.topic = "loop/test";
    brokers[0]->publish(event);
    kernel.run();
    EXPECT_EQ(brokers[0]->stats().events_ingested, 1u);
    EXPECT_EQ(brokers[1]->stats().events_ingested, 1u);
    EXPECT_EQ(brokers[2]->stats().events_ingested, 1u);
    EXPECT_GT(brokers[0]->stats().duplicates_suppressed +
                  brokers[1]->stats().duplicates_suppressed +
                  brokers[2]->stats().duplicates_suppressed,
              0u);
}

TEST_F(BrokerFixture, TtlBoundsPropagation) {
    brokers[0]->connect_to_peer(brokers[1]->endpoint());
    brokers[1]->connect_to_peer(brokers[2]->endpoint());
    kernel.run();
    Event event;
    event.topic = "ttl/test";
    event.ttl = 2;  // reaches b1 (ttl 2 -> forwards with 1) but b1 stops
    brokers[0]->publish(event);
    kernel.run();
    EXPECT_EQ(brokers[1]->stats().events_ingested, 1u);
    EXPECT_EQ(brokers[2]->stats().events_ingested, 0u);
}

TEST_F(BrokerFixture, PingAnsweredWithEcho) {
    struct PongCatcher final : transport::MessageHandler {
        void on_datagram(const Endpoint&, const Bytes& data) override {
            wire::ByteReader r(data);
            EXPECT_EQ(r.u8(), wire::kMsgPong);
            echoed = r.i64();
            utc = r.i64();
            ++pongs;
        }
        TimeUs echoed = -1;
        TimeUs utc = -1;
        int pongs = 0;
    } catcher;
    const Endpoint me{hosts[3], 9100};
    net.bind(me, &catcher);
    wire::ByteWriter w;
    w.u8(wire::kMsgPing);
    w.i64(123456);
    net.send_datagram(me, brokers[0]->endpoint(), w.take());
    kernel.run();
    EXPECT_EQ(catcher.pongs, 1);
    EXPECT_EQ(catcher.echoed, 123456);
    EXPECT_GE(catcher.utc, 0);
    EXPECT_EQ(brokers[0]->stats().pings_answered, 1u);
}

TEST_F(BrokerFixture, MetricsReflectConnectionsAndLoadModel) {
    PubSubClient alice = make_client(8000);
    alice.connect(brokers[0]->endpoint());
    brokers[0]->connect_to_peer(brokers[1]->endpoint());
    kernel.run();
    auto load = std::make_shared<StaticLoadModel>(0.7, 1024ull << 20, 256ull << 20);
    brokers[0]->set_load_model(load);
    const UsageMetrics m = brokers[0]->metrics();
    EXPECT_EQ(m.connections, 2u);  // one client + one peer
    EXPECT_EQ(m.broker_links, 1u);
    EXPECT_DOUBLE_EQ(m.cpu_load, 0.7);
    EXPECT_EQ(m.total_memory, 1024ull << 20);
    EXPECT_EQ(m.free_memory, 256ull << 20);
}

TEST_F(BrokerFixture, ClientByeRemovesSubscriptions) {
    PubSubClient alice = make_client(8000);
    PubSubClient bob = make_client(8001);
    int count = 0;
    bob.on_event([&](const Event&) { ++count; });
    alice.connect(brokers[0]->endpoint());
    bob.connect(brokers[0]->endpoint());
    bob.subscribe("t/x");
    kernel.run();
    bob.disconnect();
    kernel.run();
    alice.publish("t/x", Bytes{});
    kernel.run();
    EXPECT_EQ(count, 0);
    EXPECT_EQ(brokers[0]->clients().size(), 1u);  // alice remains
}

TEST_F(BrokerFixture, ResubscribeOnReconnect) {
    PubSubClient alice = make_client(8000);
    PubSubClient bob = make_client(8001);
    int count = 0;
    bob.on_event([&](const Event&) { ++count; });
    bob.subscribe("t/x");  // subscribe before ever connecting
    alice.connect(brokers[0]->endpoint());
    bob.connect(brokers[0]->endpoint());
    kernel.run();
    bob.disconnect();
    kernel.run();
    bob.connect(brokers[1]->endpoint());  // move to another broker
    kernel.run();
    brokers[0]->connect_to_peer(brokers[1]->endpoint());
    kernel.run();
    alice.publish("t/x", Bytes{});
    kernel.run();
    EXPECT_EQ(count, 1);  // subscription replayed at the new broker
}

TEST_F(BrokerFixture, MalformedMessagesCounted) {
    net.send_datagram(Endpoint{hosts[3], 9000}, brokers[0]->endpoint(),
                      Bytes{wire::kMsgPublish});  // truncated publish
    net.send_datagram(Endpoint{hosts[3], 9000}, brokers[0]->endpoint(), Bytes{});
    kernel.run();
    // Empty datagram and truncated publish are both dropped gracefully.
    EXPECT_GE(brokers[0]->stats().malformed_dropped, 1u);
}

TEST_F(BrokerFixture, PublishFromUnknownClientIgnored) {
    Event event;
    event.topic = "t/x";
    event.id = Uuid::from_halves(1, 2);
    wire::ByteWriter w;
    w.u8(wire::kMsgPublish);
    event.encode(w);
    net.send_datagram(Endpoint{hosts[3], 9000}, brokers[0]->endpoint(), w.take());
    kernel.run();
    EXPECT_EQ(brokers[0]->stats().events_ingested, 0u);
}

TEST_F(BrokerFixture, PluginSeesEventsAndMessages) {
    struct Probe final : BrokerPlugin {
        void on_attach(Broker& b) override { broker = &b; }
        void on_start() override { started = true; }
        bool on_message(const Endpoint&, std::uint8_t type, wire::ByteReader&,
                        bool) override {
            if (type == 0x77) {
                ++custom_messages;
                return true;
            }
            return false;
        }
        void on_event(const Event& e) override { topics.push_back(e.topic); }
        Broker* broker = nullptr;
        bool started = false;
        int custom_messages = 0;
        std::vector<std::string> topics;
    } probe;

    brokers[0]->add_plugin(&probe);
    EXPECT_EQ(probe.broker, brokers[0].get());
    EXPECT_TRUE(probe.started);  // broker already started

    Event event;
    event.topic = "plugin/topic";
    brokers[0]->publish(event);
    net.send_datagram(Endpoint{hosts[3], 9000}, brokers[0]->endpoint(), Bytes{0x77});
    kernel.run();
    ASSERT_EQ(probe.topics.size(), 1u);
    EXPECT_EQ(probe.topics[0], "plugin/topic");
    EXPECT_EQ(probe.custom_messages, 1);
}

TEST_F(BrokerFixture, EventCodecRoundTrip) {
    Event event;
    event.id = Uuid::from_halves(3, 4);
    event.topic = "a/b/c";
    event.payload = Bytes{9, 8, 7};
    event.headers = {{"key", "value"}, {"source", "test"}};
    event.ttl = 5;
    wire::ByteWriter w;
    event.encode(w);
    wire::ByteReader r(w.bytes());
    const Event decoded = Event::decode(r);
    EXPECT_EQ(decoded, event);
    EXPECT_TRUE(r.at_end());
}

TEST_F(BrokerFixture, ConnectionDrivenLoadModel) {
    ConnectionDrivenLoadModel model(0.1, 0.05, 1000, 10);
    model.set_connections(4);
    EXPECT_NEAR(model.cpu_load(), 0.3, 1e-12);
    EXPECT_EQ(model.free_memory(), 960u);
    model.set_connections(200);
    EXPECT_DOUBLE_EQ(model.cpu_load(), 1.0);  // clamped
    EXPECT_EQ(model.free_memory(), 0u);       // clamped
}

}  // namespace
}  // namespace narada::broker
