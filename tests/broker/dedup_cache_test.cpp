#include "broker/dedup_cache.hpp"

#include <gtest/gtest.h>

namespace narada::broker {
namespace {

Uuid make_id(std::uint64_t n) { return Uuid::from_halves(n, n * 31); }

TEST(DedupCache, FirstInsertIsNew) {
    DedupCache cache(10);
    EXPECT_TRUE(cache.insert(make_id(1)));
    EXPECT_FALSE(cache.insert(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(1)));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(DedupCache, EvictsOldestBeyondCapacity) {
    DedupCache cache(3);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(cache.insert(make_id(i)));
    EXPECT_EQ(cache.size(), 3u);
    // The two oldest were evicted and count as new again.
    EXPECT_FALSE(cache.contains(make_id(0)));
    EXPECT_FALSE(cache.contains(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(2)));
    EXPECT_TRUE(cache.contains(make_id(4)));
    EXPECT_TRUE(cache.insert(make_id(0)));
}

TEST(DedupCache, PaperDefaultSize) {
    // "Every broker keeps track of the last 1000 broker discovery requests"
    // (§4).
    DedupCache cache;
    EXPECT_EQ(cache.capacity(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) cache.insert(make_id(i));
    EXPECT_TRUE(cache.contains(make_id(0)));
    cache.insert(make_id(1000));
    EXPECT_FALSE(cache.contains(make_id(0)));  // strictly the last 1000
    EXPECT_TRUE(cache.contains(make_id(1)));
}

TEST(DedupCache, ZeroCapacityDisablesCaching) {
    DedupCache cache(0);
    EXPECT_TRUE(cache.insert(make_id(7)));
    EXPECT_TRUE(cache.insert(make_id(7)));  // everything looks new
    EXPECT_EQ(cache.size(), 0u);
}

TEST(DedupCache, DuplicateInsertDoesNotRefreshPosition) {
    DedupCache cache(2);
    cache.insert(make_id(1));
    cache.insert(make_id(2));
    cache.insert(make_id(1));  // duplicate; must NOT move 1 to the front
    cache.insert(make_id(3));  // evicts 1 (the oldest)
    EXPECT_FALSE(cache.contains(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(2)));
    EXPECT_TRUE(cache.contains(make_id(3)));
}

TEST(DedupCache, Clear) {
    DedupCache cache(5);
    cache.insert(make_id(1));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.insert(make_id(1)));
}

}  // namespace
}  // namespace narada::broker
