#include "broker/dedup_cache.hpp"

#include <gtest/gtest.h>

namespace narada::broker {
namespace {

Uuid make_id(std::uint64_t n) { return Uuid::from_halves(n, n * 31); }

TEST(DedupCache, FirstInsertIsNew) {
    DedupCache cache(10);
    EXPECT_TRUE(cache.insert(make_id(1)));
    EXPECT_FALSE(cache.insert(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(1)));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(DedupCache, EvictsOldestBeyondCapacity) {
    DedupCache cache(3);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(cache.insert(make_id(i)));
    EXPECT_EQ(cache.size(), 3u);
    // The two oldest were evicted and count as new again.
    EXPECT_FALSE(cache.contains(make_id(0)));
    EXPECT_FALSE(cache.contains(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(2)));
    EXPECT_TRUE(cache.contains(make_id(4)));
    EXPECT_TRUE(cache.insert(make_id(0)));
}

TEST(DedupCache, PaperDefaultSize) {
    // "Every broker keeps track of the last 1000 broker discovery requests"
    // (§4).
    DedupCache cache;
    EXPECT_EQ(cache.capacity(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) cache.insert(make_id(i));
    EXPECT_TRUE(cache.contains(make_id(0)));
    cache.insert(make_id(1000));
    EXPECT_FALSE(cache.contains(make_id(0)));  // strictly the last 1000
    EXPECT_TRUE(cache.contains(make_id(1)));
}

TEST(DedupCache, ZeroCapacityDisablesCaching) {
    DedupCache cache(0);
    EXPECT_TRUE(cache.insert(make_id(7)));
    EXPECT_TRUE(cache.insert(make_id(7)));  // everything looks new
    EXPECT_EQ(cache.size(), 0u);
}

TEST(DedupCache, DuplicateInsertDoesNotRefreshPosition) {
    DedupCache cache(2);
    cache.insert(make_id(1));
    cache.insert(make_id(2));
    cache.insert(make_id(1));  // duplicate; must NOT move 1 to the front
    cache.insert(make_id(3));  // evicts 1 (the oldest)
    EXPECT_FALSE(cache.contains(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(2)));
    EXPECT_TRUE(cache.contains(make_id(3)));
}

TEST(DedupCache, InsertAtExactCapacityKeepsAllEntries) {
    // Boundary audit: filling to exactly `capacity` must evict nothing —
    // eviction triggers strictly beyond capacity, not at it.
    DedupCache cache(4);
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.insert(make_id(i)));
    EXPECT_EQ(cache.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.contains(make_id(i)));
    // The very next insert evicts exactly one entry: the oldest.
    EXPECT_TRUE(cache.insert(make_id(4)));
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_FALSE(cache.contains(make_id(0)));
    EXPECT_TRUE(cache.contains(make_id(1)));
}

TEST(DedupCache, DuplicateAtCapacityEvictsNothing) {
    DedupCache cache(3);
    for (std::uint64_t i = 0; i < 3; ++i) cache.insert(make_id(i));
    // A duplicate at capacity is a no-op: no eviction, no reorder.
    EXPECT_FALSE(cache.insert(make_id(0)));
    EXPECT_EQ(cache.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) EXPECT_TRUE(cache.contains(make_id(i)));
}

TEST(DedupCache, ReinsertAfterEvictionIsNewAndEvictsNextOldest) {
    DedupCache cache(2);
    cache.insert(make_id(1));
    cache.insert(make_id(2));
    cache.insert(make_id(3));  // evicts 1
    EXPECT_FALSE(cache.contains(make_id(1)));
    // Re-inserting the evicted id is "new" again and pushes out the now
    // oldest entry (2), never a newer one.
    EXPECT_TRUE(cache.insert(make_id(1)));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.contains(make_id(2)));
    EXPECT_TRUE(cache.contains(make_id(3)));
    EXPECT_TRUE(cache.contains(make_id(1)));
}

TEST(DedupCache, CapacityOneKeepsOnlyNewest) {
    DedupCache cache(1);
    EXPECT_TRUE(cache.insert(make_id(1)));
    EXPECT_FALSE(cache.insert(make_id(1)));
    EXPECT_TRUE(cache.insert(make_id(2)));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_FALSE(cache.contains(make_id(1)));
    EXPECT_TRUE(cache.contains(make_id(2)));
}

TEST(DedupCache, Clear) {
    DedupCache cache(5);
    cache.insert(make_id(1));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.insert(make_id(1)));
}

}  // namespace
}  // namespace narada::broker
