// Reliable delivery with replays (paper §1, ref [5]) over the pub/sub
// substrate on the simulated network.
#include "services/reliable_delivery.hpp"

#include <gtest/gtest.h>

#include "broker/broker.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::services {
namespace {

struct ReliableFixture : ::testing::Test {
    ReliableFixture() : net(kernel, 55), utc(kernel.clock()) {
        host_a = net.add_host({"a", "S", "r", 0});
        host_b = net.add_host({"b", "S", "r", 0});
        net.set_default_link({from_ms(2), 0, 2});
        config::BrokerConfig cfg;
        cfg.processing_delay = from_ms(1);
        broker_a = std::make_unique<broker::Broker>(kernel, net, Endpoint{host_a, 7000},
                                                    net.host_clock(host_a), utc, cfg, "a");
        broker_b = std::make_unique<broker::Broker>(kernel, net, Endpoint{host_b, 7000},
                                                    net.host_clock(host_b), utc, cfg, "b");
        broker_b->connect_to_peer(broker_a->endpoint());
        broker_a->start();
        broker_b->start();

        pub_client = std::make_unique<broker::PubSubClient>(kernel, net,
                                                            Endpoint{host_a, 8000});
        sub_client = std::make_unique<broker::PubSubClient>(kernel, net,
                                                            Endpoint{host_b, 8000});
        publisher = std::make_unique<ReliablePublisher>(*pub_client, "stream/data", 64);
        consumer = std::make_unique<ReliableConsumer>(*sub_client, "stream/data");

        publisher->start();
        consumer->start([this](std::uint64_t seq, const Bytes& payload) {
            delivered.emplace_back(seq, payload);
        });
        pub_client->connect(broker_a->endpoint());
        sub_client->connect(broker_b->endpoint());
        kernel.run_until(kernel.now() + kSecond);
    }

    void settle() { kernel.run_until(kernel.now() + kSecond); }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    HostId host_a{}, host_b{};
    std::unique_ptr<broker::Broker> broker_a, broker_b;
    std::unique_ptr<broker::PubSubClient> pub_client, sub_client;
    std::unique_ptr<ReliablePublisher> publisher;
    std::unique_ptr<ReliableConsumer> consumer;
    std::vector<std::pair<std::uint64_t, Bytes>> delivered;
};

TEST_F(ReliableFixture, InOrderStream) {
    for (std::uint8_t i = 0; i < 20; ++i) publisher->publish(Bytes{i});
    settle();
    ASSERT_EQ(delivered.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i) {
        EXPECT_EQ(delivered[i].first, i);
        EXPECT_EQ(delivered[i].second[0], static_cast<std::uint8_t>(i));
    }
    EXPECT_EQ(consumer->stats().gaps_detected, 0u);
}

TEST_F(ReliableFixture, DisconnectGapIsReplayed) {
    publisher->publish(Bytes{0});
    publisher->publish(Bytes{1});
    settle();
    ASSERT_EQ(delivered.size(), 2u);

    // The subscriber drops off; messages 2..4 sail past it.
    sub_client->disconnect();
    settle();
    publisher->publish(Bytes{2});
    publisher->publish(Bytes{3});
    publisher->publish(Bytes{4});
    settle();
    EXPECT_EQ(delivered.size(), 2u);

    // Reconnect; message 5 arrives, exposing the 2..4 gap, which the
    // consumer NACKs and the publisher replays.
    sub_client->connect(broker_b->endpoint());
    settle();
    publisher->publish(Bytes{5});
    settle();

    ASSERT_EQ(delivered.size(), 6u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(delivered[i].first, i) << "order must be preserved";
    }
    EXPECT_GE(consumer->stats().gaps_detected, 1u);
    EXPECT_GE(consumer->stats().nacks_sent, 1u);
    EXPECT_EQ(publisher->stats().nacks_received, consumer->stats().nacks_sent);
    EXPECT_GE(publisher->stats().replayed, 3u);
}

TEST_F(ReliableFixture, ReplayBeyondBufferIsLost) {
    // Tiny replay buffer: only the last 2 messages survive.
    ReliablePublisher small(*pub_client, "stream/tiny", 2);
    ReliableConsumer tiny_consumer(*sub_client, "stream/tiny");
    std::vector<std::uint64_t> seqs;
    small.start();
    tiny_consumer.start([&](std::uint64_t seq, const Bytes&) { seqs.push_back(seq); });
    settle();

    // Establish the stream so the consumer is not a mid-stream joiner.
    small.publish(Bytes{0});
    settle();
    ASSERT_EQ(seqs.size(), 1u);

    sub_client->disconnect();
    settle();
    for (std::uint8_t i = 1; i <= 5; ++i) small.publish(Bytes{i});  // 1..5 missed
    settle();
    sub_client->connect(broker_b->endpoint());
    settle();
    small.publish(Bytes{6});
    settle();

    // 1..3 were trimmed from the 2-deep buffer; 4..6 are recoverable but
    // the consumer blocks on the unrecoverable prefix — nothing beyond
    // seq 0 is delivered, and the publisher records the misses.
    EXPECT_GE(small.stats().replay_misses, 1u);
    EXPECT_EQ(seqs.size(), 1u);
    EXPECT_GT(tiny_consumer.stats().held_back, 0u);
}

TEST_F(ReliableFixture, LateJoinerStartsMidStream) {
    publisher->publish(Bytes{0});
    publisher->publish(Bytes{1});
    settle();

    // A second consumer joins after the stream began.
    broker::PubSubClient late_client(kernel, net, Endpoint{host_b, 8001});
    ReliableConsumer late(late_client, "stream/data");
    std::vector<std::uint64_t> seqs;
    late.start([&](std::uint64_t seq, const Bytes&) { seqs.push_back(seq); });
    late_client.connect(broker_b->endpoint());
    settle();

    publisher->publish(Bytes{2});
    publisher->publish(Bytes{3});
    settle();
    // The late joiner adopts the stream at seq 2 — no NACK storm for the
    // history it never subscribed to.
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0], 2u);
    EXPECT_EQ(seqs[1], 3u);
    EXPECT_EQ(late.stats().nacks_sent, 0u);
}

TEST_F(ReliableFixture, ForeignStreamIgnored) {
    // A second publisher on the SAME topic: the consumer sticks with the
    // stream it adopted first.
    broker::PubSubClient other_client(kernel, net, Endpoint{host_a, 8001});
    ReliablePublisher other(other_client, "stream/data", 16);
    other.start();
    other_client.connect(broker_a->endpoint());
    settle();

    publisher->publish(Bytes{7});  // adopted stream
    settle();
    other.publish(Bytes{99});  // foreign stream
    settle();
    publisher->publish(Bytes{8});
    settle();

    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].second[0], 7);
    EXPECT_EQ(delivered[1].second[0], 8);
}

TEST_F(ReliableFixture, DuplicateDeliverySuppressed) {
    // Force a replay that overlaps already-delivered messages: NACKing is
    // internal, so simulate by having the publisher answer a manual NACK.
    publisher->publish(Bytes{0});
    settle();
    ASSERT_EQ(delivered.size(), 1u);
    // Manual duplicate: replay seq 0 through the control topic.
    wire::ByteWriter writer;
    writer.uuid(publisher->stream_id());
    writer.u64(0);
    writer.u64(0);
    sub_client->publish("stream/data/__nack", writer.take());
    settle();
    EXPECT_EQ(delivered.size(), 1u);  // not delivered twice
    EXPECT_GE(consumer->stats().duplicates_ignored, 1u);
}

TEST_F(ReliableFixture, OverlappingNackRangesCoalesceToOneReplayEach) {
    // A batched NACK frame with overlapping ranges {2-5},{4-7},{6-6} must
    // replay each sequence exactly once (2..7 -> 6 replays), not 11.
    ReliablePublisher pub(*pub_client, "stream/multi", 64);
    pub.start();
    settle();
    for (std::uint8_t i = 0; i < 10; ++i) pub.publish(Bytes{i});
    settle();

    wire::ByteWriter writer;
    writer.uuid(pub.stream_id());
    writer.u64(2);
    writer.u64(5);
    writer.u64(4);
    writer.u64(7);
    writer.u64(6);
    writer.u64(6);
    sub_client->publish("stream/multi/__nack", writer.take());
    settle();

    EXPECT_EQ(pub.stats().nacks_received, 1u);
    EXPECT_EQ(pub.stats().replayed, 6u);
    EXPECT_EQ(pub.stats().replay_misses, 0u);
}

TEST_F(ReliableFixture, InvalidRangeSkippedWithoutRejectingFrame) {
    // One nonsensical range (to < from) must not poison the valid range
    // travelling in the same frame.
    ReliablePublisher pub(*pub_client, "stream/mixed", 64);
    pub.start();
    settle();
    for (std::uint8_t i = 0; i < 4; ++i) pub.publish(Bytes{i});
    settle();

    wire::ByteWriter writer;
    writer.uuid(pub.stream_id());
    writer.u64(3);  // invalid range (to < from), skipped
    writer.u64(1);
    writer.u64(0);  // valid range
    writer.u64(1);
    sub_client->publish("stream/mixed/__nack", writer.take());
    settle();

    EXPECT_EQ(pub.stats().replayed, 2u);
}

TEST_F(ReliableFixture, ReplayMissCountedOncePerMissingSeq) {
    // Capacity 2: publishing 0..5 trims 0..3 out of the buffer. A consumer
    // re-NACKing the same lost range over and over must count each missing
    // sequence once ever, not once per frame.
    ReliablePublisher pub(*pub_client, "stream/miss", 2);
    pub.start();
    settle();
    for (std::uint8_t i = 0; i < 6; ++i) pub.publish(Bytes{i});
    settle();

    const auto nack = [&](std::uint64_t from, std::uint64_t to) {
        wire::ByteWriter writer;
        writer.uuid(pub.stream_id());
        writer.u64(from);
        writer.u64(to);
        sub_client->publish("stream/miss/__nack", writer.take());
        settle();
    };

    nack(0, 3);
    EXPECT_EQ(pub.stats().replay_misses, 4u);
    nack(0, 3);  // identical re-NACK: nothing new to count
    EXPECT_EQ(pub.stats().replay_misses, 4u);
    nack(0, 5);  // 4 and 5 are buffered: replayed, not missed
    EXPECT_EQ(pub.stats().replay_misses, 4u);
    EXPECT_EQ(pub.stats().replayed, 2u);
    EXPECT_EQ(pub.stats().nacks_received, 3u);
}

}  // namespace
}  // namespace narada::services
