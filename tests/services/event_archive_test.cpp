// Broker-hosted event archive and replay (the "replays" service, §1).
#include "services/event_archive.hpp"

#include <gtest/gtest.h>

#include "broker/client.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::services {
namespace {

struct ArchiveFixture : ::testing::Test {
    ArchiveFixture() : net(kernel, 77), utc(kernel.clock()) {
        host_a = net.add_host({"a", "S", "r", 0});
        host_b = net.add_host({"b", "S", "r", 0});
        net.set_default_link({from_ms(2), 0, 2});
        config::BrokerConfig cfg;
        cfg.processing_delay = from_ms(1);
        broker_a = std::make_unique<broker::Broker>(kernel, net, Endpoint{host_a, 7000},
                                                    net.host_clock(host_a), utc, cfg, "a");
        broker_b = std::make_unique<broker::Broker>(kernel, net, Endpoint{host_b, 7000},
                                                    net.host_clock(host_b), utc, cfg, "b");
        broker_b->connect_to_peer(broker_a->endpoint());
        // Archive lives on broker A and records app topics only.
        EventArchiveOptions options;
        options.filter = "app/#";
        options.capacity_per_topic = 4;
        archive = std::make_unique<EventArchivePlugin>(options);
        broker_a->add_plugin(archive.get());
        broker_a->start();
        broker_b->start();

        publisher = std::make_unique<broker::PubSubClient>(kernel, net,
                                                           Endpoint{host_b, 8000});
        publisher->connect(broker_b->endpoint());
        requester = std::make_unique<ReplayRequester>(kernel, net, Endpoint{host_b, 8001});
        settle();
    }

    void settle(DurationUs d = kSecond) { kernel.run_until(kernel.now() + d); }

    std::vector<broker::Event> fetch(const std::string& filter, std::uint32_t max = 100) {
        std::optional<std::vector<broker::Event>> result;
        requester->request(broker_a->endpoint(), filter, max,
                           [&](std::vector<broker::Event> events) { result = events; });
        settle(3 * kSecond);
        return result.value_or(std::vector<broker::Event>{});
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    HostId host_a{}, host_b{};
    std::unique_ptr<broker::Broker> broker_a, broker_b;
    std::unique_ptr<EventArchivePlugin> archive;
    std::unique_ptr<broker::PubSubClient> publisher;
    std::unique_ptr<ReplayRequester> requester;
};

TEST_F(ArchiveFixture, RecordsAndReplaysInOrder) {
    for (std::uint8_t i = 0; i < 3; ++i) publisher->publish("app/feed", Bytes{i});
    settle();
    EXPECT_EQ(archive->stats().events_archived, 3u);
    const auto events = fetch("app/feed");
    ASSERT_EQ(events.size(), 3u);
    for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].payload[0], i);
}

TEST_F(ArchiveFixture, FilterSelectsWhatIsArchived) {
    publisher->publish("app/feed", Bytes{1});
    publisher->publish("other/topic", Bytes{2});  // outside the archive filter
    settle();
    EXPECT_EQ(archive->stats().events_archived, 1u);
    EXPECT_TRUE(fetch("other/topic").empty());
}

TEST_F(ArchiveFixture, RingCapacityKeepsNewest) {
    for (std::uint8_t i = 0; i < 10; ++i) publisher->publish("app/ring", Bytes{i});
    settle();
    const auto events = fetch("app/ring");
    ASSERT_EQ(events.size(), 4u);  // capacity_per_topic = 4
    EXPECT_EQ(events.front().payload[0], 6);
    EXPECT_EQ(events.back().payload[0], 9);
}

TEST_F(ArchiveFixture, ReplayFilterSpansTopics) {
    publisher->publish("app/a", Bytes{1});
    publisher->publish("app/b", Bytes{2});
    publisher->publish("app/a", Bytes{3});
    settle();
    const auto events = fetch("app/#");
    ASSERT_EQ(events.size(), 3u);
    // Global arrival order preserved across topics.
    EXPECT_EQ(events[0].payload[0], 1);
    EXPECT_EQ(events[1].payload[0], 2);
    EXPECT_EQ(events[2].payload[0], 3);
}

TEST_F(ArchiveFixture, MaxEventsBoundsTheTail) {
    for (std::uint8_t i = 0; i < 4; ++i) publisher->publish("app/t", Bytes{i});
    settle();
    const auto events = fetch("app/t", /*max=*/2);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].payload[0], 2);  // newest two, oldest first
    EXPECT_EQ(events[1].payload[0], 3);
}

TEST_F(ArchiveFixture, EmptyArchiveYieldsEmptyBatch) {
    const auto events = fetch("app/nothing");
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(archive->stats().replays_served, 1u);
}

TEST_F(ArchiveFixture, TimeoutWhenArchiveUnreachable) {
    net.set_host_down(host_a, true);
    bool called = false;
    std::vector<broker::Event> got;
    requester->request(broker_a->endpoint(), "app/#", 10,
                       [&](std::vector<broker::Event> events) {
                           called = true;
                           got = std::move(events);
                       },
                       /*timeout=*/from_ms(500));
    settle(2 * kSecond);
    EXPECT_TRUE(called);
    EXPECT_TRUE(got.empty());
}

TEST_F(ArchiveFixture, LateJoinerBackfillsThenFollowsLive) {
    // The canonical use: history via the archive, future via subscription.
    for (std::uint8_t i = 0; i < 3; ++i) publisher->publish("app/news", Bytes{i});
    settle();

    broker::PubSubClient late(kernel, net, Endpoint{host_b, 8002});
    std::vector<std::uint8_t> seen;
    late.on_event([&](const broker::Event& e) { seen.push_back(e.payload[0]); });
    late.subscribe("app/news");
    late.connect(broker_b->endpoint());
    settle();

    const auto history = fetch("app/news");
    for (const auto& e : history) seen.insert(seen.begin() + (&e - history.data()),
                                              e.payload[0]);
    publisher->publish("app/news", Bytes{9});
    settle();
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0], 0);
    EXPECT_EQ(seen[3], 9);
}

TEST_F(ArchiveFixture, InvalidReplayFilterYieldsEmpty) {
    publisher->publish("app/x", Bytes{1});
    settle();
    EXPECT_TRUE(fetch("bad//filter").empty());
}

}  // namespace
}  // namespace narada::services
