#include "services/compression.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace narada::services {
namespace {

Bytes text_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Compression, EmptyPayload) {
    const Bytes compressed = compress({});
    EXPECT_EQ(compressed.size(), kCompressionHeaderSize);
    const auto decompressed = decompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_TRUE(decompressed->empty());
}

TEST(Compression, RoundTripText) {
    const Bytes data = text_bytes(
        "Increasingly messaging infrastructures are being used to support the "
        "communication requirements of a wide variety of clients, services, and "
        "proxies thereto. Typically, the messaging infrastructure is a distributed "
        "one with multiple constituent brokers, where we avoid the term servers to "
        "distinguish them clearly from application servers.");
    const Bytes compressed = compress(data);
    const auto decompressed = decompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, data);
}

TEST(Compression, RepetitiveDataShrinks) {
    Bytes data;
    for (int i = 0; i < 1000; ++i) {
        const Bytes unit = text_bytes("Services/BrokerDiscoveryNodes/");
        data.insert(data.end(), unit.begin(), unit.end());
    }
    const Bytes compressed = compress(data);
    EXPECT_LT(compressed.size(), data.size() / 4);  // highly repetitive
    const auto decompressed = decompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, data);
}

TEST(Compression, IncompressibleFallsBackToRaw) {
    Rng rng(42);
    Bytes data(10000);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    const Bytes compressed = compress(data);
    // Random bytes cannot compress; the raw passthrough bounds the cost.
    EXPECT_EQ(compressed.size(), data.size() + kCompressionHeaderSize);
    const auto decompressed = decompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, data);
}

TEST(Compression, RandomizedRoundTrip) {
    Rng rng(7);
    for (int iteration = 0; iteration < 60; ++iteration) {
        const std::size_t len = rng.bounded(5000);
        Bytes data(len);
        // Mix of runs and noise to exercise matches of every length.
        for (std::size_t i = 0; i < len; ++i) {
            data[i] = (rng.chance(0.7) && i > 0)
                          ? data[i - 1 - rng.bounded(std::min<std::size_t>(i, 64))]
                          : static_cast<std::uint8_t>(rng.next());
        }
        const auto decompressed = decompress(compress(data));
        ASSERT_TRUE(decompressed.has_value()) << "iteration " << iteration;
        EXPECT_EQ(*decompressed, data) << "iteration " << iteration;
    }
}

TEST(Compression, AllSameByte) {
    const Bytes data(100000, 0x41);
    const Bytes compressed = compress(data);
    EXPECT_LT(compressed.size(), 15000u);
    const auto decompressed = decompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, data);
}

TEST(Compression, DecompressRejectsGarbage) {
    EXPECT_FALSE(decompress({}).has_value());
    EXPECT_FALSE(decompress(Bytes{0x00, 0x01, 0x02}).has_value());
    EXPECT_FALSE(decompress(Bytes(kCompressionHeaderSize, 0)).has_value());  // bad magic
}

TEST(Compression, DecompressRejectsTruncated) {
    const Bytes data = text_bytes("a moderately compressible string string string string");
    Bytes compressed = compress(data);
    compressed.resize(compressed.size() - 3);
    EXPECT_FALSE(decompress(compressed).has_value());
}

TEST(Compression, DecompressRejectsBadMode) {
    Bytes bogus = compress(text_bytes("x"));
    bogus[1] = 99;  // unknown mode
    EXPECT_FALSE(decompress(bogus).has_value());
}

TEST(Compression, DecompressRejectsLengthMismatch) {
    Bytes raw = compress(Bytes(10, 1));  // likely raw mode
    raw[5] = 99;                         // lie about original size
    EXPECT_FALSE(decompress(raw).has_value());
}

TEST(Compression, LooksCompressed) {
    EXPECT_TRUE(looks_compressed(compress(text_bytes("abc"))));
    EXPECT_FALSE(looks_compressed(text_bytes("abc")));
    EXPECT_FALSE(looks_compressed({}));
}

TEST(Compression, OverlappingMatchesDecodeCorrectly) {
    // "abcabcabc..." forces matches whose offset < length.
    Bytes data;
    for (int i = 0; i < 999; ++i) data.push_back(static_cast<std::uint8_t>('a' + i % 3));
    const auto decompressed = decompress(compress(data));
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, data);
}

}  // namespace
}  // namespace narada::services
