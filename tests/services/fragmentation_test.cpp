#include "services/fragmentation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace narada::services {
namespace {

Bytes make_payload(std::size_t len, std::uint64_t seed = 1) {
    Rng rng(seed);
    Bytes out(len);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
    return out;
}

TEST(Fragmentation, SplitShapes) {
    Rng rng(1);
    const Uuid id = Uuid::random(rng);
    const auto fragments = fragment_payload(make_payload(1000), 300, id);
    ASSERT_EQ(fragments.size(), 4u);
    EXPECT_EQ(fragments[0].chunk.size(), 300u);
    EXPECT_EQ(fragments[3].chunk.size(), 100u);
    for (const auto& f : fragments) {
        EXPECT_EQ(f.payload_id, id);
        EXPECT_EQ(f.count, 4u);
        EXPECT_EQ(f.total_size, 1000u);
    }
}

TEST(Fragmentation, ExactMultiple) {
    Rng rng(2);
    const auto fragments = fragment_payload(make_payload(900), 300, Uuid::random(rng));
    EXPECT_EQ(fragments.size(), 3u);
}

TEST(Fragmentation, EmptyPayloadSingleFragment) {
    Rng rng(3);
    const auto fragments = fragment_payload({}, 100, Uuid::random(rng));
    ASSERT_EQ(fragments.size(), 1u);
    EXPECT_TRUE(fragments[0].chunk.empty());
    Coalescer coalescer;
    const auto payload = coalescer.accept(fragments[0]);
    ASSERT_TRUE(payload.has_value());
    EXPECT_TRUE(payload->empty());
}

TEST(Fragmentation, ZeroChunkSizeThrows) {
    Rng rng(4);
    EXPECT_THROW(fragment_payload(make_payload(10), 0, Uuid::random(rng)),
                 std::invalid_argument);
}

TEST(Fragmentation, CodecRoundTrip) {
    Rng rng(5);
    const auto fragments = fragment_payload(make_payload(500), 200, Uuid::random(rng));
    for (const auto& f : fragments) {
        wire::ByteWriter writer;
        f.encode(writer);
        wire::ByteReader reader(writer.bytes());
        EXPECT_EQ(Fragment::decode(reader), f);
    }
}

TEST(Coalescer, InOrderReassembly) {
    Rng rng(6);
    const Bytes payload = make_payload(10000, 7);
    const auto fragments = fragment_payload(payload, 1024, Uuid::random(rng));
    Coalescer coalescer;
    std::optional<Bytes> result;
    for (const auto& f : fragments) {
        EXPECT_FALSE(result.has_value());
        result = coalescer.accept(f);
    }
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, payload);
    EXPECT_EQ(coalescer.pending(), 0u);
    EXPECT_EQ(coalescer.stats().payloads_completed, 1u);
}

TEST(Coalescer, OutOfOrderReassembly) {
    Rng rng(8);
    const Bytes payload = make_payload(5000, 9);
    auto fragments = fragment_payload(payload, 512, Uuid::random(rng));
    std::shuffle(fragments.begin(), fragments.end(), rng);
    Coalescer coalescer;
    std::optional<Bytes> result;
    for (const auto& f : fragments) {
        auto r = coalescer.accept(f);
        if (r) result = std::move(r);
    }
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, payload);
}

TEST(Coalescer, DuplicatesIgnored) {
    Rng rng(10);
    const Bytes payload = make_payload(1000, 11);
    const auto fragments = fragment_payload(payload, 400, Uuid::random(rng));
    Coalescer coalescer;
    coalescer.accept(fragments[0]);
    coalescer.accept(fragments[0]);  // duplicate
    coalescer.accept(fragments[1]);
    const auto result = coalescer.accept(fragments[2]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, payload);
    EXPECT_EQ(coalescer.stats().duplicates_ignored, 1u);
}

TEST(Coalescer, InterleavedPayloads) {
    Rng rng(12);
    const Bytes a = make_payload(3000, 13);
    const Bytes b = make_payload(2000, 14);
    const auto fa = fragment_payload(a, 500, Uuid::random(rng));
    const auto fb = fragment_payload(b, 500, Uuid::random(rng));
    Coalescer coalescer;
    std::optional<Bytes> ra, rb;
    for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
        if (i < fa.size()) {
            if (auto r = coalescer.accept(fa[i])) ra = std::move(r);
        }
        if (i < fb.size()) {
            if (auto r = coalescer.accept(fb[i])) rb = std::move(r);
        }
    }
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(*ra, a);
    EXPECT_EQ(*rb, b);
}

TEST(Coalescer, MissingFragmentNeverCompletes) {
    Rng rng(15);
    const auto fragments = fragment_payload(make_payload(1000, 16), 100, Uuid::random(rng));
    Coalescer coalescer;
    for (std::size_t i = 0; i + 1 < fragments.size(); ++i) {
        EXPECT_FALSE(coalescer.accept(fragments[i]).has_value());
    }
    EXPECT_EQ(coalescer.pending(), 1u);
    EXPECT_EQ(coalescer.stats().payloads_completed, 0u);
}

TEST(Coalescer, LruEvictionBoundsMemory) {
    Rng rng(17);
    Coalescer coalescer(/*max_pending=*/3);
    // Start four incomplete payloads; the oldest must be evicted.
    std::vector<std::vector<Fragment>> all;
    for (int i = 0; i < 4; ++i) {
        all.push_back(fragment_payload(make_payload(300, 100 + i), 100, Uuid::random(rng)));
        coalescer.accept(all.back()[0]);
    }
    EXPECT_EQ(coalescer.pending(), 3u);
    EXPECT_EQ(coalescer.stats().payloads_evicted, 1u);
    // The evicted (first) payload can no longer complete with one fragment.
    coalescer.accept(all[0][1]);
    EXPECT_FALSE(coalescer.accept(all[0][2]).has_value());
    // But a surviving one can.
    coalescer.accept(all[3][1]);
    EXPECT_TRUE(coalescer.accept(all[3][2]).has_value());
}

TEST(Coalescer, RejectsStructurallyInvalidFragments) {
    Coalescer coalescer;
    Fragment bad;
    bad.count = 0;
    EXPECT_FALSE(coalescer.accept(bad).has_value());
    bad.count = 2;
    bad.index = 5;  // out of range
    EXPECT_FALSE(coalescer.accept(bad).has_value());
    bad.index = 0;
    bad.total_size = 1ull << 60;  // exceeds the size cap
    EXPECT_FALSE(coalescer.accept(bad).has_value());
    EXPECT_EQ(coalescer.stats().mismatches_rejected, 3u);
}

TEST(Coalescer, RejectsShapeDisagreement) {
    Rng rng(18);
    const Uuid id = Uuid::random(rng);
    auto fragments = fragment_payload(make_payload(1000, 19), 250, id);
    Coalescer coalescer;
    coalescer.accept(fragments[0]);
    Fragment liar = fragments[1];
    liar.count = 9;  // disagrees with fragment 0
    EXPECT_FALSE(coalescer.accept(liar).has_value());
    EXPECT_EQ(coalescer.stats().mismatches_rejected, 1u);
    // The honest stream still completes.
    coalescer.accept(fragments[1]);
    coalescer.accept(fragments[2]);
    EXPECT_TRUE(coalescer.accept(fragments[3]).has_value());
}

TEST(Coalescer, SingleFragmentSizeLieRejected) {
    Coalescer coalescer;
    Fragment f;
    f.count = 1;
    f.total_size = 100;
    f.chunk = Bytes(50, 0);  // claims 100, carries 50
    EXPECT_FALSE(coalescer.accept(f).has_value());
}

TEST(Coalescer, SingleFragmentCannotHijackPendingPayload) {
    // A count=1 fragment reusing an in-flight multi-fragment payload_id is
    // a shape disagreement: it must neither complete "the" payload with
    // bogus bytes nor disturb the real reassembly.
    Rng rng(20);
    const Uuid id = Uuid::random(rng);
    const Bytes payload = make_payload(1000, 21);
    const auto fragments = fragment_payload(payload, 250, id);
    Coalescer coalescer;
    coalescer.accept(fragments[0]);
    coalescer.accept(fragments[1]);

    Fragment hijack;
    hijack.payload_id = id;
    hijack.index = 0;
    hijack.count = 1;
    hijack.chunk = Bytes(8, 0xEE);
    hijack.total_size = hijack.chunk.size();
    EXPECT_FALSE(coalescer.accept(hijack).has_value());
    EXPECT_EQ(coalescer.stats().mismatches_rejected, 1u);

    // The honest transfer is untouched and still completes.
    EXPECT_EQ(coalescer.pending(), 1u);
    coalescer.accept(fragments[2]);
    const auto result = coalescer.accept(fragments[3]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, payload);
}

TEST(Coalescer, DuplicatesRefreshLruAtCapacity) {
    // At capacity, a duplicate arrival must count as recency: the payload
    // still actively receiving (even redundant) fragments survives and the
    // untouched one is evicted.
    Rng rng(22);
    Coalescer coalescer(/*max_pending=*/2);
    const Bytes a = make_payload(400, 23);
    const auto fa = fragment_payload(a, 100, Uuid::random(rng));
    const auto fb = fragment_payload(make_payload(400, 24), 100, Uuid::random(rng));
    const auto fc = fragment_payload(make_payload(400, 25), 100, Uuid::random(rng));

    coalescer.accept(fa[0]);  // LRU: a
    coalescer.accept(fb[0]);  // LRU: b, a
    coalescer.accept(fa[0]);  // duplicate of a -> LRU: a, b
    EXPECT_EQ(coalescer.stats().duplicates_ignored, 1u);

    coalescer.accept(fc[0]);  // at capacity: evicts b, not a
    EXPECT_EQ(coalescer.stats().payloads_evicted, 1u);
    EXPECT_EQ(coalescer.pending(), 2u);

    // a completes out of order; b was evicted and cannot.
    coalescer.accept(fa[3]);
    coalescer.accept(fa[1]);
    const auto result = coalescer.accept(fa[2]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, a);
    EXPECT_FALSE(coalescer.accept(fb[1]).has_value());
    EXPECT_FALSE(coalescer.accept(fb[2]).has_value());
    EXPECT_FALSE(coalescer.accept(fb[3]).has_value());
    EXPECT_EQ(coalescer.stats().payloads_completed, 1u);
}

TEST(Coalescer, OutOfOrderArrivalRefreshesLruAtCapacity) {
    // Same property for genuinely new out-of-order fragments: progress on
    // an old payload protects it from eviction when a third arrives.
    Rng rng(26);
    Coalescer coalescer(/*max_pending=*/2);
    const Bytes a = make_payload(500, 27);
    const auto fa = fragment_payload(a, 100, Uuid::random(rng));
    const auto fb = fragment_payload(make_payload(500, 28), 100, Uuid::random(rng));
    const auto fc = fragment_payload(make_payload(500, 29), 100, Uuid::random(rng));

    coalescer.accept(fa[0]);  // LRU: a
    coalescer.accept(fb[0]);  // LRU: b, a
    coalescer.accept(fa[4]);  // out-of-order progress on a -> LRU: a, b
    coalescer.accept(fc[0]);  // evicts b
    EXPECT_EQ(coalescer.stats().payloads_evicted, 1u);

    coalescer.accept(fa[2]);
    coalescer.accept(fa[1]);
    EXPECT_FALSE(coalescer.accept(fa[2]).has_value());  // duplicate mid-stream
    const auto result = coalescer.accept(fa[3]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, a);
}

}  // namespace
}  // namespace narada::services
