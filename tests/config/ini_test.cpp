#include "config/ini.hpp"

#include <gtest/gtest.h>

#include "config/node_config.hpp"

namespace narada::config {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
    const Ini ini = Ini::parse(R"(
# comment
global_key = 1
[discovery]
response_window_ms = 4500
bdns = 3:9000, 4:9000
; another comment
[broker]
dedup_cache_size = 1000
)");
    EXPECT_EQ(ini.get_or("", "global_key", ""), "1");
    EXPECT_EQ(ini.get_int("discovery", "response_window_ms", 0), 4500);
    EXPECT_EQ(ini.get_int("broker", "dedup_cache_size", 0), 1000);
}

TEST(Ini, KeysCaseInsensitiveValuesNot) {
    const Ini ini = Ini::parse("[Broker]\nName = MixedCase\n");
    EXPECT_EQ(ini.get_or("broker", "name", ""), "MixedCase");
    EXPECT_EQ(ini.get_or("BROKER", "NAME", ""), "MixedCase");
}

TEST(Ini, LastDuplicateWins) {
    const Ini ini = Ini::parse("[s]\nk = 1\nk = 2\n");
    EXPECT_EQ(ini.get_int("s", "k", 0), 2);
}

TEST(Ini, ListParsing) {
    const Ini ini = Ini::parse("[s]\nitems = a , b,c ,\n");
    const auto items = ini.get_list("s", "items");
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0], "a");
    EXPECT_EQ(items[1], "b");
    EXPECT_EQ(items[2], "c");
    EXPECT_TRUE(ini.get_list("s", "missing").empty());
}

TEST(Ini, BooleanForms) {
    const Ini ini = Ini::parse("[s]\na=true\nb=No\nc=1\nd=off\n");
    EXPECT_TRUE(ini.get_bool("s", "a", false));
    EXPECT_FALSE(ini.get_bool("s", "b", true));
    EXPECT_TRUE(ini.get_bool("s", "c", false));
    EXPECT_FALSE(ini.get_bool("s", "d", true));
    EXPECT_TRUE(ini.get_bool("s", "missing", true));
}

TEST(Ini, FallbacksWhenMissing) {
    const Ini ini = Ini::parse("");
    EXPECT_EQ(ini.get_int("x", "y", 42), 42);
    EXPECT_DOUBLE_EQ(ini.get_double("x", "y", 2.5), 2.5);
    EXPECT_EQ(ini.get_or("x", "y", "z"), "z");
    EXPECT_FALSE(ini.has("x", "y"));
}

TEST(Ini, MalformedSectionThrows) {
    EXPECT_THROW(Ini::parse("[oops\n"), IniError);
}

TEST(Ini, MissingEqualsThrows) {
    EXPECT_THROW(Ini::parse("[s]\nnovalue\n"), IniError);
}

TEST(Ini, EmptyKeyThrows) {
    EXPECT_THROW(Ini::parse("[s]\n= 3\n"), IniError);
}

TEST(Ini, BadNumericValueThrows) {
    const Ini ini = Ini::parse("[s]\nk = abc\nj = 12x\n");
    EXPECT_THROW((void)ini.get_int("s", "k", 0), IniError);
    EXPECT_THROW((void)ini.get_int("s", "j", 0), IniError);
    EXPECT_THROW((void)ini.get_double("s", "k", 0), IniError);
    EXPECT_THROW((void)ini.get_bool("s", "k", false), IniError);
}

TEST(Ini, SetAndEnumerate) {
    Ini ini;
    ini.set("a", "x", "1");
    ini.set("b", "y", "2");
    EXPECT_EQ(ini.sections().size(), 2u);
    EXPECT_EQ(ini.keys("a").size(), 1u);
    EXPECT_EQ(ini.get_or("a", "x", ""), "1");
}

TEST(Ini, MissingFileThrows) {
    EXPECT_THROW(Ini::parse_file("/nonexistent/path/config.ini"), IniError);
}

TEST(NodeConfig, EndpointParsing) {
    const Endpoint ep = parse_endpoint("3:9000");
    EXPECT_EQ(ep.host, 3u);
    EXPECT_EQ(ep.port, 9000);
    EXPECT_THROW(parse_endpoint("nonsense"), IniError);
    EXPECT_THROW(parse_endpoint("1:2:3"), IniError);
    EXPECT_THROW(parse_endpoint("1:99999"), IniError);
}

TEST(NodeConfig, DiscoveryDefaultsMatchPaper) {
    const DiscoveryConfig c;
    // §6: responses collected for 4-5 seconds; target set ~10 brokers.
    EXPECT_EQ(c.response_window, from_ms(4500));
    EXPECT_EQ(c.target_set_size, 10u);
    EXPECT_EQ(c.max_responses, 0u);
}

TEST(NodeConfig, BrokerDefaultsMatchPaper) {
    const BrokerConfig c;
    EXPECT_EQ(c.dedup_cache_size, 1000u);  // §4: "last 1000"
    EXPECT_TRUE(c.respond_to_discovery);
    EXPECT_TRUE(c.advertise_on_topic);
}

TEST(NodeConfig, DiscoveryFromIni) {
    const Ini ini = Ini::parse(R"(
[discovery]
bdns = 7:7100
response_window_ms = 2000
max_responses = 5
target_set_size = 3
use_multicast = true
credential = secret
[weights]
num_links = 9.5
)");
    const DiscoveryConfig c = DiscoveryConfig::from_ini(ini);
    ASSERT_EQ(c.bdns.size(), 1u);
    EXPECT_EQ(c.bdns[0], (Endpoint{7, 7100}));
    EXPECT_EQ(c.response_window, from_ms(2000));
    EXPECT_EQ(c.max_responses, 5u);
    EXPECT_EQ(c.target_set_size, 3u);
    EXPECT_TRUE(c.use_multicast);
    EXPECT_EQ(c.credential, "secret");
    EXPECT_DOUBLE_EQ(c.weights.num_links, 9.5);
}

TEST(NodeConfig, BrokerFromIni) {
    const Ini ini = Ini::parse(R"(
[broker]
advertise_bdns = 1:7100, 2:7100
dedup_cache_size = 50
respond_to_discovery = false
required_credential = team-key
allowed_realms = iu-lab, umn
processing_delay_ms = 7.5
)");
    const BrokerConfig c = BrokerConfig::from_ini(ini);
    EXPECT_EQ(c.advertise_bdns.size(), 2u);
    EXPECT_EQ(c.dedup_cache_size, 50u);
    EXPECT_FALSE(c.respond_to_discovery);
    EXPECT_EQ(c.required_credential, "team-key");
    EXPECT_EQ(c.allowed_realms.size(), 2u);
    EXPECT_EQ(c.processing_delay, from_ms(7.5));
}

TEST(NodeConfig, BdnFromIni) {
    const Ini ini = Ini::parse(R"(
[bdn]
injection = all
accepted_realms = iu-lab
ping_refresh_interval_ms = 1000
injection_spacing_ms = 25
)");
    const BdnConfig c = BdnConfig::from_ini(ini);
    EXPECT_EQ(c.injection, InjectionStrategy::kAll);
    EXPECT_EQ(c.accepted_realms.size(), 1u);
    EXPECT_EQ(c.ping_refresh_interval, from_ms(1000));
    EXPECT_EQ(c.injection_spacing, from_ms(25));
}

TEST(NodeConfig, BdnFederationFromIni) {
    const Ini ini = Ini::parse(R"(
[bdn]
peer_group = 3:7100, 4:7100, 5:7100
replication_factor = 2
ring_vnodes = 128
anti_entropy_interval_ms = 2000
shard_deadline_ms = 250
shard_reply_limit = 16
)");
    const BdnConfig c = BdnConfig::from_ini(ini);
    ASSERT_EQ(c.peer_group.size(), 3u);
    EXPECT_EQ(c.peer_group[0], (Endpoint{3, 7100}));
    EXPECT_EQ(c.peer_group[2], (Endpoint{5, 7100}));
    EXPECT_EQ(c.replication_factor, 2u);
    EXPECT_EQ(c.ring_vnodes, 128u);
    EXPECT_EQ(c.anti_entropy_interval, from_ms(2000));
    EXPECT_EQ(c.shard_deadline, from_ms(250));
    EXPECT_EQ(c.shard_reply_limit, 16u);
}

TEST(NodeConfig, BdnFederationDefaults) {
    const BdnConfig c = BdnConfig::from_ini(Ini::parse(""));
    EXPECT_TRUE(c.peer_group.empty());
    EXPECT_EQ(c.replication_factor, 1u);
    EXPECT_EQ(c.ring_vnodes, 64u);
    EXPECT_EQ(c.anti_entropy_interval, 0);
    EXPECT_EQ(c.shard_deadline, from_ms(150));
    EXPECT_EQ(c.shard_reply_limit, 8u);
}

TEST(NodeConfig, TransportSectionParsesShardingKnobs) {
    const Ini ini = Ini::parse(R"(
[transport]
shards = 4
pin_cpus = 0, 1, 2, 3
handoff_depth = 512
udp_batch = 16
pool_buffers = 128
udp_sockbuf = 262144
udp_gso = false
)");
    const TransportConfig c = TransportConfig::from_ini(ini);
    EXPECT_EQ(c.shards, 4u);
    ASSERT_EQ(c.pin_cpus.size(), 4u);
    EXPECT_EQ(c.pin_cpus[0], 0);
    EXPECT_EQ(c.pin_cpus[3], 3);
    EXPECT_EQ(c.handoff_depth, 512u);
    EXPECT_EQ(c.udp_batch, 16u);
    EXPECT_EQ(c.pool_buffers, 128u);
    EXPECT_EQ(c.udp_sockbuf, 262144u);
    EXPECT_FALSE(c.udp_gso);
}

TEST(NodeConfig, TransportDefaultsAndValidation) {
    const TransportConfig d = TransportConfig::from_ini(Ini::parse(""));
    EXPECT_EQ(d.shards, 1u);
    EXPECT_TRUE(d.pin_cpus.empty());
    EXPECT_EQ(d.handoff_depth, 1024u);
    EXPECT_TRUE(d.udp_gso);

    // shards = 0 clamps to 1 (a runtime always has at least one reactor).
    EXPECT_EQ(TransportConfig::from_ini(Ini::parse("[transport]\nshards = 0\n")).shards,
              1u);
    EXPECT_THROW(
        TransportConfig::from_ini(Ini::parse("[transport]\npin_cpus = 0, banana\n")),
        IniError);
}

TEST(NodeConfig, SecuritySectionParsesAllKnobs) {
    const Ini ini = Ini::parse(R"(
[security]
mode = seal
session_cache_size = 128
rekey_interval_ms = 60000
authenticate_ads = true
)");
    const SecurityConfig c = SecurityConfig::from_ini(ini);
    EXPECT_EQ(c.mode, SecurityConfig::Mode::kSeal);
    EXPECT_TRUE(c.enabled());
    EXPECT_TRUE(c.sealing());
    EXPECT_EQ(c.session_cache_size, 128u);
    EXPECT_EQ(c.rekey_interval, from_ms(60000));
    EXPECT_TRUE(c.authenticate_ads);
}

TEST(NodeConfig, SecurityDefaultsAndValidation) {
    const SecurityConfig d = SecurityConfig::from_ini(Ini::parse(""));
    EXPECT_EQ(d.mode, SecurityConfig::Mode::kOff);
    EXPECT_FALSE(d.enabled());
    EXPECT_EQ(d.session_cache_size, 256u);
    EXPECT_FALSE(d.authenticate_ads);

    const SecurityConfig sign =
        SecurityConfig::from_ini(Ini::parse("[security]\nmode = sign\n"));
    EXPECT_TRUE(sign.enabled());
    EXPECT_FALSE(sign.sealing());
    // A zero-capacity session cache is meaningless; clamp to 1.
    EXPECT_EQ(SecurityConfig::from_ini(
                  Ini::parse("[security]\nsession_cache_size = 0\n"))
                  .session_cache_size,
              1u);
    EXPECT_THROW(SecurityConfig::from_ini(Ini::parse("[security]\nmode = quantum\n")),
                 IniError);
    for (const auto m : {SecurityConfig::Mode::kOff, SecurityConfig::Mode::kSign,
                         SecurityConfig::Mode::kSeal}) {
        EXPECT_EQ(parse_security_mode(to_string(m)), m);
    }
}

TEST(NodeConfig, InjectionStrategyNames) {
    for (const auto s :
         {InjectionStrategy::kClosestAndFarthest, InjectionStrategy::kClosestOnly,
          InjectionStrategy::kRandom, InjectionStrategy::kAll}) {
        EXPECT_EQ(parse_injection_strategy(to_string(s)), s);
    }
    EXPECT_THROW(parse_injection_strategy("bogus"), IniError);
}

}  // namespace
}  // namespace narada::config
