// The scenario harness itself: topology wiring, warm-up behaviour, NTP
// convergence across the testbed, and deterministic reconstruction.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

namespace narada::scenario {
namespace {

TEST(Scenario, StarWiring) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    Scenario s(opts);
    s.warm_up();
    // Hub (broker 0) peers with all four leaves; leaves only with the hub.
    EXPECT_EQ(s.broker_at(0).peers().size(), 4u);
    for (std::size_t i = 1; i < s.broker_count(); ++i) {
        const auto peers = s.broker_at(i).peers();
        ASSERT_EQ(peers.size(), 1u) << "leaf " << i;
        EXPECT_EQ(peers[0], s.broker_at(0).endpoint());
    }
}

TEST(Scenario, LinearWiring) {
    ScenarioOptions opts;
    opts.topology = Topology::kLinear;
    Scenario s(opts);
    s.warm_up();
    EXPECT_EQ(s.broker_at(0).peers().size(), 1u);
    EXPECT_EQ(s.broker_at(1).peers().size(), 2u);
    EXPECT_EQ(s.broker_at(2).peers().size(), 2u);
    EXPECT_EQ(s.broker_at(3).peers().size(), 2u);
    EXPECT_EQ(s.broker_at(4).peers().size(), 1u);
}

TEST(Scenario, FullAndRingWiring) {
    {
        ScenarioOptions opts;
        opts.topology = Topology::kFull;
        Scenario s(opts);
        s.warm_up();
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            EXPECT_EQ(s.broker_at(i).peers().size(), s.broker_count() - 1);
        }
    }
    {
        ScenarioOptions opts;
        opts.topology = Topology::kRing;
        Scenario s(opts);
        s.warm_up();
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            EXPECT_EQ(s.broker_at(i).peers().size(), 2u);
        }
    }
}

TEST(Scenario, UnconnectedHasNoLinks) {
    ScenarioOptions opts;
    opts.topology = Topology::kUnconnected;
    Scenario s(opts);
    s.warm_up();
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        EXPECT_TRUE(s.broker_at(i).peers().empty());
    }
}

TEST(Scenario, WarmUpRegistersAndSynchronizes) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    Scenario s(opts);
    s.warm_up();
    // Every broker registered with the BDN and has a measured distance.
    EXPECT_EQ(s.bdn().registered_count(), s.broker_count());
    for (const auto& rb : s.bdn().registry()) {
        EXPECT_GE(rb.rtt, 0);
    }
}

TEST(Scenario, RegistrationSubsetRespected) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.register_with_bdn = 2;
    Scenario s(opts);
    s.warm_up();
    EXPECT_EQ(s.bdn().registered_count(), 2u);
}

TEST(Scenario, PhaseBreakdownSumsToAboutOneHundred) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 17;
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    const auto b = phase_breakdown(report);
    const double sum =
        b.request_and_ack_pct + b.wait_responses_pct + b.shortlist_pct + b.ping_select_pct;
    EXPECT_GT(sum, 90.0);
    EXPECT_LE(sum, 100.5);
}

TEST(Scenario, TopologyNames) {
    EXPECT_EQ(to_string(Topology::kUnconnected), "unconnected");
    EXPECT_EQ(to_string(Topology::kStar), "star");
    EXPECT_EQ(to_string(Topology::kLinear), "linear");
    EXPECT_EQ(to_string(Topology::kFull), "full");
    EXPECT_EQ(to_string(Topology::kRing), "ring");
}

TEST(Scenario, SequentialDiscoveriesIndependent) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 23;
    Scenario s(opts);
    const auto first = s.run_discovery();
    const auto second = s.run_discovery();
    ASSERT_TRUE(first.success);
    ASSERT_TRUE(second.success);
    EXPECT_NE(first.request_id, second.request_id);
    EXPECT_EQ(first.candidates.size(), second.candidates.size());
}

TEST(Scenario, RoutedModeEndToEnd) {
    ScenarioOptions opts;
    opts.topology = Topology::kLinear;
    opts.register_with_bdn = 1;
    opts.broker.routing_mode = config::RoutingMode::kRouted;
    opts.per_hop_loss = 0;  // all five responses must arrive
    opts.seed = 29;
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.candidates.size(), 5u);  // interest keeps requests flowing
}

}  // namespace
}  // namespace narada::scenario
