#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/site_catalog.hpp"

namespace narada::sim {
namespace {

class Recorder final : public transport::MessageHandler {
public:
    struct Received {
        Endpoint from;
        Bytes data;
        bool reliable;
        TimeUs at;
    };
    explicit Recorder(const Kernel& kernel) : kernel_(kernel) {}
    void on_datagram(const Endpoint& from, const Bytes& data) override {
        received.push_back({from, data, false, kernel_.now()});
    }
    void on_reliable(const Endpoint& from, const Bytes& data) override {
        received.push_back({from, data, true, kernel_.now()});
    }
    std::vector<Received> received;

private:
    const Kernel& kernel_;
};

struct NetworkFixture : ::testing::Test {
    NetworkFixture() : net(kernel, /*seed=*/42), rx(kernel) {
        a = net.add_host({"a", "SiteA", "realm-a", 0});
        b = net.add_host({"b", "SiteB", "realm-a", 0});
        c = net.add_host({"c", "SiteC", "realm-b", 0});
        net.set_bandwidth(0);  // pure-latency tests unless stated
        net.set_link(a, b, {from_ms(10), 0, 4});
        net.set_link(a, c, {from_ms(30), 0, 10});
        net.set_link(b, c, {from_ms(20), 0, 8});
        ep_a = {a, 100};
        ep_b = {b, 200};
        ep_c = {c, 300};
        net.bind(ep_b, &rx);
    }

    Kernel kernel;
    SimNetwork net;
    Recorder rx;
    HostId a{}, b{}, c{};
    Endpoint ep_a, ep_b, ep_c;
};

TEST_F(NetworkFixture, DatagramArrivesAfterLatency) {
    net.send_datagram(ep_a, ep_b, Bytes{1, 2, 3});
    kernel.run();
    ASSERT_EQ(rx.received.size(), 1u);
    EXPECT_EQ(rx.received[0].at, from_ms(10));
    EXPECT_EQ(rx.received[0].from, ep_a);
    EXPECT_EQ(rx.received[0].data, (Bytes{1, 2, 3}));
    EXPECT_FALSE(rx.received[0].reliable);
    EXPECT_EQ(net.stats().datagrams_delivered, 1u);
}

TEST_F(NetworkFixture, ReliableUsesOnReliable) {
    net.send_reliable(ep_a, ep_b, Bytes{9});
    kernel.run();
    ASSERT_EQ(rx.received.size(), 1u);
    EXPECT_TRUE(rx.received[0].reliable);
}

TEST_F(NetworkFixture, UnboundDestinationCounted) {
    net.send_datagram(ep_a, ep_c, Bytes{1});
    kernel.run();
    EXPECT_EQ(net.stats().datagrams_unrouteable, 1u);
}

TEST_F(NetworkFixture, LoopbackIsFast) {
    Recorder rx2(kernel);
    const Endpoint ep_a2{a, 101};
    net.bind(ep_a2, &rx2);
    net.send_datagram(ep_a, ep_a2, Bytes{1});
    kernel.run();
    ASSERT_EQ(rx2.received.size(), 1u);
    EXPECT_LT(rx2.received[0].at, from_ms(1.0));
}

TEST_F(NetworkFixture, JitterVariesDelay) {
    net.set_link(a, b, {from_ms(10), from_ms(5), 4});
    std::set<TimeUs> arrivals;
    for (int i = 0; i < 50; ++i) net.send_datagram(ep_a, ep_b, Bytes{1});
    kernel.run();
    for (const auto& r : rx.received) {
        EXPECT_GE(r.at, from_ms(10));
        EXPECT_LE(r.at, from_ms(15));
        arrivals.insert(r.at);
    }
    EXPECT_GT(arrivals.size(), 10u);  // jitter actually varies
}

TEST_F(NetworkFixture, BandwidthAddsSerializationDelay) {
    net.set_bandwidth(1e6);  // 1 MB/s => 1 us per byte
    net.send_datagram(ep_a, ep_b, Bytes(1000, 0));
    kernel.run();
    ASSERT_EQ(rx.received.size(), 1u);
    EXPECT_EQ(rx.received[0].at, from_ms(10) + 1000);
}

TEST_F(NetworkFixture, PerHopLossDropsDatagrams) {
    net.set_per_hop_loss(0.05);  // over 4 hops: ~18.5 % loss
    constexpr int kN = 2000;
    for (int i = 0; i < kN; ++i) net.send_datagram(ep_a, ep_b, Bytes{1});
    kernel.run();
    const double loss_rate =
        static_cast<double>(net.stats().datagrams_dropped) / kN;
    EXPECT_NEAR(loss_rate, 1.0 - std::pow(0.95, 4), 0.03);
}

TEST_F(NetworkFixture, MoreHopsLoseMore) {
    net.set_per_hop_loss(0.05);
    Recorder rx_c(kernel);
    net.bind(ep_c, &rx_c);
    constexpr int kN = 2000;
    for (int i = 0; i < kN; ++i) {
        net.send_datagram(ep_a, ep_b, Bytes{1});  // 4 hops
        net.send_datagram(ep_a, ep_c, Bytes{1});  // 10 hops
    }
    kernel.run();
    // §5.2: responses over more router hops are lost more often.
    EXPECT_GT(rx.received.size(), rx_c.received.size());
}

TEST_F(NetworkFixture, ReliableNeverDrops) {
    net.set_per_hop_loss(0.2);
    for (int i = 0; i < 500; ++i) net.send_reliable(ep_a, ep_b, Bytes{1});
    kernel.run();
    EXPECT_EQ(rx.received.size(), 500u);
}

TEST_F(NetworkFixture, ReliableIsFifoPerPair) {
    net.set_link(a, b, {from_ms(10), from_ms(9), 4});  // heavy jitter
    for (std::uint8_t i = 0; i < 100; ++i) net.send_reliable(ep_a, ep_b, Bytes{i});
    kernel.run();
    ASSERT_EQ(rx.received.size(), 100u);
    for (std::uint8_t i = 0; i < 100; ++i) {
        EXPECT_EQ(rx.received[i].data[0], i);  // order preserved
    }
}

TEST_F(NetworkFixture, DownHostDropsTraffic) {
    net.set_host_down(b, true);
    net.send_datagram(ep_a, ep_b, Bytes{1});
    net.send_reliable(ep_a, ep_b, Bytes{2});
    kernel.run();
    EXPECT_TRUE(rx.received.empty());
    net.set_host_down(b, false);
    net.send_datagram(ep_a, ep_b, Bytes{3});
    kernel.run();
    EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(NetworkFixture, HostDyingMidFlightDropsDelivery) {
    net.send_datagram(ep_a, ep_b, Bytes{1});
    kernel.run_until(from_ms(5));  // message still in flight
    net.set_host_down(b, true);
    kernel.run();
    EXPECT_TRUE(rx.received.empty());
}

TEST_F(NetworkFixture, DownLinkDropsTraffic) {
    net.set_link_down(a, b, true);
    net.send_datagram(ep_a, ep_b, Bytes{1});
    kernel.run();
    EXPECT_TRUE(rx.received.empty());
    net.set_link_down(a, b, false);
    net.send_datagram(ep_a, ep_b, Bytes{1});
    kernel.run();
    EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(NetworkFixture, UnbindStopsDelivery) {
    net.send_datagram(ep_a, ep_b, Bytes{1});
    net.unbind(ep_b);
    kernel.run();
    EXPECT_TRUE(rx.received.empty());
    EXPECT_EQ(net.stats().datagrams_unrouteable, 1u);
}

TEST_F(NetworkFixture, MulticastScopedToRealm) {
    Recorder rx_a(kernel);
    Recorder rx_c(kernel);
    const Endpoint ep_a2{a, 101};
    net.bind(ep_a2, &rx_a);
    net.bind(ep_c, &rx_c);
    net.join_multicast(5, ep_a2);
    net.join_multicast(5, ep_b);
    net.join_multicast(5, ep_c);  // different realm
    net.send_multicast(5, ep_a, Bytes{7});
    kernel.run();
    EXPECT_EQ(rx_a.received.size(), 1u);  // same realm (other endpoint)
    EXPECT_EQ(rx.received.size(), 1u);    // same realm, host b
    EXPECT_TRUE(rx_c.received.empty());   // realm-b never sees it (§9)
}

TEST_F(NetworkFixture, MulticastNotDeliveredToSender) {
    net.join_multicast(5, ep_a);
    Recorder rx_a(kernel);
    net.bind(ep_a, &rx_a);
    net.send_multicast(5, ep_a, Bytes{7});
    kernel.run();
    EXPECT_TRUE(rx_a.received.empty());
}

TEST_F(NetworkFixture, MulticastLeave) {
    net.join_multicast(5, ep_b);
    net.leave_multicast(5, ep_b);
    net.send_multicast(5, ep_a, Bytes{1});
    kernel.run();
    EXPECT_TRUE(rx.received.empty());
}

TEST_F(NetworkFixture, HostClockAppliesSkew) {
    const HostId skewed = net.add_host({"d", "SiteD", "realm-a", from_ms(123)});
    EXPECT_EQ(net.host_clock(skewed).now(), kernel.now() + from_ms(123));
    EXPECT_EQ(net.true_clock().now(), kernel.now());
}

TEST_F(NetworkFixture, BadHostIdThrows) {
    EXPECT_THROW(net.send_datagram({999, 1}, ep_b, Bytes{}), std::out_of_range);
    EXPECT_THROW((void)net.host(999), std::out_of_range);
    EXPECT_THROW((void)net.host_clock(999), std::out_of_range);
}

TEST_F(NetworkFixture, NullHandlerRejected) {
    EXPECT_THROW(net.bind(ep_a, nullptr), std::invalid_argument);
}

TEST(SiteCatalog, TableOneAnalogue) {
    EXPECT_EQ(all_sites().size(), kSiteCount);
    // Latency matrix is symmetric with near-zero diagonal.
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        for (std::size_t j = 0; j < kSiteCount; ++j) {
            const auto si = static_cast<Site>(i);
            const auto sj = static_cast<Site>(j);
            EXPECT_DOUBLE_EQ(site_latency_ms(si, sj), site_latency_ms(sj, si));
            EXPECT_EQ(site_hops(si, sj), site_hops(sj, si));
        }
        EXPECT_LT(site_latency_ms(static_cast<Site>(i), static_cast<Site>(i)), 1.0);
    }
    // Cardiff is the farthest site from Bloomington (transatlantic).
    for (std::size_t i = 1; i + 1 < kSiteCount; ++i) {
        EXPECT_LT(site_latency_ms(Site::kBloomington, static_cast<Site>(i)),
                  site_latency_ms(Site::kBloomington, Site::kCardiff));
    }
}

TEST(SiteCatalog, WanDeploymentWiresLinks) {
    Kernel kernel;
    SimNetwork net(kernel, 7);
    const WanDeployment wan(net, {Site::kBloomington, Site::kCardiff, Site::kUmn});
    ASSERT_EQ(wan.size(), 3u);
    const LinkQuality q = net.link(wan.host(0), wan.host(1));
    EXPECT_EQ(q.one_way, from_ms(site_latency_ms(Site::kBloomington, Site::kCardiff)));
    EXPECT_EQ(q.hops, site_hops(Site::kBloomington, Site::kCardiff));
    // Realms carried over from the catalog.
    EXPECT_EQ(net.realm_of(wan.host(0)), "iu-lab");
    EXPECT_EQ(net.realm_of(wan.host(1)), "cardiff");
}

TEST(SiteCatalog, RenderContainsMachines) {
    const std::string table = render_site_catalog();
    EXPECT_NE(table.find("complexity.ucs.indiana.edu"), std::string::npos);
    EXPECT_NE(table.find("bouscat.cs.cf.ac.uk"), std::string::npos);
    EXPECT_NE(table.find("webis.msi.umn.edu"), std::string::npos);
}

}  // namespace
}  // namespace narada::sim
