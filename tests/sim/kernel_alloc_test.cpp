// Steady-state allocation audit of the pooled simulation kernel.
//
// A process-global counting allocator (operator new/delete overrides, which
// is why this test lives in its own binary) proves the swarm's kernel
// guarantee: once the node pool and heap are warm, the raw-callback path
// (schedule_raw_at / fire / reschedule) touches the heap ZERO times per
// event, and the node pool plateaus at the high-water mark of concurrently
// scheduled events.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace narada::sim {
namespace {

struct FireCounter {
    std::uint64_t fired = 0;
    static void on_fire(void* ctx, std::uint64_t) {
        static_cast<FireCounter*>(ctx)->fired += 1;
    }
};

TEST(KernelAllocTest, RawPathIsAllocationFreeInSteadyState) {
    Kernel kernel;
    FireCounter counter;

    // Warm-up: push the pool and heap to the burst depth once.
    constexpr std::size_t kBurst = 256;
    for (std::size_t i = 0; i < kBurst; ++i) {
        kernel.schedule_raw_after(static_cast<DurationUs>(i + 1), &FireCounter::on_fire,
                                  &counter);
    }
    kernel.run();

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int round = 0; round < 64; ++round) {
        for (std::size_t i = 0; i < kBurst; ++i) {
            kernel.schedule_raw_after(static_cast<DurationUs>(i + 1), &FireCounter::on_fire,
                                      &counter);
        }
        kernel.run();
    }
    const std::uint64_t delta = g_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u) << delta << " allocations across " << 64 * kBurst << " raw events";
    EXPECT_EQ(counter.fired, 65u * kBurst);
}

TEST(KernelAllocTest, ReserveMakesColdStartAllocationFree) {
    Kernel kernel;
    kernel.reserve(1024);
    FireCounter counter;

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < 1024; ++i) {
        kernel.schedule_raw_after(static_cast<DurationUs>(i + 1), &FireCounter::on_fire,
                                  &counter);
    }
    kernel.run();
    const std::uint64_t delta = g_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u) << delta << " allocations despite reserve(1024)";
    EXPECT_EQ(counter.fired, 1024u);
}

TEST(KernelAllocTest, CancelPathDoesNotAllocate) {
    Kernel kernel;
    kernel.reserve(128);
    FireCounter counter;

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int round = 0; round < 32; ++round) {
        TimerId ids[128];
        for (std::size_t i = 0; i < 128; ++i) {
            ids[i] = kernel.schedule_raw_after(static_cast<DurationUs>(i + 1),
                                               &FireCounter::on_fire, &counter);
        }
        for (std::size_t i = 0; i < 128; i += 2) kernel.cancel(ids[i]);
        kernel.run();
    }
    const std::uint64_t delta = g_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u) << delta << " allocations across schedule/cancel churn";
    EXPECT_EQ(counter.fired, 32u * 64u);
}

struct Rescheduler {
    Kernel* kernel = nullptr;
    std::uint64_t remaining = 0;
    static void on_fire(void* ctx, std::uint64_t) {
        auto* self = static_cast<Rescheduler*>(ctx);
        if (self->remaining == 0) return;
        self->remaining -= 1;
        self->kernel->schedule_raw_after(1, &Rescheduler::on_fire, self);
    }
};

TEST(KernelAllocTest, NodePoolPlateausUnderSelfRescheduling) {
    Kernel kernel;
    Rescheduler chain{&kernel, 100'000};
    kernel.schedule_raw_after(1, &Rescheduler::on_fire, &chain);
    kernel.run();  // prime: the chain reuses one node over and over

    EXPECT_EQ(chain.remaining, 0u);
    // One live node at a time (plus the initial): the pool must not grow
    // with the number of events executed.
    EXPECT_LE(kernel.pooled_nodes(), 4u)
        << kernel.pooled_nodes() << " pooled nodes for a depth-1 chain of 100k events";
}

TEST(KernelAllocTest, NodePoolPlateausAtConcurrencyHighWater) {
    Kernel kernel;
    FireCounter counter;
    for (int round = 0; round < 16; ++round) {
        for (std::size_t i = 0; i < 512; ++i) {
            kernel.schedule_raw_after(static_cast<DurationUs>(i + 1), &FireCounter::on_fire,
                                      &counter);
        }
        kernel.run();
    }
    // 512 concurrent events ever; the pool tracks that high-water mark, not
    // the 8192 total events executed.
    EXPECT_LE(kernel.pooled_nodes(), 512u + 8u);
}

}  // namespace
}  // namespace narada::sim
