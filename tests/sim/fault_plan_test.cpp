// FaultPlan / ChaosInjector: deterministic scripted outages on the
// virtual-time kernel.
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace narada::sim {
namespace {

struct ChaosFixture : ::testing::Test {
    ChaosFixture() : network(kernel, /*seed=*/99) {
        for (int i = 0; i < 4; ++i) {
            hosts.push_back(network.add_host({"h" + std::to_string(i), "site", "realm"}));
        }
    }

    void run_to(TimeUs t) { kernel.run_until(t); }

    Kernel kernel;
    SimNetwork network;
    std::vector<HostId> hosts;
};

TEST_F(ChaosFixture, CrashAndRestartWindow) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.crash(1 * kSecond, hosts[0], 2 * kSecond);
    injector.run(plan);

    run_to(from_ms(500));
    EXPECT_FALSE(network.host_down(hosts[0]));
    run_to(from_ms(1500));
    EXPECT_TRUE(network.host_down(hosts[0]));
    run_to(from_ms(3500));
    EXPECT_FALSE(network.host_down(hosts[0]));
    EXPECT_EQ(injector.stats().crashes, 1u);
    EXPECT_EQ(injector.stats().restarts, 1u);
    EXPECT_TRUE(injector.done());
    EXPECT_EQ(injector.plan_end(), 3 * kSecond);
}

TEST_F(ChaosFixture, PermanentCrashNeverRestarts) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.crash(1 * kSecond, hosts[1], /*down_for=*/0);
    injector.run(plan);
    run_to(60 * kSecond);
    EXPECT_TRUE(network.host_down(hosts[1]));
    EXPECT_EQ(injector.stats().restarts, 0u);
}

TEST_F(ChaosFixture, PartitionCutsEveryCrossLinkThenHeals) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.partition(1 * kSecond, {hosts[0], hosts[1]}, {hosts[2], hosts[3]}, 2 * kSecond);
    injector.run(plan);

    run_to(from_ms(1500));
    EXPECT_TRUE(network.link_down(hosts[0], hosts[2]));
    EXPECT_TRUE(network.link_down(hosts[1], hosts[3]));
    EXPECT_FALSE(network.link_down(hosts[0], hosts[1]));  // same side intact
    EXPECT_FALSE(network.link_down(hosts[2], hosts[3]));

    run_to(from_ms(3500));
    EXPECT_FALSE(network.link_down(hosts[0], hosts[2]));
    EXPECT_FALSE(network.link_down(hosts[1], hosts[3]));
    EXPECT_EQ(injector.stats().partitions, 1u);
    EXPECT_EQ(injector.stats().partition_heals, 1u);
}

TEST_F(ChaosFixture, LossStormRestoresPriorLoss) {
    network.set_per_hop_loss(0.001);
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.loss_storm(1 * kSecond, 0.2, 2 * kSecond);
    injector.run(plan);

    run_to(from_ms(1500));
    EXPECT_DOUBLE_EQ(network.per_hop_loss(), 0.2);
    run_to(from_ms(3500));
    EXPECT_DOUBLE_EQ(network.per_hop_loss(), 0.001);
    EXPECT_EQ(injector.stats().loss_storms, 1u);
}

TEST_F(ChaosFixture, SkewStepIsOneWay) {
    const DurationUs before = network.clock_skew(hosts[2]);
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.skew_step(1 * kSecond, hosts[2], from_ms(250));
    injector.run(plan);
    run_to(10 * kSecond);
    EXPECT_EQ(network.clock_skew(hosts[2]), before + from_ms(250));
    EXPECT_EQ(injector.stats().skew_steps, 1u);
    // duration is ignored: nothing reverts the step.
    EXPECT_EQ(injector.plan_end(), 1 * kSecond);
}

TEST_F(ChaosFixture, LinkFlap) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.cut_link(1 * kSecond, hosts[0], hosts[1], 1 * kSecond);
    injector.run(plan);
    run_to(from_ms(1500));
    EXPECT_TRUE(network.link_down(hosts[0], hosts[1]));
    run_to(from_ms(2500));
    EXPECT_FALSE(network.link_down(hosts[0], hosts[1]));
    EXPECT_EQ(injector.stats().link_cuts, 1u);
    EXPECT_EQ(injector.stats().link_heals, 1u);
}

TEST_F(ChaosFixture, AsymmetricLossIsDirectedAndReverts) {
    network.set_per_hop_loss(0.001);
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.asymmetric_loss(1 * kSecond, hosts[0], hosts[1], 0.5, 2 * kSecond);
    injector.run(plan);

    run_to(from_ms(1500));
    EXPECT_DOUBLE_EQ(network.directed_loss(hosts[0], hosts[1]), 0.5);
    // Only the stated direction gets an override; the reverse path (and the
    // ambient per-hop loss) are untouched.
    EXPECT_DOUBLE_EQ(network.directed_loss(hosts[1], hosts[0]), 0.0);
    EXPECT_DOUBLE_EQ(network.per_hop_loss(), 0.001);

    run_to(from_ms(3500));
    EXPECT_DOUBLE_EQ(network.directed_loss(hosts[0], hosts[1]), 0.0)
        << "revert must clear the override so the pair falls back to ambient loss";
    EXPECT_EQ(injector.stats().asymmetric_losses, 1u);
    EXPECT_TRUE(injector.done());
}

TEST_F(ChaosFixture, BurstReorderSetsAndRestoresKnobs) {
    network.set_reorder(0.01, from_ms(2));  // pre-existing mild reordering
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.burst_reorder(1 * kSecond, 0.4, from_ms(50), 2 * kSecond);
    injector.run(plan);

    run_to(from_ms(1500));
    EXPECT_DOUBLE_EQ(network.reorder_probability(), 0.4);
    EXPECT_EQ(network.reorder_max_extra(), from_ms(50));

    run_to(from_ms(3500));
    // The wave puts back what it found, not zero.
    EXPECT_DOUBLE_EQ(network.reorder_probability(), 0.01);
    EXPECT_EQ(network.reorder_max_extra(), from_ms(2));
    EXPECT_EQ(injector.stats().reorder_storms, 1u);
}

TEST_F(ChaosFixture, RollingCrashesStaggerAndOverlap) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    // stagger (2 s) < down_for (5 s): consecutive outages overlap.
    plan.rolling_crashes(1 * kSecond, {hosts[0], hosts[1], hosts[2]},
                         /*down_for=*/5 * kSecond, /*stagger=*/2 * kSecond);
    ASSERT_EQ(plan.actions.size(), 3u);
    EXPECT_EQ(plan.actions[0].at, 1 * kSecond);
    EXPECT_EQ(plan.actions[1].at, 3 * kSecond);
    EXPECT_EQ(plan.actions[2].at, 5 * kSecond);
    injector.run(plan);

    run_to(from_ms(4000));  // hosts 0 and 1 down together, 2 still up
    EXPECT_TRUE(network.host_down(hosts[0]));
    EXPECT_TRUE(network.host_down(hosts[1]));
    EXPECT_FALSE(network.host_down(hosts[2]));
    run_to(from_ms(6500));  // host 0 restarted, 1 and 2 down
    EXPECT_FALSE(network.host_down(hosts[0]));
    EXPECT_TRUE(network.host_down(hosts[1]));
    EXPECT_TRUE(network.host_down(hosts[2]));
    run_to(from_ms(10500));  // everyone restarted
    for (int i = 0; i < 3; ++i) EXPECT_FALSE(network.host_down(hosts[i]));
    EXPECT_EQ(injector.stats().crashes, 3u);
    EXPECT_EQ(injector.stats().restarts, 3u);
    EXPECT_EQ(plan.duration(), 10 * kSecond);
}

TEST_F(ChaosFixture, FlappingPartitionRepeatsWithGaps) {
    ChaosInjector injector(kernel, network);
    FaultPlan plan;
    plan.flapping_partition(1 * kSecond, {hosts[0]}, {hosts[1], hosts[2]},
                            /*rounds=*/3, /*down_for=*/2 * kSecond, /*gap=*/1 * kSecond);
    ASSERT_EQ(plan.actions.size(), 3u);
    injector.run(plan);

    auto cut = [&] { return network.link_down(hosts[0], hosts[1]); };
    run_to(from_ms(1500));
    EXPECT_TRUE(cut());  // round 1: [1, 3)
    run_to(from_ms(3500));
    EXPECT_FALSE(cut());  // healed gap: [3, 4)
    run_to(from_ms(4500));
    EXPECT_TRUE(cut());  // round 2: [4, 6)
    run_to(from_ms(6500));
    EXPECT_FALSE(cut());
    run_to(from_ms(7500));
    EXPECT_TRUE(cut());  // round 3: [7, 9)
    run_to(from_ms(9500));
    EXPECT_FALSE(cut());
    EXPECT_EQ(injector.stats().partitions, 3u);
    EXPECT_EQ(injector.stats().partition_heals, 3u);
    EXPECT_EQ(plan.duration(), 9 * kSecond);
}

TEST(FaultPlanTest, DurationIsLastRevert) {
    FaultPlan plan;
    plan.crash(1 * kSecond, 0, 5 * kSecond).cut_link(2 * kSecond, 0, 1, 1 * kSecond);
    EXPECT_EQ(plan.duration(), 6 * kSecond);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, RandomCrashesDeterministicPerSeed) {
    const std::vector<HostId> hosts{3, 4, 5, 6};
    const FaultPlan a = FaultPlan::random_crashes(11, hosts, 6, 60 * kSecond,
                                                  1 * kSecond, 5 * kSecond);
    const FaultPlan b = FaultPlan::random_crashes(11, hosts, 6, 60 * kSecond,
                                                  1 * kSecond, 5 * kSecond);
    ASSERT_EQ(a.actions.size(), 6u);
    for (std::size_t i = 0; i < a.actions.size(); ++i) {
        EXPECT_EQ(a.actions[i].at, b.actions[i].at);
        EXPECT_EQ(a.actions[i].host, b.actions[i].host);
        EXPECT_EQ(a.actions[i].duration, b.actions[i].duration);
        EXPECT_GE(a.actions[i].duration, 1 * kSecond);
        EXPECT_LE(a.actions[i].duration, 5 * kSecond);
        EXPECT_LE(a.actions[i].at, 60 * kSecond);
        if (i > 0) EXPECT_GE(a.actions[i].at, a.actions[i - 1].at);  // sorted
    }

    const FaultPlan c = FaultPlan::random_crashes(12, hosts, 6, 60 * kSecond,
                                                  1 * kSecond, 5 * kSecond);
    bool differs = false;
    for (std::size_t i = 0; i < c.actions.size(); ++i) {
        if (c.actions[i].at != a.actions[i].at || c.actions[i].host != a.actions[i].host) {
            differs = true;
        }
    }
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace narada::sim
