#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace narada::sim {
namespace {

TEST(Kernel, StartsAtZero) {
    Kernel k;
    EXPECT_EQ(k.now(), 0);
    EXPECT_TRUE(k.empty());
    EXPECT_FALSE(k.step());
}

TEST(Kernel, ExecutesInTimeOrder) {
    Kernel k;
    std::vector<int> order;
    k.schedule_at(30, [&] { order.push_back(3); });
    k.schedule_at(10, [&] { order.push_back(1); });
    k.schedule_at(20, [&] { order.push_back(2); });
    k.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(k.now(), 30);
}

TEST(Kernel, FifoAtSameTimestamp) {
    Kernel k;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        k.schedule_at(5, [&order, i] { order.push_back(i); });
    }
    k.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Kernel, ScheduleAfterUsesCurrentTime) {
    Kernel k;
    TimeUs fired_at = -1;
    k.schedule_at(100, [&] {
        k.schedule_after(50, [&] { fired_at = k.now(); });
    });
    k.run();
    EXPECT_EQ(fired_at, 150);
}

TEST(Kernel, PastDeadlineFiresImmediately) {
    Kernel k;
    k.schedule_at(100, [] {});
    k.run();
    bool fired = false;
    k.schedule_at(10, [&] { fired = true; });  // in the past now
    k.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(k.now(), 100);  // time never goes backwards
}

TEST(Kernel, NegativeDelayClamped) {
    Kernel k;
    bool fired = false;
    k.schedule_after(-5, [&] { fired = true; });
    k.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(k.now(), 0);
}

TEST(Kernel, CancelPreventsExecution) {
    Kernel k;
    bool fired = false;
    const TimerId id = k.schedule_at(10, [&] { fired = true; });
    k.cancel(id);
    k.run();
    EXPECT_FALSE(fired);
}

TEST(Kernel, CancelInvalidIsNoop) {
    Kernel k;
    k.cancel(kInvalidTimer);
    k.cancel(999999);
    bool fired = false;
    k.schedule_at(1, [&] { fired = true; });
    k.run();
    EXPECT_TRUE(fired);
}

TEST(Kernel, RunUntilStopsAtDeadline) {
    Kernel k;
    std::vector<TimeUs> fired;
    for (TimeUs t : {10, 20, 30, 40}) {
        k.schedule_at(t, [&fired, &k] { fired.push_back(k.now()); });
    }
    k.run_until(25);
    EXPECT_EQ(fired, (std::vector<TimeUs>{10, 20}));
    EXPECT_EQ(k.now(), 25);  // time advanced to the deadline
    k.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(Kernel, RunUntilSkipsCancelledHead) {
    Kernel k;
    bool late_fired = false;
    const TimerId id = k.schedule_at(10, [] {});
    k.schedule_at(50, [&] { late_fired = true; });
    k.cancel(id);
    k.run_until(20);
    // The cancelled head must not cause the later event to run early.
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(k.now(), 20);
}

TEST(Kernel, EventsScheduledDuringRunExecute) {
    Kernel k;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) k.schedule_after(10, chain);
    };
    k.schedule_after(0, chain);
    k.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(k.now(), 40);
}

TEST(Kernel, RunawayLoopHitsBudget) {
    Kernel k;
    std::function<void()> forever = [&] { k.schedule_after(1, forever); };
    k.schedule_after(0, forever);
    EXPECT_THROW(k.run(/*max_events=*/1000), std::runtime_error);
}

TEST(Kernel, ClockTracksVirtualTime) {
    Kernel k;
    const Clock& clock = k.clock();
    EXPECT_EQ(clock.now(), 0);
    k.schedule_at(77, [] {});
    k.run();
    EXPECT_EQ(clock.now(), 77);
}

TEST(Kernel, SchedulerInterface) {
    Kernel k;
    Scheduler& s = k;
    bool fired = false;
    const TimerHandle h = s.schedule(10, [&] { fired = true; });
    EXPECT_NE(h, kInvalidTimerHandle);
    s.cancel_timer(h);
    k.run();
    EXPECT_FALSE(fired);
}

TEST(Kernel, PendingCountExcludesCancelled) {
    Kernel k;
    const TimerId a = k.schedule_at(10, [] {});
    k.schedule_at(20, [] {});
    EXPECT_EQ(k.pending(), 2u);
    k.cancel(a);
    EXPECT_EQ(k.pending(), 1u);
    EXPECT_FALSE(k.empty());
}

}  // namespace
}  // namespace narada::sim
