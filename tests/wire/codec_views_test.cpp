// Tests for the zero-copy codec fast path (DESIGN.md transport section):
// ByteReader's borrowed-view accessors and the ByteWriter pooled-buffer
// round trips for the three discovery messages.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "discovery/messages.hpp"
#include "wire/codec.hpp"

namespace narada::wire {
namespace {

TEST(Codec, StrViewAliasesBuffer) {
    ByteWriter w;
    w.str("aliased payload");
    const Bytes encoded = w.bytes();
    ByteReader r(encoded);
    const std::string_view view = r.str_view();
    EXPECT_EQ(view, "aliased payload");
    // The view points into the encoded buffer, not at a copy.
    EXPECT_GE(view.data(), reinterpret_cast<const char*>(encoded.data()));
    EXPECT_LT(view.data(), reinterpret_cast<const char*>(encoded.data() + encoded.size()));
    EXPECT_TRUE(r.at_end());
}

TEST(Codec, BlobViewAliasesBuffer) {
    ByteWriter w;
    w.blob(Bytes{9, 8, 7, 6});
    const Bytes encoded = w.bytes();
    ByteReader r(encoded);
    const auto view = r.blob_view();
    ASSERT_EQ(view.size(), 4u);
    EXPECT_EQ(view[0], 9);
    EXPECT_EQ(view.data(), encoded.data() + 4);  // right past the length prefix
    EXPECT_TRUE(r.at_end());
}

TEST(Codec, ViewMatchesOwnedAccessor) {
    ByteWriter w;
    w.str("twice-read");
    w.blob(Bytes{1, 2, 3});
    const Bytes encoded = w.bytes();

    ByteReader owned(encoded);
    ByteReader borrowed(encoded);
    EXPECT_EQ(owned.str(), borrowed.str_view());
    const Bytes owned_blob = owned.blob();
    const auto view = borrowed.blob_view();
    ASSERT_EQ(owned_blob.size(), view.size());
    EXPECT_EQ(std::memcmp(owned_blob.data(), view.data(), view.size()), 0);
    EXPECT_EQ(owned.position(), borrowed.position());
}

TEST(Codec, StrViewTruncatedLengthThrows) {
    ByteWriter w;
    w.u32(100);  // length prefix promising 100 bytes...
    w.raw(reinterpret_cast<const std::uint8_t*>("abc"), 3);  // ...with only 3
    ByteReader r(w.bytes());
    EXPECT_THROW((void)r.str_view(), WireError);
}

TEST(Codec, BorrowedViewsRespectFrameCap) {
    ByteWriter w;
    w.u32(kMaxFieldLength + 1);
    ByteReader r(w.bytes());
    // The cap fires on the length prefix alone — the body does not exist.
    EXPECT_THROW((void)r.str_view(), FrameTooLargeError);

    ByteWriter small;
    small.str("0123456789");
    ByteReader tight(small.bytes());
    tight.set_max_field_length(4);
    try {
        (void)tight.blob_view();
        FAIL() << "expected FrameTooLargeError";
    } catch (const FrameTooLargeError& e) {
        EXPECT_EQ(e.length(), 10u);
        EXPECT_EQ(e.limit(), 4u);
    }
}

TEST(Codec, SkipSteppsOverFieldsAndChecksBounds) {
    ByteWriter w;
    w.u32(7);
    w.str("skipped");
    ByteReader r(w.bytes());
    r.skip(4);
    EXPECT_EQ(r.str_view(), "skipped");
    EXPECT_THROW(r.skip(1), WireError);  // nothing left
}

TEST(Codec, SpanFromCapturesMessageRegion) {
    ByteWriter w;
    w.u8(0x7F);  // pretend type octet
    w.str("region");
    w.u32(42);
    const Bytes encoded = w.bytes();
    ByteReader r(encoded);
    (void)r.u8();
    const std::size_t start = r.position();
    (void)r.str_view();
    (void)r.u32();
    const auto region = r.span_from(start);
    EXPECT_EQ(region.data(), encoded.data() + 1);
    EXPECT_EQ(region.size(), encoded.size() - 1);
    // A region captured this way must re-decode to the same fields.
    ByteReader again(region);
    EXPECT_EQ(again.str_view(), "region");
    EXPECT_EQ(again.u32(), 42u);
    EXPECT_THROW((void)r.span_from(r.position() + 1), WireError);
}

TEST(Codec, ExpectEndDetectsTailGarbageAfterViews) {
    ByteWriter w;
    w.str("payload");
    w.u8(0xEE);  // trailing garbage
    ByteReader r(w.bytes());
    (void)r.str_view();
    EXPECT_FALSE(r.at_end());
    EXPECT_THROW(r.expect_end(), WireError);
}

TEST(Codec, RecycledWriterKeepsCapacityAndClearsContent) {
    ByteWriter first(std::size_t{256});
    first.str("old content that must not leak");
    Bytes recycled = first.take();
    const std::uint8_t* storage = recycled.data();
    const std::size_t capacity = recycled.capacity();
    ASSERT_GE(capacity, 256u);

    ByteWriter second((Bytes(std::move(recycled))));
    second.str("new");
    const Bytes& out = second.bytes();
    EXPECT_EQ(out.data(), storage);  // same allocation, reused
    EXPECT_EQ(out.capacity(), capacity);
    ByteReader r(out);
    EXPECT_EQ(r.str_view(), "new");
    EXPECT_TRUE(r.at_end());
}

// --- pooled round trips for the three discovery messages -----------------

discovery::BrokerAdvertisement sample_ad(Rng& rng) {
    discovery::BrokerAdvertisement ad;
    ad.broker_id = Uuid::random(rng);
    ad.broker_name = "broker-7";
    ad.hostname = "host.example.edu";
    ad.endpoint = Endpoint{0x0A000001, 9000};
    ad.protocols = {"tcp", "udp", "niagara"};
    ad.realm = "cs.indiana.edu";
    ad.geo_location = "39.17N,86.52W";
    ad.institution = "IU";
    return ad;
}

discovery::DiscoveryRequest sample_request(Rng& rng) {
    discovery::DiscoveryRequest request;
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "client-3";
    request.reply_to = Endpoint{0x0A000002, 4001};
    request.protocols = {"udp"};
    request.credential = "secret";
    request.realm = "realm-a";
    request.trace.trace_id = Uuid::random(rng);
    request.trace.parent_span = 77;
    return request;
}

discovery::DiscoveryResponse sample_response(Rng& rng) {
    discovery::DiscoveryResponse response;
    response.request_id = Uuid::random(rng);
    response.sent_utc = 1'234'567;
    response.broker_id = Uuid::random(rng);
    response.broker_name = "broker-2";
    response.hostname = "b2.example.edu";
    response.endpoint = Endpoint{0x0A000003, 9100};
    response.protocols = {"tcp", "udp"};
    response.metrics.connections = 17;
    response.metrics.broker_links = 3;
    response.metrics.cpu_load = 0.25;
    response.metrics.total_memory = 1ull << 31;
    response.metrics.free_memory = 1ull << 30;
    response.overloaded = true;
    response.trace.trace_id = Uuid::random(rng);
    response.trace.parent_span = 99;
    return response;
}

// Encode `msg` through a recycled buffer sized by measured_size(); decode a
// borrowed view and an owned struct back and check all three agree.
template <typename Message, typename View>
void pooled_round_trip(const Message& original) {
    // A warm pooled buffer, as PosixTransport::acquire_buffer returns.
    Bytes pooled;
    pooled.reserve(1024);
    const std::uint8_t* storage = pooled.data();

    ByteWriter writer((Bytes(std::move(pooled))));
    writer.reserve(original.measured_size());
    original.encode(writer);
    const Bytes encoded = writer.take();
    EXPECT_EQ(encoded.size(), original.measured_size());  // meter in lockstep
    EXPECT_EQ(encoded.data(), storage);                   // no reallocation

    ByteReader view_reader(encoded);
    const View view = View::peek(view_reader);
    EXPECT_TRUE(view_reader.at_end());
    EXPECT_EQ(view.raw.data(), encoded.data());
    EXPECT_EQ(view.raw.size(), encoded.size());
    EXPECT_EQ(view.materialize(), original);

    ByteReader owned_reader(encoded);
    EXPECT_EQ(Message::decode(owned_reader), original);
}

TEST(Codec, PooledRoundTripAdvertisement) {
    Rng rng(11);
    pooled_round_trip<discovery::BrokerAdvertisement, discovery::BrokerAdvertisementView>(
        sample_ad(rng));
}

TEST(Codec, PooledRoundTripRequest) {
    Rng rng(22);
    pooled_round_trip<discovery::DiscoveryRequest, discovery::DiscoveryRequestView>(
        sample_request(rng));
}

TEST(Codec, PooledRoundTripResponse) {
    Rng rng(33);
    pooled_round_trip<discovery::DiscoveryResponse, discovery::DiscoveryResponseView>(
        sample_response(rng));
}

TEST(Codec, ViewFieldsAliasEncodedBuffer) {
    Rng rng(44);
    const discovery::DiscoveryRequest original = sample_request(rng);
    ByteWriter writer;
    original.encode(writer);
    const Bytes encoded = writer.take();

    ByteReader reader(encoded);
    const auto view = discovery::DiscoveryRequestView::peek(reader);
    EXPECT_EQ(view.request_id, original.request_id);
    EXPECT_EQ(view.requester_hostname, original.requester_hostname);
    EXPECT_EQ(view.credential, original.credential);
    EXPECT_EQ(view.realm, original.realm);
    EXPECT_EQ(view.trace.trace_id, original.trace.trace_id);
    // Borrowed fields alias the buffer — the whole point of the fast path.
    const auto* begin = reinterpret_cast<const char*>(encoded.data());
    const auto* end = begin + encoded.size();
    EXPECT_GE(view.requester_hostname.data(), begin);
    EXPECT_LT(view.requester_hostname.data(), end);
    EXPECT_GE(view.credential.data(), begin);
    EXPECT_LT(view.credential.data(), end);
}

TEST(Codec, ViewPeekRejectsTruncatedMessage) {
    Rng rng(55);
    const discovery::DiscoveryRequest original = sample_request(rng);
    ByteWriter writer;
    original.encode(writer);
    Bytes encoded = writer.take();
    encoded.resize(encoded.size() - 3);  // chop the tail
    ByteReader reader(encoded);
    EXPECT_THROW((void)discovery::DiscoveryRequestView::peek(reader), WireError);
}

}  // namespace
}  // namespace narada::wire
