// Decoder robustness: every protocol decoder must survive arbitrary bytes
// (throwing wire::WireError at worst — never crashing, hanging, or
// allocating absurd amounts) and must survive every truncation of a valid
// encoding. A hostile datagram can reach any node, so this is a security
// property of the whole system.
#include <gtest/gtest.h>

#include "broker/event.hpp"
#include "common/rng.hpp"
#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"
#include "discovery/messages.hpp"
#include "services/fragmentation.hpp"
#include "wire/codec.hpp"

namespace narada {
namespace {

using DecoderFn = void (*)(wire::ByteReader&);

struct NamedDecoder {
    const char* name;
    DecoderFn decode;
};

const NamedDecoder kDecoders[] = {
    {"Event", [](wire::ByteReader& r) { (void)broker::Event::decode(r); }},
    {"BrokerAdvertisement",
     [](wire::ByteReader& r) { (void)discovery::BrokerAdvertisement::decode(r); }},
    {"DiscoveryRequest",
     [](wire::ByteReader& r) { (void)discovery::DiscoveryRequest::decode(r); }},
    {"DiscoveryResponse",
     [](wire::ByteReader& r) { (void)discovery::DiscoveryResponse::decode(r); }},
    {"Fragment", [](wire::ByteReader& r) { (void)services::Fragment::decode(r); }},
    {"Certificate", [](wire::ByteReader& r) { (void)crypto::Certificate::decode(r); }},
    {"SecureEnvelope", [](wire::ByteReader& r) { (void)crypto::SecureEnvelope::decode(r); }},
};

TEST(WireFuzz, RandomBytesNeverCrashDecoders) {
    Rng rng(0xF0221);
    for (int iteration = 0; iteration < 500; ++iteration) {
        const std::size_t len = rng.bounded(512);
        Bytes junk(len);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
        for (const auto& decoder : kDecoders) {
            wire::ByteReader reader(junk);
            try {
                decoder.decode(reader);
            } catch (const wire::WireError&) {
                // Expected for malformed input.
            }
        }
    }
}

TEST(WireFuzz, BitFlippedValidMessagesNeverCrash) {
    Rng rng(0xF0222);
    // A valid DiscoveryResponse, then every single-bit corruption.
    discovery::DiscoveryResponse response;
    response.request_id = Uuid::random(rng);
    response.broker_id = Uuid::random(rng);
    response.broker_name = "bouscat.cs.cf.ac.uk/broker4";
    response.hostname = "bouscat.cs.cf.ac.uk";
    response.endpoint = {4, 7000};
    response.protocols = {"tcp", "udp"};
    wire::ByteWriter writer;
    response.encode(writer);
    const Bytes valid = writer.take();

    for (std::size_t byte = 0; byte < valid.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            Bytes mutated = valid;
            mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
            wire::ByteReader reader(mutated);
            try {
                (void)discovery::DiscoveryResponse::decode(reader);
            } catch (const wire::WireError&) {
            }
        }
    }
}

TEST(WireFuzz, EveryTruncationOfValidEncodingsThrowsOrParses) {
    Rng rng(0xF0223);
    // Valid encodings for each message type.
    std::vector<std::pair<const NamedDecoder*, Bytes>> cases;

    {
        broker::Event event;
        event.id = Uuid::random(rng);
        event.topic = "Services/BrokerDiscoveryNodes/BrokerAdvertisement";
        event.payload = Bytes(64, 0x42);
        event.headers = {{"k", "v"}};
        wire::ByteWriter w;
        event.encode(w);
        cases.emplace_back(&kDecoders[0], w.take());
    }
    {
        discovery::BrokerAdvertisement ad;
        ad.broker_id = Uuid::random(rng);
        ad.broker_name = "b";
        ad.hostname = "h";
        ad.protocols = {"tcp"};
        wire::ByteWriter w;
        ad.encode(w);
        cases.emplace_back(&kDecoders[1], w.take());
    }
    {
        discovery::DiscoveryRequest req;
        req.request_id = Uuid::random(rng);
        req.reply_to = {1, 2};
        req.protocols = {"udp"};
        wire::ByteWriter w;
        req.encode(w);
        cases.emplace_back(&kDecoders[2], w.take());
    }
    {
        services::Fragment f;
        f.payload_id = Uuid::random(rng);
        f.count = 2;
        f.total_size = 10;
        f.chunk = Bytes(5, 1);
        wire::ByteWriter w;
        f.encode(w);
        cases.emplace_back(&kDecoders[4], w.take());
    }

    for (const auto& [decoder, valid] : cases) {
        // The full encoding must parse.
        {
            wire::ByteReader reader(valid);
            EXPECT_NO_THROW(decoder->decode(reader)) << decoder->name;
        }
        // Every strict prefix must throw (no silent partial parses).
        for (std::size_t len = 0; len < valid.size(); ++len) {
            Bytes prefix(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
            wire::ByteReader reader(prefix);
            EXPECT_THROW(decoder->decode(reader), wire::WireError)
                << decoder->name << " len=" << len;
        }
    }
}

TEST(WireFuzz, LengthPrefixBombsRejectedWithoutAllocation) {
    // Craft messages whose length prefixes announce gigabytes.
    Rng rng(0xF0224);
    for (int iteration = 0; iteration < 50; ++iteration) {
        wire::ByteWriter w;
        w.uuid(Uuid::random(rng));      // plausible uuid field
        w.u32(0x7FFFFFFF);              // huge string length
        w.raw(reinterpret_cast<const std::uint8_t*>("x"), 1);
        const Bytes bomb = w.take();
        for (const auto& decoder : kDecoders) {
            wire::ByteReader reader(bomb);
            try {
                decoder.decode(reader);
            } catch (const wire::WireError&) {
            }
        }
    }
}

TEST(WireFuzz, OversizedLengthPrefixThrowsTypedErrorBeforeAllocation) {
    // A length prefix beyond the cap must raise FrameTooLargeError (a
    // WireError subtype carrying the offending length) without touching
    // the (absent) payload bytes.
    wire::ByteWriter w;
    w.u32(wire::kMaxFieldLength + 1);
    const Bytes bomb = w.take();
    wire::ByteReader reader(bomb);
    try {
        (void)reader.str();
        FAIL() << "oversized prefix must throw";
    } catch (const wire::FrameTooLargeError& e) {
        EXPECT_EQ(e.length(), wire::kMaxFieldLength + 1);
        EXPECT_EQ(e.limit(), wire::kMaxFieldLength);
    }
    // blob() enforces the same cap.
    wire::ByteReader blob_reader(bomb);
    EXPECT_THROW((void)blob_reader.blob(), wire::FrameTooLargeError);
}

TEST(WireFuzz, PerReaderFrameCapTightensTheLimit) {
    // A transport that knows its MTU can reject far smaller bombs. The
    // prefix here is under the global cap but over the reader's.
    wire::ByteWriter w;
    w.u32(4096);
    w.raw(reinterpret_cast<const std::uint8_t*>("x"), 1);
    const Bytes frame = w.take();

    wire::ByteReader strict(frame);
    strict.set_max_field_length(1024);
    EXPECT_EQ(strict.max_field_length(), 1024u);
    EXPECT_THROW((void)strict.str(), wire::FrameTooLargeError);

    // The default reader only rejects it as truncated (length is honest
    // about exceeding the buffer), not as oversized.
    wire::ByteReader lax(frame);
    try {
        (void)lax.str();
        FAIL() << "truncated payload must throw";
    } catch (const wire::FrameTooLargeError&) {
        FAIL() << "under-cap length must not be typed as oversized";
    } catch (const wire::WireError&) {
        // truncated message — expected
    }
}

TEST(WireFuzz, PerReaderCapCannotExceedGlobalCap) {
    wire::ByteWriter w;
    w.u32(wire::kMaxFieldLength + 1);
    const Bytes bomb = w.take();
    wire::ByteReader reader(bomb);
    reader.set_max_field_length(0xFFFFFFFFu);  // clamped to the global cap
    EXPECT_EQ(reader.max_field_length(), wire::kMaxFieldLength);
    EXPECT_THROW((void)reader.str(), wire::FrameTooLargeError);
}

TEST(WireFuzz, FrameTooLargeIsCatchableAsWireError) {
    // Transports catch WireError and count a dropped packet; the typed
    // subclass must keep flowing through those handlers.
    wire::ByteWriter w;
    w.u32(wire::kMaxFieldLength + 7);
    const Bytes bomb = w.take();
    wire::ByteReader reader(bomb);
    EXPECT_THROW((void)reader.str(), wire::WireError);
}

}  // namespace
}  // namespace narada
