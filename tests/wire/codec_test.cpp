#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace narada::wire {
namespace {

TEST(Codec, IntegersBigEndian) {
    ByteWriter w;
    w.u16(0x1234);
    w.u32(0xDEADBEEF);
    const Bytes& b = w.bytes();
    ASSERT_EQ(b.size(), 6u);
    EXPECT_EQ(b[0], 0x12);
    EXPECT_EQ(b[1], 0x34);
    EXPECT_EQ(b[2], 0xDE);
    EXPECT_EQ(b[3], 0xAD);
    EXPECT_EQ(b[4], 0xBE);
    EXPECT_EQ(b[5], 0xEF);
}

TEST(Codec, RoundTripAllTypes) {
    Rng rng(1);
    ByteWriter w;
    w.u8(0xAB);
    w.u16(0xCDEF);
    w.u32(0x12345678);
    w.u64(0x123456789ABCDEF0ull);
    w.i64(-42);
    w.f64(3.14159);
    w.boolean(true);
    w.boolean(false);
    w.str("hello world");
    w.blob(Bytes{1, 2, 3});
    const Uuid id = Uuid::random(rng);
    w.uuid(id);

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xCDEF);
    EXPECT_EQ(r.u32(), 0x12345678u);
    EXPECT_EQ(r.u64(), 0x123456789ABCDEF0ull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello world");
    EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
    EXPECT_EQ(r.uuid(), id);
    EXPECT_TRUE(r.at_end());
    EXPECT_NO_THROW(r.expect_end());
}

TEST(Codec, EmptyStringAndBlob) {
    ByteWriter w;
    w.str("");
    w.blob(Bytes{});
    ByteReader r(w.bytes());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.blob(), Bytes{});
}

TEST(Codec, SpecialFloats) {
    ByteWriter w;
    w.f64(0.0);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::infinity());
    w.f64(1e-300);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f64(), 0.0);
    EXPECT_EQ(r.f64(), -0.0);
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(r.f64(), 1e-300);
}

TEST(Codec, TruncatedReadsThrow) {
    ByteWriter w;
    w.u32(7);
    {
        ByteReader r(w.bytes());
        EXPECT_THROW((void)r.u64(), WireError);
    }
    {
        Bytes empty;
        ByteReader r(empty);
        EXPECT_THROW((void)r.u8(), WireError);
    }
}

TEST(Codec, TruncatedStringThrows) {
    ByteWriter w;
    w.str("hello");
    Bytes data = w.bytes();
    data.resize(data.size() - 2);  // chop the payload
    ByteReader r(data);
    EXPECT_THROW((void)r.str(), WireError);
}

TEST(Codec, HugeLengthPrefixRejectedBeforeAllocation) {
    ByteWriter w;
    w.u32(0xFFFFFFFF);  // absurd length prefix with no payload
    ByteReader r(w.bytes());
    EXPECT_THROW((void)r.str(), WireError);
    ByteReader r2(w.bytes());
    EXPECT_THROW((void)r2.blob(), WireError);
}

TEST(Codec, ExpectEndDetectsTrailingGarbage) {
    ByteWriter w;
    w.u8(1);
    w.u8(2);
    ByteReader r(w.bytes());
    (void)r.u8();
    EXPECT_THROW(r.expect_end(), WireError);
    EXPECT_EQ(r.remaining(), 1u);
}

TEST(Codec, RandomizedRoundTrip) {
    Rng rng(99);
    for (int iter = 0; iter < 200; ++iter) {
        ByteWriter w;
        std::vector<std::uint64_t> values;
        const int n = static_cast<int>(rng.bounded(20)) + 1;
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = rng.next();
            values.push_back(v);
            w.u64(v);
        }
        ByteReader r(w.bytes());
        for (std::uint64_t v : values) EXPECT_EQ(r.u64(), v);
        EXPECT_TRUE(r.at_end());
    }
}

TEST(Codec, TakeMovesBuffer) {
    ByteWriter w;
    w.u32(5);
    Bytes b = w.take();
    EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace narada::wire
