#include "common/clock.hpp"

#include <gtest/gtest.h>

namespace narada {
namespace {

TEST(ManualClock, StartsAtGivenTime) {
    ManualClock clock(100);
    EXPECT_EQ(clock.now(), 100);
}

TEST(ManualClock, AdvanceAndSet) {
    ManualClock clock;
    clock.advance(50);
    EXPECT_EQ(clock.now(), 50);
    clock.set(7);
    EXPECT_EQ(clock.now(), 7);
}

TEST(OffsetClock, AppliesOffset) {
    ManualClock base(1000);
    OffsetClock skewed(base, -300);
    EXPECT_EQ(skewed.now(), 700);
    base.advance(100);
    EXPECT_EQ(skewed.now(), 800);
    skewed.set_offset(500);
    EXPECT_EQ(skewed.now(), 1600);
    EXPECT_EQ(skewed.offset(), 500);
}

TEST(WallClock, MonotonicEnough) {
    WallClock clock;
    const TimeUs a = clock.now();
    const TimeUs b = clock.now();
    EXPECT_GE(b, a);
    // Sanity: after 2020-01-01 in microseconds.
    EXPECT_GT(a, 1577836800000000LL);
}

TEST(TimeConversions, MsRoundTrip) {
    EXPECT_EQ(from_ms(1.5), 1500);
    EXPECT_DOUBLE_EQ(to_ms(2500), 2.5);
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

}  // namespace
}  // namespace narada
