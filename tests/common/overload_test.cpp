// Unit tests for the overload-protection primitives: the deterministic
// token bucket and the closed/open/half-open circuit breaker.
#include <gtest/gtest.h>

#include <limits>

#include "common/circuit_breaker.hpp"
#include "common/token_bucket.hpp"

namespace narada {
namespace {

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, DisabledRateAlwaysAdmits) {
    TokenBucket bucket(0.0, 4.0);
    EXPECT_FALSE(bucket.limited());
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_consume(i * kMillisecond));
}

TEST(TokenBucket, BurstThenStarves) {
    TokenBucket bucket(1.0, 3.0);  // 1 token/s, burst of 3
    EXPECT_TRUE(bucket.limited());
    const TimeUs t0 = 10 * kSecond;
    EXPECT_TRUE(bucket.try_consume(t0));
    EXPECT_TRUE(bucket.try_consume(t0));
    EXPECT_TRUE(bucket.try_consume(t0));
    EXPECT_FALSE(bucket.try_consume(t0));  // burst exhausted
}

TEST(TokenBucket, RefillsAtRate) {
    TokenBucket bucket(2.0, 2.0);  // 2 tokens/s
    const TimeUs t0 = 0;
    EXPECT_TRUE(bucket.try_consume(t0));
    EXPECT_TRUE(bucket.try_consume(t0));
    EXPECT_FALSE(bucket.try_consume(t0));
    // 500 ms later one token has refilled.
    EXPECT_TRUE(bucket.try_consume(t0 + 500 * kMillisecond));
    EXPECT_FALSE(bucket.try_consume(t0 + 500 * kMillisecond));
}

TEST(TokenBucket, RefillClampsAtBurst) {
    TokenBucket bucket(100.0, 2.0);
    const TimeUs t0 = 0;
    EXPECT_TRUE(bucket.try_consume(t0));
    // A long idle period must not bank more than `burst` tokens.
    const TimeUs later = t0 + 60 * kSecond;
    EXPECT_TRUE(bucket.try_consume(later));
    EXPECT_TRUE(bucket.try_consume(later));
    EXPECT_FALSE(bucket.try_consume(later));
}

TEST(TokenBucket, ClockBackwardsHoldsTokens) {
    TokenBucket bucket(1.0, 1.0);
    EXPECT_TRUE(bucket.try_consume(10 * kSecond));
    // Time running backwards (a skew step) must not mint tokens.
    EXPECT_FALSE(bucket.try_consume(5 * kSecond));
    EXPECT_FALSE(bucket.try_consume(10 * kSecond));
    EXPECT_TRUE(bucket.try_consume(11 * kSecond));
}

TEST(TokenBucket, ExtremeTimestampGapSaturatesWithoutOverflow) {
    // Regression: refill() used to compute `now - last_refill_` in signed
    // arithmetic; with timestamps at opposite extremes of the TimeUs range
    // (a clock-skew chaos step) the subtraction overflowed (UB). The gap
    // must instead saturate the bucket at its burst capacity.
    TokenBucket bucket(1.0, 3.0);
    const TimeUs ancient = std::numeric_limits<TimeUs>::min() + 1;
    EXPECT_TRUE(bucket.try_consume(ancient));  // primes at `ancient`
    EXPECT_TRUE(bucket.try_consume(ancient));
    EXPECT_TRUE(bucket.try_consume(ancient));
    EXPECT_FALSE(bucket.try_consume(ancient));  // drained

    const TimeUs far_future = std::numeric_limits<TimeUs>::max();
    EXPECT_TRUE(bucket.try_consume(far_future));
    EXPECT_TRUE(bucket.try_consume(far_future));
    EXPECT_TRUE(bucket.try_consume(far_future));  // refilled to burst, no more
    EXPECT_FALSE(bucket.try_consume(far_future));
}

TEST(TokenBucket, HugeRateDoesNotProduceInfiniteTokens) {
    TokenBucket bucket(1e300, 2.0);
    EXPECT_TRUE(bucket.try_consume(0));
    EXPECT_TRUE(bucket.try_consume(0));
    EXPECT_FALSE(bucket.try_consume(0));
    // rate * elapsed would overflow to +inf; the refill must clamp to
    // burst and keep admitting exactly `burst` units.
    EXPECT_TRUE(bucket.try_consume(1000 * kSecond));
    EXPECT_TRUE(bucket.try_consume(1000 * kSecond));
    EXPECT_FALSE(bucket.try_consume(1000 * kSecond));
    EXPECT_DOUBLE_EQ(bucket.available(1000 * kSecond), 0.0);
}

TEST(TokenBucket, AvailableReportsAfterRefill) {
    TokenBucket bucket(1.0, 4.0);
    EXPECT_DOUBLE_EQ(bucket.available(0), 4.0);
    EXPECT_TRUE(bucket.try_consume(0));
    EXPECT_DOUBLE_EQ(bucket.available(0), 3.0);
    EXPECT_DOUBLE_EQ(bucket.available(1 * kSecond), 4.0);  // clamped
}

// --- CircuitBreaker ---------------------------------------------------------

CircuitBreakerOptions breaker_options(std::uint32_t threshold) {
    CircuitBreakerOptions options;
    options.failure_threshold = threshold;
    options.open_backoff.initial = 1 * kSecond;
    options.open_backoff.max = 8 * kSecond;
    options.open_backoff.jitter = 0.0;  // exact timelines for assertions
    return options;
}

TEST(CircuitBreaker, OpensAtThreshold) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(2));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.allow(0, rng));
    breaker.record_failure(0, rng);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);  // 1 < threshold
    breaker.record_failure(0, rng);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(breaker.allow(0, rng));
    EXPECT_EQ(breaker.stats().opens, 1u);
}

TEST(CircuitBreaker, SuccessResetsFailureCount) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(2));
    breaker.record_failure(0, rng);
    breaker.record_success();
    breaker.record_failure(0, rng);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeAfterCooldown) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(1));
    breaker.record_failure(0, rng);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(breaker.allow(500 * kMillisecond, rng));
    // Cool-down (1 s, no jitter) elapsed: exactly one probe is admitted.
    EXPECT_TRUE(breaker.allow(1 * kSecond, rng));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_FALSE(breaker.allow(1 * kSecond, rng));  // probe in flight
    breaker.record_success();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.allow(1 * kSecond, rng));
}

TEST(CircuitBreaker, FailedProbeReopensWithLongerCooldown) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(1));
    breaker.record_failure(0, rng);
    const TimeUs first_retry = breaker.retry_at();
    EXPECT_TRUE(breaker.allow(first_retry, rng));  // half-open probe
    breaker.record_failure(first_retry, rng);      // probe failed
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    // Backoff doubled: the second cool-down is 2 s, not 1 s.
    EXPECT_EQ(breaker.retry_at() - first_retry, 2 * kSecond);
    EXPECT_EQ(breaker.stats().opens, 2u);
}

TEST(CircuitBreaker, ForceProbeAdmitsWhileOpen) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(1));
    breaker.record_failure(0, rng);
    EXPECT_FALSE(breaker.allow(0, rng));
    breaker.force_probe();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    breaker.record_success();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
    Rng rng(1);
    CircuitBreaker breaker(breaker_options(0));
    for (int i = 0; i < 50; ++i) breaker.record_failure(0, rng);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.allow(0, rng));
}

TEST(CircuitBreaker, StateNames) {
    EXPECT_STREQ(to_string(CircuitBreaker::State::kClosed), "closed");
    EXPECT_STREQ(to_string(CircuitBreaker::State::kOpen), "open");
    EXPECT_STREQ(to_string(CircuitBreaker::State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace narada
