#include "common/hex.hpp"

#include <gtest/gtest.h>

namespace narada {
namespace {

TEST(Hex, EncodeEmpty) { EXPECT_EQ(hex_encode(Bytes{}), ""); }

TEST(Hex, EncodeKnown) {
    EXPECT_EQ(hex_encode(Bytes{0x00, 0xff, 0x10, 0xab}), "00ff10ab");
}

TEST(Hex, RoundTrip) {
    Bytes data;
    for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
    const auto decoded = hex_decode(hex_encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeCaseInsensitive) {
    const auto a = hex_decode("ABCDEF");
    const auto b = hex_decode("abcdef");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
}

TEST(Hex, DecodeRejectsOddLength) { EXPECT_FALSE(hex_decode("abc").has_value()); }

TEST(Hex, DecodeRejectsNonHex) {
    EXPECT_FALSE(hex_decode("zz").has_value());
    EXPECT_FALSE(hex_decode("0g").has_value());
}

}  // namespace
}  // namespace narada
