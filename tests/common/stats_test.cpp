#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace narada {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesBatchComputation) {
    RunningStats online;
    SampleSet batch;
    for (int i = 0; i < 1000; ++i) {
        const double x = std::sin(i * 0.37) * 100 + i * 0.01;
        online.add(x);
        batch.add(x);
    }
    EXPECT_NEAR(online.mean(), batch.mean(), 1e-9);
    EXPECT_NEAR(online.stddev(), batch.stddev(), 1e-9);
    EXPECT_NEAR(online.std_error(), batch.std_error(), 1e-9);
}

TEST(SampleSet, BasicMetrics) {
    SampleSet s({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
    EXPECT_NEAR(s.std_error(), std::sqrt(2.5) / std::sqrt(5.0), 1e-12);
}

TEST(SampleSet, PercentileInterpolates) {
    SampleSet s({10.0, 20.0, 30.0, 40.0});
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(SampleSet, PercentileRejectsOutOfRange) {
    SampleSet s({1.0});
    EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
    EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleSet, TrimOutliersRemovesExtremes) {
    // 100 samples around 50 plus two wild outliers, as in the paper's
    // "120 runs, first 100 after removing outliers" pipeline.
    SampleSet s;
    for (int i = 0; i < 100; ++i) s.add(50.0 + (i % 10));
    s.add(100000.0);
    s.add(-100000.0);
    const SampleSet trimmed = s.trim_outliers(100);
    EXPECT_EQ(trimmed.size(), 100u);
    EXPECT_LT(trimmed.max(), 100.0);
    EXPECT_GT(trimmed.min(), 0.0);
}

TEST(SampleSet, TrimNoopWhenSmall) {
    SampleSet s({1.0, 2.0});
    EXPECT_EQ(s.trim_outliers(10).size(), 2u);
}

TEST(SampleSet, MetricTableHasPaperRows) {
    SampleSet s({1.0, 2.0, 3.0});
    const std::string table = s.metric_table();
    EXPECT_NE(table.find("Mean"), std::string::npos);
    EXPECT_NE(table.find("Standard deviation"), std::string::npos);
    EXPECT_NE(table.find("Maximum"), std::string::npos);
    EXPECT_NE(table.find("Minimum"), std::string::npos);
    EXPECT_NE(table.find("Error"), std::string::npos);
}

TEST(SampleSet, EmptySafe) {
    SampleSet s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

// --- percentile edge cases --------------------------------------------------

TEST(SampleSet, PercentileEmptyIsZeroAtEveryP) {
    SampleSet s;
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 0.0);
}

TEST(SampleSet, PercentileSingleSampleIsThatSample) {
    SampleSet s;
    s.add(7.5);
    EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
    EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
    EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(SampleSet, PercentileEndpointsAreMinAndMax) {
    SampleSet s;
    for (double x : {3.0, 1.0, 4.0, 1.5, 9.0, 2.6}) s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0), s.min());
    EXPECT_DOUBLE_EQ(s.percentile(100), s.max());
}

TEST(SampleSet, PercentileIgnoresInsertionOrder) {
    // Identical multisets in different orders must agree at every p —
    // percentile() sorts internally and must not trust insertion order.
    SampleSet ascending, shuffled;
    for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) ascending.add(x);
    for (double x : {40.0, 10.0, 50.0, 30.0, 20.0}) shuffled.add(x);
    for (double p : {0.0, 12.5, 25.0, 50.0, 75.0, 90.0, 100.0}) {
        EXPECT_DOUBLE_EQ(ascending.percentile(p), shuffled.percentile(p)) << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(shuffled.percentile(25), 20.0);
    EXPECT_DOUBLE_EQ(shuffled.percentile(50), 30.0);
}

TEST(SampleSet, PercentileInterpolatesBetweenRanks) {
    SampleSet s;
    s.add(0.0);
    s.add(100.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
}

}  // namespace
}  // namespace narada
