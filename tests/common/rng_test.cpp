#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace narada {
namespace {

TEST(Rng, DeterministicUnderSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf) {
    Rng rng(8);
    double sum = 0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(9);
    std::vector<int> counts(6, 0);
    for (int i = 0; i < 60000; ++i) {
        const std::int64_t v = rng.uniform_int(10, 15);
        ASSERT_GE(v, 10);
        ASSERT_LE(v, 15);
        ++counts[v - 10];
    }
    for (int c : counts) EXPECT_GT(c, 9000);  // roughly uniform
}

TEST(Rng, UniformIntNegativeRange) {
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(11);
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
    Rng rng(12);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
    Rng rng(14);
    double sum = 0, sum_sq = 0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.gaussian(10.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kN;
    const double var = sum_sq / kN - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BoundedZeroIsZero) {
    Rng rng(15);
    EXPECT_EQ(rng.bounded(0), 0u);
    EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedStaysBelowBound) {
    Rng rng(16);
    for (int i = 0; i < 100000; ++i) {
        EXPECT_LT(rng.bounded(17), 17u);
    }
}

}  // namespace
}  // namespace narada
