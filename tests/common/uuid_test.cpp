#include "common/uuid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace narada {
namespace {

TEST(Uuid, NilByDefault) {
    Uuid u;
    EXPECT_TRUE(u.is_nil());
    EXPECT_EQ(u.str(), "00000000-0000-0000-0000-000000000000");
}

TEST(Uuid, RandomIsVersion4) {
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const Uuid u = Uuid::random(rng);
        const std::string s = u.str();
        EXPECT_EQ(s.size(), 36u);
        EXPECT_EQ(s[14], '4');  // version nibble
        // Variant nibble is one of 8, 9, a, b.
        EXPECT_TRUE(s[19] == '8' || s[19] == '9' || s[19] == 'a' || s[19] == 'b') << s;
    }
}

TEST(Uuid, RandomIsUnique) {
    Rng rng(2);
    std::set<Uuid> seen;
    for (int i = 0; i < 10000; ++i) {
        EXPECT_TRUE(seen.insert(Uuid::random(rng)).second);
    }
}

TEST(Uuid, RoundTripString) {
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const Uuid u = Uuid::random(rng);
        const auto parsed = Uuid::parse(u.str());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, u);
    }
}

TEST(Uuid, ParseCanonical) {
    const auto u = Uuid::parse("12345678-9abc-def0-1122-334455667788");
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->hi(), 0x123456789abcdef0ull);
    EXPECT_EQ(u->lo(), 0x1122334455667788ull);
}

TEST(Uuid, ParseUpperCase) {
    const auto u = Uuid::parse("ABCDEF00-0000-0000-0000-000000000001");
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->hi() >> 32, 0xABCDEF00u);
}

TEST(Uuid, ParseRejectsBadInput) {
    EXPECT_FALSE(Uuid::parse("").has_value());
    EXPECT_FALSE(Uuid::parse("not-a-uuid").has_value());
    EXPECT_FALSE(Uuid::parse("12345678-9abc-def0-1122-33445566778").has_value());   // short
    EXPECT_FALSE(Uuid::parse("12345678-9abc-def0-1122-3344556677889").has_value()); // long
    EXPECT_FALSE(Uuid::parse("12345678x9abc-def0-1122-334455667788").has_value());  // bad dash
    EXPECT_FALSE(Uuid::parse("1234567g-9abc-def0-1122-334455667788").has_value());  // bad hex
}

TEST(Uuid, DeterministicUnderSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(Uuid::random(a), Uuid::random(b));
    }
}

TEST(Uuid, OrderingIsConsistent) {
    const Uuid a = Uuid::from_halves(1, 2);
    const Uuid b = Uuid::from_halves(1, 3);
    const Uuid c = Uuid::from_halves(2, 0);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_EQ(a, Uuid::from_halves(1, 2));
}

TEST(Uuid, HashSpreads) {
    Rng rng(4);
    std::set<std::size_t> hashes;
    for (int i = 0; i < 1000; ++i) {
        hashes.insert(std::hash<Uuid>{}(Uuid::random(rng)));
    }
    EXPECT_GT(hashes.size(), 990u);
}

}  // namespace
}  // namespace narada
