#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace narada {
namespace {

TEST(Strings, SplitBasic) {
    const auto parts = split("a/b/c", '/');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = split("/a//b/", '/');
    ASSERT_EQ(parts.size(), 5u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitEmptyString) {
    const auto parts = split("", '/');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitViewsAliasOriginal) {
    const std::string text = "x,y";
    const auto views = split_views(text, ',');
    ASSERT_EQ(views.size(), 2u);
    EXPECT_EQ(views[0].data(), text.data());
}

TEST(Strings, TrimWhitespace) {
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nabc\r "), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, JoinInvertsplit) {
    const std::vector<std::string> parts = {"a", "b", "c"};
    EXPECT_EQ(join(parts, '/'), "a/b/c");
    EXPECT_EQ(join({}, '/'), "");
    EXPECT_EQ(join({"solo"}, '/'), "solo");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(starts_with("Services/Broker", "Services"));
    EXPECT_TRUE(starts_with("abc", ""));
    EXPECT_FALSE(starts_with("ab", "abc"));
    EXPECT_FALSE(starts_with("xyz", "y"));
}

TEST(Strings, ToLower) {
    EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
    EXPECT_EQ(to_lower(""), "");
}

}  // namespace
}  // namespace narada
