// JitteredBackoff: the shared retry-spacing helper every self-healing
// component draws from (RejoinSupervisor, ManagedConnection).
#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace narada {
namespace {

TEST(BackoffTest, GrowsGeometricallyToCap) {
    BackoffOptions options;
    options.initial = 100;
    options.max = 1000;
    options.multiplier = 2.0;
    options.jitter = 0.0;  // deterministic delays for exact comparison
    JitteredBackoff backoff(options);
    Rng rng(1);

    EXPECT_EQ(backoff.next(rng), 100);
    EXPECT_EQ(backoff.next(rng), 200);
    EXPECT_EQ(backoff.next(rng), 400);
    EXPECT_EQ(backoff.next(rng), 800);
    EXPECT_EQ(backoff.next(rng), 1000);  // clamped at the cap
    EXPECT_EQ(backoff.next(rng), 1000);
    EXPECT_TRUE(backoff.at_cap());
}

TEST(BackoffTest, ResetReturnsToInitial) {
    BackoffOptions options;
    options.initial = 100;
    options.max = 1000;
    options.jitter = 0.0;
    JitteredBackoff backoff(options);
    Rng rng(1);

    backoff.next(rng);
    backoff.next(rng);
    EXPECT_GT(backoff.current(), options.initial);
    backoff.reset();
    EXPECT_EQ(backoff.current(), options.initial);
    EXPECT_EQ(backoff.next(rng), 100);
}

TEST(BackoffTest, JitterStaysWithinBand) {
    BackoffOptions options;
    options.initial = 1000;
    options.max = 1000;  // pin the base so only jitter varies
    options.jitter = 0.25;
    JitteredBackoff backoff(options);
    Rng rng(42);

    DurationUs lo = options.initial, hi = options.initial;
    for (int i = 0; i < 1000; ++i) {
        const DurationUs d = backoff.next(rng);
        EXPECT_GE(d, 750);
        EXPECT_LE(d, 1250);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    // The band is actually explored, not collapsed to the midpoint.
    EXPECT_LT(lo, 850);
    EXPECT_GT(hi, 1150);
}

TEST(BackoffTest, JitterBandTracksGrowingBase) {
    // The jitter band must be relative to the *current* (growing) base,
    // not the initial delay: a late retry drawn near the initial value
    // would defeat the exponential spacing entirely.
    BackoffOptions options;
    options.initial = 100;
    options.max = 1'000'000;
    options.multiplier = 2.0;
    options.jitter = 0.2;
    JitteredBackoff backoff(options);
    Rng rng(11);

    for (int i = 0; i < 12; ++i) {
        const DurationUs base = backoff.current();
        const DurationUs d = backoff.next(rng);
        EXPECT_GE(d, static_cast<DurationUs>(static_cast<double>(base) * 0.8) - 1)
            << "draw " << i << " fell below the band around base " << base;
        EXPECT_LE(d, static_cast<DurationUs>(static_cast<double>(base) * 1.2) + 1)
            << "draw " << i << " rose above the band around base " << base;
    }
}

TEST(BackoffTest, FullJitterNeverReturnsZero) {
    // jitter = 1.0 allows a factor of 0; the floor keeps a drawn delay
    // from collapsing to an immediate (hot-loop) retry.
    BackoffOptions options;
    options.initial = 1;
    options.max = 4;
    options.jitter = 1.0;
    JitteredBackoff backoff(options);
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_GE(backoff.next(rng), 1);
    }
}

TEST(BackoffTest, DeterministicForSameSeed) {
    const BackoffOptions options;
    std::vector<DurationUs> a, b;
    for (auto* out : {&a, &b}) {
        JitteredBackoff backoff(options);
        Rng rng(7);
        for (int i = 0; i < 20; ++i) out->push_back(backoff.next(rng));
    }
    EXPECT_EQ(a, b);
}

TEST(BackoffTest, ClampsDegenerateOptions) {
    BackoffOptions options;
    options.initial = 0;        // -> 1
    options.max = -5;           // -> >= initial
    options.multiplier = 0.5;   // -> 1.0 (never shrinks)
    options.jitter = 3.0;       // -> 1.0
    JitteredBackoff backoff(options);
    Rng rng(1);
    const DurationUs first = backoff.next(rng);
    EXPECT_GE(first, 1);
    EXPECT_GE(backoff.options().max, backoff.options().initial);
    EXPECT_GE(backoff.options().multiplier, 1.0);
    EXPECT_LE(backoff.options().jitter, 1.0);
}

}  // namespace
}  // namespace narada
