#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"

namespace narada::crypto {
namespace {

// 512-bit keys keep unit tests fast; the benchmarks use 1024-bit keys.
RsaKeyPair test_keys(std::uint64_t seed = 42, std::size_t bits = 512) {
    Rng rng(seed);
    return rsa_generate(rng, bits);
}

TEST(Rsa, KeyGenerationShape) {
    const RsaKeyPair keys = test_keys();
    EXPECT_GE(keys.public_key.n.bit_length(), 500u);
    EXPECT_LE(keys.public_key.n.bit_length(), 512u);
    EXPECT_EQ(keys.public_key.e, BigInt(65537));
    EXPECT_EQ(keys.public_key.n, keys.private_key.n);
}

TEST(Rsa, RawRoundTripIdentity) {
    const RsaKeyPair keys = test_keys(1);
    // m^(e*d) == m mod n for random m.
    Rng rng(2);
    for (int i = 0; i < 5; ++i) {
        const BigInt m = BigInt::random_below(rng, keys.public_key.n);
        const BigInt c = BigInt::mod_pow(m, keys.public_key.e, keys.public_key.n);
        EXPECT_EQ(BigInt::mod_pow(c, keys.private_key.d, keys.private_key.n), m);
    }
}

TEST(Rsa, SignVerify) {
    const RsaKeyPair keys = test_keys(3);
    const Bytes message = {'h', 'e', 'l', 'l', 'o'};
    const Bytes signature = rsa_sign(keys.private_key, message);
    EXPECT_EQ(signature.size(), keys.public_key.modulus_bytes());
    EXPECT_TRUE(rsa_verify(keys.public_key, message, signature));
}

TEST(Rsa, VerifyRejectsTamperedMessage) {
    const RsaKeyPair keys = test_keys(4);
    const Bytes message = {1, 2, 3, 4};
    const Bytes signature = rsa_sign(keys.private_key, message);
    Bytes tampered = message;
    tampered[0] ^= 1;
    EXPECT_FALSE(rsa_verify(keys.public_key, tampered, signature));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
    const RsaKeyPair keys = test_keys(5);
    const Bytes message = {1, 2, 3, 4};
    Bytes signature = rsa_sign(keys.private_key, message);
    signature[10] ^= 1;
    EXPECT_FALSE(rsa_verify(keys.public_key, message, signature));
    signature[10] ^= 1;
    signature.pop_back();
    EXPECT_FALSE(rsa_verify(keys.public_key, message, signature));  // wrong size
}

TEST(Rsa, VerifyRejectsWrongKey) {
    const RsaKeyPair keys_a = test_keys(6);
    const RsaKeyPair keys_b = test_keys(7);
    const Bytes message = {9, 9, 9};
    const Bytes signature = rsa_sign(keys_a.private_key, message);
    EXPECT_FALSE(rsa_verify(keys_b.public_key, message, signature));
}

TEST(Rsa, EncryptDecrypt) {
    const RsaKeyPair keys = test_keys(8);
    Rng rng(9);
    const Bytes plaintext = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
    const auto ciphertext = rsa_encrypt(keys.public_key, plaintext, rng);
    ASSERT_TRUE(ciphertext.has_value());
    EXPECT_NE(*ciphertext, plaintext);
    const auto decrypted = rsa_decrypt(keys.private_key, *ciphertext);
    ASSERT_TRUE(decrypted.has_value());
    EXPECT_EQ(*decrypted, plaintext);
}

TEST(Rsa, EncryptionIsRandomized) {
    const RsaKeyPair keys = test_keys(10);
    Rng rng(11);
    const Bytes plaintext = {1, 2, 3};
    const auto c1 = rsa_encrypt(keys.public_key, plaintext, rng);
    const auto c2 = rsa_encrypt(keys.public_key, plaintext, rng);
    ASSERT_TRUE(c1 && c2);
    EXPECT_NE(*c1, *c2);  // PKCS#1 v1.5 random padding
}

TEST(Rsa, EncryptRejectsOversizedPlaintext) {
    const RsaKeyPair keys = test_keys(12);
    Rng rng(13);
    const Bytes too_big(keys.public_key.modulus_bytes() - 10, 0x41);
    EXPECT_FALSE(rsa_encrypt(keys.public_key, too_big, rng).has_value());
}

TEST(Rsa, DecryptRejectsGarbage) {
    const RsaKeyPair keys = test_keys(14);
    EXPECT_FALSE(rsa_decrypt(keys.private_key, Bytes(3, 7)).has_value());  // wrong size
    const Bytes junk(keys.private_key.modulus_bytes(), 0x5A);
    // Valid size but almost surely bad padding after decryption.
    const auto out = rsa_decrypt(keys.private_key, junk);
    EXPECT_FALSE(out.has_value());
}

TEST(Certificate, SelfSignedVerifies) {
    const RsaKeyPair root_keys = test_keys(20);
    const Certificate root = make_self_signed("root-ca", root_keys, 0, 1'000'000, 1);
    EXPECT_EQ(verify_chain({root}, {root}, 500), CertStatus::kOk);
}

TEST(Certificate, ChainOfThreeVerifies) {
    const RsaKeyPair root_keys = test_keys(21);
    const RsaKeyPair inter_keys = test_keys(22);
    const RsaKeyPair leaf_keys = test_keys(23);
    const Certificate root = make_self_signed("root-ca", root_keys, 0, 1'000'000, 1);
    const Certificate inter = issue_certificate("intermediate", inter_keys.public_key,
                                                "root-ca", root_keys.private_key, 0,
                                                1'000'000, 2);
    const Certificate leaf = issue_certificate("client.iu.edu", leaf_keys.public_key,
                                               "intermediate", inter_keys.private_key, 0,
                                               1'000'000, 3);
    EXPECT_EQ(verify_chain({leaf, inter, root}, {root}, 500), CertStatus::kOk);
}

TEST(Certificate, DetectsExpiryAndNotYetValid) {
    const RsaKeyPair keys = test_keys(24);
    const Certificate cert = make_self_signed("x", keys, 100, 200, 1);
    EXPECT_EQ(verify_chain({cert}, {cert}, 150), CertStatus::kOk);
    EXPECT_EQ(verify_chain({cert}, {cert}, 50), CertStatus::kNotYetValid);
    EXPECT_EQ(verify_chain({cert}, {cert}, 300), CertStatus::kExpired);
}

TEST(Certificate, DetectsTamperedSubject) {
    const RsaKeyPair keys = test_keys(25);
    Certificate cert = make_self_signed("honest", keys, 0, 1000, 1);
    cert.subject = "mallory";
    cert.issuer = "mallory";  // keep continuity so the signature is checked
    EXPECT_EQ(verify_chain({cert}, {cert}, 500), CertStatus::kBadSignature);
}

TEST(Certificate, DetectsBrokenChainNames) {
    const RsaKeyPair root_keys = test_keys(26);
    const RsaKeyPair leaf_keys = test_keys(27);
    const Certificate root = make_self_signed("root-ca", root_keys, 0, 1000, 1);
    const Certificate leaf = issue_certificate("leaf", leaf_keys.public_key, "other-ca",
                                               root_keys.private_key, 0, 1000, 2);
    EXPECT_EQ(verify_chain({leaf, root}, {root}, 500), CertStatus::kIssuerMismatch);
}

TEST(Certificate, UntrustedRootRejected) {
    const RsaKeyPair keys = test_keys(28);
    const RsaKeyPair other_keys = test_keys(29);
    const Certificate root = make_self_signed("root-ca", keys, 0, 1000, 1);
    const Certificate other = make_self_signed("other-ca", other_keys, 0, 1000, 2);
    EXPECT_EQ(verify_chain({root}, {other}, 500), CertStatus::kUntrustedRoot);
    EXPECT_EQ(verify_chain({}, {root}, 500), CertStatus::kEmptyChain);
}

TEST(Certificate, CodecRoundTrip) {
    const RsaKeyPair keys = test_keys(30);
    const Certificate cert = make_self_signed("round-trip", keys, 5, 10, 99);
    wire::ByteWriter w;
    cert.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(Certificate::decode(r), cert);
}

TEST(Envelope, SealOpenRoundTrip) {
    const RsaKeyPair sender = test_keys(40);
    const RsaKeyPair recipient = test_keys(41);
    Rng rng(42);
    const Bytes payload = {'s', 'e', 'c', 'r', 'e', 't'};
    const auto env = seal(payload, "alice", sender.private_key, recipient.public_key,
                          "broker-1", rng);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->recipient_hint, "broker-1");
    const auto opened = open(*env, recipient.private_key, sender.public_key);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->payload, payload);
    EXPECT_EQ(opened->signer_name, "alice");
    EXPECT_TRUE(opened->signature_valid);
}

TEST(Envelope, WrongRecipientCannotOpen) {
    const RsaKeyPair sender = test_keys(43);
    const RsaKeyPair recipient = test_keys(44);
    const RsaKeyPair eve = test_keys(45);
    Rng rng(46);
    const auto env =
        seal(Bytes{1, 2, 3}, "alice", sender.private_key, recipient.public_key, "", rng);
    ASSERT_TRUE(env.has_value());
    EXPECT_FALSE(open(*env, eve.private_key, sender.public_key).has_value());
}

TEST(Envelope, ForgedSignerDetected) {
    const RsaKeyPair sender = test_keys(47);
    const RsaKeyPair recipient = test_keys(48);
    const RsaKeyPair impostor = test_keys(49);
    Rng rng(50);
    const auto env =
        seal(Bytes{7, 7, 7}, "mallory", impostor.private_key, recipient.public_key, "", rng);
    ASSERT_TRUE(env.has_value());
    // Recipient checks against alice's real public key: signature invalid.
    const auto opened = open(*env, recipient.private_key, sender.public_key);
    ASSERT_TRUE(opened.has_value());
    EXPECT_FALSE(opened->signature_valid);
}

TEST(Envelope, CodecRoundTrip) {
    const RsaKeyPair sender = test_keys(51);
    const RsaKeyPair recipient = test_keys(52);
    Rng rng(53);
    const auto env =
        seal(Bytes{9, 9}, "bob", sender.private_key, recipient.public_key, "hint", rng);
    ASSERT_TRUE(env.has_value());
    wire::ByteWriter w;
    env->encode(w);
    wire::ByteReader r(w.bytes());
    const SecureEnvelope decoded = SecureEnvelope::decode(r);
    const auto opened = open(decoded, recipient.private_key, sender.public_key);
    ASSERT_TRUE(opened.has_value());
    EXPECT_TRUE(opened->signature_valid);
}

TEST(Envelope, TamperedCiphertextRejected) {
    const RsaKeyPair sender = test_keys(54);
    const RsaKeyPair recipient = test_keys(55);
    Rng rng(56);
    auto env = seal(Bytes{1}, "a", sender.private_key, recipient.public_key, "", rng);
    ASSERT_TRUE(env.has_value());
    env->ciphertext[0] ^= 0xFF;
    const auto opened = open(*env, recipient.private_key, sender.public_key);
    // Either structural failure or an invalid signature — never a clean open.
    if (opened.has_value()) {
        EXPECT_FALSE(opened->signature_valid);
    }
}

}  // namespace
}  // namespace narada::crypto
