#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"

namespace narada::crypto {
namespace {

Aes128::Key key_from_hex(const std::string& hex) {
    const auto bytes = hex_decode(hex).value();
    Aes128::Key key{};
    std::copy_n(bytes.begin(), key.size(), key.begin());
    return key;
}

TEST(Aes128, Fips197AppendixB) {
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const auto plain = hex_decode("3243f6a8885a308d313198a2e0370734").value();
    std::uint8_t out[16];
    aes.encrypt_block(plain.data(), out);
    EXPECT_EQ(hex_encode(out, 16), "3925841d02dc09fbdc118597196a0b32");
    std::uint8_t back[16];
    aes.decrypt_block(out, back);
    EXPECT_EQ(hex_encode(back, 16), "3243f6a8885a308d313198a2e0370734");
}

TEST(Aes128, Fips197AppendixC1) {
    const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    const auto plain = hex_decode("00112233445566778899aabbccddeeff").value();
    std::uint8_t out[16];
    aes.encrypt_block(plain.data(), out);
    EXPECT_EQ(hex_encode(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, NistCbcVector) {
    // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block.
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    Aes128::Block iv{};
    const auto iv_bytes = hex_decode("000102030405060708090a0b0c0d0e0f").value();
    std::copy_n(iv_bytes.begin(), iv.size(), iv.begin());
    const auto plain = hex_decode("6bc1bee22e409f96e93d7e117393172a").value();
    const Bytes ct = aes.encrypt_cbc(plain, iv);
    // Our CBC appends a PKCS#7 padding block; the first block must match.
    ASSERT_EQ(ct.size(), 32u);
    EXPECT_EQ(hex_encode(ct.data(), 16), "7649abac8119b246cee98e9b12e9197d");
}

TEST(Aes128, CbcRoundTripVariousLengths) {
    Rng rng(5);
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
        Bytes plain(len);
        for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
        Aes128::Block iv{};
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
        const Bytes ct = aes.encrypt_cbc(plain, iv);
        EXPECT_EQ(ct.size() % 16, 0u);
        EXPECT_GT(ct.size(), plain.size());  // padding always added
        EXPECT_EQ(aes.decrypt_cbc(ct, iv), plain) << "len=" << len;
    }
}

TEST(Aes128, CbcTamperDetectedByPadding) {
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    Aes128::Block iv{};
    const Bytes plain(10, 0x42);
    Bytes ct = aes.encrypt_cbc(plain, iv);
    ct.back() ^= 0xFF;  // corrupt the padding region
    EXPECT_THROW((void)aes.decrypt_cbc(ct, iv), std::invalid_argument);
}

TEST(Aes128, CbcRejectsBadLength) {
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    Aes128::Block iv{};
    EXPECT_THROW((void)aes.decrypt_cbc(Bytes(15, 0), iv), std::invalid_argument);
    EXPECT_THROW((void)aes.decrypt_cbc(Bytes{}, iv), std::invalid_argument);
}

TEST(Aes128, DifferentIvDifferentCiphertext) {
    const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Bytes plain(32, 0x11);
    Aes128::Block iv1{};
    Aes128::Block iv2{};
    iv2[0] = 1;
    EXPECT_NE(aes.encrypt_cbc(plain, iv1), aes.encrypt_cbc(plain, iv2));
}

}  // namespace
}  // namespace narada::crypto
