// SessionKeyCache: the bounded LRU that amortizes the paper's per-message
// RSA cost (§9.1, Figure 14) into a once-per-peer handshake.
#include "crypto/session_key_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace narada::crypto {
namespace {

Aes128::Key make_key(std::uint8_t fill) {
    Aes128::Key key;
    key.fill(fill);
    return key;
}

TEST(SessionKeyCacheTest, DeriveKeyIdIsStableAndKeyed) {
    const auto a = derive_key_id(make_key(1));
    EXPECT_EQ(a, derive_key_id(make_key(1)));  // pure function of the bytes
    EXPECT_NE(a, derive_key_id(make_key(2)));
    EXPECT_NE(a, 0u);  // 0 is reserved as "no session" in the memo paths
    EXPECT_NE(derive_key_id(make_key(0)), 0u);
}

TEST(SessionKeyCacheTest, SessionDerivesDistinctMacKey) {
    // The MAC schedule is derived from (not equal to) the cipher schedule:
    // a tag computed under one session must not verify under another.
    const auto s1 = SessionKeyCache::Session::derive(make_key(1), 10);
    const auto s2 = SessionKeyCache::Session::derive(make_key(2), 10);
    const Bytes msg{1, 2, 3};
    EXPECT_NE(s1.mac.compute(msg), s2.mac.compute(msg));
    EXPECT_EQ(s1.established_at, 10);
    EXPECT_EQ(s1.key_id, derive_key_id(make_key(1)));
}

TEST(SessionKeyCacheTest, PutThenFind) {
    SessionKeyCache cache(4);
    EXPECT_EQ(cache.find("alice"), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);

    auto& stored = cache.put("alice", make_key(1), 100);
    EXPECT_EQ(stored.established_at, 100);
    auto* found = cache.find("alice");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &stored);  // pointer stability across find
    EXPECT_EQ(found->key_id, derive_key_id(make_key(1)));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SessionKeyCacheTest, RekeyReplacesInPlace) {
    SessionKeyCache cache(4);
    cache.put("alice", make_key(1), 100);
    auto& rekeyed = cache.put("alice", make_key(2), 200);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(rekeyed.key_id, derive_key_id(make_key(2)));
    EXPECT_EQ(rekeyed.established_at, 200);
    EXPECT_EQ(cache.find("alice")->key_id, rekeyed.key_id);
}

TEST(SessionKeyCacheTest, EvictsLeastRecentlyUsed) {
    SessionKeyCache cache(3);
    cache.put("a", make_key(1), 1);
    cache.put("b", make_key(2), 2);
    cache.put("c", make_key(3), 3);
    // Touch "a" so "b" becomes the LRU entry.
    ASSERT_NE(cache.find("a"), nullptr);
    cache.put("d", make_key(4), 4);

    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.find("b"), nullptr);  // evicted
    EXPECT_NE(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
    EXPECT_NE(cache.find("d"), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SessionKeyCacheTest, EraseAndClear) {
    SessionKeyCache cache(4);
    cache.put("a", make_key(1), 1);
    cache.put("b", make_key(2), 2);
    cache.erase("a");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find("a"), nullptr);
    cache.erase("never-there");  // no-op, no crash
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find("b"), nullptr);
}

TEST(SessionKeyCacheTest, CapacityOneStillCycles) {
    SessionKeyCache cache(1);
    cache.put("a", make_key(1), 1);
    cache.put("b", make_key(2), 2);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("b"), nullptr);
}

TEST(SessionKeyCacheTest, HeterogeneousLookupMatchesOwnedKey) {
    SessionKeyCache cache(4);
    const std::string owned = "broker-7.cs.indiana.edu";
    cache.put(owned, make_key(9), 5);
    const char* view = "broker-7.cs.indiana.edu";
    EXPECT_NE(cache.find(std::string_view(view)), nullptr);
}

}  // namespace
}  // namespace narada::crypto
