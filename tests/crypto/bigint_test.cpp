#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

namespace narada::crypto {
namespace {

TEST(BigInt, ZeroProperties) {
    BigInt zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_FALSE(zero.is_odd());
    EXPECT_EQ(zero.bit_length(), 0u);
    EXPECT_EQ(zero.to_hex(), "0");
    EXPECT_EQ(zero, BigInt(0));
}

TEST(BigInt, SmallArithmetic) {
    EXPECT_EQ(BigInt(7) + BigInt(8), BigInt(15));
    EXPECT_EQ(BigInt(100) - BigInt(58), BigInt(42));
    EXPECT_EQ(BigInt(12) * BigInt(12), BigInt(144));
    EXPECT_EQ(BigInt(100) / BigInt(7), BigInt(14));
    EXPECT_EQ(BigInt(100) % BigInt(7), BigInt(2));
}

TEST(BigInt, SubtractionUnderflowThrows) {
    EXPECT_THROW(BigInt(1) - BigInt(2), std::underflow_error);
}

TEST(BigInt, DivisionByZeroThrows) {
    EXPECT_THROW(BigInt(1).divmod(BigInt{}), std::domain_error);
}

TEST(BigInt, CarryPropagation) {
    const BigInt max32(0xFFFFFFFFull);
    EXPECT_EQ((max32 + BigInt(1)).to_hex(), "100000000");
    const BigInt max64(0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ((max64 + BigInt(1)).to_hex(), "10000000000000000");
    EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, HexRoundTrip) {
    const std::string hex = "deadbeef0123456789abcdef00000000fedcba9876543210";
    const auto v = BigInt::from_hex(hex);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->to_hex(), hex);
    EXPECT_FALSE(BigInt::from_hex("xyz").has_value());
}

TEST(BigInt, BytesRoundTrip) {
    const Bytes bytes = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
    const BigInt v = BigInt::from_bytes_be(bytes);
    EXPECT_EQ(v.to_bytes_be(), bytes);
    // Leading zeros stripped unless min_len requests padding.
    const Bytes padded = v.to_bytes_be(12);
    EXPECT_EQ(padded.size(), 12u);
    EXPECT_EQ(padded[0], 0);
    EXPECT_EQ(padded[3], 0x01);
}

TEST(BigInt, Comparisons) {
    EXPECT_LT(BigInt(3), BigInt(5));
    EXPECT_GT(*BigInt::from_hex("100000000"), BigInt(0xFFFFFFFFull));
    EXPECT_EQ(BigInt(5) <=> BigInt(5), std::strong_ordering::equal);
}

TEST(BigInt, Shifts) {
    EXPECT_EQ(BigInt(1) << 64, *BigInt::from_hex("10000000000000000"));
    EXPECT_EQ((BigInt(1) << 100) >> 100, BigInt(1));
    EXPECT_EQ(BigInt(0xFF) >> 4, BigInt(0xF));
    EXPECT_EQ(BigInt(0xFF) >> 9, BigInt(0));
    EXPECT_EQ((BigInt(5) << 0), BigInt(5));
}

TEST(BigInt, BitAccess) {
    const BigInt v(0b1010);
    EXPECT_FALSE(v.bit(0));
    EXPECT_TRUE(v.bit(1));
    EXPECT_FALSE(v.bit(2));
    EXPECT_TRUE(v.bit(3));
    EXPECT_FALSE(v.bit(100));
    EXPECT_EQ(v.bit_length(), 4u);
}

TEST(BigInt, DivModRandomizedInvariant) {
    // Property: for random a, b: a == q*b + r with r < b.
    Rng rng(1234);
    for (int i = 0; i < 200; ++i) {
        const BigInt a = BigInt::random_bits(rng, 40 + rng.bounded(200));
        const BigInt b = BigInt::random_bits(rng, 10 + rng.bounded(150));
        const auto [q, r] = a.divmod(b);
        EXPECT_LT(r, b);
        EXPECT_EQ(q * b + r, a);
    }
}

TEST(BigInt, DivModKnuthHardCase) {
    // Exercise the q_hat correction path: divisor with top limb 0x80000000
    // and dividend forcing an over-estimate.
    const BigInt a = *BigInt::from_hex("7fffffff800000010000000000000000");
    const BigInt b = *BigInt::from_hex("800000008000000200000005");
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
}

TEST(BigInt, ModPowSmallKnown) {
    EXPECT_EQ(BigInt::mod_pow(BigInt(4), BigInt(13), BigInt(497)), BigInt(445));
    EXPECT_EQ(BigInt::mod_pow(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
    EXPECT_EQ(BigInt::mod_pow(BigInt(7), BigInt(0), BigInt(13)), BigInt(1));
    EXPECT_EQ(BigInt::mod_pow(BigInt(7), BigInt(5), BigInt(1)), BigInt(0));
}

TEST(BigInt, ModPowFermat) {
    // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, a not mult.
    const BigInt p(1000003);
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        const BigInt a = BigInt(2) + BigInt::random_below(rng, p - BigInt(3));
        EXPECT_EQ(BigInt::mod_pow(a, p - BigInt(1), p), BigInt(1));
    }
}

TEST(BigInt, Gcd) {
    EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)), BigInt(6));
    EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
    EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
    EXPECT_EQ(BigInt::gcd(BigInt(5), BigInt(0)), BigInt(5));
}

TEST(BigInt, ModInverse) {
    const auto inv = BigInt::mod_inverse(BigInt(3), BigInt(11));
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(*inv, BigInt(4));  // 3*4 = 12 = 1 mod 11
    EXPECT_FALSE(BigInt::mod_inverse(BigInt(6), BigInt(9)).has_value());  // gcd 3
}

TEST(BigInt, ModInverseRandomized) {
    Rng rng(77);
    const BigInt m = *BigInt::from_hex("fffffffb");  // prime 2^32-5
    for (int i = 0; i < 100; ++i) {
        const BigInt a = BigInt(1) + BigInt::random_below(rng, m - BigInt(1));
        const auto inv = BigInt::mod_inverse(a, m);
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ((a * *inv) % m, BigInt(1));
    }
}

TEST(BigInt, RandomBitsExactLength) {
    Rng rng(9);
    for (std::size_t bits : {1u, 2u, 31u, 32u, 33u, 64u, 100u, 256u}) {
        const BigInt v = BigInt::random_bits(rng, bits);
        EXPECT_EQ(v.bit_length(), bits);
    }
}

TEST(BigInt, RandomBelowStaysBelow) {
    Rng rng(10);
    const BigInt bound = *BigInt::from_hex("123456789abcdef");
    for (int i = 0; i < 200; ++i) {
        EXPECT_LT(BigInt::random_below(rng, bound), bound);
    }
}

TEST(BigInt, PrimalityKnownPrimes) {
    Rng rng(11);
    for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 97ull, 65537ull, 1000003ull,
                            4294967311ull /* > 2^32 */}) {
        EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
    }
}

TEST(BigInt, PrimalityKnownComposites) {
    Rng rng(12);
    for (std::uint64_t c : {1ull, 4ull, 100ull, 65535ull, 561ull /* Carmichael */,
                            1000001ull, 4294967297ull /* F5 = 641*6700417 */}) {
        EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
    }
}

TEST(BigInt, RandomPrimeHasRequestedSize) {
    Rng rng(13);
    const BigInt p = BigInt::random_prime(rng, 128, 15);
    EXPECT_EQ(p.bit_length(), 128u);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.is_probable_prime(rng, 15));
}

}  // namespace
}  // namespace narada::crypto
