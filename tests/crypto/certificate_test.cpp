// Certificate chain validation (paper §9.1): issuance, chain walking,
// wrong-CA and self-signed rejection, and clock-injected expiry — the
// Clock& overload is what lets virtual-time sim runs expire a certificate
// mid-scenario deterministically.
#include "crypto/certificate.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace narada::crypto {
namespace {

struct Pki {
    RsaKeyPair ca_keys;
    RsaKeyPair leaf_keys;
    Certificate root;
    Certificate leaf;
};

Pki make_pki(std::uint64_t seed = 42, TimeUs from = 0, TimeUs to = 1'000'000) {
    Rng rng(seed);
    Pki pki;
    pki.ca_keys = rsa_generate(rng, 512);
    pki.leaf_keys = rsa_generate(rng, 512);
    pki.root = make_self_signed("ca", pki.ca_keys, from, to, 1);
    pki.leaf = issue_certificate("leaf", pki.leaf_keys.public_key, "ca", pki.ca_keys.private_key,
                                 from, to, 2);
    return pki;
}

TEST(CertificateTest, EncodeDecodeRoundTrip) {
    const Pki pki = make_pki();
    wire::ByteWriter writer;
    pki.leaf.encode(writer);
    const Bytes encoded = writer.take();
    wire::ByteReader reader(encoded);
    const Certificate decoded = Certificate::decode(reader);
    EXPECT_EQ(decoded, pki.leaf);
    EXPECT_TRUE(reader.at_end());
}

TEST(CertificateTest, ValidChainVerifies) {
    const Pki pki = make_pki();
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, TimeUs{500}), CertStatus::kOk);
}

TEST(CertificateTest, EmptyChainRejected) {
    const Pki pki = make_pki();
    EXPECT_EQ(verify_chain({}, {pki.root}, TimeUs{500}), CertStatus::kEmptyChain);
}

TEST(CertificateTest, WrongCaRejected) {
    // A leaf signed by a different CA must not anchor to our root, even if
    // the imposter CA cheekily reuses the trusted root's subject name.
    const Pki pki = make_pki(42);
    Rng rng(99);
    const RsaKeyPair imposter_keys = rsa_generate(rng, 512);
    const Certificate imposter_root = make_self_signed("ca", imposter_keys, 0, 1'000'000, 7);
    const Certificate forged_leaf = issue_certificate(
        "leaf", pki.leaf_keys.public_key, "ca", imposter_keys.private_key, 0, 1'000'000, 8);

    // Chain is internally consistent but the root key differs from the
    // trusted root's: untrusted.
    EXPECT_EQ(verify_chain({forged_leaf, imposter_root}, {pki.root}, TimeUs{500}),
              CertStatus::kUntrustedRoot);
    // Grafting the forged leaf onto the real root breaks the signature.
    EXPECT_EQ(verify_chain({forged_leaf, pki.root}, {pki.root}, TimeUs{500}),
              CertStatus::kBadSignature);
}

TEST(CertificateTest, SelfSignedLeafRejected) {
    // A self-signed certificate is only acceptable when *it* is the trusted
    // anchor; an arbitrary self-signed leaf must not verify.
    const Pki pki = make_pki();
    Rng rng(7);
    const RsaKeyPair rogue = rsa_generate(rng, 512);
    const Certificate self_signed = make_self_signed("rogue", rogue, 0, 1'000'000, 3);
    EXPECT_EQ(verify_chain({self_signed}, {pki.root}, TimeUs{500}),
              CertStatus::kUntrustedRoot);
    // It does anchor to itself when explicitly trusted.
    EXPECT_EQ(verify_chain({self_signed}, {self_signed}, TimeUs{500}), CertStatus::kOk);
}

TEST(CertificateTest, IssuerNameMismatchRejected) {
    const Pki pki = make_pki();
    Certificate tampered = pki.leaf;
    tampered.issuer = "somebody-else";
    EXPECT_EQ(verify_chain({tampered, pki.root}, {pki.root}, TimeUs{500}),
              CertStatus::kIssuerMismatch);
}

TEST(CertificateTest, TamperedFieldBreaksSignature) {
    const Pki pki = make_pki();
    Certificate tampered = pki.leaf;
    tampered.subject = "mallory";
    EXPECT_EQ(verify_chain({tampered, pki.root}, {pki.root}, TimeUs{500}),
              CertStatus::kBadSignature);
}

TEST(CertificateTest, ValidityWindowEnforced) {
    const Pki pki = make_pki(42, /*from=*/100, /*to=*/200);
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, TimeUs{50}),
              CertStatus::kNotYetValid);
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, TimeUs{150}), CertStatus::kOk);
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, TimeUs{250}),
              CertStatus::kExpired);
}

TEST(CertificateTest, ClockOverloadTracksInjectedTime) {
    // Expiry must follow the injected clock, not the wall clock: advancing
    // a ManualClock past valid_to expires the certificate deterministically
    // — the mechanism sim scenarios and chaos clock-skew waves rely on.
    const Pki pki = make_pki(42, /*from=*/100, /*to=*/200);
    ManualClock clock(150);
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, clock), CertStatus::kOk);
    clock.advance(100);  // now 250 > valid_to
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, clock), CertStatus::kExpired);
}

TEST(CertificateTest, SkewedClockChangesVerdict) {
    // Two nodes with skewed clocks can disagree about the same chain — the
    // OffsetClock models exactly the chaos clock-skew wave.
    const Pki pki = make_pki(42, /*from=*/100, /*to=*/200);
    ManualClock base(190);
    OffsetClock skewed(base, 50);  // this node runs 50us fast
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, base), CertStatus::kOk);
    EXPECT_EQ(verify_chain({pki.leaf, pki.root}, {pki.root}, skewed), CertStatus::kExpired);
}

}  // namespace
}  // namespace narada::crypto
