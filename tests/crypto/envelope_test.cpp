// Envelope seal/open round-trip and the hardened open path (paper §9.1,
// Figure 14). The mutation tests feed deliberately malformed sealed blobs
// through open_checked and require the *typed* rejection — the regression
// guard for the "read past the buffer on truncated input" class of bug.
#include "crypto/envelope.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"

namespace narada::crypto {
namespace {

Bytes make_payload() {
    const std::string text = "BrokerDiscoveryRequest{realm=chemistry,hostname=node-17}";
    return Bytes(text.begin(), text.end());
}

struct Fixture {
    Rng rng{2024};
    RsaKeyPair signer = rsa_generate(rng, 512);
    RsaKeyPair recipient = rsa_generate(rng, 512);
    Bytes payload = make_payload();

    SecureEnvelope sealed() {
        auto env = seal(payload, "alice", signer.private_key, recipient.public_key,
                        "bob", rng);
        EXPECT_TRUE(env.has_value());
        return *env;
    }
};

TEST(EnvelopeTest, SealOpenRoundTrip) {
    Fixture fx;
    const SecureEnvelope env = fx.sealed();
    const auto opened = open(env, fx.recipient.private_key, fx.signer.public_key);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->payload, fx.payload);
    EXPECT_EQ(opened->signer_name, "alice");
    EXPECT_TRUE(opened->signature_valid);
}

TEST(EnvelopeTest, EncodeDecodeRoundTrip) {
    Fixture fx;
    const SecureEnvelope env = fx.sealed();
    wire::ByteWriter writer;
    env.encode(writer);
    const Bytes encoded = writer.take();
    wire::ByteReader reader(encoded);
    const SecureEnvelope decoded = SecureEnvelope::decode(reader);
    EXPECT_TRUE(reader.at_end());
    EXPECT_EQ(decoded.encrypted_session, env.encrypted_session);
    EXPECT_EQ(decoded.ciphertext, env.ciphertext);
    EXPECT_EQ(decoded.recipient_hint, "bob");
}

TEST(EnvelopeTest, WrongSignerKeyOpensButInvalid) {
    // A wrong signature is a policy failure, not a parse failure: the
    // envelope opens (kOk) but signature_valid is false.
    Fixture fx;
    Rng other_rng(7);
    const RsaKeyPair mallory = rsa_generate(other_rng, 512);
    const SecureEnvelope env = fx.sealed();
    const auto outcome = open_checked(env, fx.recipient.private_key, mallory.public_key);
    EXPECT_EQ(outcome.error, EnvelopeError::kOk);
    EXPECT_FALSE(outcome.opened.signature_valid);
    EXPECT_EQ(outcome.opened.payload, fx.payload);
}

TEST(EnvelopeTest, TruncatedCiphertextRejectedBeforeAnyRsaWork) {
    Fixture fx;
    SecureEnvelope env = fx.sealed();
    env.ciphertext.pop_back();  // no longer a block multiple
    EXPECT_EQ(open_checked(env, fx.recipient.private_key, fx.signer.public_key).error,
              EnvelopeError::kCipherAlignment);

    env.ciphertext.clear();
    EXPECT_EQ(open_checked(env, fx.recipient.private_key, fx.signer.public_key).error,
              EnvelopeError::kCipherAlignment);
    EXPECT_FALSE(open(env, fx.recipient.private_key, fx.signer.public_key).has_value());
}

TEST(EnvelopeTest, WrongRecipientKeyRejected) {
    // Decrypting the session block with the wrong private key cannot yield
    // the structured session payload; it must surface as a typed session
    // error, never a crash or a garbage payload.
    Fixture fx;
    Rng other_rng(11);
    const RsaKeyPair not_bob = rsa_generate(other_rng, 512);
    const SecureEnvelope env = fx.sealed();
    const auto outcome = open_checked(env, not_bob.private_key, fx.signer.public_key);
    EXPECT_TRUE(outcome.error == EnvelopeError::kSessionDecrypt ||
                outcome.error == EnvelopeError::kSessionSize ||
                outcome.error == EnvelopeError::kBadPadding)
        << to_string(outcome.error);
}

TEST(EnvelopeTest, CorruptedSessionBlockRejected) {
    Fixture fx;
    SecureEnvelope env = fx.sealed();
    ASSERT_FALSE(env.encrypted_session.empty());
    env.encrypted_session[env.encrypted_session.size() / 2] ^= 0x40;
    const auto outcome = open_checked(env, fx.recipient.private_key, fx.signer.public_key);
    EXPECT_NE(outcome.error, EnvelopeError::kOk);
    // A flipped bit in the RSA block yields a structurally broken or
    // wrong-sized session, or (rarely) a valid-looking key that fails CBC
    // padding — all typed, none fatal.
    EXPECT_TRUE(outcome.error == EnvelopeError::kSessionDecrypt ||
                outcome.error == EnvelopeError::kSessionSize ||
                outcome.error == EnvelopeError::kBadPadding)
        << to_string(outcome.error);
}

TEST(EnvelopeTest, WrongSizeSessionBlobRejected) {
    // Craft an envelope whose RSA block decrypts fine but holds an 8-byte
    // blob instead of key||IV.
    Fixture fx;
    SecureEnvelope env;
    const Bytes short_session{1, 2, 3, 4, 5, 6, 7, 8};
    auto encrypted = rsa_encrypt(fx.recipient.public_key, short_session, fx.rng);
    ASSERT_TRUE(encrypted.has_value());
    env.encrypted_session = std::move(*encrypted);
    env.ciphertext.assign(Aes128::kBlockSize, 0);  // aligned, so the gate passes
    EXPECT_EQ(open_checked(env, fx.recipient.private_key, fx.signer.public_key).error,
              EnvelopeError::kSessionSize);
}

// Build an envelope around an attacker-chosen *plaintext* bundle, correctly
// encrypted under a fresh session key: exercises the inner-bundle parser on
// hostile but well-encrypted input.
SecureEnvelope envelope_with_bundle(Fixture& fx, const Bytes& bundle) {
    Aes128::Key key;
    Aes128::Block iv;
    for (auto& b : key) b = static_cast<std::uint8_t>(fx.rng.next());
    for (auto& b : iv) b = static_cast<std::uint8_t>(fx.rng.next());
    SecureEnvelope env;
    env.ciphertext = Aes128(key).encrypt_cbc(bundle, iv);
    Bytes session;
    session.insert(session.end(), key.begin(), key.end());
    session.insert(session.end(), iv.begin(), iv.end());
    auto encrypted = rsa_encrypt(fx.recipient.public_key, session, fx.rng);
    EXPECT_TRUE(encrypted.has_value());
    env.encrypted_session = std::move(*encrypted);
    return env;
}

TEST(EnvelopeTest, ForgedInnerLengthSurfacesAsTruncated) {
    // The bundle's payload blob claims 4 GiB; the reader must bounds-check
    // the prefix against the remaining bytes instead of reading past the
    // decrypted buffer.
    Fixture fx;
    wire::ByteWriter bundle;
    bundle.u32(0xFFFFFFFFu);  // blob length prefix with no bytes behind it
    const SecureEnvelope env = envelope_with_bundle(fx, bundle.take());
    EXPECT_EQ(open_checked(env, fx.recipient.private_key, fx.signer.public_key).error,
              EnvelopeError::kTruncated);
}

TEST(EnvelopeTest, TrailingGarbageInBundleRejected) {
    Fixture fx;
    wire::ByteWriter bundle;
    bundle.blob(fx.payload);
    bundle.blob(rsa_sign(fx.signer.private_key, fx.payload));
    bundle.str("alice");
    bundle.u8(0xEE);  // one stray byte after the last field
    const SecureEnvelope env = envelope_with_bundle(fx, bundle.take());
    EXPECT_EQ(open_checked(env, fx.recipient.private_key, fx.signer.public_key).error,
              EnvelopeError::kTrailingGarbage);
}

TEST(EnvelopeTest, TamperedCiphertextRejected) {
    Fixture fx;
    SecureEnvelope env = fx.sealed();
    // Flip a bit in the *last* block: CBC padding breaks with overwhelming
    // probability (and deterministically under this fixture's fixed seed).
    env.ciphertext.back() ^= 0x01;
    const auto outcome = open_checked(env, fx.recipient.private_key, fx.signer.public_key);
    EXPECT_TRUE(outcome.error == EnvelopeError::kBadPadding ||
                outcome.error == EnvelopeError::kBundleParse ||
                outcome.error == EnvelopeError::kTruncated ||
                outcome.error == EnvelopeError::kTrailingGarbage)
        << to_string(outcome.error);
    EXPECT_NE(outcome.error, EnvelopeError::kOk);
}

TEST(EnvelopeTest, TamperedPayloadBreaksSignature) {
    // Flip a bit in the *first* block: the first plaintext block scrambles,
    // padding usually survives, and the signature check must catch it.
    Fixture fx;
    SecureEnvelope env = fx.sealed();
    env.ciphertext.front() ^= 0x01;
    const auto outcome = open_checked(env, fx.recipient.private_key, fx.signer.public_key);
    if (outcome.error == EnvelopeError::kOk) {
        EXPECT_FALSE(outcome.opened.signature_valid);
    }
}

TEST(EnvelopeTest, ErrorStringsAreStable) {
    EXPECT_STREQ(to_string(EnvelopeError::kOk), "ok");
    EXPECT_STREQ(to_string(EnvelopeError::kTruncated), "truncated");
    EXPECT_STREQ(to_string(EnvelopeError::kBadTag), "bad-tag");
    EXPECT_STREQ(to_string(EnvelopeError::kRecipientMismatch), "recipient-mismatch");
}

}  // namespace
}  // namespace narada::crypto
