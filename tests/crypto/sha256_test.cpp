#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"

namespace narada::crypto {
namespace {

std::string digest_hex(const Sha256::Digest& d) { return hex_encode(d.data(), d.size()); }

TEST(Sha256, EmptyString) {
    // FIPS 180-4 / NIST test vector.
    EXPECT_EQ(digest_hex(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(digest_hex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(digest_hex(Sha256::hash(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(digest_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const std::string text = "The quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : text) h.update(std::string_view(&c, 1));
    EXPECT_EQ(h.finish(), Sha256::hash(text));
}

TEST(Sha256, BoundaryLengths) {
    // Lengths around the 55/56/64-byte padding boundaries must all work.
    for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const std::string a(len, 'x');
        Sha256 h;
        h.update(a);
        const auto one = h.finish();
        // Split at an arbitrary point; digest must be identical.
        Sha256 h2;
        h2.update(a.substr(0, len / 3));
        h2.update(a.substr(len / 3));
        EXPECT_EQ(h2.finish(), one) << "len=" << len;
    }
}

TEST(Sha256, ResetReuses) {
    Sha256 h;
    h.update("garbage");
    h.reset();
    h.update("abc");
    EXPECT_EQ(digest_hex(h.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HmacSha256, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    const std::string msg = "Hi There";
    const Bytes data(msg.begin(), msg.end());
    EXPECT_EQ(hex_encode(hmac_sha256(key, data).data(), 32),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
    const std::string key_s = "Jefe";
    const std::string msg = "what do ya want for nothing?";
    const Bytes key(key_s.begin(), key_s.end());
    const Bytes data(msg.begin(), msg.end());
    EXPECT_EQ(hex_encode(hmac_sha256(key, data).data(), 32),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashed) {
    // RFC 4231 case 6: 131-byte key.
    const Bytes key(131, 0xaa);
    const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
    const Bytes data(msg.begin(), msg.end());
    EXPECT_EQ(hex_encode(hmac_sha256(key, data).data(), 32),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace narada::crypto
