#include "discovery/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace narada::discovery {
namespace {

BrokerAdvertisement sample_ad(Rng& rng) {
    BrokerAdvertisement ad;
    ad.broker_id = Uuid::random(rng);
    ad.broker_name = "broker-7";
    ad.hostname = "webis.msi.umn.edu";
    ad.endpoint = {4, 7000};
    ad.protocols = {"tcp", "udp", "multicast"};
    ad.realm = "umn";
    ad.geo_location = "Minneapolis, MN, USA";
    ad.institution = "UMN";
    return ad;
}

TEST(Messages, AdvertisementRoundTrip) {
    Rng rng(1);
    const BrokerAdvertisement ad = sample_ad(rng);
    wire::ByteWriter w;
    ad.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(BrokerAdvertisement::decode(r), ad);
    EXPECT_TRUE(r.at_end());
}

TEST(Messages, AdvertisementOptionalFieldsEmpty) {
    Rng rng(2);
    BrokerAdvertisement ad = sample_ad(rng);
    ad.geo_location.clear();
    ad.institution.clear();
    ad.protocols.clear();
    wire::ByteWriter w;
    ad.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(BrokerAdvertisement::decode(r), ad);
}

TEST(Messages, RequestRoundTrip) {
    Rng rng(3);
    DiscoveryRequest req;
    req.request_id = Uuid::random(rng);
    req.requester_hostname = "client.gf1.ucs.indiana.edu";
    req.reply_to = {2, 7200};
    req.protocols = {"tcp", "udp"};
    req.credential = "x509:alice";
    req.realm = "iu-lab";
    wire::ByteWriter w;
    req.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(DiscoveryRequest::decode(r), req);
    EXPECT_TRUE(r.at_end());
}

TEST(Messages, ResponseRoundTrip) {
    Rng rng(4);
    DiscoveryResponse resp;
    resp.request_id = Uuid::random(rng);
    resp.sent_utc = 1234567890123456LL;
    resp.broker_id = Uuid::random(rng);
    resp.broker_name = "tungsten/broker2";
    resp.hostname = "tungsten.ncsa.uiuc.edu";
    resp.endpoint = {5, 7000};
    resp.protocols = {"tcp", "udp"};
    resp.metrics.connections = 17;
    resp.metrics.broker_links = 3;
    resp.metrics.cpu_load = 0.42;
    resp.metrics.total_memory = 512ull << 20;
    resp.metrics.free_memory = 200ull << 20;
    wire::ByteWriter w;
    resp.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(DiscoveryResponse::decode(r), resp);
    EXPECT_TRUE(r.at_end());
}

TEST(Messages, NegativeTimestampSurvives) {
    Rng rng(5);
    DiscoveryResponse resp;
    resp.request_id = Uuid::random(rng);
    resp.sent_utc = -5;  // clock skew can make UTC estimates negative early on
    wire::ByteWriter w;
    resp.encode(w);
    wire::ByteReader r(w.bytes());
    EXPECT_EQ(DiscoveryResponse::decode(r).sent_utc, -5);
}

TEST(Messages, OversizedProtocolListRejected) {
    Rng rng(6);
    DiscoveryRequest req;
    req.request_id = Uuid::random(rng);
    req.reply_to = {1, 1};
    wire::ByteWriter w;
    req.encode(w);
    Bytes data = w.take();
    // The protocol-list count sits right after uuid(16) + hostname(4+0) +
    // endpoint(6). Corrupt it to a huge value.
    const std::size_t count_offset = 16 + 4 + 6;
    data[count_offset] = 0xFF;
    data[count_offset + 1] = 0xFF;
    wire::ByteReader r(data);
    EXPECT_THROW(DiscoveryRequest::decode(r), wire::WireError);
}

TEST(Messages, TruncatedResponseThrows) {
    Rng rng(7);
    DiscoveryResponse resp;
    resp.request_id = Uuid::random(rng);
    wire::ByteWriter w;
    resp.encode(w);
    Bytes data = w.take();
    data.resize(data.size() / 2);
    wire::ByteReader r(data);
    EXPECT_THROW(DiscoveryResponse::decode(r), wire::WireError);
}

}  // namespace
}  // namespace narada::discovery
