#include "discovery/bdn.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

/// A minimal broker stand-in: answers pings, records discovery requests.
class FakeBroker final : public transport::MessageHandler {
public:
    FakeBroker(sim::Kernel& kernel, transport::Transport& transport, const Endpoint& ep)
        : kernel_(kernel), transport_(transport), ep_(ep) {
        transport_.bind(ep_, this);
    }
    ~FakeBroker() override { transport_.unbind(ep_); }

    void on_datagram(const Endpoint& from, const Bytes& data) override {
        wire::ByteReader r(data);
        const std::uint8_t type = r.u8();
        if (type == wire::kMsgPing) {
            const TimeUs echo = r.i64();
            wire::ByteWriter w;
            w.u8(wire::kMsgPong);
            w.i64(echo);
            w.i64(kernel_.now());
            transport_.send_datagram(ep_, from, w.take());
        } else if (type == wire::kMsgDiscoveryRequest) {
            requests.push_back({from, kernel_.now()});
        }
    }

    struct Arrival {
        Endpoint from;
        TimeUs at;
    };
    std::vector<Arrival> requests;

    BrokerAdvertisement advertisement(Rng& rng, const std::string& realm = "r") const {
        BrokerAdvertisement ad;
        ad.broker_id = Uuid::random(rng);
        ad.broker_name = "fake";
        ad.endpoint = ep_;
        ad.realm = realm;
        return ad;
    }

private:
    sim::Kernel& kernel_;
    transport::Transport& transport_;
    Endpoint ep_;
};

struct BdnFixture : ::testing::Test {
    BdnFixture() : net(kernel, 77), rng(7) {
        bdn_host = net.add_host({"bdn", "S", "bdn-realm", 0});
        client_host = net.add_host({"client", "S", "client-realm", 0});
        for (int i = 0; i < 3; ++i) {
            broker_hosts.push_back(net.add_host({"b" + std::to_string(i), "S", "r", 0}));
        }
        // Distinct latencies so "closest" and "farthest" are unambiguous.
        net.set_link(bdn_host, broker_hosts[0], {from_ms(5), 0, 2});   // closest
        net.set_link(bdn_host, broker_hosts[1], {from_ms(20), 0, 5});  // middle
        net.set_link(bdn_host, broker_hosts[2], {from_ms(50), 0, 9});  // farthest
        net.set_default_link({from_ms(10), 0, 3});
        for (HostId h : broker_hosts) {
            brokers.push_back(std::make_unique<FakeBroker>(kernel, net, Endpoint{h, 7000}));
        }
    }

    Bdn make_bdn(config::BdnConfig cfg = {}) {
        return Bdn(kernel, net, Endpoint{bdn_host, 7100}, net.host_clock(bdn_host), cfg);
    }

    DiscoveryRequest make_request() {
        DiscoveryRequest req;
        req.request_id = Uuid::random(rng);
        req.reply_to = client_ep();
        req.realm = "client-realm";
        return req;
    }

    void send_request(Bdn& bdn, const DiscoveryRequest& req) {
        wire::ByteWriter w;
        w.u8(wire::kMsgDiscoveryRequest);
        req.encode(w);
        net.send_datagram(client_ep(), bdn.endpoint(), w.take());
    }

    Endpoint client_ep() const { return {client_host, 7200}; }

    void register_all(Bdn& bdn, Rng& r) {
        for (const auto& broker : brokers) {
            bdn.register_broker(broker->advertisement(r));
        }
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    Rng rng;
    HostId bdn_host{}, client_host{};
    std::vector<HostId> broker_hosts;
    std::vector<std::unique_ptr<FakeBroker>> brokers;
};

TEST_F(BdnFixture, RegistersAdvertisements) {
    Bdn bdn = make_bdn();
    register_all(bdn, rng);
    EXPECT_EQ(bdn.registered_count(), 3u);
    EXPECT_EQ(bdn.stats().ads_received, 3u);
}

TEST_F(BdnFixture, ReRegistrationUpdatesNotDuplicates) {
    Bdn bdn = make_bdn();
    const BrokerAdvertisement ad = brokers[0]->advertisement(rng);
    bdn.register_broker(ad);
    bdn.register_broker(ad);
    EXPECT_EQ(bdn.registered_count(), 1u);
}

TEST_F(BdnFixture, RealmFilterIgnoresForeignAds) {
    // §2.3: "a BDN in the US may be interested only in broker additions in
    // North America".
    config::BdnConfig cfg;
    cfg.accepted_realms = {"us-east"};
    Bdn bdn = make_bdn(cfg);
    bdn.register_broker(brokers[0]->advertisement(rng, "us-east"));
    bdn.register_broker(brokers[1]->advertisement(rng, "europe"));
    EXPECT_EQ(bdn.registered_count(), 1u);
    EXPECT_EQ(bdn.stats().ads_filtered, 1u);
}

TEST_F(BdnFixture, DistanceTableFromPings) {
    Bdn bdn = make_bdn();
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    const auto registry = bdn.registry();
    ASSERT_EQ(registry.size(), 3u);
    for (const auto& rb : registry) {
        EXPECT_GE(rb.rtt, 0) << "ping did not complete";
    }
    EXPECT_EQ(bdn.stats().pongs_received, 3u);
}

TEST_F(BdnFixture, ClosestAndFarthestInjection) {
    Bdn bdn = make_bdn();  // default strategy
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);  // distance table ready
    send_request(bdn, make_request());
    kernel.run_until(kernel.now() + kSecond);
    // §4: injected at exactly the closest (b0) and farthest (b2) brokers.
    EXPECT_EQ(brokers[0]->requests.size(), 1u);
    EXPECT_TRUE(brokers[1]->requests.empty());
    EXPECT_EQ(brokers[2]->requests.size(), 1u);
    EXPECT_EQ(bdn.stats().injections, 2u);
}

TEST_F(BdnFixture, ClosestOnlyInjection) {
    config::BdnConfig cfg;
    cfg.injection = config::InjectionStrategy::kClosestOnly;
    Bdn bdn = make_bdn(cfg);
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    send_request(bdn, make_request());
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(brokers[0]->requests.size(), 1u);
    EXPECT_TRUE(brokers[1]->requests.empty());
    EXPECT_TRUE(brokers[2]->requests.empty());
}

TEST_F(BdnFixture, AllInjectionIsSequentiallySpaced) {
    config::BdnConfig cfg;
    cfg.injection = config::InjectionStrategy::kAll;
    cfg.injection_spacing = from_ms(10);
    Bdn bdn = make_bdn(cfg);
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    const TimeUs t0 = kernel.now();
    send_request(bdn, make_request());
    kernel.run_until(kernel.now() + kSecond);
    ASSERT_EQ(brokers[0]->requests.size(), 1u);
    ASSERT_EQ(brokers[1]->requests.size(), 1u);
    ASSERT_EQ(brokers[2]->requests.size(), 1u);
    // O(N) distribution: send k is spaced k*10 ms after the first (§9).
    // Arrival = request reaches BDN + k*spacing + link latency.
    const TimeUs a0 = brokers[0]->requests[0].at - t0;
    const TimeUs a1 = brokers[1]->requests[0].at - t0;
    const TimeUs a2 = brokers[2]->requests[0].at - t0;
    EXPECT_LT(a0, a1);
    EXPECT_LT(a1, a2);
    EXPECT_GE(a2 - a0, from_ms(20) + from_ms(45) - from_ms(5));  // spacing + latency gap
}

TEST_F(BdnFixture, AcksEveryRequestIncludingDuplicates) {
    struct AckCatcher final : transport::MessageHandler {
        void on_datagram(const Endpoint&, const Bytes& data) override {
            wire::ByteReader r(data);
            if (r.u8() == wire::kMsgDiscoveryAck) ++acks;
        }
        int acks = 0;
    } catcher;
    net.bind(client_ep(), &catcher);

    Bdn bdn = make_bdn();
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    const DiscoveryRequest req = make_request();
    send_request(bdn, req);
    send_request(bdn, req);  // retransmission with the same UUID
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(catcher.acks, 2);                       // §3: timely acks
    EXPECT_EQ(bdn.stats().duplicate_requests, 1u);    // §3: idempotent
    EXPECT_EQ(brokers[0]->requests.size(), 1u);       // injected once only
}

TEST_F(BdnFixture, PrivateBdnRequiresCredential) {
    config::BdnConfig cfg;
    cfg.required_credential = "member-key";
    Bdn bdn = make_bdn(cfg);
    register_all(bdn, rng);
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);

    DiscoveryRequest bad = make_request();
    bad.credential = "wrong";
    send_request(bdn, bad);
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(bdn.stats().credential_rejections, 1u);
    EXPECT_TRUE(brokers[0]->requests.empty());

    DiscoveryRequest good = make_request();
    good.credential = "member-key";
    send_request(bdn, good);
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_FALSE(brokers[0]->requests.empty());
}

TEST_F(BdnFixture, NoRegisteredBrokersMeansNoInjection) {
    Bdn bdn = make_bdn();
    bdn.start();
    send_request(bdn, make_request());
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(bdn.stats().requests_received, 1u);
    EXPECT_EQ(bdn.stats().injections, 0u);
    EXPECT_EQ(bdn.stats().acks_sent, 1u);  // still acknowledges
}

TEST_F(BdnFixture, SingleRegisteredBrokerWorks) {
    // §2.1: "Our scheme will work even if a single broker is registered".
    Bdn bdn = make_bdn();
    bdn.register_broker(brokers[1]->advertisement(rng));
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    send_request(bdn, make_request());
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(brokers[1]->requests.size(), 1u);
    EXPECT_EQ(bdn.stats().injections, 1u);
}

TEST_F(BdnFixture, MalformedDatagramIgnored) {
    Bdn bdn = make_bdn();
    net.send_datagram(client_ep(), bdn.endpoint(), Bytes{wire::kMsgDiscoveryRequest, 0x01});
    net.send_datagram(client_ep(), bdn.endpoint(), Bytes{});
    kernel.run_until(kernel.now() + kSecond);
    EXPECT_EQ(bdn.stats().requests_received, 0u);
}

TEST_F(BdnFixture, PeriodicRefreshTracksChangingDistances) {
    config::BdnConfig cfg;
    cfg.ping_refresh_interval = from_ms(200);
    Bdn bdn = make_bdn(cfg);
    bdn.register_broker(brokers[0]->advertisement(rng));
    bdn.start();
    kernel.run_until(kernel.now() + kSecond);
    const DurationUs rtt_before = bdn.registry()[0].rtt;
    EXPECT_NEAR(static_cast<double>(rtt_before), static_cast<double>(from_ms(10)), 1000.0);
    // The link degrades; subsequent refreshes must notice.
    net.set_link(bdn_host, broker_hosts[0], {from_ms(40), 0, 2});
    kernel.run_until(kernel.now() + kSecond);
    const DurationUs rtt_after = bdn.registry()[0].rtt;
    EXPECT_NEAR(static_cast<double>(rtt_after), static_cast<double>(from_ms(80)), 1000.0);
}

TEST_F(BdnFixture, RegistrySyncPushesAdsToPeerBdn) {
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};

    config::BdnConfig cfg;
    cfg.sync_peers = {peer_ep};
    cfg.registry_sync_interval = from_ms(500);
    Bdn bdn_a = make_bdn(cfg);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), {});
    bdn_a.start();
    bdn_b.start();

    register_all(bdn_a, rng);
    kernel.run_until(kernel.now() + 2 * kSecond);

    EXPECT_EQ(bdn_b.registered_count(), 3u) << "peer must learn the full registry";
    EXPECT_GE(bdn_a.stats().sync_pushes, 1u);
    EXPECT_GE(bdn_b.stats().sync_received, 1u);
    EXPECT_EQ(bdn_b.stats().sync_brokers_learned, 3u);
    ASSERT_NE(bdn_a.sync_channel(peer_ep), nullptr);
    EXPECT_EQ(bdn_a.sync_channel(peer_ep)->state(),
              transport::RudpChannel::State::kHealthy);
}

TEST_F(BdnFixture, RegistrySyncSurvivesLossyPath) {
    // A registry big enough to fragment across many segments, pushed over
    // a 30%-loss path: the RUDP lane must still converge the peer.
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};
    net.set_directed_loss(bdn_host, peer_host, 0.30);

    config::BdnConfig cfg;
    cfg.sync_peers = {peer_ep};
    cfg.registry_sync_interval = from_ms(500);
    Bdn bdn_a = make_bdn(cfg);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), {});
    bdn_a.start();
    bdn_b.start();

    for (int i = 0; i < 200; ++i) {
        BrokerAdvertisement ad;
        ad.broker_id = Uuid::random(rng);
        ad.broker_name = "bulk-broker-" + std::to_string(i) +
                         std::string(64, 'x');  // pad past one chunk's worth
        ad.endpoint = Endpoint{broker_hosts[0], static_cast<std::uint16_t>(9000 + i)};
        ad.realm = "r";
        bdn_a.register_broker(ad);
    }
    kernel.run_until(kernel.now() + 10 * kSecond);

    EXPECT_EQ(bdn_b.registered_count(), 200u);
    EXPECT_GE(bdn_a.stats().sync_pushes, 1u);
}

TEST_F(BdnFixture, RegistrySyncClampsLeaseToSendersRemaining) {
    // Regression: a synced entry must carry what is left of the sender's
    // lease, not be granted a fresh full lease by the receiver. Here the
    // sender leases for 2 s and the receiver's own policy is 60 s — the
    // merged entry must still lapse when the original grant does.
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};

    config::BdnConfig cfg_a;
    cfg_a.sync_peers = {peer_ep};
    cfg_a.registry_sync_interval = from_ms(500);
    cfg_a.ad_lease = 2 * kSecond;
    config::BdnConfig cfg_b;
    cfg_b.ad_lease = 60 * kSecond;

    Bdn bdn_a = make_bdn(cfg_a);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), cfg_b);
    bdn_a.start();
    bdn_b.start();

    const TimeUs t0 = kernel.now();
    bdn_a.register_broker(brokers[0]->advertisement(rng));
    kernel.run_until(t0 + 1500 * kMillisecond);

    const auto reg = bdn_b.registry();
    ASSERT_EQ(reg.size(), 1u);
    EXPECT_GT(reg[0].lease_expires_at, t0);
    // The sender's grant ends at t0 + 2 s; allow slack for sync latency but
    // nothing close to the receiver's own 60 s policy.
    EXPECT_LE(reg[0].lease_expires_at, t0 + 2 * kSecond + from_ms(500))
        << "receiver granted a fresh lease instead of clamping to remaining";

    // And the entry actually lapses: once the original grant is over, the
    // receiver's sweep evicts it (the sender's copy expired too, so the
    // digest-driven pushes stop carrying it).
    kernel.run_until(t0 + 8 * kSecond);
    std::size_t live = 0;
    for (const auto& rb : bdn_b.registry()) {
        if (rb.lease_expires_at == 0 || rb.lease_expires_at > kernel.now()) ++live;
    }
    EXPECT_EQ(live, 0u) << "clamped lease outlived the sender's grant";
}

TEST_F(BdnFixture, RegistrySyncNonLeasingSenderCannotRenewLease) {
    // A sender that does not track leases (-1 on the wire) must not refresh
    // a lease the receiver already granted: only the broker's own re-ad can.
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};

    config::BdnConfig cfg_a;
    cfg_a.sync_peers = {peer_ep};
    cfg_a.registry_sync_interval = from_ms(500);
    cfg_a.ad_lease = 0;  // sender: no leases
    config::BdnConfig cfg_b;
    cfg_b.ad_lease = 2 * kSecond;  // receiver leases direct registrations

    Bdn bdn_a = make_bdn(cfg_a);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), cfg_b);
    bdn_a.start();
    bdn_b.start();

    const BrokerAdvertisement ad = brokers[0]->advertisement(rng);
    bdn_b.register_broker(ad);  // direct registration: leased locally
    const TimeUs direct_lease = bdn_b.registry()[0].lease_expires_at;
    ASSERT_GT(direct_lease, 0);

    bdn_a.register_broker(ad);  // the sender also knows this broker
    kernel.run_until(kernel.now() + 1500 * kMillisecond);

    ASSERT_EQ(bdn_b.registered_count(), 1u);
    EXPECT_EQ(bdn_b.registry()[0].lease_expires_at, direct_lease)
        << "a -1 (non-leasing) sync entry renewed the receiver's lease";
}

TEST_F(BdnFixture, RegistrySyncNeverResurrectsExpiredEntry) {
    // A v2 sync entry whose remaining lease is already spent (<= 0, not the
    // -1 sentinel) must be dropped, never stored — even though the same ad
    // with time left would be welcome.
    Bdn bdn = make_bdn();

    RegistrySyncEntry spent;
    spent.ad = brokers[0]->advertisement(rng);
    spent.lease_remaining = 0;  // expired exactly at encode time
    spent.origin = 0xABCD;
    spent.version = 7;
    RegistrySyncEntry negative;
    negative.ad = brokers[1]->advertisement(rng);
    negative.lease_remaining = -from_ms(500);  // long dead at the sender
    negative.origin = 0xABCD;
    negative.version = 8;

    wire::ByteWriter w;
    w.u8(wire::kMsgBdnRegistrySync2);
    w.u32(2);
    spent.encode(w);
    negative.encode(w);
    const Bytes payload = w.take();

    // Deliver over a real RUDP lane from a fake peer, exactly as a (buggy
    // or clock-stepped) BDN would push it.
    struct FrameRouter final : transport::MessageHandler {
        transport::RudpChannel* channel = nullptr;
        void on_datagram(const Endpoint&, const Bytes& data) override {
            if (channel == nullptr || data.empty()) return;
            wire::ByteReader reader(data);
            const std::uint8_t type = reader.u8();
            channel->handle_frame(type, reader);
        }
    } router;
    const Endpoint peer_ep{client_host, 7300};
    net.bind(peer_ep, &router);
    transport::RudpChannel channel(kernel, net, net.host_clock(client_host), peer_ep,
                                   bdn.endpoint(), transport::RudpOptions{}, "fake-peer");
    router.channel = &channel;
    ASSERT_TRUE(channel.send_bulk(payload));
    kernel.run_until(kernel.now() + 2 * kSecond);

    EXPECT_EQ(bdn.registered_count(), 0u) << "expired sync entries were resurrected";
    EXPECT_EQ(bdn.stats().sync_expired_dropped, 2u);
    net.unbind(peer_ep);
}

TEST_F(BdnFixture, RegistrySyncSkipsPushWhileDigestUnchanged) {
    // Periodic full-registry pushes are wasteful when nothing changed; the
    // digest-skip keeps the lane idle until the registry actually moves.
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};

    config::BdnConfig cfg;
    cfg.sync_peers = {peer_ep};
    cfg.registry_sync_interval = from_ms(500);
    Bdn bdn_a = make_bdn(cfg);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), {});
    bdn_a.start();
    bdn_b.start();

    register_all(bdn_a, rng);
    kernel.run_until(kernel.now() + 3 * kSecond);

    EXPECT_EQ(bdn_a.stats().sync_pushes, 1u) << "unchanged registry was re-pushed";
    EXPECT_GE(bdn_a.stats().sync_skipped_unchanged, 3u);
    EXPECT_EQ(bdn_b.registered_count(), 3u);

    // A new advertisement changes the digest: exactly one more push.
    BrokerAdvertisement fresh;
    fresh.broker_id = Uuid::random(rng);
    fresh.broker_name = "late-joiner";
    fresh.endpoint = Endpoint{broker_hosts[0], 9100};
    fresh.realm = "r";
    bdn_a.register_broker(fresh);
    kernel.run_until(kernel.now() + 2 * kSecond);

    EXPECT_EQ(bdn_a.stats().sync_pushes, 2u);
    EXPECT_EQ(bdn_b.registered_count(), 4u);
}

TEST_F(BdnFixture, RegistrySyncReRegistrationChangesDigest) {
    // A lease renewal (re-advertisement) mints a fresh version, so the
    // digest changes and peers hear about the renewal.
    const HostId peer_host = net.add_host({"bdn2", "S", "bdn-realm", 0});
    const Endpoint peer_ep{peer_host, 7100};

    config::BdnConfig cfg;
    cfg.sync_peers = {peer_ep};
    cfg.registry_sync_interval = from_ms(500);
    Bdn bdn_a = make_bdn(cfg);
    Bdn bdn_b(kernel, net, peer_ep, net.host_clock(peer_host), {});
    bdn_a.start();
    bdn_b.start();

    const BrokerAdvertisement ad = brokers[0]->advertisement(rng);
    bdn_a.register_broker(ad);
    kernel.run_until(kernel.now() + 2 * kSecond);
    const std::uint64_t pushes_before = bdn_a.stats().sync_pushes;
    EXPECT_EQ(pushes_before, 1u);

    bdn_a.register_broker(ad);  // renewal, same broker id
    kernel.run_until(kernel.now() + 2 * kSecond);
    EXPECT_EQ(bdn_a.stats().sync_pushes, pushes_before + 1);
}

}  // namespace
}  // namespace narada::discovery
