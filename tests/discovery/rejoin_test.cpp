// RejoinSupervisor: overlay self-healing with jittered exponential
// backoff. The paper's overlay is "very dynamic and fluid" (§1.2); these
// tests crash brokers and assert the survivors re-assemble themselves.
#include "discovery/rejoin.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "scenario/chaos.hpp"
#include "scenario/scenario.hpp"

namespace narada::discovery {
namespace {

struct RejoinFixture : ::testing::Test {
    void build(scenario::Topology topology, std::vector<sim::Site> sites,
               std::uint32_t peer_floor = 1) {
        opts.topology = topology;
        opts.broker_sites = std::move(sites);
        opts.seed = 777;
        opts.enable_rejoin = true;
        opts.rejoin.peer_floor = peer_floor;
        // Tight timers so failure detection and healing fit in test time.
        opts.broker.peer_heartbeat_interval = 1 * kSecond;
        opts.broker.advertise_interval = 5 * kSecond;
        opts.bdn.ad_lease = 12 * kSecond;
        opts.discovery.response_window = from_ms(1200);
        opts.discovery.retransmit_interval = from_ms(400);
        testbed = std::make_unique<scenario::Scenario>(opts);
        testbed->warm_up();
    }

    void settle(DurationUs d) {
        testbed->kernel().run_until(testbed->kernel().now() + d);
    }

    scenario::ScenarioOptions opts;
    std::unique_ptr<scenario::Scenario> testbed;
};

TEST_F(RejoinFixture, SpokesRejoinAfterHubCrash) {
    build(scenario::Topology::kStar,
          {sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn, sim::Site::kFsu,
           sim::Site::kCardiff});
    settle(5 * kSecond);
    // Every spoke starts with exactly one peer: the hub.
    for (std::size_t i = 1; i < testbed->broker_count(); ++i) {
        ASSERT_EQ(testbed->broker_at(i).established_peer_count(), 1u) << i;
    }

    testbed->network().set_host_down(testbed->broker_host(0), true);
    settle(60 * kSecond);

    std::uint64_t attempts = 0, successes = 0, resets = 0;
    for (std::size_t i = 1; i < testbed->broker_count(); ++i) {
        EXPECT_GE(testbed->broker_at(i).established_peer_count(), 1u)
            << "spoke " << i << " still orphaned";
        const RejoinSupervisor::Stats& s = testbed->rejoin_at(i).stats();
        attempts += s.attempts;
        successes += s.successes;
        resets += s.backoff_resets;
        EXPECT_FALSE(testbed->rejoin_at(i).below_floor());
        // A successful re-peer resets the backoff base to the initial delay.
        EXPECT_EQ(testbed->rejoin_at(i).current_backoff(), opts.rejoin.backoff_initial);
    }
    EXPECT_GT(attempts, 0u);
    EXPECT_GT(successes, 0u);
    EXPECT_GT(resets, 0u);
    EXPECT_TRUE(scenario::overlay_connected(*testbed));
}

TEST_F(RejoinFixture, BackoffGrowsWhileIsolatedAndResetsOnRepeer) {
    build(scenario::Topology::kFull, {sim::Site::kNcsa, sim::Site::kUmn});
    settle(5 * kSecond);
    ASSERT_EQ(testbed->broker_at(0).established_peer_count(), 1u);

    // Kill the only peer AND the BDN: broker 0 cannot possibly heal.
    testbed->network().set_host_down(testbed->broker_host(1), true);
    testbed->network().set_host_down(testbed->bdn().endpoint().host, true);
    settle(90 * kSecond);

    RejoinSupervisor& supervisor = testbed->rejoin_at(0);
    EXPECT_TRUE(supervisor.below_floor());
    EXPECT_GT(supervisor.stats().floor_violations, 0u);
    EXPECT_GE(supervisor.stats().attempts, 2u);
    EXPECT_GT(supervisor.stats().failures, 0u);
    EXPECT_GT(supervisor.stats().last_delay, 0);
    // Repeated failures walked the base up from the initial delay.
    EXPECT_GT(supervisor.current_backoff(), opts.rejoin.backoff_initial);

    // Revive the world; the next attempt finds the peer and re-links.
    testbed->network().set_host_down(testbed->broker_host(1), false);
    testbed->network().set_host_down(testbed->bdn().endpoint().host, false);
    settle(90 * kSecond);

    EXPECT_FALSE(supervisor.below_floor());
    EXPECT_GE(testbed->broker_at(0).established_peer_count(), 1u);
    EXPECT_GT(supervisor.stats().backoff_resets, 0u);
    EXPECT_EQ(supervisor.current_backoff(), opts.rejoin.backoff_initial);
    EXPECT_TRUE(scenario::overlay_connected(*testbed));
}

TEST_F(RejoinFixture, FloorOfTwoRestoresRedundancy) {
    build(scenario::Topology::kRing,
          {sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn, sim::Site::kFsu,
           sim::Site::kCardiff},
          /*peer_floor=*/2);
    settle(5 * kSecond);
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        ASSERT_EQ(testbed->broker_at(i).established_peer_count(), 2u) << i;
    }

    // Crash one ring member: its two neighbours drop to a single peer and
    // must find a *new* peer (the joiner skips already-linked brokers).
    testbed->network().set_host_down(testbed->broker_host(2), true);
    settle(90 * kSecond);

    for (const std::size_t i : scenario::live_brokers(*testbed)) {
        EXPECT_GE(testbed->broker_at(i).established_peer_count(), 2u) << i;
    }
    EXPECT_TRUE(scenario::overlay_connected(*testbed));
}

TEST(RejoinDeterminism, IdenticalStatsAcrossRuns) {
    auto digest = [] {
        scenario::ScenarioOptions o;
        o.topology = scenario::Topology::kStar;
        o.broker_sites = {sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn,
                          sim::Site::kFsu};
        o.seed = 777;
        o.enable_rejoin = true;
        o.rejoin.peer_floor = 1;
        o.broker.peer_heartbeat_interval = 1 * kSecond;
        o.broker.advertise_interval = 5 * kSecond;
        o.bdn.ad_lease = 12 * kSecond;
        o.discovery.response_window = from_ms(1200);
        o.discovery.retransmit_interval = from_ms(400);
        scenario::Scenario t(o);
        t.warm_up();
        t.kernel().run_until(t.kernel().now() + 5 * kSecond);
        t.network().set_host_down(t.broker_host(0), true);
        t.kernel().run_until(t.kernel().now() + 60 * kSecond);
        std::vector<std::uint64_t> out;
        for (std::size_t i = 1; i < t.broker_count(); ++i) {
            const RejoinSupervisor::Stats& s = t.rejoin_at(i).stats();
            out.push_back(s.attempts);
            out.push_back(s.successes);
            out.push_back(static_cast<std::uint64_t>(s.last_delay));
            out.push_back(t.broker_at(i).established_peer_count());
        }
        out.push_back(static_cast<std::uint64_t>(t.network().stats().datagrams_sent));
        return out;
    };
    EXPECT_EQ(digest(), digest());
}

}  // namespace
}  // namespace narada::discovery
