// Overload resilience: BDN bounded ingest and shedding policy, broker
// plugin load shedding with the overload flag, breaker-based BDN failover
// and the adaptive (quiesce-based) response window.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/broker.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/scoring.hpp"
#include "scenario/scenario.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "timesvc/ntp.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

// --- BDN bounded ingest -----------------------------------------------------

struct BdnOverloadFixture : ::testing::Test {
    BdnOverloadFixture() : net(kernel, 404), rng(11) {
        bdn_host = net.add_host({"bdn", "S", "bdn-realm", 0});
        client_host = net.add_host({"client", "S", "client-realm", 0});
        other_host = net.add_host({"other", "S", "client-realm", 0});
        broker_host = net.add_host({"broker", "S", "r", 0});
        net.set_default_link({from_ms(1), 0, 1});
    }

    Bdn make_bdn(config::BdnConfig cfg = {}) {
        return Bdn(kernel, net, Endpoint{bdn_host, 7100}, net.host_clock(bdn_host), cfg);
    }

    DiscoveryRequest make_request(HostId reply_host) {
        DiscoveryRequest req;
        req.request_id = Uuid::random(rng);
        req.reply_to = Endpoint{reply_host, 7200};
        req.realm = "client-realm";
        return req;
    }

    void send_request(Bdn& bdn, const DiscoveryRequest& req, HostId source) {
        wire::ByteWriter w;
        w.u8(wire::kMsgDiscoveryRequest);
        req.encode(w);
        net.send_datagram(Endpoint{source, 7200}, bdn.endpoint(), w.take());
    }

    void settle(DurationUs d = 200 * kMillisecond) { kernel.run_until(kernel.now() + d); }

    sim::Kernel kernel;
    sim::SimNetwork net;
    Rng rng;
    HostId bdn_host{}, client_host{}, other_host{}, broker_host{};
};

TEST_F(BdnOverloadFixture, LegacyInlinePathWhenQueueDisabled) {
    Bdn bdn = make_bdn();  // ingest_queue_limit == 0: legacy behavior
    for (int i = 0; i < 3; ++i) send_request(bdn, make_request(client_host), client_host);
    settle();
    const auto& stats = bdn.stats();
    EXPECT_EQ(stats.requests_received, 3u);
    EXPECT_EQ(stats.acks_sent, 3u);
    EXPECT_EQ(stats.requests_serviced, 0u);  // inline path never queues
    EXPECT_EQ(stats.requests_shed(), 0u);
    EXPECT_EQ(bdn.queue_depth(), 0u);
}

TEST_F(BdnOverloadFixture, QueueOverflowShedsWithoutAck) {
    config::BdnConfig cfg;
    cfg.ingest_queue_limit = 4;
    cfg.request_service_cost = from_ms(5);
    Bdn bdn = make_bdn(cfg);
    // A burst of 10 distinct requests lands before the first drain tick.
    for (int i = 0; i < 10; ++i) send_request(bdn, make_request(client_host), client_host);
    kernel.run_until(kernel.now() + from_ms(2));  // delivered, nothing drained yet
    EXPECT_EQ(bdn.queue_depth(), 4u);
    EXPECT_EQ(bdn.stats().requests_shed_overflow, 6u);
    // Shed requests were NOT acked: only the 4 admitted ones were.
    EXPECT_EQ(bdn.stats().acks_sent, 4u);
    settle();  // drain completes at one request per service interval
    EXPECT_EQ(bdn.stats().requests_serviced, 4u);
    EXPECT_EQ(bdn.queue_depth(), 0u);
    EXPECT_EQ(bdn.stats().queue_depth_peak, 4u);
}

TEST_F(BdnOverloadFixture, DuplicatesAckedButNeverOccupyQueueSlots) {
    config::BdnConfig cfg;
    cfg.ingest_queue_limit = 2;
    cfg.request_service_cost = from_ms(50);
    Bdn bdn = make_bdn(cfg);
    const DiscoveryRequest first = make_request(client_host);
    send_request(bdn, first, client_host);
    send_request(bdn, make_request(client_host), client_host);  // queue now full
    kernel.run_until(kernel.now() + from_ms(2));
    EXPECT_EQ(bdn.queue_depth(), 2u);
    // A retransmission of an admitted request while the queue is full is
    // still acked (the requester must learn the BDN is alive) but neither
    // queues again nor counts as overflow.
    send_request(bdn, first, client_host);
    kernel.run_until(kernel.now() + from_ms(2));
    EXPECT_EQ(bdn.stats().duplicate_requests, 1u);
    EXPECT_EQ(bdn.stats().acks_sent, 3u);
    EXPECT_EQ(bdn.stats().requests_shed_overflow, 0u);
    EXPECT_EQ(bdn.queue_depth(), 2u);
}

TEST_F(BdnOverloadFixture, PerSourceQuotaShedsGreedySourcesOnly) {
    config::BdnConfig cfg;
    cfg.ingest_queue_limit = 100;
    cfg.request_service_cost = from_ms(50);  // nothing drains mid-assert
    cfg.per_source_rate = 1.0;               // 1 request/s steady state
    cfg.per_source_burst = 2.0;
    Bdn bdn = make_bdn(cfg);
    for (int i = 0; i < 5; ++i) send_request(bdn, make_request(client_host), client_host);
    kernel.run_until(kernel.now() + from_ms(2));
    EXPECT_EQ(bdn.stats().requests_shed_quota, 3u);  // burst of 2 admitted
    EXPECT_EQ(bdn.queue_depth(), 2u);
    // A different source has its own bucket and is not punished.
    send_request(bdn, make_request(other_host), other_host);
    kernel.run_until(kernel.now() + from_ms(2));
    EXPECT_EQ(bdn.stats().requests_shed_quota, 3u);
    EXPECT_EQ(bdn.queue_depth(), 3u);
}

TEST_F(BdnOverloadFixture, AdvertisementRenewalsNeverShed) {
    // Policy: advertisement renewals are never shed, even while the request
    // queue is saturated — leases must not lapse because of a storm.
    config::BdnConfig cfg;
    cfg.ingest_queue_limit = 1;
    cfg.request_service_cost = from_ms(100);
    cfg.per_source_rate = 0.5;
    cfg.per_source_burst = 1.0;
    cfg.ad_lease = 10 * kSecond;
    Bdn bdn = make_bdn(cfg);
    for (int i = 0; i < 20; ++i) send_request(bdn, make_request(client_host), client_host);
    kernel.run_until(kernel.now() + from_ms(2));
    ASSERT_GT(bdn.stats().requests_shed(), 0u);  // the BDN is in shedding state

    BrokerAdvertisement ad;
    ad.broker_id = Uuid::random(rng);
    ad.broker_name = "storm-survivor";
    ad.endpoint = Endpoint{broker_host, 7000};
    ad.realm = "r";
    wire::ByteWriter w;
    w.u8(wire::kMsgBrokerAdvertisement);
    ad.encode(w);
    net.send_datagram(Endpoint{broker_host, 7000}, bdn.endpoint(), w.take());
    kernel.run_until(kernel.now() + from_ms(5));
    EXPECT_EQ(bdn.registered_count(), 1u);
    EXPECT_EQ(bdn.stats().ads_received, 1u);
    // And the renewal path too: re-advertise under the same saturation.
    wire::ByteWriter w2;
    w2.u8(wire::kMsgBrokerAdvertisement);
    ad.encode(w2);
    net.send_datagram(Endpoint{broker_host, 7000}, bdn.endpoint(), w2.take());
    kernel.run_until(kernel.now() + from_ms(5));
    EXPECT_EQ(bdn.stats().leases_renewed, 1u);
    EXPECT_EQ(bdn.stale_count(), 0u);
}

// --- broker plugin shedding -------------------------------------------------

/// Captures discovery responses sent to a requester endpoint.
class ResponseSink final : public transport::MessageHandler {
public:
    ResponseSink(transport::Transport& transport, const Endpoint& ep)
        : transport_(transport), ep_(ep) {
        transport_.bind(ep_, this);
    }
    ~ResponseSink() override { transport_.unbind(ep_); }

    void on_datagram(const Endpoint&, const Bytes& data) override {
        wire::ByteReader r(data);
        if (r.u8() != wire::kMsgDiscoveryResponse) return;
        responses.push_back(DiscoveryResponse::decode(r));
    }

    std::vector<DiscoveryResponse> responses;

private:
    transport::Transport& transport_;
    Endpoint ep_;
};

TEST(BrokerPluginShedding, OverBudgetRequestsShedAndOverloadAdvertised) {
    sim::Kernel kernel;
    sim::SimNetwork net(kernel, 505);
    const HostId broker_host = net.add_host({"broker", "S", "r", 0});
    const HostId client_host = net.add_host({"client", "S", "r", 0});
    net.set_default_link({from_ms(1), 0, 1});
    timesvc::FixedUtcSource utc(net.true_clock());

    config::BrokerConfig cfg;
    cfg.discovery_rate_limit = 1.0;  // 1 response/s
    cfg.discovery_burst = 1.0;
    cfg.overload_hold = 2 * kSecond;
    broker::Broker broker(kernel, net, Endpoint{broker_host, 7000},
                          net.host_clock(broker_host), utc, cfg, "shedder");
    BrokerIdentity identity;
    identity.hostname = "shedder.host";
    identity.realm = "r";
    // No multicast: the loop-back re-delivery would double every sighting.
    BrokerDiscoveryPlugin plugin(identity, /*join_multicast=*/false);
    broker.add_plugin(&plugin);
    broker.start();

    const Endpoint reply{client_host, 7200};
    ResponseSink sink(net, reply);
    Rng rng(3);
    auto send = [&](TimeUs at) {
        kernel.schedule_at(at, [&net, &rng, reply, broker_host] {
            DiscoveryRequest req;
            req.request_id = Uuid::random(rng);
            req.reply_to = reply;
            req.realm = "r";
            wire::ByteWriter w;
            w.u8(wire::kMsgDiscoveryRequest);
            req.encode(w);
            net.send_datagram(reply, Endpoint{broker_host, 7000}, w.take());
        });
    };
    send(kernel.now() + from_ms(10));   // consumes the only token
    send(kernel.now() + from_ms(50));   // over budget: shed, no response
    send(kernel.now() + from_ms(1200)); // a token refilled; answered while hot
    kernel.run_until(kernel.now() + 2 * kSecond);

    // Each request is sighted twice — direct datagram plus its own flood
    // looping back through the broker — and deduped the second time.
    EXPECT_EQ(plugin.stats().requests_seen, 6u);
    EXPECT_EQ(plugin.stats().duplicates_suppressed, 3u);
    EXPECT_EQ(plugin.stats().requests_shed, 1u);
    EXPECT_EQ(plugin.stats().responses_sent, 2u);
    ASSERT_EQ(sink.responses.size(), 2u);
    EXPECT_FALSE(sink.responses[0].overloaded);  // before any shedding
    EXPECT_TRUE(sink.responses[1].overloaded);   // shed within overload_hold
}

TEST(BrokerPluginShedding, SheddingDisabledByDefault) {
    // Default BrokerConfig: discovery_rate_limit == 0, no shedding ever.
    config::BrokerConfig cfg;
    EXPECT_EQ(cfg.discovery_rate_limit, 0.0);
}

// --- scoring penalty --------------------------------------------------------

TEST(OverloadScoring, OverloadedResponseLosesExactlyThePenalty) {
    config::MetricWeights weights;
    DiscoveryResponse healthy;
    healthy.sent_utc = 0;
    healthy.metrics.total_memory = 1 << 30;
    healthy.metrics.free_memory = 1 << 29;
    DiscoveryResponse hot = healthy;
    hot.overloaded = true;
    const double d = score_response(healthy, from_ms(10), weights) -
                     score_response(hot, from_ms(10), weights);
    EXPECT_DOUBLE_EQ(d, weights.overload_penalty);
}

TEST(OverloadScoring, PenaltyDemotesOverloadedBrokerInShortlist) {
    config::MetricWeights weights;
    std::vector<Candidate> candidates(2);
    candidates[0].response.metrics.total_memory = 1 << 30;
    candidates[0].response.metrics.free_memory = 1 << 29;
    candidates[0].response.overloaded = true;  // otherwise identical
    candidates[1].response.metrics.total_memory = 1 << 30;
    candidates[1].response.metrics.free_memory = 1 << 29;
    candidates[0].estimated_delay = from_ms(10);
    candidates[1].estimated_delay = from_ms(10);
    const auto order = shortlist(candidates, weights, 2);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order.front(), 1u);  // the healthy twin ranks first
}

// --- adaptive response window -----------------------------------------------

TEST(AdaptiveWindow, ClosesEarlyOnceResponsesQuiesce) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 71;
    opts.discovery.max_responses = 0;          // no first-N cutoff
    opts.discovery.response_window = 5 * kSecond;  // generous upper bound
    opts.discovery.adaptive_window = true;
    opts.discovery.quiesce_ticks = 3;
    opts.discovery.quiesce_tick = from_ms(100);
    opts.discovery.response_window_min = from_ms(200);
    scenario::Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_TRUE(report.adaptive_close);
    EXPECT_GE(report.candidates.size(), 1u);
    // The window closed on quiescence, far before the 5 s bound.
    EXPECT_LT(report.collection_duration, 3 * kSecond);
    EXPECT_GE(report.collection_duration, from_ms(200));  // min respected
    EXPECT_GE(s.client().stats().adaptive_closes, 1u);
}

TEST(AdaptiveWindow, DisabledByDefaultWindowRunsToCutoff) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 72;
    opts.discovery.max_responses = 0;
    opts.discovery.response_window = from_ms(1500);
    scenario::Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_FALSE(report.adaptive_close);
    // Fixed window: collection runs the full configured length.
    EXPECT_GE(report.collection_duration, from_ms(1500));
    EXPECT_EQ(s.client().stats().adaptive_closes, 0u);
}

// --- circuit-breaking BDN failover -------------------------------------------

TEST(BdnBreakers, SecondRunSkipsDeadPrimaryInstantly) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 73;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 20 * kSecond;  // stays open throughout
    scenario::Scenario s(opts);
    s.warm_up();
    auto& cfg = s.client().mutable_config();
    const Endpoint real_bdn = cfg.bdns.at(0);
    cfg.bdns = {Endpoint{s.client_host(), 9999}, real_bdn};  // dead primary

    // Run 1 pays one retransmit interval to learn the primary is dead...
    const auto first = s.run_discovery();
    ASSERT_TRUE(first.success);
    EXPECT_GE(first.retransmits, 1u);
    EXPECT_EQ(s.client().bdn_breaker(0).state(), CircuitBreaker::State::kOpen);

    // ...run 2 skips it instantly: no retransmit needed at all.
    const auto second = s.run_discovery();
    ASSERT_TRUE(second.success);
    EXPECT_EQ(second.retransmits, 0u);
    EXPECT_GE(s.client().stats().breaker_skips, 1u);
    EXPECT_LT(second.time_to_ack, from_ms(300));  // never waited on the corpse
}

TEST(BdnBreakers, MidflightFailoverReissuesWithinRemainingDeadline) {
    // The breaker opens mid-run: instead of burning the rest of the window
    // retransmitting at the corpse, the client re-issues to the second BDN
    // immediately — the same run succeeds, inside the original deadline.
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 81;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.response_window = from_ms(3000);
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 20 * kSecond;
    scenario::Scenario s(opts);
    s.warm_up();
    auto& cfg = s.client().mutable_config();
    const Endpoint real_bdn = cfg.bdns.at(0);
    cfg.bdns = {Endpoint{s.client_host(), 9999}, real_bdn};  // dead primary

    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_GE(s.client().stats().midflight_failovers, 1u);
    // One inactivity period to learn the primary is dead, then the failover
    // served the rest of the window: well under window + fallback budgets.
    EXPECT_LT(report.time_to_ack, from_ms(1000));
    EXPECT_EQ(s.client().bdn_breaker(0).state(), CircuitBreaker::State::kOpen);
}

TEST(BdnBreakers, ForcedProbeRecoversWhenEveryBreakerIsOpen) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 74;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.response_window = from_ms(1200);
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 60 * kSecond;  // would block run 2
    scenario::Scenario s(opts);
    s.warm_up();

    // The only BDN dies; discovery fails and its breaker opens.
    const HostId bdn_host = s.bdn().endpoint().host;
    s.network().set_host_down(bdn_host, true);
    const auto failed = s.run_discovery();
    EXPECT_FALSE(failed.success);
    EXPECT_EQ(s.client().bdn_breaker(0).state(), CircuitBreaker::State::kOpen);

    // The BDN returns. The breaker is still deep in its cool-down, but
    // with nowhere else to send the client must force a probe — which
    // succeeds and closes the breaker.
    s.network().set_host_down(bdn_host, false);
    const auto recovered = s.run_discovery();
    ASSERT_TRUE(recovered.success);
    EXPECT_GE(s.client().stats().forced_probes, 1u);
    EXPECT_EQ(s.client().bdn_breaker(0).state(), CircuitBreaker::State::kClosed);
}

TEST(BdnBreakers, DisabledThresholdKeepsLegacyRotation) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.seed = 75;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.breaker_failure_threshold = 0;  // breakers off
    scenario::Scenario s(opts);
    s.warm_up();
    auto& cfg = s.client().mutable_config();
    const Endpoint real_bdn = cfg.bdns.at(0);
    cfg.bdns = {Endpoint{s.client_host(), 9999}, real_bdn};
    // Both runs pay the retransmit: no breaker memory between them.
    const auto first = s.run_discovery();
    ASSERT_TRUE(first.success);
    EXPECT_GE(first.retransmits, 1u);
    const auto second = s.run_discovery();
    ASSERT_TRUE(second.success);
    EXPECT_GE(second.retransmits, 1u);
    EXPECT_EQ(s.client().stats().breaker_skips, 0u);
}

}  // namespace
}  // namespace narada::discovery
