// DiscoveryClient protocol details: retransmission exhaustion, late
// responses, repeated pings, response-window edges, busy-guard.
#include <gtest/gtest.h>

#include "discovery/client.hpp"
#include "discovery/messages.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

/// A scriptable "broker": answers discovery requests and pings by plan.
class ScriptedBroker final : public transport::MessageHandler {
public:
    ScriptedBroker(sim::Kernel& kernel, transport::Transport& transport, const Endpoint& ep,
                   const timesvc::UtcSource& utc)
        : kernel_(kernel), transport_(transport), ep_(ep), utc_(utc), rng_(ep.port) {
        transport_.bind(ep_, this);
        broker_id_ = Uuid::random(rng_);
    }
    ~ScriptedBroker() override { transport_.unbind(ep_); }

    [[nodiscard]] const Endpoint& endpoint() const { return ep_; }

    bool respond_to_requests = true;
    bool respond_to_pings = true;
    DurationUs response_delay = 0;
    int requests_seen = 0;
    int pings_seen = 0;

    void on_datagram(const Endpoint& from, const Bytes& data) override {
        (void)from;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        if (type == wire::kMsgDiscoveryRequest) {
            ++requests_seen;
            if (!respond_to_requests) return;
            const DiscoveryRequest request = DiscoveryRequest::decode(reader);
            kernel_.schedule_after(response_delay, [this, request] {
                DiscoveryResponse response;
                response.request_id = request.request_id;
                response.sent_utc = utc_.utc_now();
                response.broker_id = broker_id_;
                response.broker_name = "scripted@" + ep_.str();
                response.endpoint = ep_;
                response.metrics.total_memory = 512ull << 20;
                response.metrics.free_memory = 256ull << 20;
                wire::ByteWriter writer;
                writer.u8(wire::kMsgDiscoveryResponse);
                response.encode(writer);
                transport_.send_datagram(ep_, request.reply_to, writer.take());
            });
        } else if (type == wire::kMsgPing) {
            ++pings_seen;
            if (!respond_to_pings) return;
            const TimeUs echo = reader.i64();
            wire::ByteWriter writer;
            writer.u8(wire::kMsgPong);
            writer.i64(echo);
            writer.i64(utc_.utc_now());
            transport_.send_datagram(ep_, from, writer.take());
        }
    }

private:
    sim::Kernel& kernel_;
    transport::Transport& transport_;
    Endpoint ep_;
    const timesvc::UtcSource& utc_;
    Rng rng_;
    Uuid broker_id_;
};

struct ClientProtocolFixture : ::testing::Test {
    ClientProtocolFixture() : net(kernel, 11), utc(kernel.clock()) {
        host = net.add_host({"h", "S", "r", 0});
        net.set_default_link({from_ms(2), 0, 2});
        for (int i = 0; i < 2; ++i) {
            brokers.push_back(std::make_unique<ScriptedBroker>(
                kernel, net, Endpoint{host, static_cast<std::uint16_t>(7000 + i)}, utc));
        }
        cfg.bdns = {Endpoint{host, 6000}};  // nothing bound there by default
        cfg.response_window = from_ms(500);
        cfg.ping_window = from_ms(200);
        cfg.retransmit_interval = from_ms(100);
        cfg.max_retransmits = 2;
    }

    DiscoveryClient make_client() {
        return DiscoveryClient(kernel, net, Endpoint{host, 9000}, net.host_clock(host), utc,
                               cfg, "test-client", "r");
    }

    DiscoveryReport run(DiscoveryClient& client) {
        std::optional<DiscoveryReport> report;
        client.discover([&](const DiscoveryReport& r) { report = r; });
        kernel.run_until(kernel.now() + 30 * kSecond);
        return report.value();
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    HostId host{};
    std::vector<std::unique_ptr<ScriptedBroker>> brokers;
    config::DiscoveryConfig cfg;
};

TEST_F(ClientProtocolFixture, RetransmitsExactlyMaxTimesThenFallsBack) {
    // No BDN bound, no cached targets, no multicast members: total failure
    // after max_retransmits plus one fallback window.
    DiscoveryClient client = make_client();
    const auto report = run(client);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.retransmits, 2u);
    EXPECT_TRUE(report.used_multicast);  // the §7 fallback was attempted
}

TEST_F(ClientProtocolFixture, CachedTargetsQueriedDirectlyOnFallback) {
    DiscoveryClient client = make_client();
    client.set_cached_target_set(
        {brokers[0]->endpoint(), brokers[1]->endpoint()});
    const auto report = run(client);
    ASSERT_TRUE(report.success);
    EXPECT_TRUE(report.used_cached_targets);
    EXPECT_EQ(report.candidates.size(), 2u);
}

TEST_F(ClientProtocolFixture, RepeatedPingsKeepMinimumRtt) {
    cfg.pings_per_broker = 3;
    DiscoveryClient client = make_client();
    client.set_cached_target_set({brokers[0]->endpoint()});
    const auto report = run(client);
    ASSERT_TRUE(report.success);
    EXPECT_EQ(brokers[0]->pings_seen, 3);
    EXPECT_GE(report.selected_candidate()->ping_rtt, 0);
}

TEST_F(ClientProtocolFixture, SilentPingTargetFallsBackToBestScore) {
    for (auto& b : brokers) b->respond_to_pings = false;
    DiscoveryClient client = make_client();
    client.set_cached_target_set(
        {brokers[0]->endpoint(), brokers[1]->endpoint()});
    const auto report = run(client);
    ASSERT_TRUE(report.success);  // no pongs at all -> best-weighted wins
    EXPECT_LT(report.selected_candidate()->ping_rtt, 0);
}

TEST_F(ClientProtocolFixture, LateResponsesIgnoredAfterCollection) {
    // Broker 1 answers far too late — after the window closed.
    brokers[1]->response_delay = 5 * kSecond;
    DiscoveryClient client = make_client();
    client.set_cached_target_set(
        {brokers[0]->endpoint(), brokers[1]->endpoint()});
    const auto report = run(client);
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.candidates.size(), 1u);  // only the prompt broker
}

TEST_F(ClientProtocolFixture, ConcurrentDiscoverRejected) {
    DiscoveryClient client = make_client();
    client.discover([](const DiscoveryReport&) {});
    EXPECT_TRUE(client.busy());
    EXPECT_THROW(client.discover([](const DiscoveryReport&) {}), std::logic_error);
    kernel.run_until(kernel.now() + 30 * kSecond);
    EXPECT_FALSE(client.busy());
}

TEST_F(ClientProtocolFixture, BackToBackRunsReuseClient) {
    DiscoveryClient client = make_client();
    client.set_cached_target_set({brokers[0]->endpoint()});
    const auto first = run(client);
    ASSERT_TRUE(first.success);
    const auto second = run(client);
    ASSERT_TRUE(second.success);
    EXPECT_NE(first.request_id, second.request_id);
}

}  // namespace
}  // namespace narada::discovery
