#include "discovery/registry_shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "common/rng.hpp"
#include "common/uuid.hpp"

namespace narada::discovery {
namespace {

Endpoint ep(std::uint32_t host, std::uint16_t port = 7100) {
    return Endpoint{host, port};
}

std::vector<Endpoint> group(std::size_t n) {
    std::vector<Endpoint> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) members.push_back(ep(100 + static_cast<std::uint32_t>(i)));
    return members;
}

TEST(ShardRing, EmptyRingOwnsNothing) {
    ShardRing ring;
    Rng rng(1);
    EXPECT_TRUE(ring.empty());
    EXPECT_TRUE(ring.owners(Uuid::random(rng)).empty());
    EXPECT_FALSE(ring.owns(ep(100), Uuid::random(rng)));
}

TEST(ShardRing, SingleNodeGroupOwnsEverything) {
    // A federation of one degrades to the paper's monolithic BDN: every id
    // maps to the sole member, regardless of the requested replication.
    ShardRing ring(group(1), {.vnodes = 16, .replication = 3});
    Rng rng(2);
    EXPECT_EQ(ring.replication(), 1u);
    for (int i = 0; i < 100; ++i) {
        const Uuid id = Uuid::random(rng);
        const auto owners = ring.owners(id);
        ASSERT_EQ(owners.size(), 1u);
        EXPECT_EQ(owners[0], ep(100));
        EXPECT_TRUE(ring.owns(ep(100), id));
    }
}

TEST(ShardRing, ReplicationClampedToGroupSize) {
    // R > |group| degrades to full replication, not an error.
    ShardRing ring(group(3), {.vnodes = 32, .replication = 8});
    Rng rng(3);
    EXPECT_EQ(ring.replication(), 3u);
    const Uuid id = Uuid::random(rng);
    const auto owners = ring.owners(id);
    EXPECT_EQ(owners.size(), 3u);
    for (const Endpoint& m : ring.members()) {
        EXPECT_TRUE(ring.owns(m, id));
    }
}

TEST(ShardRing, DeterministicAcrossMemberOrderings) {
    // Two BDNs configured with the same peer group in different orders must
    // agree on ownership without negotiation.
    std::vector<Endpoint> shuffled = group(7);
    std::mt19937_64 shuffle_rng(42);
    Rng rng(4);
    const ShardRing reference(group(7), {.vnodes = 64, .replication = 2});
    for (int round = 0; round < 5; ++round) {
        std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
        const ShardRing permuted(shuffled, {.vnodes = 64, .replication = 2});
        EXPECT_EQ(permuted.members(), reference.members()) << "members must be canonicalized";
        for (int i = 0; i < 50; ++i) {
            const Uuid id = Uuid::random(rng);
            EXPECT_EQ(permuted.owners(id), reference.owners(id));
        }
    }
}

TEST(ShardRing, DeterministicAcrossRebuilds) {
    // Rebuilding the ring from the same member list (a rebalance that ends
    // where it started, or a restart) yields identical ownership.
    const ShardRing a(group(5), {.vnodes = 64, .replication = 2});
    const ShardRing b(group(5), {.vnodes = 64, .replication = 2});
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const Uuid id = Uuid::random(rng);
        EXPECT_EQ(a.owners(id), b.owners(id));
    }
}

TEST(ShardRing, OwnersAreDistinct) {
    ShardRing ring(group(5), {.vnodes = 64, .replication = 3});
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        auto owners = ring.owners(Uuid::random(rng));
        ASSERT_EQ(owners.size(), 3u);
        std::sort(owners.begin(), owners.end());
        EXPECT_EQ(std::adjacent_find(owners.begin(), owners.end()), owners.end())
            << "replicas must land on distinct members";
    }
}

TEST(ShardRing, OwnsAgreesWithOwners) {
    ShardRing ring(group(6), {.vnodes = 48, .replication = 2});
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const Uuid id = Uuid::random(rng);
        const auto owners = ring.owners(id);
        for (const Endpoint& m : ring.members()) {
            const bool listed = std::find(owners.begin(), owners.end(), m) != owners.end();
            EXPECT_EQ(ring.owns(m, id), listed);
        }
    }
}

TEST(ShardRing, DistributionIsRoughlyUniform) {
    // 64 vnodes per member keeps the largest shard within ~3x of the
    // smallest over 20k ids — enough smoothing that no BDN melts.
    ShardRing ring(group(8), {.vnodes = 64, .replication = 1});
    Rng rng(8);
    std::map<Endpoint, std::size_t> load;
    constexpr int kIds = 20000;
    for (int i = 0; i < kIds; ++i) {
        load[ring.owners(Uuid::random(rng)).front()]++;
    }
    ASSERT_EQ(load.size(), 8u) << "every member must own some range";
    std::size_t lo = kIds, hi = 0;
    for (const auto& [member, count] : load) {
        lo = std::min(lo, count);
        hi = std::max(hi, count);
    }
    EXPECT_LT(hi, 3 * lo) << "hi=" << hi << " lo=" << lo;
}

TEST(ShardRing, MemberRemovalMovesOnlyItsShare) {
    // Consistent hashing's point: dropping one of 8 members must remap only
    // the departed member's ranges (~1/8 of ids), not reshuffle the world.
    const ShardRing before(group(8), {.vnodes = 64, .replication = 1});
    std::vector<Endpoint> smaller = group(8);
    smaller.pop_back();
    const ShardRing after(smaller, {.vnodes = 64, .replication = 1});
    Rng rng(9);
    constexpr int kIds = 10000;
    int moved = 0;
    for (int i = 0; i < kIds; ++i) {
        const Uuid id = Uuid::random(rng);
        const Endpoint old_owner = before.owners(id).front();
        const Endpoint new_owner = after.owners(id).front();
        if (old_owner != new_owner) {
            ++moved;
            // Only ids whose old owner departed may move.
            EXPECT_EQ(old_owner, ep(107));
        }
    }
    // Expect ~1/8 = 1250 moved; allow generous slack for hash variance.
    EXPECT_GT(moved, kIds / 16);
    EXPECT_LT(moved, kIds / 4);
}

TEST(ShardRing, DuplicateMembersCollapse) {
    std::vector<Endpoint> members = group(3);
    members.push_back(ep(100));  // duplicate of the first
    ShardRing ring(members, {.vnodes = 32, .replication = 2});
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.replication(), 2u);
}

TEST(ShardRing, OldRingStaysValidAfterReplacement) {
    // The ring is a value type: a request in flight keeps consulting the
    // ring it captured while the owner swaps in a rebuilt one.
    ShardRing live(group(4), {.vnodes = 32, .replication = 2});
    const ShardRing captured = live;  // what an in-flight gather holds
    live = ShardRing(group(6), {.vnodes = 32, .replication = 2});
    Rng rng(10);
    const ShardRing reference(group(4), {.vnodes = 32, .replication = 2});
    for (int i = 0; i < 100; ++i) {
        const Uuid id = Uuid::random(rng);
        EXPECT_EQ(captured.owners(id), reference.owners(id));
    }
    EXPECT_EQ(live.size(), 6u);
}

}  // namespace
}  // namespace narada::discovery
