// Federated BDN registry plane: consistent-hash sharding, ad forwarding,
// scatter/gather discovery with partial-result degradation, anti-entropy
// convergence and rebalance on peer-group change — all on the simulated
// WAN with three BDNs forming one peer group.
#include "discovery/bdn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

/// A minimal broker stand-in: answers pings, records discovery requests.
class FakeBroker final : public transport::MessageHandler {
public:
    FakeBroker(sim::Kernel& kernel, transport::Transport& transport, const Endpoint& ep)
        : kernel_(kernel), transport_(transport), ep_(ep) {
        transport_.bind(ep_, this);
    }
    ~FakeBroker() override { transport_.unbind(ep_); }

    void on_datagram(const Endpoint& from, const Bytes& data) override {
        wire::ByteReader r(data);
        const std::uint8_t type = r.u8();
        if (type == wire::kMsgPing) {
            const TimeUs echo = r.i64();
            wire::ByteWriter w;
            w.u8(wire::kMsgPong);
            w.i64(echo);
            w.i64(kernel_.now());
            transport_.send_datagram(ep_, from, w.take());
        } else if (type == wire::kMsgDiscoveryRequest) {
            ++requests;
        }
    }

    std::uint64_t requests = 0;

    BrokerAdvertisement advertisement(Rng& rng) const {
        BrokerAdvertisement ad;
        ad.broker_id = Uuid::random(rng);
        ad.broker_name = "fake";
        ad.endpoint = ep_;
        ad.realm = "r";
        return ad;
    }

private:
    sim::Kernel& kernel_;
    transport::Transport& transport_;
    Endpoint ep_;
};

struct FederationFixture : ::testing::Test {
    static constexpr std::size_t kBdns = 3;

    FederationFixture() : net(kernel, 131), rng(17) {
        for (std::size_t i = 0; i < kBdns; ++i) {
            bdn_hosts.push_back(net.add_host({"bdn" + std::to_string(i), "S", "r", 0}));
            bdn_eps.push_back(Endpoint{bdn_hosts.back(), 7100});
        }
        client_host = net.add_host({"client", "S", "r", 0});
        for (int i = 0; i < 3; ++i) {
            broker_hosts.push_back(net.add_host({"b" + std::to_string(i), "S", "r", 0}));
            brokers.push_back(
                std::make_unique<FakeBroker>(kernel, net, Endpoint{broker_hosts.back(), 7000}));
        }
        net.set_default_link({from_ms(10), 0, 3});
    }

    /// Build the whole peer group with replication R and start every member.
    void make_group(std::uint32_t replication, DurationUs anti_entropy = 0) {
        for (std::size_t i = 0; i < kBdns; ++i) {
            config::BdnConfig cfg;
            cfg.peer_group = bdn_eps;
            cfg.replication_factor = replication;
            cfg.anti_entropy_interval = anti_entropy;
            cfg.shard_deadline = from_ms(150);
            bdns.push_back(std::make_unique<Bdn>(kernel, net, bdn_eps[i],
                                                 net.host_clock(bdn_hosts[i]), cfg,
                                                 "bdn" + std::to_string(i)));
            bdns.back()->start();
        }
    }

    /// An advertisement whose broker id is owned by `owner` (and, with
    /// R == 1, by nobody else).
    BrokerAdvertisement ad_owned_by(const Endpoint& owner, const ShardRing& ring) {
        for (int tries = 0; tries < 10000; ++tries) {
            BrokerAdvertisement ad = brokers[0]->advertisement(rng);
            if (ring.owners(ad.broker_id).front() == owner) return ad;
        }
        ADD_FAILURE() << "no id owned by " << owner.str();
        return brokers[0]->advertisement(rng);
    }

    DiscoveryRequest make_request() {
        DiscoveryRequest req;
        req.request_id = Uuid::random(rng);
        req.reply_to = Endpoint{client_host, 7200};
        req.realm = "r";
        return req;
    }

    void send_request(Bdn& bdn, const DiscoveryRequest& req) {
        wire::ByteWriter w;
        w.u8(wire::kMsgDiscoveryRequest);
        req.encode(w);
        net.send_datagram(Endpoint{client_host, 7200}, bdn.endpoint(), w.take());
    }

    void run_for(DurationUs d) { kernel.run_until(kernel.now() + d); }

    std::uint64_t total_broker_requests() const {
        std::uint64_t total = 0;
        for (const auto& b : brokers) total += b->requests;
        return total;
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    Rng rng;
    std::vector<HostId> bdn_hosts;
    std::vector<Endpoint> bdn_eps;
    HostId client_host{};
    std::vector<HostId> broker_hosts;
    std::vector<std::unique_ptr<FakeBroker>> brokers;
    std::vector<std::unique_ptr<Bdn>> bdns;
};

TEST_F(FederationFixture, AdsForwardToTheirRingOwners) {
    make_group(/*replication=*/1);
    constexpr int kAds = 30;
    for (int i = 0; i < kAds; ++i) {
        bdns[0]->register_broker(brokers[i % brokers.size()]->advertisement(rng));
    }
    run_for(kSecond);

    // Every ad landed somewhere, exactly once, and only at its owner.
    std::size_t total = 0;
    for (std::size_t i = 0; i < kBdns; ++i) {
        for (const auto& rb : bdns[i]->registry()) {
            EXPECT_TRUE(bdns[i]->ring().owns(bdn_eps[i], rb.ad.broker_id))
                << "bdn" << i << " stored an ad it does not own";
        }
        total += bdns[i]->registered_count();
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kAds));
    // The entry BDN relayed what it does not own; the owners accepted it.
    EXPECT_EQ(bdns[0]->stats().ads_forwarded,
              kAds - bdns[0]->registered_count());
    EXPECT_EQ(bdns[1]->stats().forwards_received, bdns[1]->registered_count());
    EXPECT_EQ(bdns[2]->stats().forwards_received, bdns[2]->registered_count());
}

TEST_F(FederationFixture, ForwardedAdToNonOwnerIsDropped) {
    make_group(/*replication=*/1);
    // An ad owned by bdn1 is relayed (as if by a peer on a stale ring) to
    // bdn2: the non-owner must refuse it rather than split ownership.
    const BrokerAdvertisement ad = ad_owned_by(bdn_eps[1], bdns[0]->ring());
    wire::ByteWriter w;
    w.u8(wire::kMsgAdForward);
    ad.encode(w);
    net.send_datagram(bdn_eps[0], bdn_eps[2], w.take());
    run_for(kSecond);

    EXPECT_EQ(bdns[2]->stats().forwards_dropped, 1u);
    EXPECT_EQ(bdns[2]->registered_count(), 0u);
}

TEST_F(FederationFixture, ScatterGatherCollectsCandidatesAcrossShards) {
    make_group(/*replication=*/1);
    for (const auto& broker : brokers) {
        bdns[0]->register_broker(broker->advertisement(rng));
    }
    run_for(kSecond);  // forwards settle, owners ping their brokers

    send_request(*bdns[0], make_request());
    run_for(kSecond);

    EXPECT_EQ(bdns[0]->stats().gathers, 1u);
    EXPECT_EQ(bdns[0]->stats().shard_queries_sent, 2u);
    EXPECT_EQ(bdns[0]->stats().shard_replies_received, 2u);
    EXPECT_EQ(bdns[0]->stats().gathers_partial, 0u);
    EXPECT_EQ(bdns[1]->stats().shard_queries_received, 1u);
    EXPECT_EQ(bdns[2]->stats().shard_queries_received, 1u);
    EXPECT_GE(bdns[0]->stats().injections, 1u);
    EXPECT_GE(total_broker_requests(), 1u) << "gathered candidates were never injected";
    EXPECT_EQ(bdns[0]->gather_depth(), 0u);
}

TEST_F(FederationFixture, GatherDegradesToPartialWhenShardIsDown) {
    make_group(/*replication=*/1);
    for (const auto& broker : brokers) {
        bdns[0]->register_broker(broker->advertisement(rng));
    }
    run_for(kSecond);

    net.set_host_down(bdn_hosts[1], true);
    send_request(*bdns[0], make_request());
    run_for(kSecond);

    // The dead shard costs at most the per-shard deadline, then the request
    // propagates with what arrived.
    EXPECT_EQ(bdns[0]->stats().gathers_partial, 1u);
    EXPECT_GE(bdns[0]->stats().injections, 1u);
    EXPECT_EQ(bdns[0]->gather_depth(), 0u);
    net.set_host_down(bdn_hosts[1], false);
}

TEST_F(FederationFixture, AntiEntropyConvergesReplicas) {
    make_group(/*replication=*/2, /*anti_entropy=*/from_ms(400));
    // Registered directly at one of its owners: the second replica only
    // exists once anti-entropy repairs the divergence.
    const BrokerAdvertisement ad = ad_owned_by(bdn_eps[0], bdns[0]->ring());
    bdns[0]->register_broker(ad);
    ASSERT_EQ(bdns[0]->registered_count(), 1u);

    run_for(3 * kSecond);

    const auto owners = bdns[0]->ring().owners(ad.broker_id);
    ASSERT_EQ(owners.size(), 2u);
    std::size_t holders = 0;
    for (std::size_t i = 0; i < kBdns; ++i) {
        const bool holds = bdns[i]->registered_count() == 1;
        const bool owns =
            std::find(owners.begin(), owners.end(), bdn_eps[i]) != owners.end();
        EXPECT_EQ(holds, owns) << "bdn" << i;
        if (holds) ++holders;
    }
    EXPECT_EQ(holders, 2u) << "anti-entropy did not replicate to the co-owner";
    EXPECT_GE(bdns[0]->stats().anti_entropy_rounds, 2u);
    EXPECT_GE(bdns[0]->stats().digests_sent, 2u);

    // Once converged, digests match and no further repair traffic flows.
    const std::uint64_t pushes_a = bdns[0]->stats().digest_mismatch_pushes;
    const std::uint64_t pushes_b = bdns[1]->stats().digest_mismatch_pushes;
    const std::uint64_t pushes_c = bdns[2]->stats().digest_mismatch_pushes;
    run_for(2 * kSecond);
    EXPECT_EQ(bdns[0]->stats().digest_mismatch_pushes, pushes_a);
    EXPECT_EQ(bdns[1]->stats().digest_mismatch_pushes, pushes_b);
    EXPECT_EQ(bdns[2]->stats().digest_mismatch_pushes, pushes_c);
    EXPECT_GE(bdns[0]->stats().digests_matched, 1u);
}

TEST_F(FederationFixture, RebalanceHandsEntriesToNewMember) {
    // Start as a two-member group (the third BDN exists but is outside the
    // ring), fill the registry, then admit the third member everywhere.
    for (std::size_t i = 0; i < kBdns; ++i) {
        config::BdnConfig cfg;
        cfg.peer_group = {bdn_eps[0], bdn_eps[1]};
        cfg.replication_factor = 1;
        if (i == 2) cfg.peer_group = {bdn_eps[2]};  // solo until admitted
        bdns.push_back(std::make_unique<Bdn>(kernel, net, bdn_eps[i],
                                             net.host_clock(bdn_hosts[i]), cfg,
                                             "bdn" + std::to_string(i)));
        bdns.back()->start();
    }
    constexpr int kAds = 40;
    for (int i = 0; i < kAds; ++i) {
        bdns[0]->register_broker(brokers[i % brokers.size()]->advertisement(rng));
    }
    run_for(kSecond);
    ASSERT_EQ(bdns[0]->registered_count() + bdns[1]->registered_count(),
              static_cast<std::size_t>(kAds));

    for (auto& bdn : bdns) bdn->set_peer_group(bdn_eps);
    run_for(3 * kSecond);

    // The newcomer received every entry it now owns.
    const ShardRing& ring = bdns[2]->ring();
    std::size_t expected = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        for (const auto& rb : bdns[i]->registry()) {
            if (ring.owns(bdn_eps[2], rb.ad.broker_id)) ++expected;
        }
    }
    EXPECT_GT(expected, 0u) << "seed gave the newcomer no range; pick another seed";
    EXPECT_EQ(bdns[2]->registered_count(), expected);
    EXPECT_GE(bdns[0]->stats().rebalance_handoffs + bdns[1]->stats().rebalance_handoffs,
              expected);
    // Residue is not deleted: the old owners keep serving what they held.
    EXPECT_EQ(bdns[0]->registered_count() + bdns[1]->registered_count(),
              static_cast<std::size_t>(kAds));
}

TEST_F(FederationFixture, RequestInFlightSurvivesRingChurn) {
    make_group(/*replication=*/1);
    for (const auto& broker : brokers) {
        bdns[0]->register_broker(broker->advertisement(rng));
    }
    run_for(kSecond);

    // Shrink the coordinator's ring while its shard queries are still in
    // flight: the gather must still finalize (replies from the departed
    // member are simply extra candidates) and the request must still reach
    // brokers.
    send_request(*bdns[0], make_request());
    run_for(from_ms(12));  // request reached the coordinator; queries in flight
    ASSERT_EQ(bdns[0]->gather_depth(), 1u);
    bdns[0]->set_peer_group({bdn_eps[0], bdn_eps[1]});
    run_for(kSecond);

    EXPECT_EQ(bdns[0]->gather_depth(), 0u);
    EXPECT_GE(bdns[0]->stats().injections, 1u);
    EXPECT_GE(total_broker_requests(), 1u);

    // A follow-up request on the new ring works too.
    send_request(*bdns[0], make_request());
    run_for(kSecond);
    EXPECT_EQ(bdns[0]->gather_depth(), 0u);
    EXPECT_EQ(bdns[0]->stats().gathers, 2u);
}

TEST_F(FederationFixture, DigestFromAnotherRingEpochIsFenced) {
    make_group(/*replication=*/2, /*anti_entropy=*/from_ms(400));
    // bdn2 moves to a different membership view mid-flight: its digests no
    // longer describe the same shard ranges and must be ignored, not
    // answered with repair pushes.
    bdns[2]->set_peer_group({bdn_eps[0], bdn_eps[2]});
    bdns[2]->register_broker(brokers[0]->advertisement(rng));
    run_for(2 * kSecond);

    EXPECT_GE(bdns[0]->stats().digest_ring_mismatches +
                  bdns[1]->stats().digest_ring_mismatches +
                  bdns[2]->stats().digest_ring_mismatches,
              1u);
}

}  // namespace
}  // namespace narada::discovery
