// Secured discovery datapath (paper §9.1): handshake + session envelopes,
// typed rejection of hostile input, rekey/grace timing on an injected
// clock, drain-batch memoization, and the BDN's authenticated-ads mode
// end-to-end through the sim network.
#include "discovery/security.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "discovery/bdn.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

using crypto::EnvelopeError;

Bytes make_payload() {
    const std::string text = "discovery-request:realm=chemistry";
    return Bytes(text.begin(), text.end());
}

std::span<const std::uint8_t> as_span(const Bytes& b) { return {b.data(), b.size()}; }

/// A small PKI plus one SecurityContext per named identity, all on one
/// injected clock — the unit-test stand-in for a provisioned deployment.
struct SecurityFixture : ::testing::Test {
    static constexpr TimeUs kCertFrom = 0;
    static constexpr TimeUs kCertTo = 1'000'000'000;  // 1000s of sim time

    SecurityFixture() : rng(4242) {
        ca_keys = crypto::rsa_generate(rng, 512);
        root = crypto::make_self_signed("root-ca", ca_keys, kCertFrom, kCertTo, 1);
    }

    config::SecurityConfig make_config(config::SecurityConfig::Mode mode,
                                       DurationUs rekey = 0) {
        config::SecurityConfig cfg;
        cfg.mode = mode;
        cfg.session_cache_size = 8;
        cfg.rekey_interval = rekey;
        return cfg;
    }

    /// Context for `name` with a CA-issued chain (or chainless when
    /// `with_chain` is false — the statically-provisioned peer case).
    SecurityContext make_context(const std::string& name, const config::SecurityConfig& cfg,
                                 const Clock& clock, bool with_chain = true,
                                 TimeUs valid_to = kCertTo) {
        crypto::RsaKeyPair keys = crypto::rsa_generate(rng, 512);
        std::vector<crypto::Certificate> chain;
        if (with_chain) {
            chain = {crypto::issue_certificate(name, keys.public_key, "root-ca",
                                               ca_keys.private_key, kCertFrom, valid_to,
                                               next_serial++),
                     root};
        }
        keys_by_name[name] = keys.public_key;
        return SecurityContext(name, std::move(keys), std::move(chain), {root}, cfg, clock,
                               rng);
    }

    /// alice seals `payload` for bob and bob opens it, via a fresh buffer.
    SecureOpenResult relay(SecurityContext& alice, SecurityContext& bob, const Bytes& payload,
                           bool force_handshake = false, Bytes* captured = nullptr) {
        wire::ByteWriter out;
        if (!alice.seal_datagram(as_span(payload), bob.identity(), out, force_handshake)) {
            return SecureOpenResult{.error = EnvelopeError::kUnknownSigner};
        }
        frame = out.take();
        if (captured != nullptr) *captured = frame;
        wire::ByteReader reader(frame);
        EXPECT_EQ(reader.u8(), wire::kMsgSecureEnvelope);
        return bob.open_datagram(reader);
    }

    SecureOpenResult open_frame(SecurityContext& bob, const Bytes& datagram) {
        wire::ByteReader reader(datagram);
        EXPECT_EQ(reader.u8(), wire::kMsgSecureEnvelope);
        return bob.open_datagram(reader);
    }

    Rng rng;
    crypto::RsaKeyPair ca_keys;
    crypto::Certificate root;
    std::uint64_t next_serial = 10;
    std::map<std::string, crypto::RsaPublicKey> keys_by_name;
    Bytes frame;  ///< last relayed datagram (owned so views stay valid)
};

TEST_F(SecurityFixture, SignModeHandshakeThenSessionRoundTrip) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    const Bytes payload = make_payload();
    // First datagram carries the RSA handshake.
    auto first = relay(alice, bob, payload);
    ASSERT_TRUE(first.ok()) << crypto::to_string(first.error);
    EXPECT_TRUE(first.handshake);
    EXPECT_EQ(first.signer, "alice");
    EXPECT_TRUE(std::equal(first.payload.begin(), first.payload.end(), payload.begin(),
                           payload.end()));
    EXPECT_EQ(alice.stats().handshakes_sent, 1u);
    EXPECT_EQ(bob.stats().handshakes_accepted, 1u);

    // Later datagrams ride the cached session: no RSA, no handshake flag.
    auto second = relay(alice, bob, payload);
    ASSERT_TRUE(second.ok()) << crypto::to_string(second.error);
    EXPECT_FALSE(second.handshake);
    EXPECT_TRUE(std::equal(second.payload.begin(), second.payload.end(), payload.begin(),
                           payload.end()));
    EXPECT_EQ(alice.stats().handshakes_sent, 1u);  // unchanged
    EXPECT_EQ(alice.stats().session_hits, 1u);
    EXPECT_GE(bob.stats().session_hits, 1u);
}

TEST_F(SecurityFixture, SealModeHidesPayloadOnTheWire) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSeal);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    const Bytes payload = make_payload();
    ASSERT_TRUE(relay(alice, bob, payload).ok());  // handshake
    Bytes steady;
    auto opened = relay(alice, bob, payload, false, &steady);
    ASSERT_TRUE(opened.ok()) << crypto::to_string(opened.error);
    EXPECT_TRUE(std::equal(opened.payload.begin(), opened.payload.end(), payload.begin(),
                           payload.end()));
    // The cleartext request must not appear anywhere in the sealed frame.
    EXPECT_EQ(std::search(steady.begin(), steady.end(), payload.begin(), payload.end()),
              steady.end());
}

TEST_F(SecurityFixture, SignModePayloadStaysCleartext) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    const Bytes payload = make_payload();
    ASSERT_TRUE(relay(alice, bob, payload).ok());
    Bytes steady;
    ASSERT_TRUE(relay(alice, bob, payload, false, &steady).ok());
    // Sign mode authenticates but does not encrypt: payload visible.
    EXPECT_NE(std::search(steady.begin(), steady.end(), payload.begin(), payload.end()),
              steady.end());
}

TEST_F(SecurityFixture, SealRefusedWhenOffOrPeerUnknown) {
    ManualClock clock(0);
    const auto off = make_config(config::SecurityConfig::Mode::kOff);
    SecurityContext alice_off = make_context("alice", off, clock);
    wire::ByteWriter out;
    EXPECT_FALSE(alice_off.seal_datagram(as_span(make_payload()), "bob", out));
    EXPECT_EQ(out.size(), 0u);

    const auto sign = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice2", sign, clock);
    EXPECT_FALSE(alice.seal_datagram(as_span(make_payload()), "nobody", out));
    EXPECT_EQ(out.size(), 0u);  // refusal writes nothing: plain fallback works
    EXPECT_EQ(alice.stats().seal_refusals, 1u);
}

TEST_F(SecurityFixture, TamperedFrameRejectedWithBadTag) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSeal);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());

    Bytes steady;
    ASSERT_TRUE(relay(alice, bob, make_payload(), false, &steady).ok());
    const auto errors_before = bob.stats().open_errors;

    // Flip one ciphertext byte (the tag is the trailing 16 bytes).
    Bytes tampered = steady;
    tampered[tampered.size() - 20] ^= 0x01;
    EXPECT_EQ(open_frame(bob, tampered).error, EnvelopeError::kBadTag);

    // Flip a tag byte instead.
    tampered = steady;
    tampered.back() ^= 0x01;
    EXPECT_EQ(open_frame(bob, tampered).error, EnvelopeError::kBadTag);
    EXPECT_EQ(bob.stats().open_errors, errors_before + 2);
    EXPECT_GE(bob.stats().verify_failures, 2u);
}

TEST_F(SecurityFixture, TruncatedFrameRejectedTyped) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSeal);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    Bytes handshake;
    ASSERT_TRUE(relay(alice, bob, make_payload(), false, &handshake).ok());

    // Cut the handshake frame at every prefix: never a crash or a throw,
    // always a typed error.
    for (std::size_t len = 1; len < handshake.size(); ++len) {
        Bytes cut(handshake.begin(),
                  handshake.begin() + static_cast<std::ptrdiff_t>(len));
        const auto result = open_frame(bob, cut);
        EXPECT_FALSE(result.ok()) << "prefix length " << len;
    }
}

TEST_F(SecurityFixture, SessionFrameWithoutHandshakeIsNoSession) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    SecurityContext carol = make_context("carol", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());  // bob learns the session

    // The steady-state frame reaches carol (who never saw the handshake).
    Bytes steady;
    ASSERT_TRUE(relay(alice, bob, make_payload(), false, &steady).ok());
    EXPECT_EQ(open_frame(carol, steady).error, EnvelopeError::kNoSession);
}

TEST_F(SecurityFixture, StaleKeyIdAfterRekeyIsKeyMismatch) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());

    // alice force-rekeys but the handshake is lost; her next session frame
    // carries the *new* key id against bob's old session.
    wire::ByteWriter lost;
    ASSERT_TRUE(alice.seal_datagram(as_span(make_payload()), "bob", lost,
                                    /*force_handshake=*/true));
    Bytes steady;
    const auto result = relay(alice, bob, make_payload(), false, &steady);
    EXPECT_EQ(result.error, EnvelopeError::kKeyMismatch);
}

TEST_F(SecurityFixture, HandshakeForAnotherRecipientRejected) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    SecurityContext carol = make_context("carol", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    wire::ByteWriter out;
    ASSERT_TRUE(alice.seal_datagram(as_span(make_payload()), "bob", out));
    const Bytes datagram = out.take();
    EXPECT_EQ(open_frame(carol, datagram).error, EnvelopeError::kRecipientMismatch);
}

TEST_F(SecurityFixture, ChainlessHandshakeNeedsProvisionedKey) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice = make_context("alice", cfg, clock, /*with_chain=*/false);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    // No chain and no provisioning: bob cannot authenticate the key binding.
    wire::ByteWriter out;
    ASSERT_TRUE(alice.seal_datagram(as_span(make_payload()), "bob", out));
    Bytes datagram = out.take();
    EXPECT_EQ(open_frame(bob, datagram).error, EnvelopeError::kUnknownSigner);

    // Provision alice's key out of band; the retransmitted handshake lands.
    bob.add_peer_key("alice", keys_by_name["alice"]);
    wire::ByteWriter retry;
    ASSERT_TRUE(alice.seal_datagram(as_span(make_payload()), "bob", retry,
                                    /*force_handshake=*/true));
    datagram = retry.take();
    EXPECT_TRUE(open_frame(bob, datagram).ok());
}

TEST_F(SecurityFixture, ForeignCaChainRejected) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext bob = make_context("bob", cfg, clock);

    // mallory's chain anchors to a CA bob does not trust.
    Rng mallory_rng(13);
    crypto::RsaKeyPair rogue_ca = crypto::rsa_generate(mallory_rng, 512);
    crypto::RsaKeyPair mallory_keys = crypto::rsa_generate(mallory_rng, 512);
    const auto rogue_root =
        crypto::make_self_signed("rogue-ca", rogue_ca, kCertFrom, kCertTo, 66);
    std::vector<crypto::Certificate> chain = {
        crypto::issue_certificate("mallory", mallory_keys.public_key, "rogue-ca",
                                  rogue_ca.private_key, kCertFrom, kCertTo, 67),
        rogue_root};
    SecurityContext mallory("mallory", mallory_keys, chain, {rogue_root}, cfg, clock,
                            mallory_rng);
    mallory.add_peer_key("bob", keys_by_name["bob"]);

    wire::ByteWriter out;
    ASSERT_TRUE(mallory.seal_datagram(as_span(make_payload()), "bob", out));
    const Bytes datagram = out.take();
    EXPECT_EQ(open_frame(bob, datagram).error, EnvelopeError::kBadCertChain);
    EXPECT_GE(bob.stats().verify_failures, 1u);
}

TEST_F(SecurityFixture, StolenChainWithoutKeyFailsBinding) {
    // mallory replays alice's (public) certificate chain but signs the key
    // binding with her own key: the chain verifies, the binding must not.
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext bob = make_context("bob", cfg, clock);

    crypto::RsaKeyPair alice_keys = crypto::rsa_generate(rng, 512);
    std::vector<crypto::Certificate> alice_chain = {
        crypto::issue_certificate("alice", alice_keys.public_key, "root-ca",
                                  ca_keys.private_key, kCertFrom, kCertTo, 70),
        root};
    crypto::RsaKeyPair mallory_keys = crypto::rsa_generate(rng, 512);
    // Identity claims "alice", carries alice's real chain, but holds
    // mallory's private key.
    SecurityContext imposter("alice", mallory_keys, alice_chain, {root}, cfg, clock, rng);
    imposter.add_peer_key("bob", keys_by_name["bob"]);

    wire::ByteWriter out;
    ASSERT_TRUE(imposter.seal_datagram(as_span(make_payload()), "bob", out));
    const Bytes datagram = out.take();
    EXPECT_EQ(open_frame(bob, datagram).error, EnvelopeError::kBadKeySignature);
}

TEST_F(SecurityFixture, RekeyIntervalForcesFreshHandshake) {
    ManualClock clock(0);
    const auto cfg =
        make_config(config::SecurityConfig::Mode::kSign, /*rekey=*/1000);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());
    ASSERT_FALSE(relay(alice, bob, make_payload()).handshake);

    clock.advance(1500);  // past the rekey interval
    const auto rekeyed = relay(alice, bob, make_payload());
    ASSERT_TRUE(rekeyed.ok()) << crypto::to_string(rekeyed.error);
    EXPECT_TRUE(rekeyed.handshake);
    EXPECT_EQ(alice.stats().rekeys, 1u);
    EXPECT_EQ(alice.stats().handshakes_sent, 2u);
}

TEST_F(SecurityFixture, ReceiverGraceIsTwiceTheRekeyInterval) {
    ManualClock clock(0);
    const auto cfg =
        make_config(config::SecurityConfig::Mode::kSign, /*rekey=*/1000);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());
    Bytes steady;
    ASSERT_TRUE(relay(alice, bob, make_payload(), false, &steady).ok());

    // Within 2x the interval the old session still opens (sender-mid-rekey
    // traffic must not be dropped)...
    clock.advance(1900);
    EXPECT_TRUE(open_frame(bob, steady).ok());
    // ...past the grace the session is gone.
    clock.advance(300);  // now 2200 > 2 * 1000
    EXPECT_EQ(open_frame(bob, steady).error, EnvelopeError::kNoSession);
    EXPECT_EQ(bob.rx_sessions().size(), 0u);  // stale entry evicted
}

TEST_F(SecurityFixture, DrainMemoShortCircuitsRepeatLookups) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSeal);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());

    // A burst from the same peer — the shape of one recvmmsg drain.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(relay(alice, bob, make_payload()).ok());
    }
    // The handshake primed the memo, so every session frame hits it.
    EXPECT_GE(bob.stats().memo_hits, 4u);
}

TEST_F(SecurityFixture, ObservabilityCountersTrackTheDatapath) {
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSeal);
    SecurityContext alice = make_context("alice", cfg, clock);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);
    obs::MetricsRegistry metrics;
    alice.set_observability(&metrics, "alice");
    bob.set_observability(&metrics, "bob");

    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());

    EXPECT_EQ(metrics.counter("crypto_seals", "alice").value(), 2u);
    EXPECT_EQ(metrics.counter("crypto_handshakes", "alice").value(), 1u);
    EXPECT_EQ(metrics.counter("crypto_opens", "bob").value(), 2u);
    EXPECT_EQ(metrics.counter("crypto_cache_hits", "alice").value(), 1u);
    EXPECT_EQ(metrics.counter("crypto_open_errors", "bob").value(), 0u);
}

TEST_F(SecurityFixture, CertificateExpiryMidScenario) {
    // Satellite: certificate lifetime rides the injected clock, so a sim
    // scenario can expire a credential mid-run. The established session
    // keeps working (symmetric state), but the next handshake — rekey or
    // recovery — is refused until the peer is re-certified.
    ManualClock clock(0);
    const auto cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext alice =
        make_context("alice", cfg, clock, /*with_chain=*/true, /*valid_to=*/5'000);
    SecurityContext bob = make_context("bob", cfg, clock);
    alice.add_peer_key("bob", keys_by_name["bob"]);

    // t=1000: handshake lands while the certificate is valid.
    clock.advance(1000);
    ASSERT_TRUE(relay(alice, bob, make_payload()).ok());

    // t=6000: the certificate expired. Steady-state session traffic still
    // flows — expiry gates *handshakes*, not cached symmetric sessions.
    clock.advance(5000);
    EXPECT_TRUE(relay(alice, bob, make_payload()).ok());

    // But a fresh handshake (lost-session recovery) is now rejected.
    const auto result = relay(alice, bob, make_payload(), /*force_handshake=*/true);
    EXPECT_EQ(result.error, EnvelopeError::kBadCertChain);
    EXPECT_GE(bob.stats().verify_failures, 1u);
}

// ---------------------------------------------------------------------------
// Authenticated advertisements end-to-end through the sim network: a BDN in
// authenticate_ads mode only registers brokers whose advertisement arrived
// inside a verified envelope with a matching certificate subject.

struct SecuredBdnFixture : SecurityFixture {
    SecuredBdnFixture() : net(kernel, 77) {
        bdn_host = net.add_host({"bdn", "S", "bdn-realm", 0});
        broker_host = net.add_host({"broker-1", "S", "r", 0});
        net.set_default_link({from_ms(5), 0, 2});
    }

    BrokerAdvertisement make_ad(const std::string& name) {
        BrokerAdvertisement ad;
        ad.broker_id = Uuid::random(rng);
        ad.broker_name = name;
        ad.endpoint = broker_ep();
        ad.realm = "r";
        return ad;
    }

    Bytes encode_ad(const BrokerAdvertisement& ad) {
        wire::ByteWriter w;
        w.u8(wire::kMsgBrokerAdvertisement);
        ad.encode(w);
        return w.take();
    }

    Endpoint bdn_ep() const { return {bdn_host, 7100}; }
    Endpoint broker_ep() const { return {broker_host, 7000}; }

    void deliver(const Bytes& datagram) {
        net.send_datagram(broker_ep(), bdn_ep(), Bytes(datagram));
        kernel.run_until(kernel.now() + kSecond);
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    HostId bdn_host{}, broker_host{};
};

TEST_F(SecuredBdnFixture, PlainAdRejectedWhenAuthenticationRequired) {
    auto sec_cfg = make_config(config::SecurityConfig::Mode::kSign);
    sec_cfg.authenticate_ads = true;
    SecurityContext bdn_sec =
        make_context("bdn", sec_cfg, net.host_clock(bdn_host));

    Bdn bdn(kernel, net, bdn_ep(), net.host_clock(bdn_host), {});
    bdn.set_security(&bdn_sec);

    deliver(encode_ad(make_ad("broker-1")));
    EXPECT_EQ(bdn.registered_count(), 0u);
    EXPECT_EQ(bdn.stats().ads_rejected_unauthenticated, 1u);
}

TEST_F(SecuredBdnFixture, SealedAdWithMatchingSubjectRegisters) {
    auto sec_cfg = make_config(config::SecurityConfig::Mode::kSign);
    sec_cfg.authenticate_ads = true;
    SecurityContext bdn_sec =
        make_context("bdn", sec_cfg, net.host_clock(bdn_host));
    SecurityContext broker_sec =
        make_context("broker-1", sec_cfg, net.host_clock(broker_host));
    broker_sec.add_peer_key("bdn", keys_by_name["bdn"]);

    Bdn bdn(kernel, net, bdn_ep(), net.host_clock(bdn_host), {});
    bdn.set_security(&bdn_sec);

    const Bytes plain = encode_ad(make_ad("broker-1"));
    wire::ByteWriter sealed;
    ASSERT_TRUE(broker_sec.seal_datagram(as_span(plain), "bdn", sealed));
    deliver(sealed.take());

    EXPECT_EQ(bdn.registered_count(), 1u);
    EXPECT_EQ(bdn.stats().secured_received, 1u);
    EXPECT_EQ(bdn.stats().ads_rejected_unauthenticated, 0u);
}

TEST_F(SecuredBdnFixture, SealedAdWithForeignSubjectRejected) {
    // A correctly-certified broker advertising *someone else's* name: the
    // envelope opens, but the subject/broker_name mismatch blocks it.
    auto sec_cfg = make_config(config::SecurityConfig::Mode::kSign);
    sec_cfg.authenticate_ads = true;
    SecurityContext bdn_sec =
        make_context("bdn", sec_cfg, net.host_clock(bdn_host));
    SecurityContext broker_sec =
        make_context("broker-2", sec_cfg, net.host_clock(broker_host));
    broker_sec.add_peer_key("bdn", keys_by_name["bdn"]);

    Bdn bdn(kernel, net, bdn_ep(), net.host_clock(bdn_host), {});
    bdn.set_security(&bdn_sec);

    const Bytes plain = encode_ad(make_ad("broker-1"));  // not broker-2's name
    wire::ByteWriter sealed;
    ASSERT_TRUE(broker_sec.seal_datagram(as_span(plain), "bdn", sealed));
    deliver(sealed.take());

    EXPECT_EQ(bdn.registered_count(), 0u);
    EXPECT_EQ(bdn.stats().secured_received, 1u);  // opened fine...
    EXPECT_EQ(bdn.stats().ads_rejected_unauthenticated, 1u);  // ...then blocked
}

TEST_F(SecuredBdnFixture, GarbageEnvelopeCountsOpenFailure) {
    auto sec_cfg = make_config(config::SecurityConfig::Mode::kSign);
    SecurityContext bdn_sec =
        make_context("bdn", sec_cfg, net.host_clock(bdn_host));
    Bdn bdn(kernel, net, bdn_ep(), net.host_clock(bdn_host), {});
    bdn.set_security(&bdn_sec);

    Bytes junk{wire::kMsgSecureEnvelope, 0x02, 0xFF, 0xFF};
    deliver(junk);
    EXPECT_EQ(bdn.stats().secure_open_failures, 1u);
    EXPECT_EQ(bdn.registered_count(), 0u);
}

}  // namespace
}  // namespace narada::discovery
