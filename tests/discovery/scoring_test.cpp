#include "discovery/scoring.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace narada::discovery {
namespace {

DiscoveryResponse make_response(double cpu, std::uint32_t connections,
                                std::uint64_t total_mb, std::uint64_t free_mb) {
    DiscoveryResponse r;
    r.metrics.cpu_load = cpu;
    r.metrics.connections = connections;
    r.metrics.total_memory = total_mb << 20;
    r.metrics.free_memory = free_mb << 20;
    return r;
}

TEST(Scoring, PaperFormulaComponents) {
    // Exercise the §9 pseudo-code term by term with unit weights.
    config::MetricWeights w;
    w.free_to_total_memory = 1.0;
    w.total_memory_mb = 0.0;
    w.num_links = 0.0;
    w.cpu_load = 0.0;
    w.delay_ms = 0.0;
    EXPECT_DOUBLE_EQ(score_response(make_response(0, 0, 512, 256), 0, w), 0.5);

    w.free_to_total_memory = 0.0;
    w.total_memory_mb = 1.0;
    EXPECT_DOUBLE_EQ(score_response(make_response(0, 0, 512, 0), 0, w), 512.0);

    w.total_memory_mb = 0.0;
    w.num_links = 2.0;
    EXPECT_DOUBLE_EQ(score_response(make_response(0, 3, 0, 0), 0, w), -6.0);

    w.num_links = 0.0;
    w.cpu_load = 10.0;
    EXPECT_DOUBLE_EQ(score_response(make_response(0.5, 0, 0, 0), 0, w), -5.0);

    w.cpu_load = 0.0;
    w.delay_ms = 1.0;
    EXPECT_DOUBLE_EQ(score_response(make_response(0, 0, 0, 0), from_ms(25), w), -25.0);
}

TEST(Scoring, ZeroTotalMemorySafe) {
    const config::MetricWeights w;
    // Must not divide by zero.
    const double score = score_response(make_response(0, 0, 0, 0), 0, w);
    EXPECT_TRUE(std::isfinite(score));
}

TEST(Scoring, MonotoneInEachFactor) {
    const config::MetricWeights w;  // defaults
    const double base = score_response(make_response(0.2, 5, 512, 256), from_ms(10), w);
    // More free memory -> better.
    EXPECT_GT(score_response(make_response(0.2, 5, 512, 400), from_ms(10), w), base);
    // More CPU load -> worse.
    EXPECT_LT(score_response(make_response(0.8, 5, 512, 256), from_ms(10), w), base);
    // More connections -> worse.
    EXPECT_LT(score_response(make_response(0.2, 50, 512, 256), from_ms(10), w), base);
    // More delay -> worse.
    EXPECT_LT(score_response(make_response(0.2, 5, 512, 256), from_ms(60), w), base);
    // More total memory (same free ratio) -> better.
    EXPECT_GT(score_response(make_response(0.2, 5, 2048, 1024), from_ms(10), w), base);
}

std::vector<Candidate> make_candidates(std::size_t n) {
    std::vector<Candidate> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i].response = make_response(0.1, 1, 512, 256);
        out[i].estimated_delay = from_ms(static_cast<double>(i + 1) * 10);
        out[i].response.broker_name = "b" + std::to_string(i);
    }
    return out;
}

TEST(Shortlist, OrdersByScoreDescending) {
    auto candidates = make_candidates(5);
    const config::MetricWeights w;
    const auto order = shortlist(candidates, w, 5);
    ASSERT_EQ(order.size(), 5u);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        EXPECT_GE(candidates[order[i]].score, candidates[order[i + 1]].score);
    }
    // Lowest delay wins with identical load metrics.
    EXPECT_EQ(order.front(), 0u);
    EXPECT_EQ(order.back(), 4u);
}

TEST(Shortlist, TruncatesToTargetSetSize) {
    auto candidates = make_candidates(20);
    const config::MetricWeights w;
    // size(T) <= size(N) (§9); the paper's default target is ~10.
    EXPECT_EQ(shortlist(candidates, w, 10).size(), 10u);
    EXPECT_EQ(shortlist(candidates, w, 3).size(), 3u);
}

TEST(Shortlist, SmallerPoolReturnsAll) {
    auto candidates = make_candidates(2);
    const config::MetricWeights w;
    EXPECT_EQ(shortlist(candidates, w, 10).size(), 2u);
}

TEST(Shortlist, EmptyPool) {
    std::vector<Candidate> none;
    const config::MetricWeights w;
    EXPECT_TRUE(shortlist(none, w, 10).empty());
}

TEST(Shortlist, StableForEqualScores) {
    auto candidates = make_candidates(4);
    for (auto& c : candidates) c.estimated_delay = from_ms(10);
    const config::MetricWeights w;
    const auto order = shortlist(candidates, w, 4);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Shortlist, LoadAwareSelectionPrefersIdleBroker) {
    // Paper §8 claim 3: "a newly added broker within a cluster would be
    // preferentially utilized" because responses carry usage metrics.
    std::vector<Candidate> candidates(2);
    candidates[0].response = make_response(0.9, 40, 512, 32);   // loaded
    candidates[1].response = make_response(0.05, 1, 512, 480);  // fresh
    candidates[0].estimated_delay = from_ms(5);
    candidates[1].estimated_delay = from_ms(6);  // slightly farther
    const config::MetricWeights w;
    const auto order = shortlist(candidates, w, 2);
    EXPECT_EQ(order.front(), 1u);
}

TEST(Shortlist, DelayOnlyWeightsReduceToNearest) {
    std::vector<Candidate> candidates(3);
    config::MetricWeights w{};  // zero weights
    w.free_to_total_memory = 0;
    w.total_memory_mb = 0;
    w.num_links = 0;
    w.cpu_load = 0;
    w.delay_ms = 1.0;
    candidates[0].estimated_delay = from_ms(30);
    candidates[1].estimated_delay = from_ms(10);
    candidates[2].estimated_delay = from_ms(20);
    const auto order = shortlist(candidates, w, 3);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

}  // namespace
}  // namespace narada::discovery
