// BDN soft-state registry: registrations of silent brokers expire so
// injection never targets the dead (churn support, §1.2).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace narada::discovery {
namespace {

TEST(BdnExpiry, SilentBrokerExpires) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 808;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = 0;  // no re-ads: death is permanent
    scenario::Scenario s(opts);
    s.warm_up();
    ASSERT_EQ(s.bdn().registered_count(), 5u);

    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 4u);
    EXPECT_GE(s.bdn().stats().registrations_expired, 1u);
}

TEST(BdnExpiry, ReAdvertisementKeepsRegistrationAlive) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 809;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = from_ms(1000);  // healthy soft state
    scenario::Scenario s(opts);
    s.warm_up();
    s.kernel().run_until(s.kernel().now() + 20 * kSecond);
    // Live brokers keep answering pings; nothing expires.
    EXPECT_EQ(s.bdn().registered_count(), 5u);
    EXPECT_EQ(s.bdn().stats().registrations_expired, 0u);
}

TEST(BdnExpiry, RevivedBrokerReRegisters) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 810;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = from_ms(1000);
    scenario::Scenario s(opts);
    s.warm_up();

    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 4u);

    s.network().set_host_down(s.broker_host(0), false);
    s.kernel().run_until(s.kernel().now() + 5 * kSecond);
    // The periodic re-advertisement restored the registration.
    EXPECT_EQ(s.bdn().registered_count(), 5u);
}

TEST(BdnExpiry, DisabledByDefault) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 811;
    opts.broker.advertise_interval = 0;
    // registration_expiry defaults to 0: never expire.
    scenario::Scenario s(opts);
    s.warm_up();
    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 60 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 5u);
}

}  // namespace
}  // namespace narada::discovery
