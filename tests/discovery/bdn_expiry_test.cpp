// BDN soft-state registry: registrations of silent brokers expire so
// injection never targets the dead (churn support, §1.2).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace narada::discovery {
namespace {

TEST(BdnExpiry, SilentBrokerExpires) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 808;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = 0;  // no re-ads: death is permanent
    scenario::Scenario s(opts);
    s.warm_up();
    ASSERT_EQ(s.bdn().registered_count(), 5u);

    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 4u);
    EXPECT_GE(s.bdn().stats().registrations_expired, 1u);
}

TEST(BdnExpiry, ReAdvertisementKeepsRegistrationAlive) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 809;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = from_ms(1000);  // healthy soft state
    scenario::Scenario s(opts);
    s.warm_up();
    s.kernel().run_until(s.kernel().now() + 20 * kSecond);
    // Live brokers keep answering pings; nothing expires.
    EXPECT_EQ(s.bdn().registered_count(), 5u);
    EXPECT_EQ(s.bdn().stats().registrations_expired, 0u);
}

TEST(BdnExpiry, RevivedBrokerReRegisters) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 810;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.registration_expiry = from_ms(2000);
    opts.broker.advertise_interval = from_ms(1000);
    scenario::Scenario s(opts);
    s.warm_up();

    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 4u);

    s.network().set_host_down(s.broker_host(0), false);
    s.kernel().run_until(s.kernel().now() + 5 * kSecond);
    // The periodic re-advertisement restored the registration.
    EXPECT_EQ(s.bdn().registered_count(), 5u);
}

TEST(BdnExpiry, AdLeaseEvictsBrokersThatStopAdvertising) {
    // The lease is renewed ONLY by fresh advertisements — answering pings
    // is not enough. A broker that is reachable but no longer advertises
    // (stale soft state) ages out of the registry.
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 812;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.ad_lease = from_ms(2000);
    opts.broker.advertise_interval = 0;  // one ad at start, then silence
    scenario::Scenario s(opts);
    s.warm_up();
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    // Every broker still answers pings, yet every lease has lapsed. (An
    // initial ad can be lost to the datagram loss model, so at least four
    // of the five registrations exist to expire.)
    EXPECT_EQ(s.bdn().registered_count(), 0u);
    EXPECT_GE(s.bdn().stats().leases_expired, 4u);
    EXPECT_EQ(s.bdn().stale_count(), 0u);
}

TEST(BdnExpiry, PeriodicAdsRenewLease) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 813;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.ad_lease = from_ms(3000);
    opts.broker.advertise_interval = from_ms(1000);
    scenario::Scenario s(opts);
    s.warm_up();
    s.kernel().run_until(s.kernel().now() + 20 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 5u);
    EXPECT_EQ(s.bdn().stats().leases_expired, 0u);
    EXPECT_GT(s.bdn().stats().leases_renewed, 0u);
    EXPECT_EQ(s.bdn().stale_count(), 0u);
}

TEST(BdnExpiry, AdLeaseAgesOutCrashedBroker) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 814;
    opts.bdn.ping_refresh_interval = from_ms(500);
    opts.bdn.ad_lease = from_ms(3000);
    opts.broker.advertise_interval = from_ms(1000);
    scenario::Scenario s(opts);
    s.warm_up();
    ASSERT_EQ(s.bdn().registered_count(), 5u);

    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 10 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 4u);
    EXPECT_GE(s.bdn().stats().leases_expired, 1u);
    EXPECT_EQ(s.bdn().stale_count(), 0u);

    s.network().set_host_down(s.broker_host(0), false);
    s.kernel().run_until(s.kernel().now() + 5 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 5u);  // re-advertisement re-registers
}

TEST(BdnExpiry, DisabledByDefault) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.seed = 811;
    opts.broker.advertise_interval = 0;
    // registration_expiry defaults to 0: never expire.
    scenario::Scenario s(opts);
    s.warm_up();
    s.network().set_host_down(s.broker_host(0), true);
    s.kernel().run_until(s.kernel().now() + 60 * kSecond);
    EXPECT_EQ(s.bdn().registered_count(), 5u);
}

}  // namespace
}  // namespace narada::discovery
