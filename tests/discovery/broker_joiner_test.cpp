// Broker-join flow (§1.1): a new broker discovers the network, peers with
// the nearest broker, advertises, and becomes discoverable itself.
#include "discovery/broker_joiner.hpp"

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace narada::discovery {
namespace {

struct JoinerFixture : ::testing::Test {
    JoinerFixture() {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kStar;
        opts.seed = 404;
        testbed = std::make_unique<scenario::Scenario>(opts);
        testbed->warm_up();

        // A brand-new broker machine at UMN.
        auto& net = testbed->network();
        new_host = net.add_host({"newcomer.msi.umn.edu", "UMN", "umn", from_ms(300)});
        for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
            sim::LinkQuality q;
            q.one_way = from_ms(sim::site_latency_ms(sim::Site::kUmn,
                                                     testbed->options().broker_sites[i]));
            q.hops = sim::site_hops(sim::Site::kUmn, testbed->options().broker_sites[i]);
            net.set_link(new_host, testbed->broker_host(i), q);
        }
        net.set_link(new_host, testbed->bdn().endpoint().host,
                     {from_ms(11.0), from_ms(1.0), 9});

        utc = std::make_unique<timesvc::FixedUtcSource>(net.true_clock());
        config::BrokerConfig cfg;
        cfg.advertise_bdns = {testbed->bdn().endpoint()};
        node = std::make_unique<broker::Broker>(testbed->kernel(), net,
                                                Endpoint{new_host, 7000},
                                                net.host_clock(new_host), *utc, cfg,
                                                "newcomer");
        BrokerIdentity identity;
        identity.hostname = "newcomer.msi.umn.edu";
        identity.realm = "umn";
        plugin = std::make_unique<BrokerDiscoveryPlugin>(identity);
        node->add_plugin(plugin.get());
        // NOTE: node->start() is NOT called — the joiner advertises after
        // peering, exercising the §2.1 "configured within the network"
        // sequence.

        config::DiscoveryConfig dcfg;
        dcfg.bdns = {testbed->bdn().endpoint()};
        dcfg.response_window = from_ms(1500);
        dcfg.max_responses = 5;
        client = std::make_unique<DiscoveryClient>(testbed->kernel(), net,
                                                   Endpoint{new_host, 7200},
                                                   net.host_clock(new_host), *utc, dcfg,
                                                   "newcomer.msi.umn.edu", "umn");
    }

    BrokerJoiner::Result join() {
        BrokerJoiner joiner(*node, *plugin, *client);
        std::optional<BrokerJoiner::Result> result;
        joiner.join([&](const BrokerJoiner::Result& r) { result = r; });
        auto& kernel = testbed->kernel();
        while (!result) {
            if (!kernel.step()) throw std::runtime_error("queue drained");
        }
        return *result;
    }

    std::unique_ptr<scenario::Scenario> testbed;
    HostId new_host{};
    std::unique_ptr<timesvc::FixedUtcSource> utc;
    std::unique_ptr<broker::Broker> node;
    std::unique_ptr<BrokerDiscoveryPlugin> plugin;
    std::unique_ptr<DiscoveryClient> client;
};

TEST_F(JoinerFixture, JoinsNearestBroker) {
    const auto result = join();
    ASSERT_TRUE(result.success);
    ASSERT_TRUE(result.attached_to.has_value());
    // UMN's nearest testbed broker is the UMN broker (index 2 in the
    // default site list: Indy, NCSA, UMN, FSU, Cardiff).
    EXPECT_EQ(*result.attached_to, testbed->broker_at(2).endpoint());
    testbed->kernel().run_until(testbed->kernel().now() + kSecond);
    const auto peers = node->peers();
    ASSERT_EQ(peers.size(), 1u);
    EXPECT_EQ(peers[0], *result.attached_to);
}

TEST_F(JoinerFixture, NewcomerBecomesDiscoverable) {
    const std::size_t before = testbed->bdn().registered_count();
    const auto result = join();
    ASSERT_TRUE(result.success);
    testbed->kernel().run_until(testbed->kernel().now() + kSecond);
    // The join advertised to the BDN.
    EXPECT_EQ(testbed->bdn().registered_count(), before + 1);

    // The ORIGINAL client's next discovery now sees six brokers.
    auto& original = testbed->client();
    original.mutable_config().max_responses = 6;
    std::optional<DiscoveryReport> report;
    original.discover([&](const DiscoveryReport& r) { report = r; });
    auto& kernel = testbed->kernel();
    while (!report) {
        if (!kernel.step()) throw std::runtime_error("queue drained");
    }
    ASSERT_TRUE(report->success);
    EXPECT_EQ(report->candidates.size(), 6u);
}

TEST_F(JoinerFixture, JoinSkipsSelfIfOwnAdCirculates) {
    // Pre-advertise the newcomer so its own response may win the scoring
    // (it is 0 connections and closest to itself). The joiner must still
    // attach to a DIFFERENT broker.
    node->start();  // advertises now
    testbed->kernel().run_until(testbed->kernel().now() + kSecond);
    const auto result = join();
    ASSERT_TRUE(result.success);
    EXPECT_NE(*result.attached_to, node->endpoint());
}

TEST_F(JoinerFixture, JoinFailsCleanlyWithDeadNetwork) {
    testbed->network().set_host_down(testbed->bdn().endpoint().host, true);
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), true);
    }
    client->mutable_config().response_window = from_ms(400);
    client->mutable_config().retransmit_interval = from_ms(200);
    const auto result = join();
    EXPECT_FALSE(result.success);
    EXPECT_FALSE(result.attached_to.has_value());
    EXPECT_TRUE(node->peers().empty());
}

}  // namespace
}  // namespace narada::discovery
