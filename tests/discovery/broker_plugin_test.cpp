#include "discovery/broker_plugin.hpp"

#include <gtest/gtest.h>

#include "discovery/bdn.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

/// Captures everything sent to the requester's reply endpoint.
class ResponseCatcher final : public transport::MessageHandler {
public:
    void on_datagram(const Endpoint&, const Bytes& data) override {
        wire::ByteReader r(data);
        const std::uint8_t type = r.u8();
        if (type == wire::kMsgDiscoveryResponse) {
            responses.push_back(DiscoveryResponse::decode(r));
        }
    }
    std::vector<DiscoveryResponse> responses;
};

BrokerIdentity make_identity(const std::string& hostname, const std::string& realm) {
    BrokerIdentity identity;
    identity.hostname = hostname;
    identity.realm = realm;
    return identity;
}

struct PluginFixture : ::testing::Test {
    PluginFixture() : net(kernel, 31), utc(kernel.clock(), from_ms(3)), rng(9) {
        for (int i = 0; i < 3; ++i) {
            hosts.push_back(net.add_host({"h" + std::to_string(i), "S", "lab", 0}));
        }
        net.set_default_link({from_ms(3), 0, 2});
        requester_ep = {hosts[2], 7200};
        net.bind(requester_ep, &catcher);
    }

    std::unique_ptr<broker::Broker> make_broker(const config::BrokerConfig& cfg, int host_index,
                                                const std::string& name) {
        auto b = std::make_unique<broker::Broker>(kernel, net,
                                                  Endpoint{hosts[host_index], 7000},
                                                  net.host_clock(hosts[host_index]), utc, cfg,
                                                  name);
        return b;
    }

    DiscoveryRequest make_request(const std::string& credential = {},
                                  const std::string& realm = "lab") {
        DiscoveryRequest req;
        req.request_id = Uuid::random(rng);
        req.reply_to = requester_ep;
        req.credential = credential;
        req.realm = realm;
        return req;
    }

    void send_request(const Endpoint& to, const DiscoveryRequest& req) {
        wire::ByteWriter w;
        w.u8(wire::kMsgDiscoveryRequest);
        req.encode(w);
        net.send_datagram(requester_ep, to, w.take());
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    timesvc::FixedUtcSource utc;
    Rng rng;
    std::vector<HostId> hosts;
    Endpoint requester_ep;
    ResponseCatcher catcher;
};

TEST_F(PluginFixture, AdvertisementCarriesIdentity) {
    config::BrokerConfig cfg;
    auto broker = make_broker(cfg, 0, "b0");
    BrokerIdentity identity;
    identity.hostname = "host.example.edu";
    identity.realm = "lab";
    identity.geo_location = "Bloomington, IN";
    identity.institution = "IU";
    identity.protocols = {"tcp", "udp", "multicast"};
    BrokerDiscoveryPlugin plugin(identity);
    broker->add_plugin(&plugin);
    const BrokerAdvertisement ad = plugin.advertisement();
    EXPECT_FALSE(ad.broker_id.is_nil());  // assigned at attach
    EXPECT_EQ(ad.hostname, "host.example.edu");
    EXPECT_EQ(ad.endpoint, broker->endpoint());
    EXPECT_EQ(ad.realm, "lab");
    EXPECT_EQ(ad.geo_location, "Bloomington, IN");
    EXPECT_EQ(ad.institution, "IU");
    EXPECT_EQ(ad.protocols.size(), 3u);
    EXPECT_EQ(ad.broker_name, "b0");
}

TEST_F(PluginFixture, AdvertisesDirectlyToConfiguredBdns) {
    Bdn bdn(kernel, net, Endpoint{hosts[1], 7100}, net.host_clock(hosts[1]), {});
    config::BrokerConfig cfg;
    cfg.advertise_bdns = {bdn.endpoint()};
    cfg.advertise_on_topic = false;
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();
    kernel.run_until(kSecond);
    EXPECT_EQ(bdn.registered_count(), 1u);
}

TEST_F(PluginFixture, TopicAdvertisementReachesAttachedBdn) {
    // §2.3 path 2: the ad travels over the pub/sub substrate to a BDN that
    // subscribed to the public topic via a broker attachment.
    config::BrokerConfig cfg;  // advertise_on_topic defaults true
    auto b0 = make_broker(cfg, 0, "b0");
    auto b1 = make_broker(cfg, 1, "b1");
    b1->connect_to_peer(b0->endpoint());
    kernel.run_until(from_ms(100));

    Bdn bdn(kernel, net, Endpoint{hosts[2], 7100}, net.host_clock(hosts[2]), {});
    bdn.attach_to_broker(b0->endpoint(), Endpoint{hosts[2], 7101});
    kernel.run_until(from_ms(200));

    // b1 starts *after* the BDN subscribed; its ad floods b1 -> b0 -> BDN.
    BrokerDiscoveryPlugin plugin(make_identity("h1", "lab"));
    b1->add_plugin(&plugin);
    b1->start();
    kernel.run_until(kSecond);
    EXPECT_EQ(bdn.registered_count(), 1u);
    EXPECT_EQ(bdn.registry()[0].ad.hostname, "h1");
}

TEST_F(PluginFixture, RespondsWithTimestampAndMetrics) {
    config::BrokerConfig cfg;
    cfg.processing_delay = 0;
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();
    auto load = std::make_shared<broker::StaticLoadModel>(0.25, 512ull << 20, 100ull << 20);
    broker->set_load_model(load);

    send_request(broker->endpoint(), make_request());
    kernel.run_until(kSecond);
    ASSERT_EQ(catcher.responses.size(), 1u);
    const DiscoveryResponse& resp = catcher.responses[0];
    EXPECT_EQ(resp.broker_id, plugin.identity().broker_id);
    EXPECT_EQ(resp.endpoint, broker->endpoint());
    EXPECT_DOUBLE_EQ(resp.metrics.cpu_load, 0.25);
    EXPECT_EQ(resp.metrics.free_memory, 100ull << 20);
    // sent_utc comes from the broker's UTC source (offset +3 ms here).
    EXPECT_GT(resp.sent_utc, 0);
}

TEST_F(PluginFixture, DuplicateRequestsSuppressed) {
    config::BrokerConfig cfg;
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();
    const DiscoveryRequest req = make_request();
    send_request(broker->endpoint(), req);
    send_request(broker->endpoint(), req);
    send_request(broker->endpoint(), req);
    kernel.run_until(kSecond);
    EXPECT_EQ(catcher.responses.size(), 1u);
    // Two wire duplicates plus the broker's own flooded re-publication
    // echoing back through on_event: three suppressed in total.
    EXPECT_EQ(plugin.stats().duplicates_suppressed, 3u);
}

TEST_F(PluginFixture, TinyDedupCacheForgets) {
    config::BrokerConfig cfg;
    cfg.dedup_cache_size = 1;  // pathological: remembers only one request
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();
    const DiscoveryRequest req_a = make_request();
    const DiscoveryRequest req_b = make_request();
    send_request(broker->endpoint(), req_a);
    kernel.run_until(kernel.now() + from_ms(100));
    send_request(broker->endpoint(), req_b);  // evicts req_a
    kernel.run_until(kernel.now() + from_ms(100));
    send_request(broker->endpoint(), req_a);  // processed AGAIN
    kernel.run_until(kernel.now() + from_ms(100));
    EXPECT_EQ(catcher.responses.size(), 3u);
}

TEST_F(PluginFixture, NonResponderStillFloods) {
    // §5: "not every broker ... needs to respond"; but the request keeps
    // propagating through it.
    config::BrokerConfig mute_cfg;
    mute_cfg.respond_to_discovery = false;
    auto b0 = make_broker(mute_cfg, 0, "mute");
    config::BrokerConfig talk_cfg;
    auto b1 = make_broker(talk_cfg, 1, "talker");
    BrokerDiscoveryPlugin p0(make_identity("h0", "lab"));
    BrokerDiscoveryPlugin p1(make_identity("h1", "lab"));
    b0->add_plugin(&p0);
    b1->add_plugin(&p1);
    b1->connect_to_peer(b0->endpoint());
    b0->start();
    b1->start();
    kernel.run_until(from_ms(100));

    send_request(b0->endpoint(), make_request());
    kernel.run_until(kSecond);
    ASSERT_EQ(catcher.responses.size(), 1u);  // only the talker answered
    EXPECT_EQ(catcher.responses[0].broker_name, "talker");
    EXPECT_EQ(p0.stats().policy_rejections, 1u);
}

TEST_F(PluginFixture, CredentialAndRealmPolicies) {
    config::BrokerConfig cfg;
    cfg.required_credential = "key";
    cfg.allowed_realms = {"lab"};
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();

    send_request(broker->endpoint(), make_request("wrong", "lab"));
    send_request(broker->endpoint(), make_request("key", "mars"));
    send_request(broker->endpoint(), make_request("key", "lab"));
    kernel.run_until(kSecond);
    EXPECT_EQ(catcher.responses.size(), 1u);
    EXPECT_EQ(plugin.stats().policy_rejections, 2u);
}

TEST_F(PluginFixture, ReAdvertisesWhenPrivateBdnAnnounces) {
    // §2.4: a newly added private BDN announces itself; brokers
    // re-advertise to it.
    config::BrokerConfig cfg;
    cfg.advertise_on_topic = false;  // no other path to the BDN
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);
    broker->start();

    config::BdnConfig private_cfg;
    private_cfg.required_credential = "org-secret";
    Bdn private_bdn(kernel, net, Endpoint{hosts[1], 7100}, net.host_clock(hosts[1]),
                    private_cfg, "private-bdn");
    EXPECT_EQ(private_bdn.registered_count(), 0u);
    private_bdn.announce_to(broker->endpoint());
    kernel.run_until(kSecond);
    EXPECT_EQ(private_bdn.registered_count(), 1u);
}

TEST_F(PluginFixture, MulticastRequestAnswered) {
    config::BrokerConfig cfg;
    auto broker = make_broker(cfg, 0, "b0");
    BrokerDiscoveryPlugin plugin(make_identity("h0", "lab"));
    broker->add_plugin(&plugin);  // joins the discovery multicast group
    broker->start();

    wire::ByteWriter w;
    w.u8(wire::kMsgDiscoveryRequest);
    make_request().encode(w);
    net.send_multicast(transport::kDiscoveryMulticastGroup, requester_ep, w.take());
    kernel.run_until(kSecond);
    EXPECT_EQ(catcher.responses.size(), 1u);
}

}  // namespace
}  // namespace narada::discovery
