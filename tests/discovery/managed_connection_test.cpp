// ManagedConnection: heartbeat liveness and discovery-backed failover in
// the paper's "dynamic and fluid" broker environment (§1.2).
#include "discovery/managed_connection.hpp"

#include <gtest/gtest.h>

#include "discovery/bdn.hpp"
#include "scenario/chaos.hpp"
#include "scenario/scenario.hpp"

namespace narada::discovery {
namespace {

struct ManagedFixture : ::testing::Test {
    ManagedFixture() {
        // Full mesh: the overlay stays connected when any one broker dies,
        // so failover tests exercise re-attachment rather than partitions.
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        opts.seed = 606;
        opts.discovery.response_window = from_ms(1200);
        opts.discovery.retransmit_interval = from_ms(400);
        testbed = std::make_unique<scenario::Scenario>(opts);
        testbed->warm_up();

        auto& net = testbed->network();
        const HostId host = testbed->client_host();
        pubsub = std::make_unique<broker::PubSubClient>(testbed->kernel(), net,
                                                        Endpoint{host, 9500});
        ManagedConnection::Options mc_options;
        mc_options.heartbeat_interval = from_ms(500);
        mc_options.max_missed = 2;
        managed = std::make_unique<ManagedConnection>(
            testbed->kernel(), net, Endpoint{host, 9501}, net.host_clock(host), *pubsub,
            testbed->client(), mc_options);
    }

    void settle(DurationUs d = 2 * kSecond) {
        testbed->kernel().run_until(testbed->kernel().now() + d);
    }

    std::unique_ptr<scenario::Scenario> testbed;
    std::unique_ptr<broker::PubSubClient> pubsub;
    std::unique_ptr<ManagedConnection> managed;
};

TEST_F(ManagedFixture, AttachesToDiscoveredBroker) {
    std::optional<Endpoint> attached_to;
    managed->on_attached([&](const Endpoint& broker) { attached_to = broker; });
    managed->start();
    settle(10 * kSecond);
    ASSERT_TRUE(managed->attached());
    ASSERT_TRUE(attached_to.has_value());
    EXPECT_EQ(*managed->current_broker(), *attached_to);
    EXPECT_TRUE(pubsub->connected());
    EXPECT_EQ(pubsub->broker(), *attached_to);
}

TEST_F(ManagedFixture, HeartbeatsAnsweredWhileHealthy) {
    managed->start();
    settle(12 * kSecond);
    EXPECT_GT(managed->stats().heartbeats_sent, 5u);
    EXPECT_EQ(managed->stats().heartbeats_answered, managed->stats().heartbeats_sent);
    EXPECT_EQ(managed->stats().failovers, 0u);
}

TEST_F(ManagedFixture, FailsOverWhenBrokerDies) {
    std::optional<Endpoint> lost;
    managed->on_broker_lost([&](const Endpoint& broker) { lost = broker; });
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());
    const Endpoint first = *managed->current_broker();

    testbed->network().set_host_down(first.host, true);
    settle(30 * kSecond);

    ASSERT_TRUE(managed->attached());
    const Endpoint second = *managed->current_broker();
    EXPECT_NE(second, first);
    ASSERT_TRUE(lost.has_value());
    EXPECT_EQ(*lost, first);
    EXPECT_EQ(managed->stats().failovers, 1u);
    EXPECT_FALSE(testbed->network().host_down(second.host));
}

TEST_F(ManagedFixture, SubscriptionsSurviveFailover) {
    // The application subscribes once; events must arrive both before and
    // after the broker it happened to be attached to dies.
    int received = 0;
    pubsub->on_event([&](const broker::Event&) { ++received; });
    pubsub->subscribe("app/feed");
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());
    const Endpoint first = *managed->current_broker();

    // Publish from a different, surviving broker (the hub if possible).
    auto& kernel = testbed->kernel();
    auto& net = testbed->network();
    broker::PubSubClient publisher(kernel, net, Endpoint{testbed->client_host(), 9502});
    std::size_t publisher_broker = 0;
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        if (testbed->broker_at(i).endpoint() != first) {
            publisher_broker = i;
            break;
        }
    }
    publisher.connect(testbed->broker_at(publisher_broker).endpoint());
    settle();
    publisher.publish("app/feed", Bytes{1});
    settle();
    EXPECT_EQ(received, 1);

    testbed->network().set_host_down(first.host, true);
    settle(30 * kSecond);
    ASSERT_TRUE(managed->attached());
    EXPECT_NE(*managed->current_broker(), first);

    publisher.publish("app/feed", Bytes{2});
    settle();
    EXPECT_EQ(received, 2);  // filter replayed on the new broker
}

TEST_F(ManagedFixture, RetriesWhenWholeNetworkDown) {
    // Everything dead: discovery fails, the connection keeps retrying, and
    // recovers once brokers return.
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), true);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, true);
    managed->start();
    settle(20 * kSecond);
    EXPECT_FALSE(managed->attached());
    EXPECT_GT(managed->stats().failed_discoveries, 0u);

    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), false);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, false);
    settle(30 * kSecond);
    EXPECT_TRUE(managed->attached());
}

TEST_F(ManagedFixture, DefersFailoverWhileSharedDiscoveryClientBusy) {
    // Regression: the connection shares its DiscoveryClient with the
    // application. If the broker dies while an application-initiated
    // discovery run is in flight, the failover used to call discover() on
    // the busy client and throw std::logic_error from a timer callback.
    // Now it defers with backoff and recovers once the client frees up.
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());

    // Take the whole network down so the application's discovery run grinds
    // through its whole fallback ladder (long-lived busy window), and the
    // attached broker is declared dead inside it.
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), true);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, true);

    bool app_run_done = false;
    testbed->client().discover([&](const DiscoveryReport&) { app_run_done = true; });
    ASSERT_TRUE(testbed->client().busy());

    settle(30 * kSecond);
    EXPECT_TRUE(app_run_done);
    EXPECT_GT(managed->stats().busy_deferrals, 0u);  // guard engaged, no throw
    EXPECT_EQ(managed->stats().failovers, 1u);

    // The world returns; the deferred rediscovery re-attaches.
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), false);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, false);
    settle(40 * kSecond);
    ASSERT_TRUE(managed->attached());
    EXPECT_FALSE(testbed->network().host_down(managed->current_broker()->host));
}

TEST_F(ManagedFixture, RediscoveryBackoffGrowsThenResetsOnAttach) {
    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), true);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, true);
    managed->start();
    const DurationUs initial = managed->current_backoff();
    settle(60 * kSecond);
    EXPECT_FALSE(managed->attached());
    EXPECT_GT(managed->stats().failed_discoveries, 1u);
    // Consecutive failures walked the retry delay up from its initial value.
    EXPECT_GT(managed->current_backoff(), initial);

    for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
        testbed->network().set_host_down(testbed->broker_host(i), false);
    }
    testbed->network().set_host_down(testbed->bdn().endpoint().host, false);
    settle(40 * kSecond);
    ASSERT_TRUE(managed->attached());
    EXPECT_EQ(managed->current_backoff(), initial);  // success resets
}

// --- failover under request storms ------------------------------------------

/// Like ManagedFixture, but the scenario BDN runs bounded ingest with a
/// tight per-source quota, the client runs circuit breakers, and a healthy
/// secondary BDN (fed the same broker registry) stands by for failover.
struct StormFixture : ::testing::Test {
    StormFixture() {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        opts.seed = 707;
        opts.discovery.response_window = from_ms(1200);
        opts.discovery.retransmit_interval = from_ms(400);
        opts.discovery.breaker_failure_threshold = 1;
        opts.discovery.breaker_open_initial = 2 * kSecond;
        opts.bdn.ingest_queue_limit = 8;
        opts.bdn.request_service_cost = from_ms(2);
        // The storm shares the client's host, so its flood drains the
        // per-source bucket the client's own requests draw from.
        opts.bdn.per_source_rate = 0.5;
        opts.bdn.per_source_burst = 2.0;
        testbed = std::make_unique<scenario::Scenario>(opts);
        testbed->warm_up();

        auto& net = testbed->network();
        const HostId host = testbed->client_host();
        pubsub = std::make_unique<broker::PubSubClient>(testbed->kernel(), net,
                                                        Endpoint{host, 9500});
        ManagedConnection::Options mc_options;
        mc_options.heartbeat_interval = from_ms(500);
        mc_options.max_missed = 2;
        managed = std::make_unique<ManagedConnection>(
            testbed->kernel(), net, Endpoint{host, 9501}, net.host_clock(host), *pubsub,
            testbed->client(), mc_options);
        chaos = std::make_unique<sim::ChaosInjector>(testbed->kernel(), net);
    }

    /// Stand up a second, unthrottled BDN with the same broker registry and
    /// append it to the client's BDN list.
    void add_secondary_bdn() {
        auto& net = testbed->network();
        const HostId host = net.add_host({"bdn2.backup.net", "BACKUP", "", 0});
        secondary = std::make_unique<Bdn>(testbed->kernel(), net, Endpoint{host, 7100},
                                          net.host_clock(host), config::BdnConfig{},
                                          "secondary-bdn");
        for (std::size_t i = 0; i < testbed->broker_count(); ++i) {
            secondary->register_broker(testbed->plugin_at(i).advertisement());
        }
        secondary->start();
        testbed->client().mutable_config().bdns.push_back(secondary->endpoint());
        settle();  // let the secondary ping its registry
    }

    void storm(DurationUs duration) {
        chaos->run(scenario::request_storm_plan(*testbed, 0, 8, from_ms(50), duration));
    }

    void settle(DurationUs d = 2 * kSecond) {
        testbed->kernel().run_until(testbed->kernel().now() + d);
    }

    std::unique_ptr<scenario::Scenario> testbed;
    std::unique_ptr<broker::PubSubClient> pubsub;
    std::unique_ptr<ManagedConnection> managed;
    std::unique_ptr<sim::ChaosInjector> chaos;
    std::unique_ptr<Bdn> secondary;
};

TEST_F(StormFixture, BreakerOpensOnStormedPrimaryAndFailoverSucceeds) {
    add_secondary_bdn();
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());
    const Endpoint first = *managed->current_broker();

    // A request storm saturates the primary BDN's per-source quota, then
    // the attached broker dies mid-storm: rediscovery must not hang on the
    // storming primary.
    storm(20 * kSecond);
    settle(from_ms(600));
    testbed->network().set_host_down(first.host, true);
    settle(30 * kSecond);

    ASSERT_TRUE(managed->attached());
    EXPECT_NE(*managed->current_broker(), first);
    EXPECT_EQ(managed->stats().failovers, 1u);
    // The primary shed (client requests quota-shed with no ack), its
    // breaker opened, and traffic diverted to the secondary.
    EXPECT_GT(testbed->bdn().stats().requests_shed(), 0u);
    EXPECT_GE(testbed->client().bdn_breaker(0).stats().opens, 1u);
    // Bounded ingest held: the queue never grew past its limit.
    EXPECT_LE(testbed->bdn().stats().queue_depth_peak,
              testbed->bdn().config().ingest_queue_limit);
}

TEST_F(StormFixture, HalfOpenProbeReclosesBreakerAfterStormSubsides) {
    add_secondary_bdn();
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());
    const Endpoint first = *managed->current_broker();

    storm(6 * kSecond);
    settle(from_ms(600));
    testbed->network().set_host_down(first.host, true);
    settle(30 * kSecond);  // storm over, failover done, cool-down elapsed
    ASSERT_TRUE(managed->attached());
    ASSERT_EQ(testbed->client().bdn_breaker(0).state(), CircuitBreaker::State::kOpen);

    // Another failover after the storm: the rotation starts at the primary
    // again, the half-open probe goes through, and the breaker re-closes.
    const Endpoint second = *managed->current_broker();
    testbed->network().set_host_down(second.host, true);
    settle(30 * kSecond);
    ASSERT_TRUE(managed->attached());
    EXPECT_EQ(testbed->client().bdn_breaker(0).state(), CircuitBreaker::State::kClosed);
    EXPECT_GE(testbed->client().bdn_breaker(0).stats().probes, 1u);
}

TEST_F(StormFixture, InFlightDiscoveryAlwaysCompletesUnderStorm) {
    // With the only BDN storming (every client request quota-shed, never
    // acked), an in-flight discovery run must still terminate with a
    // report — exactly one callback, never silently abandoned.
    managed->start();
    settle(5 * kSecond);
    ASSERT_TRUE(managed->attached());

    storm(40 * kSecond);
    settle(from_ms(600));

    int callbacks = 0;
    DiscoveryReport last;
    testbed->client().discover([&](const DiscoveryReport& report) {
        ++callbacks;
        last = report;
    });
    ASSERT_TRUE(testbed->client().busy());
    settle(30 * kSecond);

    EXPECT_EQ(callbacks, 1);  // one result or error; no abandonment
    EXPECT_FALSE(testbed->client().busy());
    // The run either failed cleanly or succeeded via a fallback; either
    // way it burned through the BDN phase against a shedding BDN.
    if (!last.success) {
        EXPECT_GT(testbed->client().bdn_breaker(0).stats().opens, 0u);
    }
    EXPECT_GT(testbed->bdn().stats().requests_shed(), 0u);
}

}  // namespace
}  // namespace narada::discovery
