// Fault-tolerance behaviours from paper §7: BDN failover, multicast
// fallback, cached-target-set recovery, loss of requests/responses/ads,
// and response policies (§5).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace narada {
namespace {

using scenario::Scenario;
using scenario::ScenarioOptions;
using scenario::Topology;

TEST(FaultTolerance, RetransmitsWhenFirstRequestLost) {
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 21;
    opts.discovery.retransmit_interval = from_ms(300);
    Scenario s(opts);
    s.warm_up();
    // Kill the BDN's host briefly so the first request (and ack) vanish.
    const HostId bdn_host = s.bdn().endpoint().host;
    s.network().set_host_down(bdn_host, true);
    s.kernel().schedule_after(from_ms(500), [&] { s.network().set_host_down(bdn_host, false); });
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_GE(report.retransmits, 1u);
}

TEST(FaultTolerance, FailsOverToSecondBdn) {
    // Two BDNs configured; the primary is permanently dead. The paper's
    // node config lists several BDNs (gridservicelocator.org/.com/...).
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 22;
    opts.discovery.retransmit_interval = from_ms(300);
    // A bogus primary BDN endpoint on the client's own host, never bound.
    Scenario s(opts);
    s.warm_up();
    auto& cfg = s.client().mutable_config();
    const Endpoint real_bdn = cfg.bdns.at(0);
    cfg.bdns = {Endpoint{s.client_host(), 9999}, real_bdn};
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_GE(report.retransmits, 1u);  // rotated to the live BDN
}

TEST(FaultTolerance, MulticastFallbackWithAllBdnsDead) {
    // §7: "the approach could work even if none of the BDNs ... are
    // functioning ... by sending the discovery request using multicast".
    // Two brokers share the client's realm ("iu-lab") and are reachable.
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 23;
    opts.broker_sites = {sim::Site::kBloomington, sim::Site::kBloomington,
                         sim::Site::kCardiff, sim::Site::kFsu};
    opts.discovery.max_responses = 2;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.response_window = from_ms(1500);
    Scenario s(opts);
    s.warm_up();
    s.network().set_host_down(s.bdn().endpoint().host, true);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_TRUE(report.used_multicast);
    // Only lab-realm brokers can have answered (§9, Figure 12).
    for (const auto& candidate : report.candidates) {
        EXPECT_EQ(s.network().realm_of(candidate.response.endpoint.host), "iu-lab");
    }
}

TEST(FaultTolerance, CachedTargetSetRecovery) {
    // First discovery succeeds; then every BDN dies AND multicast finds
    // nobody (no same-realm brokers). The node must still reconnect via
    // its cached target set (§7).
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 24;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.response_window = from_ms(1500);
    Scenario s(opts);
    const auto first = s.run_discovery();
    ASSERT_TRUE(first.success);
    ASSERT_FALSE(s.client().cached_target_set().empty());

    s.network().set_host_down(s.bdn().endpoint().host, true);
    const auto second = s.run_discovery();
    ASSERT_TRUE(second.success);
    EXPECT_TRUE(second.used_cached_targets);
}

TEST(FaultTolerance, ReportsFailureWhenNothingReachable) {
    ScenarioOptions opts;
    opts.topology = Topology::kUnconnected;
    opts.bdn.injection = config::InjectionStrategy::kAll;
    opts.seed = 25;
    opts.discovery.retransmit_interval = from_ms(300);
    opts.discovery.response_window = from_ms(1000);
    Scenario s(opts);
    s.warm_up();
    // Take down every broker and the BDN; nothing can answer.
    s.network().set_host_down(s.bdn().endpoint().host, true);
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        s.network().set_host_down(s.broker_host(i), true);
    }
    const auto report = s.run_discovery();
    EXPECT_FALSE(report.success);
    EXPECT_TRUE(report.candidates.empty());
    EXPECT_TRUE(report.used_multicast);  // it tried the fallback
}

TEST(FaultTolerance, ResponsePolicyCredentialFilter) {
    // §5: a broker may require credentials before responding.
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 26;
    opts.broker.required_credential = "vip-card";
    Scenario s(opts);
    const auto denied = s.run_discovery();
    EXPECT_FALSE(denied.success);  // no credential -> nobody responds

    s.client().mutable_config().credential = "vip-card";
    const auto granted = s.run_discovery();
    EXPECT_TRUE(granted.success);
    EXPECT_EQ(granted.candidates.size(), 5u);
}

TEST(FaultTolerance, ResponsePolicyRealmFilter) {
    // §5: responses only for requests originating in pre-defined realms.
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 27;
    opts.broker.allowed_realms = {"cardiff"};  // client is in iu-lab
    opts.discovery.response_window = from_ms(1500);
    Scenario s(opts);
    const auto report = s.run_discovery();
    EXPECT_FALSE(report.success);
}

TEST(FaultTolerance, RequestSeenExactlyOncePerBrokerDespiteMultiplePaths) {
    // The request is injected at two points and flooded; every broker must
    // process it exactly once (§4's dedup cache at work).
    ScenarioOptions opts;
    opts.topology = Topology::kFull;  // maximal path redundancy
    opts.seed = 28;
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        const auto& stats = s.plugin_at(i).stats();
        EXPECT_EQ(stats.requests_seen - stats.duplicates_suppressed, 1u) << "broker " << i;
        EXPECT_EQ(stats.responses_sent, 1u) << "broker " << i;
    }
}

TEST(FaultTolerance, BrokerChurnNewBrokerDiscovered) {
    // A broker added after warm-up advertises, registers, and is found by
    // the next discovery run ("newly added brokers ... assimilated faster",
    // §1.3) without restarting anything.
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 30;
    opts.broker_sites = {sim::Site::kIndianapolis, sim::Site::kNcsa};
    opts.discovery.max_responses = 0;  // collect everything in the window
    opts.discovery.response_window = from_ms(1200);
    Scenario s(opts);
    const auto before = s.run_discovery();
    ASSERT_TRUE(before.success);
    EXPECT_EQ(before.candidates.size(), 2u);

    // Bring up a third broker on a fresh host and advertise it.
    auto& net = s.network();
    const HostId host = net.add_host({"late.broker", "UMN", "umn", 0});
    timesvc::FixedUtcSource utc(net.true_clock());
    config::BrokerConfig cfg;
    cfg.advertise_bdns = {s.bdn().endpoint()};
    broker::Broker late(s.kernel(), net, Endpoint{host, 7000}, net.host_clock(host), utc, cfg,
                        "late-broker");
    discovery::BrokerIdentity identity;
    identity.hostname = "late.broker";
    identity.realm = "umn";
    discovery::BrokerDiscoveryPlugin plugin(identity);
    late.add_plugin(&plugin);
    late.connect_to_peer(s.broker_at(0).endpoint());
    late.start();
    s.kernel().run_until(s.kernel().now() + kSecond);

    const auto after = s.run_discovery();
    ASSERT_TRUE(after.success);
    EXPECT_EQ(after.candidates.size(), 3u);
}

TEST(FaultTolerance, LostResponsesShrinkCandidateSetNotCorrectness) {
    // Heavy per-hop loss: distant brokers' UDP responses die, which §5.2
    // calls a feature. The client still picks a reachable broker.
    ScenarioOptions opts;
    opts.topology = Topology::kStar;
    opts.seed = 31;
    opts.per_hop_loss = 0.03;  // severe; Cardiff path ~18 hops
    opts.discovery.max_responses = 0;
    opts.discovery.response_window = from_ms(1500);
    Scenario s(opts);
    const auto report = s.run_discovery();
    ASSERT_TRUE(report.success);
    EXPECT_LT(report.candidates.size(), 5u);  // someone's response was lost
    EXPECT_GE(report.candidates.size(), 1u);
    const auto* chosen = report.selected_candidate();
    ASSERT_NE(chosen, nullptr);
}

}  // namespace
}  // namespace narada
