// Steady-state allocation audit of the real-socket datapath.
//
// A process-global counting allocator (operator new/delete overrides, which
// is why this test lives in its own binary) proves the ISSUE's datapath
// guarantee: once buffers, rings and pools are warm, the hot paths touch
// the heap ZERO times per packet —
//   * send: acquire_buffer -> encode -> send_datagram (pooled payload moved
//     end-to-end, sendmmsg returns it to the pool);
//   * receive -> decode -> forward: recvmmsg slab -> reused delivery buffer
//     -> borrowed DiscoveryRequestView -> verbatim re-encode into a pooled
//     buffer -> send_datagram;
//   * send_reliable: payload coalesced into the connection's output ring,
//     pooled buffer recycled.
#include "transport/posix_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "common/rng.hpp"
#include "discovery/messages.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace narada::transport {
namespace {

using namespace std::chrono_literals;

/// Allocation-free handler: counts deliveries on an atomic; optionally
/// peeks a borrowed view and re-forwards the message region verbatim
/// through a pooled buffer (the broker/BDN forwarding shape).
class CountingHandler final : public MessageHandler {
public:
    CountingHandler() = default;
    CountingHandler(PosixTransport* transport, Endpoint self, Endpoint forward_to)
        : transport_(transport), self_(self), forward_to_(forward_to) {}

    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (transport_ != nullptr) {
            wire::ByteReader reader(data);
            const auto type = reader.u8();
            if (type == wire::kMsgDiscoveryRequest) {
                const auto view = discovery::DiscoveryRequestView::peek(reader);
                wire::ByteWriter writer(transport_->acquire_buffer());
                writer.reserve(1 + view.raw.size());
                writer.u8(wire::kMsgDiscoveryRequest);
                writer.raw(view.raw.data(), view.raw.size());
                transport_->send_datagram(self_, forward_to_, writer.take());
            }
        }
        received_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_reliable(const Endpoint&, const Bytes&) override {
        received_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t received() const {
        return received_.load(std::memory_order_relaxed);
    }
    bool wait_for(std::uint64_t count, int timeout_ms = 5000) const {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        while (received() < count) {
            if (std::chrono::steady_clock::now() > deadline) return false;
            std::this_thread::sleep_for(200us);
        }
        return true;
    }

private:
    PosixTransport* transport_ = nullptr;
    Endpoint self_;
    Endpoint forward_to_;
    std::atomic<std::uint64_t> received_{0};
};

struct DatapathAllocFixture : ::testing::Test {
    DatapathAllocFixture() {
        const std::uint16_t base = PosixTransport::find_free_port(47000);
        a = Endpoint{1, base};
        b = Endpoint{2, static_cast<std::uint16_t>(base + 1)};
        c = Endpoint{3, static_cast<std::uint16_t>(base + 2)};
    }

    /// Deterministically grow the pool's circulation to `depth` buffers:
    /// the pool only mints on a miss, so a lucky warmup can leave fewer
    /// buffers circulating than a later burst needs. Holding `depth`
    /// buffers at once forces the mints up front; sending them returns
    /// every one to the free list.
    void prewarm_pool(const Endpoint& from, const Endpoint& to, const CountingHandler& sink,
                      std::size_t depth) {
        std::vector<Bytes> held;
        held.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            held.push_back(transport.acquire_buffer());
        }
        const std::uint64_t start = sink.received();
        for (Bytes& buf : held) {
            wire::ByteWriter writer((Bytes(std::move(buf))));
            writer.u8(0x00);
            transport.send_datagram(from, to, writer.take());
        }
        ASSERT_TRUE(sink.wait_for(start + depth));
    }

    PosixTransportOptions options;
    PosixTransport transport;
    Endpoint a, b, c;
};

// Burst a round of pooled datagrams from `from` to `to` and wait for
// delivery; returns false on timeout. Kept outside the measured region's
// assertions so the measured loop itself never calls gtest.
bool send_round(PosixTransport& transport, const Endpoint& from, const Endpoint& to,
                const CountingHandler& sink, std::size_t count, std::size_t payload_size) {
    const std::uint64_t start = sink.received();
    for (std::size_t i = 0; i < count; ++i) {
        wire::ByteWriter writer(transport.acquire_buffer());
        writer.reserve(1 + payload_size);
        writer.u8(0x55);
        for (std::size_t j = 1; j < payload_size; ++j) {
            writer.u8(static_cast<std::uint8_t>(j));
        }
        transport.send_datagram(from, to, writer.take());
    }
    return sink.wait_for(start + count);
}

TEST_F(DatapathAllocFixture, SendPathIsAllocationFreeInSteadyState) {
    CountingHandler sender;
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &sink);

    // Warm-up: force the pool's circulation above the burst depth, then
    // grow the send ring and dirty lists to their high-water marks and
    // reserve the delivery buffers.
    prewarm_pool(a, b, sink, 32);
    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(send_round(transport, a, b, sink, 16, 256));
    }

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    bool delivered = true;
    for (int round = 0; round < 8; ++round) {
        delivered = delivered && send_round(transport, a, b, sink, 16, 256);
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    ASSERT_TRUE(delivered);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations across 128 pooled datagrams";
}

TEST_F(DatapathAllocFixture, ReceiveDecodeForwardIsAllocationFree) {
    // Topology: a sprays encoded DiscoveryRequests at b; b peeks the
    // borrowed view and re-forwards the region verbatim to c.
    CountingHandler sender;
    CountingHandler forwarder(&transport, b, c);
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &forwarder);
    transport.bind(c, &sink);

    discovery::DiscoveryRequest request;
    Rng rng(7);
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "alloc-test-client";
    request.reply_to = a;
    request.protocols = {"udp"};
    request.realm = "alloc-test-realm";

    // Both the sprayer and the forwarder draw on the shared pool, so the
    // worst-case concurrent in-flight depth is two bursts.
    prewarm_pool(a, c, sink, 48);

    const auto spray = [&](std::size_t count) {
        const std::uint64_t start = sink.received();
        for (std::size_t i = 0; i < count; ++i) {
            wire::ByteWriter writer(transport.acquire_buffer());
            writer.reserve(1 + request.measured_size());
            writer.u8(wire::kMsgDiscoveryRequest);
            request.encode(writer);
            transport.send_datagram(a, b, writer.take());
        }
        return sink.wait_for(start + count);
    };

    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(spray(16));
    }

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    bool delivered = true;
    for (int round = 0; round < 8; ++round) {
        delivered = delivered && spray(16);
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    ASSERT_TRUE(delivered);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations across 128 receive->decode->forward hops";
}

TEST_F(DatapathAllocFixture, ReliableSendCoalescesWithoutAllocating) {
    CountingHandler sender;
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &sink);

    const auto send_frames = [&](std::size_t count) {
        const std::uint64_t start = sink.received();
        for (std::size_t i = 0; i < count; ++i) {
            wire::ByteWriter writer(transport.acquire_buffer());
            writer.reserve(128);
            for (std::size_t j = 0; j < 128; ++j) {
                writer.u8(static_cast<std::uint8_t>(j));
            }
            transport.send_reliable(a, b, writer.take());
        }
        return sink.wait_for(start + count);
    };

    // Warm-up establishes the connection (hello frame, rx/tx rings) and
    // forces the pool's circulation above the burst depth.
    prewarm_pool(a, b, sink, 32);
    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(send_frames(16));
    }

    bool delivered = true;
    std::uint64_t delta = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        for (int round = 0; round < 8; ++round) {
            delivered = delivered && send_frames(16);
        }
        delta = g_allocs.load(std::memory_order_relaxed) - before;
        if (delta == 0) break;
        // A scheduling stall (busy CI box) can pile more bytes into a ring
        // than the warm-up ever saw; that one-time capacity growth is
        // itself warm-up, so the steady-state claim gets a fresh window.
    }
    ASSERT_TRUE(delivered);
    EXPECT_EQ(delta, 0u) << delta << " allocations across 128 reliable frames";
}

}  // namespace
}  // namespace narada::transport
