// Steady-state allocation audit of the real-socket datapath.
//
// A process-global counting allocator (operator new/delete overrides, which
// is why this test lives in its own binary) proves the ISSUE's datapath
// guarantee: once buffers, rings and pools are warm, the hot paths touch
// the heap ZERO times per packet —
//   * send: acquire_buffer -> encode -> send_datagram (pooled payload moved
//     end-to-end, sendmmsg returns it to the pool);
//   * receive -> decode -> forward: recvmmsg slab -> reused delivery buffer
//     -> borrowed DiscoveryRequestView -> verbatim re-encode into a pooled
//     buffer -> send_datagram;
//   * send_reliable: payload coalesced into the connection's output ring,
//     pooled buffer recycled.
#include "transport/posix_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "discovery/messages.hpp"
#include "discovery/security.hpp"
#include "transport/rudp_channel.hpp"
#include "transport/shard_runtime.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace narada::transport {
namespace {

using namespace std::chrono_literals;

/// Allocation-free handler: counts deliveries on an atomic; optionally
/// peeks a borrowed view and re-forwards the message region verbatim
/// through a pooled buffer (the broker/BDN forwarding shape).
class CountingHandler final : public MessageHandler {
public:
    CountingHandler() = default;
    CountingHandler(PosixTransport* transport, Endpoint self, Endpoint forward_to)
        : transport_(transport), self_(self), forward_to_(forward_to) {}

    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (transport_ != nullptr) {
            wire::ByteReader reader(data);
            const auto type = reader.u8();
            if (type == wire::kMsgDiscoveryRequest) {
                const auto view = discovery::DiscoveryRequestView::peek(reader);
                wire::ByteWriter writer(transport_->acquire_buffer());
                writer.reserve(1 + view.raw.size());
                writer.u8(wire::kMsgDiscoveryRequest);
                writer.raw(view.raw.data(), view.raw.size());
                transport_->send_datagram(self_, forward_to_, writer.take());
            }
        }
        received_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_reliable(const Endpoint&, const Bytes&) override {
        received_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t received() const {
        return received_.load(std::memory_order_relaxed);
    }
    bool wait_for(std::uint64_t count, int timeout_ms = 5000) const {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        while (received() < count) {
            if (std::chrono::steady_clock::now() > deadline) return false;
            std::this_thread::sleep_for(200us);
        }
        return true;
    }

private:
    PosixTransport* transport_ = nullptr;
    Endpoint self_;
    Endpoint forward_to_;
    std::atomic<std::uint64_t> received_{0};
};

struct DatapathAllocFixture : ::testing::Test {
    DatapathAllocFixture() {
        const std::uint16_t base = PosixTransport::find_free_port(47000);
        a = Endpoint{1, base};
        b = Endpoint{2, static_cast<std::uint16_t>(base + 1)};
        c = Endpoint{3, static_cast<std::uint16_t>(base + 2)};
    }

    /// Deterministically grow the pool's circulation to `depth` buffers:
    /// the pool only mints on a miss, so a lucky warmup can leave fewer
    /// buffers circulating than a later burst needs. Holding `depth`
    /// buffers at once forces the mints up front; sending them returns
    /// every one to the free list.
    void prewarm_pool(const Endpoint& from, const Endpoint& to, const CountingHandler& sink,
                      std::size_t depth) {
        std::vector<Bytes> held;
        held.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            held.push_back(transport.acquire_buffer());
        }
        const std::uint64_t start = sink.received();
        for (Bytes& buf : held) {
            wire::ByteWriter writer((Bytes(std::move(buf))));
            writer.u8(0x00);
            transport.send_datagram(from, to, writer.take());
        }
        ASSERT_TRUE(sink.wait_for(start + depth));
    }

    PosixTransportOptions options;
    PosixTransport transport;
    Endpoint a, b, c;
};

// Burst a round of pooled datagrams from `from` to `to` and wait for
// delivery; returns false on timeout. Kept outside the measured region's
// assertions so the measured loop itself never calls gtest.
bool send_round(PosixTransport& transport, const Endpoint& from, const Endpoint& to,
                const CountingHandler& sink, std::size_t count, std::size_t payload_size) {
    const std::uint64_t start = sink.received();
    for (std::size_t i = 0; i < count; ++i) {
        wire::ByteWriter writer(transport.acquire_buffer());
        writer.reserve(1 + payload_size);
        writer.u8(0x55);
        for (std::size_t j = 1; j < payload_size; ++j) {
            writer.u8(static_cast<std::uint8_t>(j));
        }
        transport.send_datagram(from, to, writer.take());
    }
    return sink.wait_for(start + count);
}

TEST_F(DatapathAllocFixture, SendPathIsAllocationFreeInSteadyState) {
    CountingHandler sender;
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &sink);

    // Warm-up: force the pool's circulation above the burst depth, then
    // grow the send ring and dirty lists to their high-water marks and
    // reserve the delivery buffers.
    prewarm_pool(a, b, sink, 32);
    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(send_round(transport, a, b, sink, 16, 256));
    }

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    bool delivered = true;
    for (int round = 0; round < 8; ++round) {
        delivered = delivered && send_round(transport, a, b, sink, 16, 256);
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    ASSERT_TRUE(delivered);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations across 128 pooled datagrams";
}

TEST_F(DatapathAllocFixture, ReceiveDecodeForwardIsAllocationFree) {
    // Topology: a sprays encoded DiscoveryRequests at b; b peeks the
    // borrowed view and re-forwards the region verbatim to c.
    CountingHandler sender;
    CountingHandler forwarder(&transport, b, c);
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &forwarder);
    transport.bind(c, &sink);

    discovery::DiscoveryRequest request;
    Rng rng(7);
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "alloc-test-client";
    request.reply_to = a;
    request.protocols = {"udp"};
    request.realm = "alloc-test-realm";

    // Both the sprayer and the forwarder draw on the shared pool, so the
    // worst-case concurrent in-flight depth is two bursts.
    prewarm_pool(a, c, sink, 48);

    const auto spray = [&](std::size_t count) {
        const std::uint64_t start = sink.received();
        for (std::size_t i = 0; i < count; ++i) {
            wire::ByteWriter writer(transport.acquire_buffer());
            writer.reserve(1 + request.measured_size());
            writer.u8(wire::kMsgDiscoveryRequest);
            request.encode(writer);
            transport.send_datagram(a, b, writer.take());
        }
        return sink.wait_for(start + count);
    };

    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(spray(16));
    }

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    bool delivered = true;
    for (int round = 0; round < 8; ++round) {
        delivered = delivered && spray(16);
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    ASSERT_TRUE(delivered);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations across 128 receive->decode->forward hops";
}

TEST_F(DatapathAllocFixture, ReliableSendCoalescesWithoutAllocating) {
    CountingHandler sender;
    CountingHandler sink;
    transport.bind(a, &sender);
    transport.bind(b, &sink);

    const auto send_frames = [&](std::size_t count) {
        const std::uint64_t start = sink.received();
        for (std::size_t i = 0; i < count; ++i) {
            wire::ByteWriter writer(transport.acquire_buffer());
            writer.reserve(128);
            for (std::size_t j = 0; j < 128; ++j) {
                writer.u8(static_cast<std::uint8_t>(j));
            }
            transport.send_reliable(a, b, writer.take());
        }
        return sink.wait_for(start + count);
    };

    // Warm-up establishes the connection (hello frame, rx/tx rings) and
    // forces the pool's circulation above the burst depth.
    prewarm_pool(a, b, sink, 32);
    for (int round = 0; round < 4; ++round) {
        ASSERT_TRUE(send_frames(16));
    }

    bool delivered = true;
    std::uint64_t delta = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        for (int round = 0; round < 8; ++round) {
            delivered = delivered && send_frames(16);
        }
        delta = g_allocs.load(std::memory_order_relaxed) - before;
        if (delta == 0) break;
        // A scheduling stall (busy CI box) can pile more bytes into a ring
        // than the warm-up ever saw; that one-time capacity growth is
        // itself warm-up, so the steady-state claim gets a fresh window.
    }
    ASSERT_TRUE(delivered);
    EXPECT_EQ(delta, 0u) << delta << " allocations across 128 reliable frames";
}

// --- RUDP bulk lane ----------------------------------------------------------

/// Allocation-free RUDP receiver stand-in: acks DATA frames without the
/// (inherently allocating) reassembly path, so the measurement isolates the
/// sender's steady-state datapath — encode into a recycled slot, copy into
/// a pooled buffer, send, recycle on ack.
class AckReflector final : public MessageHandler {
public:
    AckReflector(PosixTransport* transport, Endpoint self, Endpoint peer)
        : transport_(transport), self_(self), peer_(peer) {}

    void on_datagram(const Endpoint&, const Bytes& data) override {
        wire::ByteReader reader(data);
        if (reader.u8() != wire::kMsgRudpData) return;
        const std::uint64_t seq = reader.u64();
        const TimeUs ts = reader.i64();
        if (seq == cum_) ++cum_;
        if (seq >= horizon_) horizon_ = seq + 1;
        // Ack every arrival: keeps the sender's window moving and feeds its
        // RTT estimator (reflect the newest transmission timestamp).
        wire::ByteWriter writer(transport_->acquire_buffer());
        writer.reserve(1 + 8 + 8 + 8 + 1);
        writer.u8(wire::kMsgRudpAck);
        writer.u64(cum_);
        writer.u64(horizon_);
        writer.i64(ts);
        writer.u8(0);  // no NAK ranges: loopback loss recovers via sender RTO
        transport_->send_datagram(self_, peer_, writer.take());
        cum_public_.store(cum_, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t cum() const {
        return cum_public_.load(std::memory_order_relaxed);
    }
    bool wait_for_cum(std::uint64_t target, int timeout_ms = 5000) const {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        while (cum() < target) {
            if (std::chrono::steady_clock::now() > deadline) return false;
            std::this_thread::sleep_for(200us);
        }
        return true;
    }

private:
    PosixTransport* transport_;
    Endpoint self_;
    Endpoint peer_;
    std::uint64_t cum_ = 0;      // reactor thread only
    std::uint64_t horizon_ = 0;  // reactor thread only
    std::atomic<std::uint64_t> cum_public_{0};
};

/// Routes inbound ACK frames into the sender channel (reactor thread).
class RudpSenderHandler final : public MessageHandler {
public:
    void attach(RudpChannel* channel) { channel_ = channel; }
    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (channel_ == nullptr || data.empty()) return;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        channel_->handle_frame(type, reader);
    }

private:
    RudpChannel* channel_ = nullptr;
};

TEST_F(DatapathAllocFixture, RudpSendPathIsAllocationFreeInSteadyState) {
    WallClock clock;
    RudpSenderHandler sender_handler;
    AckReflector reflector(&transport, b, a);
    transport.bind(a, &sender_handler);
    transport.bind(b, &reflector);

    // Modest window + every-segment acks keep loopback bursts inside the
    // socket buffers; the pump still exercises slot recycling end to end.
    RudpOptions rudp;
    rudp.window = 16;
    RudpChannel channel(transport, transport, clock, a, b, rudp, "alloc");
    sender_handler.attach(&channel);

    constexpr std::size_t kSegments = 16;
    constexpr std::size_t kPayloadSize = kSegments * 1200;

    // All channel interaction happens on the reactor thread; the test
    // thread only schedules work and watches the reflector's atomics.
    struct SendCtx {
        RudpChannel* channel;
        Bytes* payload;
    };
    const auto send_round = [&](Bytes* payload) {
        SendCtx ctx{&channel, payload};
        transport.schedule(0, [ctx] { ctx.channel->send_bulk(std::move(*ctx.payload)); });
    };

    // Warm-up: grow the pool, the slot ring's frame buffers, the timer heap
    // and the reflector's path to their high-water marks.
    std::uint64_t expected_cum = 0;
    for (int round = 0; round < 6; ++round) {
        Bytes payload(kPayloadSize, static_cast<std::uint8_t>(round));
        send_round(&payload);
        expected_cum += kSegments;
        ASSERT_TRUE(reflector.wait_for_cum(expected_cum));
    }

    // Payloads for the measured region are minted up front: the lane takes
    // ownership of each (that hand-off is the caller's allocation, not the
    // datapath's).
    constexpr int kRounds = 8;
    std::vector<Bytes> payloads;
    payloads.reserve(kRounds);
    for (int i = 0; i < kRounds; ++i) {
        payloads.emplace_back(kPayloadSize, static_cast<std::uint8_t>(i));
    }

    bool delivered = true;
    std::uint64_t delta = 0;
    for (int attempt = 0; attempt < 3 && delivered; ++attempt) {
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        for (int round = 0; round < kRounds; ++round) {
            send_round(&payloads[round]);
            expected_cum += kSegments;
            delivered = delivered && reflector.wait_for_cum(expected_cum);
        }
        delta = g_allocs.load(std::memory_order_relaxed) - before;
        if (delta == 0) break;
        // One-time growth (a retransmit burst after a loopback drop, a
        // deeper timer heap) is itself warm-up: refill and retry.
        for (int i = 0; i < kRounds; ++i) {
            payloads[i].assign(kPayloadSize, static_cast<std::uint8_t>(i));
        }
    }
    ASSERT_TRUE(delivered);
    EXPECT_EQ(delta, 0u) << delta << " allocations across "
                         << kRounds * kSegments << " RUDP segments";
    EXPECT_EQ(channel.stats().send_rejected, 0u);
}

// --- Secured datapath --------------------------------------------------------
//
// The zero-allocation property must survive encryption: after the one-time
// RSA handshake, a seal -> open round trip rides precomputed AES schedules,
// reused scratch buffers and a recycled pooled frame — zero heap traffic
// per datagram in both sign and seal mode.

class SecuredAllocFixture : public ::testing::TestWithParam<config::SecurityConfig::Mode> {};

TEST_P(SecuredAllocFixture, SealOpenSteadyStateIsAllocationFree) {
    using discovery::SecurityContext;
    Rng rng(4242);
    const auto ca_keys = crypto::rsa_generate(rng, 512);
    const auto root = crypto::make_self_signed("ca", ca_keys, 0, 1'000'000'000, 1);
    auto alice_keys = crypto::rsa_generate(rng, 512);
    auto bob_keys = crypto::rsa_generate(rng, 512);
    const auto alice_leaf = crypto::issue_certificate(
        "alice", alice_keys.public_key, "ca", ca_keys.private_key, 0, 1'000'000'000, 2);
    const auto bob_pub = bob_keys.public_key;

    ManualClock clock(0);
    config::SecurityConfig cfg;
    cfg.mode = GetParam();
    cfg.session_cache_size = 8;
    cfg.rekey_interval = 0;  // never rekey inside the measured region
    SecurityContext alice("alice", std::move(alice_keys), {alice_leaf, root}, {root}, cfg,
                          clock, rng);
    SecurityContext bob("bob", std::move(bob_keys), {}, {root}, cfg, clock, rng);
    alice.add_peer_key("bob", bob_pub);

    Bytes payload(256);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    const std::span<const std::uint8_t> payload_span{payload.data(), payload.size()};

    // One recycled frame stands in for the transport's buffer pool.
    Bytes frame;
    const auto round_trip = [&]() -> bool {
        wire::ByteWriter writer((Bytes(std::move(frame))));
        if (!alice.seal_datagram(payload_span, "bob", writer)) return false;
        frame = writer.take();
        wire::ByteReader reader(frame);
        if (reader.u8() != wire::kMsgSecureEnvelope) return false;
        const auto opened = bob.open_datagram(reader);
        return opened.ok() && opened.payload.size() == payload.size();
    };

    // Warm-up: the first trip carries the RSA handshake and grows the
    // scratch buffers, session caches and the frame's capacity.
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(round_trip());
    }
    const auto handshakes_before = alice.stats().handshakes_sent;

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    bool ok = true;
    for (int i = 0; i < 256; ++i) {
        ok = ok && round_trip();
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    ASSERT_TRUE(ok);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations across 256 sealed round trips";
    // The measured region rode the cached session end to end.
    EXPECT_EQ(alice.stats().handshakes_sent, handshakes_before);
    EXPECT_GE(bob.stats().memo_hits, 256u);
}

INSTANTIATE_TEST_SUITE_P(Modes, SecuredAllocFixture,
                         ::testing::Values(config::SecurityConfig::Mode::kSign,
                                           config::SecurityConfig::Mode::kSeal),
                         [](const auto& info) {
                             return info.param == config::SecurityConfig::Mode::kSeal
                                        ? "seal"
                                        : "sign";
                         });

// --- Sharded datapath --------------------------------------------------------
//
// The thread-per-core guarantee: a warm ShardRuntime delivers datagrams —
// including ones the kernel lands on a non-home shard, which cross a
// bounded SPSC ring with an eventfd wakeup — with ZERO steady-state heap
// allocations. A forwarded frame is copied into a buffer from the arrival
// shard's pool (pooled, not minted, once warm), rides a preallocated ring
// slot, and is released back to the arrival shard's pool after delivery on
// the home thread.

/// Allocation-free counting sink for a homed endpoint (serialized on its
/// home shard by the runtime's contract).
class ShardedSink final : public MessageHandler {
public:
    void on_datagram(const Endpoint&, const Bytes&) override {
        received_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_reliable(const Endpoint&, const Bytes&) override {
        received_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t received() const {
        return received_.load(std::memory_order_relaxed);
    }
    bool wait_for(std::uint64_t count, int timeout_ms = 5000) const {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        while (received() < count) {
            if (std::chrono::steady_clock::now() > deadline) return false;
            std::this_thread::sleep_for(200us);
        }
        return true;
    }

private:
    std::atomic<std::uint64_t> received_{0};
};

struct ShardedAllocFixture : ::testing::Test {
    static constexpr std::size_t kSources = 8;

    ShardedAllocFixture() {
        ShardRuntimeOptions options;
        options.shards = 2;
        runtime = std::make_unique<ShardRuntime>(options);

        std::uint16_t probe = PosixTransport::find_free_port(47500);
        rx = Endpoint{1, probe};
        ++probe;
        // Distinct source ports = distinct reuseport flows: with 8 flows
        // over 2 shards both the direct and the ring-forwarded arrival
        // paths get exercised in every round.
        for (std::size_t i = 0; i < kSources; ++i) {
            probe = PosixTransport::find_free_port(probe);
            sources[i] = Endpoint{static_cast<HostId>(2 + i), probe};
            ++probe;
        }
    }

    void bind_all(MessageHandler* sink, std::size_t home) {
        runtime->bind_home(rx, sink, home);
        for (const Endpoint& src : sources) runtime->bind(src, &noop);
    }

    /// One paced burst from the test thread (external -> shard 0 pool and
    /// sockets), round-robin over the source flows.
    bool send_round(const ShardedSink& sink, std::size_t count) {
        const std::uint64_t start = sink.received();
        for (std::size_t i = 0; i < count; ++i) {
            wire::ByteWriter writer(runtime->acquire_buffer());
            writer.reserve(64);
            for (std::size_t j = 0; j < 64; ++j) {
                writer.u8(static_cast<std::uint8_t>(j));
            }
            runtime->send_datagram(sources[i % kSources], rx, writer.take());
        }
        return sink.wait_for(start + count);
    }

    /// Warm every pool in the circulation: the sender's (shard 0, external
    /// route), and both arrival shards' pools, which mint forward copies on
    /// their first cross-shard bursts.
    void warm(const ShardedSink& sink) {
        std::vector<Bytes> held;
        for (std::size_t i = 0; i < 32; ++i) held.push_back(runtime->acquire_buffer());
        const std::uint64_t start = sink.received();
        for (Bytes& buf : held) {
            wire::ByteWriter writer((Bytes(std::move(buf))));
            writer.u8(0x00);
            runtime->send_datagram(sources[0], rx, writer.take());
        }
        ASSERT_TRUE(sink.wait_for(start + held.size()));
        for (int round = 0; round < 6; ++round) {
            ASSERT_TRUE(send_round(sink, 16));
        }
    }

    std::unique_ptr<ShardRuntime> runtime;
    ShardedSink noop;
    Endpoint rx;
    Endpoint sources[kSources];
};

TEST_F(ShardedAllocFixture, HomeShardZeroPathIsAllocationFreeInSteadyState) {
    ShardedSink sink;
    bind_all(&sink, /*home=*/0);
    warm(sink);

    bool delivered = true;
    std::uint64_t delta = 0;
    for (int attempt = 0; attempt < 3 && delivered; ++attempt) {
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        for (int round = 0; round < 8; ++round) {
            delivered = delivered && send_round(sink, 16);
        }
        delta = g_allocs.load(std::memory_order_relaxed) - before;
        if (delta == 0) break;
        // One-time pool/ring growth after a scheduling stall is itself
        // warm-up: the steady-state claim gets a fresh window.
    }
    ASSERT_TRUE(delivered);
    EXPECT_EQ(delta, 0u)
        << delta << " allocations across 128 sharded datagrams (home shard 0)";
}

TEST_F(ShardedAllocFixture, CrossShardForwardPathIsAllocationFreeInSteadyState) {
    // Home on shard 1 while the sender drives shard 0's sockets: every
    // datagram the kernel lands on shard 0 must cross the handoff ring.
    ShardedSink sink;
    bind_all(&sink, /*home=*/1);
    warm(sink);

    bool delivered = true;
    std::uint64_t delta = 0;
    for (int attempt = 0; attempt < 3 && delivered; ++attempt) {
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        for (int round = 0; round < 8; ++round) {
            delivered = delivered && send_round(sink, 16);
        }
        delta = g_allocs.load(std::memory_order_relaxed) - before;
        if (delta == 0) break;
    }
    ASSERT_TRUE(delivered);
    EXPECT_EQ(delta, 0u)
        << delta << " allocations across 128 sharded datagrams (home shard 1)";
}

}  // namespace
}  // namespace narada::transport
