// RudpChannel soak: loss storms, asymmetric congestion, burst reordering
// and blackholes on the virtual-time kernel. Fixed seeds everywhere — every
// run is bit-for-bit reproducible, so the assertions are hard invariants,
// not flaky statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "transport/rudp_channel.hpp"
#include "wire/codec.hpp"

namespace narada::transport {
namespace {

Bytes soak_payload(std::size_t size) {
    Bytes payload(size);
    std::uint32_t x = 0x9E3779B9u;
    for (std::size_t i = 0; i < size; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        payload[i] = static_cast<std::uint8_t>(x);
    }
    return payload;
}

class SoakRouter final : public MessageHandler {
public:
    void attach(RudpChannel* channel) { channel_ = channel; }
    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (channel_ == nullptr || data.empty()) return;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        channel_->handle_frame(type, reader);
    }

private:
    RudpChannel* channel_ = nullptr;
};

struct SoakRig {
    explicit SoakRig(std::uint64_t seed, RudpOptions options = {}) : net(kernel, seed) {
        host_a = net.add_host({"a", "S", "r", 0});
        host_b = net.add_host({"b", "S", "r", 0});
        net.set_default_link({from_ms(2), from_ms(1), 1});
        end_a = Endpoint{host_a, 9000};
        end_b = Endpoint{host_b, 9000};
        net.bind(end_a, &router_a);
        net.bind(end_b, &router_b);
        chan_a = std::make_unique<RudpChannel>(kernel, net, net.host_clock(host_a),
                                               end_a, end_b, options, "a");
        chan_b = std::make_unique<RudpChannel>(kernel, net, net.host_clock(host_b),
                                               end_b, end_a, options, "b");
        router_a.attach(chan_a.get());
        router_b.attach(chan_b.get());
        chan_b->on_deliver([this](Bytes payload) { received.push_back(std::move(payload)); });
    }

    /// Run in 50 ms slices until `count` payloads arrived or `limit` passed,
    /// checking the receive-side memory bounds at every slice.
    void run_until_delivered(std::size_t count, DurationUs limit,
                             std::size_t max_reassembly, std::size_t max_gaps) {
        const TimeUs deadline = kernel.now() + limit;
        while (received.size() < count && kernel.now() < deadline) {
            kernel.run_until(kernel.now() + from_ms(50));
            ASSERT_LE(chan_b->reassembly_pending(), max_reassembly)
                << "reassembly exceeded its LRU bound at t=" << kernel.now();
            ASSERT_LE(chan_b->tracked_gaps(), max_gaps)
                << "gap tracking exceeded its bound at t=" << kernel.now();
        }
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    HostId host_a{}, host_b{};
    Endpoint end_a{}, end_b{};
    SoakRouter router_a, router_b;
    std::unique_ptr<RudpChannel> chan_a, chan_b;
    std::vector<Bytes> received;
};

// ISSUE acceptance: 4 MiB across a 40%-loss link, fixed seed, delivered
// intact with bounded receive-side memory.
TEST(RudpSoak, FourMebibytesSurviveFortyPercentLoss) {
    RudpOptions options;
    options.abandon_after = 30 * kSecond;  // storms must degrade, not kill
    SoakRig rig(/*seed=*/4242, options);
    rig.net.set_directed_loss(rig.host_a, rig.host_b, 0.40);

    const Bytes payload = soak_payload(4 * 1024 * 1024);
    ASSERT_TRUE(rig.chan_a->send_bulk(Bytes(payload)));
    rig.run_until_delivered(1, 600 * kSecond, options.max_reassembly,
                            options.max_tracked_gaps);

    ASSERT_EQ(rig.received.size(), 1u) << "transfer did not complete in bounded time";
    EXPECT_EQ(rig.received[0], payload) << "payload corrupted in transit";
    EXPECT_GT(rig.chan_a->stats().retransmits, 100u);
    EXPECT_NE(rig.chan_a->state(), RudpChannel::State::kAbandoned);
    EXPECT_EQ(rig.chan_a->in_flight(), 0u);
    EXPECT_EQ(rig.chan_b->reassembly_pending(), 0u);
}

TEST(RudpSoak, SymmetricLossStormBothDirections) {
    RudpOptions options;
    options.abandon_after = 30 * kSecond;
    SoakRig rig(/*seed=*/777, options);
    rig.net.set_per_hop_loss(0.30);  // data AND acks suffer

    const Bytes payload = soak_payload(1024 * 1024);
    ASSERT_TRUE(rig.chan_a->send_bulk(Bytes(payload)));
    rig.run_until_delivered(1, 600 * kSecond, options.max_reassembly,
                            options.max_tracked_gaps);

    ASSERT_EQ(rig.received.size(), 1u);
    EXPECT_EQ(rig.received[0], payload);
}

// A scripted outage mid-transfer: an asymmetric-loss wave, then a burst-
// reorder wave, then a short full loss storm. The channel may degrade (lossy
// or stalled) during the plan but must finish after it ends.
TEST(RudpSoak, ScriptedChaosPlanDoesNotKillTheTransfer) {
    RudpOptions options;
    options.abandon_after = 60 * kSecond;
    SoakRig rig(/*seed=*/31337, options);
    sim::ChaosInjector injector(rig.kernel, rig.net);

    sim::FaultPlan plan;
    plan.asymmetric_loss(from_ms(10), rig.host_a, rig.host_b, 0.60, 2 * kSecond)
        .burst_reorder(from_ms(2500), 0.40, from_ms(40), 1 * kSecond)
        .loss_storm(4 * kSecond, 0.50, 1 * kSecond);
    injector.run(plan);

    const Bytes payload = soak_payload(2 * 1024 * 1024);
    ASSERT_TRUE(rig.chan_a->send_bulk(Bytes(payload)));
    rig.run_until_delivered(1, 600 * kSecond, options.max_reassembly,
                            options.max_tracked_gaps);

    ASSERT_EQ(rig.received.size(), 1u);
    EXPECT_EQ(rig.received[0], payload);

    // Run out the remainder of the plan: every chaos knob must be reverted.
    rig.kernel.run_until(injector.plan_end() + kSecond);
    EXPECT_TRUE(injector.done());
    EXPECT_EQ(injector.stats().asymmetric_losses, 1u);
    EXPECT_EQ(injector.stats().reorder_storms, 1u);
    EXPECT_EQ(injector.stats().loss_storms, 1u);
    EXPECT_EQ(rig.net.directed_loss(rig.host_a, rig.host_b), 0.0);
    EXPECT_EQ(rig.net.reorder_probability(), 0.0);
    EXPECT_EQ(rig.net.per_hop_loss(), 0.0);
}

// A permanent blackhole must end in kAbandoned within the configured bound —
// the channel reports failure through state/metrics instead of hanging.
TEST(RudpSoak, PermanentBlackholeAbandonsInBoundedTime) {
    RudpOptions options;
    options.stall_after = 1 * kSecond;
    options.abandon_after = 5 * kSecond;
    SoakRig rig(/*seed=*/99, options);

    // 2 MiB takes ~200 ms on the clean link; cutting it at 6 ms guarantees
    // the blackhole strikes mid-transfer, after the first acks flowed.
    ASSERT_TRUE(rig.chan_a->send_bulk(soak_payload(2 * 1024 * 1024)));
    rig.kernel.run_until(rig.kernel.now() + from_ms(6));
    ASSERT_GT(rig.chan_a->in_flight() + rig.chan_a->queued_segments(), 0u);
    rig.net.set_link_down(rig.host_a, rig.host_b, true);

    // Run well past abandon_after; the sender must have given up (and
    // released every queued segment) rather than retrying forever.
    rig.kernel.run_until(rig.kernel.now() + 20 * kSecond);
    EXPECT_EQ(rig.chan_a->state(), RudpChannel::State::kAbandoned);
    EXPECT_GE(rig.chan_a->stats().stalls, 1u);
    EXPECT_GE(rig.chan_a->stats().abandons, 1u);
    EXPECT_EQ(rig.chan_a->in_flight(), 0u);
    EXPECT_EQ(rig.chan_a->queued_segments(), 0u);
    EXPECT_GT(rig.chan_a->stats().segments_dropped, 0u);
}

// Same seed, same storm, same trace — twice.
TEST(RudpSoak, StormRunsAreDeterministic) {
    const auto run_once = [] {
        RudpOptions options;
        options.abandon_after = 30 * kSecond;
        SoakRig rig(/*seed=*/5150, options);
        rig.net.set_directed_loss(rig.host_a, rig.host_b, 0.40);
        rig.net.set_reorder(0.20, from_ms(15));
        rig.chan_a->send_bulk(soak_payload(1024 * 1024));
        while (rig.received.size() < 1 && rig.kernel.now() < 600 * kSecond) {
            rig.kernel.run_until(rig.kernel.now() + from_ms(50));
        }
        const auto& tx = rig.chan_a->stats();
        const auto& rx = rig.chan_b->stats();
        return std::tuple{rig.kernel.now(),     tx.segments_sent,  tx.retransmits,
                          tx.rto_expirations,   tx.acks_received,  rx.segments_received,
                          rx.duplicate_segments, rx.nak_ranges_sent, rx.gaps_given_up};
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace narada::transport
