// Real-socket transport backend tests (loopback). These tests use actual
// UDP/TCP sockets and wall-clock timers, with generous deadlines so they
// stay robust on loaded CI machines.
#include "transport/posix_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace narada::transport {
namespace {

/// Thread-safe recorder with wait support.
class Recorder final : public MessageHandler {
public:
    struct Received {
        Endpoint from;
        Bytes data;
        bool reliable;
    };

    void on_datagram(const Endpoint& from, const Bytes& data) override {
        push({from, data, false});
    }
    void on_reliable(const Endpoint& from, const Bytes& data) override {
        push({from, data, true});
    }

    bool wait_for(std::size_t count, int timeout_ms = 3000) {
        std::unique_lock lock(mutex_);
        return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return received_.size() >= count; });
    }

    std::vector<Received> snapshot() {
        std::scoped_lock lock(mutex_);
        return received_;
    }

private:
    void push(Received r) {
        {
            std::scoped_lock lock(mutex_);
            received_.push_back(std::move(r));
        }
        cv_.notify_all();
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Received> received_;
};

struct PosixFixture : ::testing::Test {
    PosixFixture() {
        const std::uint16_t base = PosixTransport::find_free_port(41000);
        ep_a = {1, base};
        ep_b = {2, PosixTransport::find_free_port(static_cast<std::uint16_t>(base + 1))};
        transport.bind(ep_a, &rx_a);
        transport.bind(ep_b, &rx_b);
    }

    PosixTransport transport;
    Recorder rx_a, rx_b;
    Endpoint ep_a, ep_b;
};

TEST_F(PosixFixture, DatagramDelivery) {
    transport.send_datagram(ep_a, ep_b, Bytes{1, 2, 3});
    ASSERT_TRUE(rx_b.wait_for(1));
    const auto received = rx_b.snapshot();
    EXPECT_EQ(received[0].data, (Bytes{1, 2, 3}));
    EXPECT_EQ(received[0].from, ep_a);
    EXPECT_FALSE(received[0].reliable);
}

TEST_F(PosixFixture, DatagramBothDirections) {
    transport.send_datagram(ep_a, ep_b, Bytes{1});
    transport.send_datagram(ep_b, ep_a, Bytes{2});
    ASSERT_TRUE(rx_a.wait_for(1));
    ASSERT_TRUE(rx_b.wait_for(1));
    EXPECT_EQ(rx_a.snapshot()[0].from, ep_b);
}

TEST_F(PosixFixture, ReliableDeliveryWithSenderIdentity) {
    transport.send_reliable(ep_a, ep_b, Bytes{9, 8, 7});
    ASSERT_TRUE(rx_b.wait_for(1));
    const auto received = rx_b.snapshot();
    EXPECT_TRUE(received[0].reliable);
    EXPECT_EQ(received[0].from, ep_a);  // learned from the hello frame
    EXPECT_EQ(received[0].data, (Bytes{9, 8, 7}));
}

TEST_F(PosixFixture, ReliableOrderPreserved) {
    constexpr int kN = 200;
    for (int i = 0; i < kN; ++i) {
        transport.send_reliable(ep_a, ep_b, Bytes{static_cast<std::uint8_t>(i)});
    }
    ASSERT_TRUE(rx_b.wait_for(kN, 10000));
    const auto received = rx_b.snapshot();
    for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(received[i].data[0], static_cast<std::uint8_t>(i));
    }
}

TEST_F(PosixFixture, ReliableReusesOneConnection) {
    // Many messages, one TCP connection: ordering proves a single stream.
    transport.send_reliable(ep_a, ep_b, Bytes(10000, 0xAA));  // multi-read frame
    transport.send_reliable(ep_a, ep_b, Bytes{1});
    ASSERT_TRUE(rx_b.wait_for(2, 5000));
    const auto received = rx_b.snapshot();
    EXPECT_EQ(received[0].data.size(), 10000u);
    EXPECT_EQ(received[1].data.size(), 1u);
}

TEST_F(PosixFixture, LargeFrame) {
    Bytes big(1 << 20, 0x5C);  // 1 MiB
    transport.send_reliable(ep_a, ep_b, big);
    ASSERT_TRUE(rx_b.wait_for(1, 10000));
    EXPECT_EQ(rx_b.snapshot()[0].data, big);
}

TEST_F(PosixFixture, MulticastEmulation) {
    transport.join_multicast(1, ep_a);
    transport.join_multicast(1, ep_b);
    transport.send_multicast(1, ep_a, Bytes{7});
    ASSERT_TRUE(rx_b.wait_for(1));
    // The sender must not receive its own multicast.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(rx_a.snapshot().empty());
    // After leaving, no more deliveries.
    transport.leave_multicast(1, ep_b);
    transport.send_multicast(1, ep_a, Bytes{8});
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(rx_b.snapshot().size(), 1u);
}

TEST_F(PosixFixture, TimerFires) {
    std::atomic<bool> fired{false};
    std::mutex m;
    std::condition_variable cv;
    transport.schedule(from_ms(50), [&] {
        fired = true;
        cv.notify_all();
    });
    std::unique_lock lock(m);
    cv.wait_for(lock, std::chrono::seconds(3), [&] { return fired.load(); });
    EXPECT_TRUE(fired);
}

TEST_F(PosixFixture, TimerCancel) {
    std::atomic<bool> fired{false};
    const TimerHandle handle = transport.schedule(from_ms(100), [&] { fired = true; });
    transport.cancel_timer(handle);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    EXPECT_FALSE(fired);
}

TEST_F(PosixFixture, TimerOrdering) {
    std::mutex m;
    std::condition_variable cv;
    std::vector<int> order;
    auto push = [&](int id) {
        std::scoped_lock lock(m);
        order.push_back(id);
        cv.notify_all();
    };
    transport.schedule(from_ms(120), [&] { push(3); });
    transport.schedule(from_ms(40), [&] { push(1); });
    transport.schedule(from_ms(80), [&] { push(2); });
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(3), [&] { return order.size() == 3; }));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(PosixFixture, UnbindStopsDelivery) {
    transport.unbind(ep_b);
    transport.send_datagram(ep_a, ep_b, Bytes{1});
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(rx_b.snapshot().empty());
}

TEST_F(PosixFixture, BindConflictThrows) {
    Recorder other;
    PosixTransport second;
    // The port is held by `transport`; a second process-level bind fails.
    EXPECT_THROW(second.bind(ep_a, &other), std::system_error);
}

TEST_F(PosixFixture, ReliableToDeadEndpointDoesNotCrash) {
    const Endpoint nobody{9, PosixTransport::find_free_port(45000)};
    transport.send_reliable(ep_a, nobody, Bytes{1});
    transport.send_datagram(ep_a, nobody, Bytes{1});
    // Nothing to assert beyond "no crash / no hang".
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

}  // namespace
}  // namespace narada::transport
