// The full discovery stack over REAL loopback sockets: the same broker,
// BDN and client objects that run on the simulator, now on PosixTransport
// with wall-clock timers. Windows are shortened so the test finishes in
// about a second of real time.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "broker/broker.hpp"
#include "broker/client.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"
#include "transport/posix_transport.hpp"

namespace narada {
namespace {

struct RealStackFixture : ::testing::Test {
    RealStackFixture() : utc(wall) {
        std::uint16_t port = transport::PosixTransport::find_free_port(43000);
        auto next_port = [&port] {
            const Endpoint ep{1, port};
            port = transport::PosixTransport::find_free_port(static_cast<std::uint16_t>(port + 1));
            return ep;
        };

        config::BdnConfig bdn_cfg;
        bdn_cfg.ping_refresh_interval = from_ms(200);
        bdn = std::make_unique<discovery::Bdn>(transport, transport, next_port(), wall,
                                               bdn_cfg, "real-bdn");

        config::BrokerConfig broker_cfg;
        broker_cfg.advertise_bdns = {bdn->endpoint()};
        broker_cfg.processing_delay = from_ms(1);
        for (int i = 0; i < 3; ++i) {
            auto node = std::make_unique<broker::Broker>(
                transport, transport, next_port(), wall, utc, broker_cfg,
                "real-broker-" + std::to_string(i));
            discovery::BrokerIdentity identity;
            identity.hostname = "127.0.0.1";
            identity.realm = "loopback";
            auto plugin = std::make_unique<discovery::BrokerDiscoveryPlugin>(identity);
            node->add_plugin(plugin.get());
            plugins.push_back(std::move(plugin));
            brokers.push_back(std::move(node));
        }
        // Star overlay around broker 0.
        brokers[1]->connect_to_peer(brokers[0]->endpoint());
        brokers[2]->connect_to_peer(brokers[0]->endpoint());
        for (auto& b : brokers) b->start();

        config::DiscoveryConfig client_cfg;
        client_cfg.bdns = {bdn->endpoint()};
        client_cfg.response_window = from_ms(500);
        client_cfg.ping_window = from_ms(250);
        client_cfg.retransmit_interval = from_ms(250);
        client_cfg.max_responses = 3;
        client = std::make_unique<discovery::DiscoveryClient>(
            transport, transport, next_port(), wall, utc, client_cfg, "real-client",
            "loopback");

        bdn->start();
    }

    std::optional<discovery::DiscoveryReport> discover(int timeout_ms = 5000) {
        std::mutex m;
        std::condition_variable cv;
        std::optional<discovery::DiscoveryReport> result;
        client->discover([&](const discovery::DiscoveryReport& report) {
            std::scoped_lock lock(m);
            result = report;
            cv.notify_all();
        });
        std::unique_lock lock(m);
        cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [&] { return result.has_value(); });
        return result;
    }

    transport::PosixTransport transport;
    WallClock wall;
    timesvc::FixedUtcSource utc;
    std::unique_ptr<discovery::Bdn> bdn;
    std::vector<std::unique_ptr<broker::Broker>> brokers;
    std::vector<std::unique_ptr<discovery::BrokerDiscoveryPlugin>> plugins;
    std::unique_ptr<discovery::DiscoveryClient> client;
};

TEST_F(RealStackFixture, AdvertisementsReachBdnOverRealSockets) {
    // Brokers advertised over real UDP at start(); give them a moment.
    for (int i = 0; i < 50 && bdn->registered_count() < 3; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(bdn->registered_count(), 3u);
}

TEST_F(RealStackFixture, EndToEndDiscoveryOverRealSockets) {
    // Wait for registration so the BDN has injection targets.
    for (int i = 0; i < 50 && bdn->registered_count() < 3; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const auto report = discover();
    ASSERT_TRUE(report.has_value());
    ASSERT_TRUE(report->success);
    EXPECT_EQ(report->candidates.size(), 3u);
    const auto* chosen = report->selected_candidate();
    ASSERT_NE(chosen, nullptr);
    EXPECT_GE(chosen->ping_rtt, 0);
    // Loopback RTTs are sub-millisecond-ish; sanity-bound at 100 ms.
    EXPECT_LT(chosen->ping_rtt, from_ms(100));
}

TEST_F(RealStackFixture, PubSubOverRealSockets) {
    const Endpoint sub_ep{7, transport::PosixTransport::find_free_port(44000)};
    const Endpoint pub_ep{8, transport::PosixTransport::find_free_port(44100)};
    broker::PubSubClient sub(transport, transport, sub_ep);
    broker::PubSubClient pub(transport, transport, pub_ep);

    std::mutex m;
    std::condition_variable cv;
    std::vector<broker::Event> events;
    sub.on_event([&](const broker::Event& e) {
        std::scoped_lock lock(m);
        events.push_back(e);
        cv.notify_all();
    });

    std::atomic<bool> sub_connected{false};
    sub.on_connected([&] { sub_connected = true; });
    sub.subscribe("real/topic/#");
    sub.connect(brokers[1]->endpoint());  // leaf
    pub.connect(brokers[2]->endpoint());  // other leaf, crosses the hub
    for (int i = 0; i < 100 && !sub_connected; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(sub_connected);

    pub.publish("real/topic/news", Bytes{42});
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(3), [&] { return !events.empty(); }));
    EXPECT_EQ(events[0].topic, "real/topic/news");
    EXPECT_EQ(events[0].payload, Bytes{42});
}

}  // namespace
}  // namespace narada
