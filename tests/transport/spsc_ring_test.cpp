// SpscRing: the bounded lock-free handoff primitive under the sharded
// datapath. Single-threaded tests pin the boundary semantics (power-of-two
// rounding, full-ring rejection leaving the value intact, empty-ring
// rejection, FIFO across many index wraparounds, destructor drain of
// leftover elements); the two-thread stress tests run a producer and a
// consumer flat out and are part of the TSan CI job, so the ring's
// acquire/release pairing is machine-checked, not just argued.
#include "transport/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace narada::transport {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, EmptyRingRejectsPop) {
    SpscRing<int> ring(8);
    int out = -1;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.pop(out));
    EXPECT_EQ(out, -1);

    ASSERT_TRUE(ring.push(7));
    EXPECT_FALSE(ring.empty());
    EXPECT_EQ(ring.size(), 1u);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 7);
    EXPECT_FALSE(ring.pop(out)) << "ring must read empty again after a full drain";
}

TEST(SpscRing, FullRingRejectsPushAndLeavesValueIntact) {
    SpscRing<std::unique_ptr<int>> ring(2);
    ASSERT_TRUE(ring.push(std::make_unique<int>(1)));
    ASSERT_TRUE(ring.push(std::make_unique<int>(2)));
    ASSERT_EQ(ring.size(), ring.capacity());

    auto extra = std::make_unique<int>(3);
    EXPECT_FALSE(ring.push(std::move(extra)));
    ASSERT_NE(extra, nullptr) << "a rejected push must not consume the value";
    EXPECT_EQ(*extra, 3);
    EXPECT_EQ(ring.size(), 2u);

    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(*out, 1);
    EXPECT_TRUE(ring.push(std::move(extra))) << "one pop must free exactly one slot";
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(*out, 2);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(*out, 3);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
    SpscRing<std::uint64_t> ring(4);  // tiny on purpose: wraps every 4 pushes
    std::uint64_t next_push = 0;
    std::uint64_t next_pop = 0;
    // Interleave pushes and pops at every depth 1..capacity so the free-
    // running indices cross the wrap point at every offset.
    for (int round = 0; round < 1000; ++round) {
        const std::size_t depth = 1 + static_cast<std::size_t>(round) % ring.capacity();
        for (std::size_t i = 0; i < depth; ++i) {
            ASSERT_TRUE(ring.push(std::uint64_t{next_push}));
            ++next_push;
        }
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < depth; ++i) {
            ASSERT_TRUE(ring.pop(v));
            ASSERT_EQ(v, next_pop) << "FIFO order broke after wraparound";
            ++next_pop;
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, DestructorDrainsLeftoverElements) {
    std::weak_ptr<int> stranded_b;
    std::weak_ptr<int> stranded_c;
    {
        SpscRing<std::shared_ptr<int>> ring(4);
        auto a = std::make_shared<int>(1);
        auto b = std::make_shared<int>(2);
        auto c = std::make_shared<int>(3);
        stranded_b = b;
        stranded_c = c;
        ASSERT_TRUE(ring.push(std::move(a)));
        ASSERT_TRUE(ring.push(std::move(b)));
        ASSERT_TRUE(ring.push(std::move(c)));
        // Pop one: its slot keeps only a moved-from husk, so destruction
        // must release exactly the two stranded elements, not three.
        std::shared_ptr<int> out;
        ASSERT_TRUE(ring.pop(out));
        EXPECT_EQ(*out, 1);
        EXPECT_FALSE(stranded_b.expired());
        EXPECT_FALSE(stranded_c.expired());
    }
    // Ring destroyed with two elements inside: both released exactly once
    // (a double-destroy would abort under the sanitizer jobs).
    EXPECT_TRUE(stranded_b.expired());
    EXPECT_TRUE(stranded_c.expired());
}

TEST(SpscRing, TwoThreadStressPreservesFifoAndLosesNothing) {
    constexpr std::uint64_t kItems = 200000;
    SpscRing<std::uint64_t> ring(256);

    std::uint64_t popped = 0;
    std::uint64_t sum = 0;
    bool ordered = true;
    std::thread consumer([&] {
        std::uint64_t expected = 0;
        std::uint64_t v = 0;
        while (expected < kItems) {
            if (ring.pop(v)) {
                ordered = ordered && v == expected;
                sum += v;
                ++expected;
            } else {
                std::this_thread::yield();
            }
        }
        popped = expected;
    });
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
            while (!ring.push(std::uint64_t{i})) std::this_thread::yield();
        }
    });
    producer.join();
    consumer.join();

    EXPECT_TRUE(ordered);
    EXPECT_EQ(popped, kItems);
    EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStressMovesPayloadBuffersIntact) {
    // Same race shape as the real handoff: elements carry heap buffers, so
    // a torn move or a double-drop shows up under ASan/TSan immediately.
    constexpr std::uint64_t kItems = 50000;
    SpscRing<std::vector<std::uint8_t>> ring(64);

    std::uint64_t corrupt = 0;
    std::uint64_t received_bytes = 0;
    std::thread consumer([&] {
        std::vector<std::uint8_t> v;
        for (std::uint64_t i = 0; i < kItems;) {
            if (!ring.pop(v)) {
                std::this_thread::yield();
                continue;
            }
            const std::size_t want = 1 + static_cast<std::size_t>(i) % 53;
            if (v.size() != want || v[0] != static_cast<std::uint8_t>(i)) ++corrupt;
            received_bytes += v.size();
            ++i;
        }
    });
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
            std::vector<std::uint8_t> payload(1 + static_cast<std::size_t>(i) % 53,
                                              static_cast<std::uint8_t>(i));
            while (!ring.push(std::move(payload))) std::this_thread::yield();
        }
    });
    producer.join();
    consumer.join();

    EXPECT_EQ(corrupt, 0u);
    EXPECT_GT(received_bytes, kItems);  // every payload non-empty
    EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace narada::transport
