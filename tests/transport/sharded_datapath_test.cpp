// ShardRuntime: the thread-per-core real-socket datapath over real
// loopback sockets. The suite proves the serialization contract the
// protocol layer leans on — an endpoint homed on shard i only ever runs on
// shard i's thread, no matter which reactor the kernel's SO_REUSEPORT hash
// lands its packets on — plus timer routing, run_on handoff, and a full
// RUDP bulk transfer riding a 4-shard group. The storm tests double as the
// TSan soak: home-shard sinks mutate non-atomic state on purpose, so any
// violation of the single-thread contract is a data race the sanitizer
// catches, not just a flaky counter.
#include "transport/shard_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "transport/posix_transport.hpp"
#include "transport/rudp_channel.hpp"
#include "wire/codec.hpp"

namespace narada::transport {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& done, int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(200us);
    }
    return true;
}

/// Thread-safe sink for bind_spread endpoints (deliveries arrive on any
/// reactor concurrently).
class AtomicSink final : public MessageHandler {
public:
    void on_datagram(const Endpoint&, const Bytes&) override {
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_reliable(const Endpoint&, const Bytes&) override {
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> count_{0};
};

/// Home-shard sink: checks every delivery runs on the declared home shard
/// and mutates non-atomic state on purpose — if the runtime ever delivers
/// off-home, `bytes()` goes torn/racy and the TSan job flags it.
class HomeSink final : public MessageHandler {
public:
    HomeSink(ShardRuntime* rt, int home) : rt_(rt), home_(home) {}

    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (rt_->current_shard() != home_) off_home_.fetch_add(1, std::memory_order_relaxed);
        bytes_ += data.size();  // serialized on the home thread by contract
        // Release pairs with count()'s acquire: once the test thread has
        // seen the final count, every preceding bytes_ write is visible.
        count_.fetch_add(1, std::memory_order_release);
    }
    void on_reliable(const Endpoint& from, const Bytes& data) override {
        on_datagram(from, data);
    }

    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::uint64_t off_home() const {
        return off_home_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bytes() const { return bytes_; }  // after quiesce

private:
    ShardRuntime* rt_;
    int home_;
    std::uint64_t bytes_ = 0;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> off_home_{0};
};

struct ShardedFixture : ::testing::Test {
    static constexpr std::size_t kShards = 4;

    std::unique_ptr<ShardRuntime> make_runtime(std::size_t shards,
                                               obs::MetricsRegistry* metrics = nullptr) {
        ShardRuntimeOptions options;
        options.shards = shards;
        auto rt = std::make_unique<ShardRuntime>(options);
        if (metrics != nullptr) rt->set_observability(metrics, "t");
        return rt;
    }

    /// Claim `count` fresh loopback ports starting near `base`.
    std::vector<Endpoint> make_endpoints(std::size_t count, HostId host_base,
                                         std::uint16_t base) {
        std::vector<Endpoint> out;
        std::uint16_t probe = base;
        for (std::size_t i = 0; i < count; ++i) {
            probe = PosixTransport::find_free_port(probe);
            out.push_back(Endpoint{static_cast<HostId>(host_base + i), probe});
            ++probe;
        }
        return out;
    }

    /// Spray `total` small datagrams at `rx`, round-robin over `sources`
    /// (distinct source ports = distinct reuseport flows), pacing in
    /// windows so loopback socket buffers never overflow.
    bool spray(ShardRuntime& rt, const std::vector<Endpoint>& sources, const Endpoint& rx,
               std::size_t total, const std::function<std::uint64_t()>& delivered) {
        constexpr std::size_t kWindow = 256;
        const std::uint64_t base = delivered();
        std::size_t sent = 0;
        while (sent < total) {
            const std::size_t burst = std::min(kWindow, total - sent);
            for (std::size_t i = 0; i < burst; ++i) {
                Bytes buf = rt.acquire_buffer();
                buf.resize(32, static_cast<std::uint8_t>(sent + i));
                rt.send_datagram(sources[(sent + i) % sources.size()], rx, std::move(buf));
            }
            sent += burst;
            if (!wait_for([&] { return delivered() >= base + sent; })) return false;
        }
        return true;
    }
};

TEST_F(ShardedFixture, SingleShardDegeneratesToPlainTransport) {
    auto rt = make_runtime(1);
    AtomicSink noop;
    AtomicSink sink;
    const auto eps = make_endpoints(2, 1, 48000);
    rt->bind(eps[0], &noop);
    rt->bind(eps[1], &sink);

    EXPECT_TRUE(spray(*rt, {eps[0]}, eps[1], 64, [&] { return sink.count(); }));
    EXPECT_EQ(sink.count(), 64u);

    std::atomic<bool> fired{false};
    rt->schedule(0, [&] { fired.store(true, std::memory_order_relaxed); });
    EXPECT_TRUE(wait_for([&] { return fired.load(std::memory_order_relaxed); }));
}

TEST_F(ShardedFixture, SpreadDeliveryCountsEverythingAcrossGroup) {
    auto rt = make_runtime(kShards);
    AtomicSink noop;
    AtomicSink sink;
    const auto sources = make_endpoints(16, 10, 48100);
    const auto rxv = make_endpoints(1, 1, 48200);
    for (const Endpoint& s : sources) rt->bind(s, &noop);
    rt->bind_spread(rxv[0], &sink);

    EXPECT_TRUE(spray(*rt, sources, rxv[0], 512, [&] { return sink.count(); }));
    EXPECT_EQ(sink.count(), 512u);
}

TEST_F(ShardedFixture, HomeShardSerializesCrossShardDelivery) {
    obs::MetricsRegistry metrics;
    auto rt = make_runtime(kShards, &metrics);
    AtomicSink noop;
    HomeSink sink(rt.get(), /*home=*/2);
    const auto sources = make_endpoints(16, 10, 48300);
    const auto rxv = make_endpoints(1, 1, 48400);
    for (const Endpoint& s : sources) rt->bind(s, &noop);
    rt->bind_home(rxv[0], &sink, 2);

    constexpr std::size_t kTotal = 512;
    EXPECT_TRUE(spray(*rt, sources, rxv[0], kTotal, [&] { return sink.count(); }));
    EXPECT_EQ(sink.count(), kTotal);
    EXPECT_EQ(sink.off_home(), 0u) << "a homed handler ran off its shard";
    EXPECT_EQ(sink.bytes(), kTotal * 32u);

    // 16 distinct flows over 4 shards: essentially certain some landed off
    // the home shard and crossed a handoff ring. The producer-side counter
    // increments just after its ring push, so give the last increment a
    // beat to land before comparing both sides.
    EXPECT_TRUE(wait_for([&] {
        const auto forwarded = metrics.counter_value("transport_handoff_forwarded", "t");
        return forwarded > 0 &&
               forwarded == metrics.counter_value("transport_handoff_delivered", "t");
    }));
}

// The TSan soak: a sustained cross-shard storm into one non-atomic homed
// sink. Any serialization bug is a hard data race here, and the delivery
// count proves the rings + eventfd wakeups lose nothing at depth.
TEST_F(ShardedFixture, CrossShardStormDeliversEverythingInOrderOfArrival) {
    obs::MetricsRegistry metrics;
    auto rt = make_runtime(kShards, &metrics);
    AtomicSink noop;
    HomeSink sink(rt.get(), /*home=*/1);
    const auto sources = make_endpoints(32, 10, 48500);
    const auto rxv = make_endpoints(1, 1, 48600);
    for (const Endpoint& s : sources) rt->bind(s, &noop);
    rt->bind_home(rxv[0], &sink, 1);

    constexpr std::size_t kTotal = 4096;
    EXPECT_TRUE(spray(*rt, sources, rxv[0], kTotal, [&] { return sink.count(); }));
    EXPECT_EQ(sink.count(), kTotal);
    EXPECT_EQ(sink.off_home(), 0u);
    EXPECT_EQ(sink.bytes(), kTotal * 32u);
    EXPECT_EQ(metrics.counter_value("transport_handoff_dropped", "t"), 0u)
        << "paced storm must never fill a handoff ring";

    const std::string snapshot = rt->debug_snapshot();
    EXPECT_NE(snapshot.find("\"component\":\"shard_runtime\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"shards\":4"), std::string::npos);
}

TEST_F(ShardedFixture, TimersFireOnTheirOwnShardAndCancelAcrossEncoding) {
    auto rt = make_runtime(kShards);

    std::atomic<int> fired{0};
    std::atomic<int> misrouted{0};
    for (std::size_t i = 0; i < kShards; ++i) {
        rt->port(i).schedule(0, [&, i] {
            if (rt->current_shard() != static_cast<int>(i)) {
                misrouted.fetch_add(1, std::memory_order_relaxed);
            }
            fired.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_TRUE(wait_for([&] {
        return fired.load(std::memory_order_relaxed) == static_cast<int>(kShards);
    }));
    EXPECT_EQ(misrouted.load(std::memory_order_relaxed), 0);

    // Cancellation round-trips through the shard-encoded handle.
    std::atomic<bool> cancelled_fired{false};
    const TimerHandle handle = rt->port(3).schedule(
        5'000'000, [&] { cancelled_fired.store(true, std::memory_order_relaxed); });
    EXPECT_NE(handle, kInvalidTimerHandle);
    rt->cancel_timer(handle);
    rt->cancel_timer(kInvalidTimerHandle);  // no-op, must not throw

    std::atomic<bool> sentinel{false};
    rt->port(3).schedule(from_ms(20), [&] { sentinel.store(true, std::memory_order_relaxed); });
    EXPECT_TRUE(wait_for([&] { return sentinel.load(std::memory_order_relaxed); }));
    EXPECT_FALSE(cancelled_fired.load(std::memory_order_relaxed));
}

struct RunOnCtx {
    ShardRuntime* rt = nullptr;
    std::atomic<int> ran_on{-2};
};

void record_shard(void* arg) {
    auto* ctx = static_cast<RunOnCtx*>(arg);
    ctx->ran_on.store(ctx->rt->current_shard(), std::memory_order_release);
}

TEST_F(ShardedFixture, RunOnExecutesOnTargetShardFromAnyThread) {
    auto rt = make_runtime(kShards);

    // External thread: falls back to the timer post.
    RunOnCtx external;
    external.rt = rt.get();
    rt->run_on(3, &record_shard, &external);
    EXPECT_TRUE(
        wait_for([&] { return external.ran_on.load(std::memory_order_acquire) != -2; }));
    EXPECT_EQ(external.ran_on.load(std::memory_order_acquire), 3);

    // Reactor thread: rides the SPSC ring to the target shard.
    RunOnCtx crossed;
    crossed.rt = rt.get();
    rt->port(0).schedule(0, [&] { rt->run_on(2, &record_shard, &crossed); });
    EXPECT_TRUE(
        wait_for([&] { return crossed.ran_on.load(std::memory_order_acquire) != -2; }));
    EXPECT_EQ(crossed.ran_on.load(std::memory_order_acquire), 2);

    // Same-shard target runs inline (synchronously visible afterwards).
    RunOnCtx inline_run;
    inline_run.rt = rt.get();
    std::atomic<bool> done{false};
    rt->port(1).schedule(0, [&] {
        rt->run_on(1, &record_shard, &inline_run);
        done.store(inline_run.ran_on.load(std::memory_order_acquire) == 1,
                   std::memory_order_release);
    });
    EXPECT_TRUE(wait_for([&] { return done.load(std::memory_order_acquire); }));
}

// --- RUDP over the shard group ----------------------------------------------

/// Strips the type octet and routes frames into the attached channel (the
/// shim every RUDP consumer implements). Homed on the channel's shard, so
/// no synchronization: handle_frame always runs on the channel's thread.
class FrameRouter final : public MessageHandler {
public:
    void attach(RudpChannel* channel) { channel_ = channel; }
    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (channel_ == nullptr || data.empty()) return;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        channel_->handle_frame(type, reader);
    }

private:
    RudpChannel* channel_ = nullptr;
};

// A bulk transfer between two channels homed on different shards of one
// 4-shard runtime: ACK/NAK/data frames hop shards through the handoff
// rings whenever the kernel's flow hash disagrees with the home shard, and
// the payload must still arrive intact and in order. Doubles as the RUDP
// leg of the TSan soak.
TEST_F(ShardedFixture, RudpBulkTransferRidesTheShardGroup) {
    auto rt = make_runtime(kShards);
    WallClock clock;

    const auto eps = make_endpoints(2, 1, 48700);
    const Endpoint end_a = eps[0];
    const Endpoint end_b = eps[1];
    FrameRouter router_a, router_b;
    rt->bind_home(end_a, &router_a, 1);
    rt->bind_home(end_b, &router_b, 2);

    RudpOptions rudp;
    rudp.window = 16;
    RudpChannel chan_a(rt->port(1), rt->port(1), clock, end_a, end_b, rudp, "a");
    RudpChannel chan_b(rt->port(2), rt->port(2), clock, end_b, end_a, rudp, "b");
    router_a.attach(&chan_a);
    router_b.attach(&chan_b);

    constexpr std::size_t kPayloads = 4;
    constexpr std::size_t kPayloadSize = 64 * 1024;
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> corrupt{0};
    chan_b.on_deliver([&](Bytes payload) {
        bool ok = payload.size() == kPayloadSize;
        for (std::size_t i = 0; ok && i < payload.size(); i += 997) {
            ok = payload[i] == static_cast<std::uint8_t>((i * 31) & 0xFF);
        }
        if (!ok) corrupt.fetch_add(1, std::memory_order_relaxed);
        delivered.fetch_add(1, std::memory_order_relaxed);
    });

    // All channel interaction happens on its home shard thread.
    for (std::size_t p = 0; p < kPayloads; ++p) {
        rt->port(1).schedule(0, [&] {
            Bytes payload(kPayloadSize);
            for (std::size_t i = 0; i < payload.size(); ++i) {
                payload[i] = static_cast<std::uint8_t>((i * 31) & 0xFF);
            }
            ASSERT_TRUE(chan_a.send_bulk(std::move(payload)));
        });
    }

    EXPECT_TRUE(wait_for(
        [&] { return delivered.load(std::memory_order_relaxed) >= kPayloads; }, 30000));
    EXPECT_EQ(delivered.load(std::memory_order_relaxed), kPayloads);
    EXPECT_EQ(corrupt.load(std::memory_order_relaxed), 0u);

    std::atomic<bool> checked{false};
    rt->port(1).schedule(0, [&] {
        checked.store(chan_a.in_flight() == 0, std::memory_order_release);
    });
    EXPECT_TRUE(wait_for([&] { return checked.load(std::memory_order_acquire); }));
}

}  // namespace
}  // namespace narada::transport
