// Adversarial inputs against the POSIX transport: hostile TCP framing,
// garbage UDP, and protocol nodes receiving raw junk over real sockets.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "transport/posix_transport.hpp"

namespace narada::transport {
namespace {

class Recorder final : public MessageHandler {
public:
    void on_datagram(const Endpoint&, const Bytes& data) override {
        std::scoped_lock lock(mutex_);
        datagrams.push_back(data);
    }
    void on_reliable(const Endpoint&, const Bytes& data) override {
        std::scoped_lock lock(mutex_);
        reliables.push_back(data);
    }
    std::vector<Bytes> snapshot_reliables() {
        std::scoped_lock lock(mutex_);
        return reliables;
    }
    std::vector<Bytes> snapshot_datagrams() {
        std::scoped_lock lock(mutex_);
        return datagrams;
    }

private:
    std::mutex mutex_;
    std::vector<Bytes> datagrams;
    std::vector<Bytes> reliables;
};

int raw_tcp_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

struct AdversarialFixture : ::testing::Test {
    AdversarialFixture() {
        ep = {0, PosixTransport::find_free_port(49000)};
        transport.bind(ep, &rx);
    }

    PosixTransport transport;
    Recorder rx;
    Endpoint ep;
};

TEST_F(AdversarialFixture, OversizedFrameHeaderDropsConnection) {
    const int fd = raw_tcp_connect(ep.port);
    ASSERT_GE(fd, 0);
    // Announce a 512 MiB frame: far over kMaxFrame; the transport must
    // shed the connection instead of buffering.
    const std::uint8_t evil[4] = {0x20, 0x00, 0x00, 0x00};
    ASSERT_EQ(::send(fd, evil, 4, 0), 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // The transport closed its side; a further send eventually fails or
    // the socket reports EOF on read.
    char probe = 'x';
    (void)::send(fd, &probe, 1, MSG_NOSIGNAL);
    char buffer;
    const ssize_t n = ::recv(fd, &buffer, 1, MSG_DONTWAIT);
    EXPECT_LE(n, 0);  // no data, peer closed (0) or EWOULDBLOCK after RST
    ::close(fd);
    EXPECT_TRUE(rx.snapshot_reliables().empty());
}

TEST_F(AdversarialFixture, PartialFrameThenCloseDeliversNothing) {
    const int fd = raw_tcp_connect(ep.port);
    ASSERT_GE(fd, 0);
    // Valid hello announcing endpoint {7, 7} then half a frame.
    const std::uint8_t hello[10] = {0, 0, 0, 6, 0, 0, 0, 7, 0, 7};
    ASSERT_EQ(::send(fd, hello, sizeof(hello), 0), (ssize_t)sizeof(hello));
    const std::uint8_t partial[6] = {0, 0, 0, 10, 0xAA, 0xBB};  // 10-byte frame, 2 sent
    ASSERT_EQ(::send(fd, partial, sizeof(partial), 0), (ssize_t)sizeof(partial));
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_TRUE(rx.snapshot_reliables().empty());
}

TEST_F(AdversarialFixture, SlowLorisFrameEventuallyCompletes) {
    const int fd = raw_tcp_connect(ep.port);
    ASSERT_GE(fd, 0);
    const std::uint8_t hello[10] = {0, 0, 0, 6, 0, 0, 0, 7, 0, 9};
    ASSERT_EQ(::send(fd, hello, sizeof(hello), 0), (ssize_t)sizeof(hello));
    // Dribble a 4-byte frame one byte at a time.
    const std::uint8_t frame[8] = {0, 0, 0, 4, 1, 2, 3, 4};
    for (std::uint8_t byte : frame) {
        ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (int i = 0; i < 100 && rx.snapshot_reliables().empty(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const auto reliables = rx.snapshot_reliables();
    ASSERT_EQ(reliables.size(), 1u);
    EXPECT_EQ(reliables[0], (Bytes{1, 2, 3, 4}));
    ::close(fd);
}

TEST_F(AdversarialFixture, MultipleFramesInOneSegment) {
    const int fd = raw_tcp_connect(ep.port);
    ASSERT_GE(fd, 0);
    // hello + two frames coalesced into a single write.
    const std::uint8_t blob[] = {
        0, 0, 0, 6, 0, 0, 0, 7, 0, 9,  // hello {7, 9}
        0, 0, 0, 2, 0xAA, 0xBB,        // frame 1
        0, 0, 0, 1, 0xCC,              // frame 2
    };
    ASSERT_EQ(::send(fd, blob, sizeof(blob), 0), (ssize_t)sizeof(blob));
    for (int i = 0; i < 100 && rx.snapshot_reliables().size() < 2; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const auto reliables = rx.snapshot_reliables();
    ASSERT_EQ(reliables.size(), 2u);
    EXPECT_EQ(reliables[0], (Bytes{0xAA, 0xBB}));
    EXPECT_EQ(reliables[1], (Bytes{0xCC}));
    ::close(fd);
}

TEST_F(AdversarialFixture, GarbageUdpDeliveredVerbatimNotCrashing) {
    // The transport is payload-agnostic: garbage UDP reaches the handler,
    // whose parser is responsible for rejecting it (fuzz-tested elsewhere).
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ep.port);
    const std::uint8_t junk[] = {0xFF, 0x00, 0xDE, 0xAD};
    ASSERT_EQ(::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
              (ssize_t)sizeof(junk));
    ::close(fd);
    for (int i = 0; i < 100 && rx.snapshot_datagrams().empty(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const auto datagrams = rx.snapshot_datagrams();
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0], (Bytes{0xFF, 0x00, 0xDE, 0xAD}));
}

}  // namespace
}  // namespace narada::transport
