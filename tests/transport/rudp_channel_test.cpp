// RudpChannel: the NAK-driven reliable-UDP bulk lane on the simulated
// network. Two channels (one per direction-owner) are wired back-to-back
// through SimNetwork; a thin MessageHandler adapter strips the type octet
// and routes frames into handle_frame(), exactly as the discovery-layer
// consumers do.
#include "transport/rudp_channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace narada::transport {
namespace {

Bytes patterned_payload(std::size_t size, std::uint8_t salt = 0) {
    Bytes payload(size);
    for (std::size_t i = 0; i < size; ++i) {
        payload[i] = static_cast<std::uint8_t>((i * 31 + salt) & 0xFF);
    }
    return payload;
}

/// Strips the type octet off inbound datagrams and hands them to the
/// attached channel — the routing shim every RUDP consumer implements.
class FrameRouter final : public MessageHandler {
public:
    void attach(RudpChannel* channel) { channel_ = channel; }

    void on_datagram(const Endpoint& from, const Bytes& data) override {
        (void)from;
        if (channel_ == nullptr || data.empty()) return;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        channel_->handle_frame(type, reader);
    }

private:
    RudpChannel* channel_ = nullptr;
};

struct RudpFixture : ::testing::Test {
    RudpFixture() : net(kernel, /*seed=*/91) {
        host_a = net.add_host({"a", "S", "r", 0});
        host_b = net.add_host({"b", "S", "r", 0});
        net.set_default_link({from_ms(2), 0, 1});
        end_a = Endpoint{host_a, 9000};
        end_b = Endpoint{host_b, 9000};
        net.bind(end_a, &router_a);
        net.bind(end_b, &router_b);
    }

    /// Build both direction-owners with identical options and cross-attach.
    void make_channels(RudpOptions options = {}) {
        chan_a = std::make_unique<RudpChannel>(kernel, net, net.host_clock(host_a),
                                               end_a, end_b, options, "a");
        chan_b = std::make_unique<RudpChannel>(kernel, net, net.host_clock(host_b),
                                               end_b, end_a, options, "b");
        router_a.attach(chan_a.get());
        router_b.attach(chan_b.get());
        chan_b->on_deliver([this](Bytes payload) { delivered.push_back(std::move(payload)); });
    }

    void run_for(DurationUs d) { kernel.run_until(kernel.now() + d); }

    /// Run until `count` payloads arrived at B or `limit` virtual time passed.
    void run_until_delivered(std::size_t count, DurationUs limit = 60 * kSecond) {
        const TimeUs deadline = kernel.now() + limit;
        while (delivered.size() < count && kernel.now() < deadline) {
            kernel.run_until(kernel.now() + from_ms(50));
        }
    }

    sim::Kernel kernel;
    sim::SimNetwork net;
    HostId host_a{}, host_b{};
    Endpoint end_a{}, end_b{};
    FrameRouter router_a, router_b;
    std::unique_ptr<RudpChannel> chan_a, chan_b;
    std::vector<Bytes> delivered;
};

TEST_F(RudpFixture, DeliversBulkPayloadIntactOnCleanLink) {
    make_channels();
    const Bytes payload = patterned_payload(100 * 1024);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(payload)));
    run_until_delivered(1);

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], payload);
    EXPECT_EQ(chan_a->state(), RudpChannel::State::kHealthy);
    EXPECT_EQ(chan_b->stats().payloads_delivered, 1u);
    EXPECT_EQ(chan_a->stats().retransmits, 0u);  // no loss configured
    EXPECT_EQ(chan_a->in_flight(), 0u);
    EXPECT_EQ(chan_a->queued_segments(), 0u);
    EXPECT_EQ(chan_b->reassembly_pending(), 0u);
}

TEST_F(RudpFixture, MultiplePayloadsArriveInOrderIncludingEmpty) {
    make_channels();
    const std::vector<std::size_t> sizes = {0, 1, 1200, 1201, 40 * 1024};
    std::vector<Bytes> sent;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        sent.push_back(patterned_payload(sizes[i], static_cast<std::uint8_t>(i)));
        ASSERT_TRUE(chan_a->send_bulk(Bytes(sent.back())));
    }
    run_until_delivered(sent.size());

    ASSERT_EQ(delivered.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(delivered[i], sent[i]) << "payload " << i << " corrupted or reordered";
    }
}

TEST_F(RudpFixture, LossIsRecoveredThroughSelectiveNaks) {
    make_channels();
    net.set_directed_loss(host_a, host_b, 0.30);
    const Bytes payload = patterned_payload(256 * 1024);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(payload)));
    run_until_delivered(1);

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], payload);
    EXPECT_GT(chan_a->stats().retransmits, 0u);
    EXPECT_GT(chan_a->stats().nak_ranges_received, 0u);
    EXPECT_GT(chan_b->stats().nak_ranges_sent, 0u);
    EXPECT_GT(chan_a->loss_estimate(), 0.0);
    EXPECT_NE(chan_a->state(), RudpChannel::State::kAbandoned);
}

TEST_F(RudpFixture, AsymmetricAckLossStillCompletes) {
    // The classic ack-clock trap: data flows clean, 40% of acks vanish.
    make_channels();
    net.set_directed_loss(host_b, host_a, 0.40);
    const Bytes payload = patterned_payload(128 * 1024);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(payload)));
    run_until_delivered(1);

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], payload);
    EXPECT_EQ(chan_a->in_flight(), 0u) << "tail acks must eventually land";
}

TEST_F(RudpFixture, ReorderingDoesNotCorruptPayloads) {
    make_channels();
    net.set_reorder(0.25, from_ms(20));
    const Bytes payload = patterned_payload(200 * 1024);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(payload)));
    run_until_delivered(1);

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], payload);
    EXPECT_GT(net.stats().datagrams_reordered, 0u);
}

TEST_F(RudpFixture, PacerThrottlesGoodputAndCountsDeferrals) {
    RudpOptions options;
    options.pace_bytes_per_sec = 100.0 * 1024.0;  // ~100 KiB/s
    options.pace_burst_bytes = 8.0 * 1024.0;
    make_channels(options);

    const TimeUs start = kernel.now();
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(100 * 1024)));
    run_until_delivered(1);
    const DurationUs took = kernel.now() - start;

    ASSERT_EQ(delivered.size(), 1u);
    // 100 KiB at ~100 KiB/s can't complete much faster than ~0.8s even with
    // the burst allowance; without pacing the same transfer takes < 100 ms.
    EXPECT_GE(took, from_ms(700));
    EXPECT_GT(chan_a->stats().pacer_deferrals, 0u);
}

TEST_F(RudpFixture, RttEstimatorConvergesNearPathRtt) {
    make_channels();
    // Advance virtual time first: a segment stamped at t=0 encodes ts=0,
    // which the ack path reserves for "no fresh sample".
    run_for(from_ms(10));
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(64 * 1024)));
    run_until_delivered(1);

    EXPECT_GT(chan_a->stats().rtt_samples, 0u);
    // 2 ms each way -> ~4 ms RTT; allow generous smoothing slack.
    EXPECT_GE(chan_a->srtt(), from_ms(3));
    EXPECT_LE(chan_a->srtt(), from_ms(40));
    EXPECT_GE(chan_a->rto(), RudpOptions{}.min_rto);
    EXPECT_LE(chan_a->rto(), RudpOptions{}.max_rto);
}

TEST_F(RudpFixture, BackpressureRejectsOversizedQueue) {
    // Tiny window so send_bulk cannot drain its queue synchronously: the
    // first two segments go into flight, everything else stays queued.
    RudpOptions options;
    options.window = 2;
    options.max_queued_segments = 16;
    make_channels(options);

    EXPECT_TRUE(chan_a->send_bulk(patterned_payload(2 * 1200)));   // fills the window
    EXPECT_TRUE(chan_a->send_bulk(patterned_payload(16 * 1200)));  // fills the queue
    EXPECT_EQ(chan_a->queued_segments(), 16u);
    EXPECT_FALSE(chan_a->send_bulk(patterned_payload(1200)));      // 17 > 16
    EXPECT_EQ(chan_a->stats().send_rejected, 1u);

    run_until_delivered(2);
    EXPECT_TRUE(chan_a->send_bulk(patterned_payload(1200)));  // queue drained
    run_until_delivered(3);
    EXPECT_EQ(delivered.size(), 3u);
}

TEST_F(RudpFixture, PayloadAboveLimitRejected) {
    RudpOptions options;
    options.max_payload_bytes = 4096;
    make_channels(options);
    EXPECT_FALSE(chan_a->send_bulk(patterned_payload(4097)));
    EXPECT_EQ(chan_a->stats().send_rejected, 1u);
    EXPECT_TRUE(chan_a->send_bulk(patterned_payload(4096)));
}

TEST_F(RudpFixture, BlackholeDegradesToStalledThenAbandoned) {
    RudpOptions options;
    options.stall_after = from_ms(400);
    options.abandon_after = from_ms(1200);
    make_channels(options);

    // Cut the link before anything flows: every probe dies, so the channel
    // must walk the whole degradation ladder on RTO evidence alone.
    net.set_link_down(host_a, host_b, true);
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(64 * 1024)));

    run_for(from_ms(700));
    EXPECT_EQ(chan_a->state(), RudpChannel::State::kStalled);
    EXPECT_GE(chan_a->stats().stalls, 1u);
    EXPECT_GT(chan_a->stats().rto_expirations, 0u);

    run_for(from_ms(1200));
    EXPECT_EQ(chan_a->state(), RudpChannel::State::kAbandoned);
    EXPECT_GE(chan_a->stats().abandons, 1u);
    EXPECT_EQ(chan_a->in_flight(), 0u) << "abandon must drop queued work";
    EXPECT_EQ(chan_a->queued_segments(), 0u);

    // Abandoned is sticky: no sends, even after the link heals...
    net.set_link_down(host_a, host_b, false);
    EXPECT_FALSE(chan_a->send_bulk(patterned_payload(1024)));

    // ...until reset(), after which the channel carries traffic again.
    chan_a->reset();
    EXPECT_EQ(chan_a->state(), RudpChannel::State::kHealthy);
    const Bytes again = patterned_payload(32 * 1024, 7);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(again)));
    run_until_delivered(1);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], again);
}

TEST_F(RudpFixture, SustainedLossEntersLossyStateWithHysteresis) {
    make_channels();
    net.set_directed_loss(host_a, host_b, 0.35);
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(512 * 1024)));

    // Sample the state while the lossy transfer is in progress.
    bool saw_lossy = false;
    const TimeUs deadline = kernel.now() + 60 * kSecond;
    while (delivered.empty() && kernel.now() < deadline) {
        kernel.run_until(kernel.now() + from_ms(20));
        saw_lossy = saw_lossy || chan_a->state() == RudpChannel::State::kLossy;
    }
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_TRUE(saw_lossy) << "30%+ retransmit ratio must surface as kLossy";

    // Clean link again: a fresh transfer drains the EWMA back below the
    // exit threshold and the channel recovers to healthy.
    net.set_directed_loss(host_a, host_b, 0.0);
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(512 * 1024, 3)));
    run_until_delivered(2);
    EXPECT_EQ(chan_a->state(), RudpChannel::State::kHealthy);
}

TEST_F(RudpFixture, ReceiverGivesUpOldestGapsWhenTrackingOverflows) {
    // A gap budget far too small for the storm: the receiver must write
    // gaps off (sacrificing the in-flight payload to the Coalescer LRU —
    // the documented degradation) instead of growing its gap map, and the
    // channel must still carry fresh traffic once the storm passes.
    RudpOptions options;
    options.max_tracked_gaps = 4;
    make_channels(options);
    net.set_directed_loss(host_a, host_b, 0.45);
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(512 * 1024)));

    const TimeUs deadline = kernel.now() + 60 * kSecond;
    while (chan_a->in_flight() + chan_a->queued_segments() > 0 &&
           kernel.now() < deadline) {
        kernel.run_until(kernel.now() + from_ms(20));
        ASSERT_LE(chan_b->tracked_gaps(), 4u);
    }
    EXPECT_EQ(chan_a->in_flight(), 0u) << "sender must drain even past written-off gaps";
    EXPECT_GT(chan_b->stats().gaps_given_up, 0u);
    EXPECT_LE(delivered.size(), 1u);

    // Storm over: the lane still works.
    net.set_directed_loss(host_a, host_b, 0.0);
    const std::size_t before = delivered.size();
    const Bytes fresh = patterned_payload(32 * 1024, 9);
    ASSERT_TRUE(chan_a->send_bulk(Bytes(fresh)));
    run_until_delivered(before + 1);
    ASSERT_EQ(delivered.size(), before + 1);
    EXPECT_EQ(delivered.back(), fresh);
}

TEST_F(RudpFixture, MetricsExportedThroughRegistry) {
    make_channels();
    obs::MetricsRegistry registry;
    chan_a->set_observability(&registry, "a->b");
    chan_b->set_observability(&registry, "b->a");
    chan_a->set_observability(nullptr, "");  // null registry is a no-op
    chan_a->set_observability(&registry, "a->b");

    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(64 * 1024)));
    run_until_delivered(1);

    EXPECT_GT(registry.counter("rudp_segments_sent", "a->b").value(), 0u);
    EXPECT_GT(registry.counter("rudp_payloads_delivered", "b->a").value(), 0u);
    EXPECT_EQ(registry.gauge("rudp_state", "a->b").value(), 0.0);  // healthy
}

TEST_F(RudpFixture, DebugSnapshotDescribesChannel) {
    make_channels();
    ASSERT_TRUE(chan_a->send_bulk(patterned_payload(8 * 1024)));
    run_until_delivered(1);

    const std::string snap = chan_a->debug_snapshot();
    EXPECT_NE(snap.find("\"state\""), std::string::npos);
    EXPECT_NE(snap.find("healthy"), std::string::npos);
    EXPECT_NE(snap.find("\"srtt_ms\""), std::string::npos);
    EXPECT_NE(snap.find("\"segments_sent\""), std::string::npos);
}

TEST_F(RudpFixture, StateNamesAreStable) {
    EXPECT_STREQ(to_string(RudpChannel::State::kHealthy), "healthy");
    EXPECT_STREQ(to_string(RudpChannel::State::kLossy), "lossy");
    EXPECT_STREQ(to_string(RudpChannel::State::kStalled), "stalled");
    EXPECT_STREQ(to_string(RudpChannel::State::kAbandoned), "abandoned");
}

TEST(RudpDeterminism, IdenticalRunsProduceIdenticalTraces) {
    // The channel draws only from injected Scheduler/Clock/Rng: the same
    // seed must reproduce the transfer bit-for-bit, including every
    // retransmission decision.
    const auto run_once = [] {
        sim::Kernel kernel;
        sim::SimNetwork net(kernel, /*seed=*/1234);
        const HostId a = net.add_host({"a", "S", "r", 0});
        const HostId b = net.add_host({"b", "S", "r", 0});
        net.set_default_link({from_ms(3), from_ms(1), 1});
        net.set_directed_loss(a, b, 0.25);
        const Endpoint ea{a, 9000}, eb{b, 9000};
        FrameRouter ra, rb;
        net.bind(ea, &ra);
        net.bind(eb, &rb);
        RudpChannel ca(kernel, net, net.host_clock(a), ea, eb, {}, "a");
        RudpChannel cb(kernel, net, net.host_clock(b), eb, ea, {}, "b");
        ra.attach(&ca);
        rb.attach(&cb);
        std::size_t got = 0;
        cb.on_deliver([&](Bytes) { ++got; });
        ca.send_bulk(patterned_payload(256 * 1024));
        while (got < 1 && kernel.now() < 120 * kSecond) {
            kernel.run_until(kernel.now() + from_ms(50));
        }
        return std::tuple{kernel.now(), ca.stats().segments_sent, ca.stats().retransmits,
                          ca.stats().acks_received, cb.stats().nak_ranges_sent,
                          cb.stats().duplicate_segments};
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace narada::transport
