#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace narada::obs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
    EXPECT_EQ(json_escape("client.gf1.ucs.indiana.edu"), "client.gf1.ucs.indiana.edu");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
    EXPECT_EQ(json_escape("a\nb"), "a\\nb");
    EXPECT_EQ(json_escape("a\tb"), "a\\tb");
    EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonWriter, EmptyObject) {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, ObjectWithMixedFields) {
    JsonWriter w;
    w.begin_object()
        .field("name", "bdn")
        .field("count", std::uint64_t{3})
        .field("up", true)
        .field("rate", 0.25, 2)
        .end_object();
    EXPECT_EQ(w.str(), "{\"name\":\"bdn\",\"count\":3,\"up\":true,\"rate\":0.25}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
    JsonWriter w;
    w.begin_object().key("xs").begin_array().value(1).value(2).begin_object().field(
        "y", 3).end_object().end_array().end_object();
    EXPECT_EQ(w.str(), "{\"xs\":[1,2,{\"y\":3}]}");
}

TEST(JsonWriter, EscapesKeysAndValues) {
    JsonWriter w;
    w.begin_object().field("we\"ird", "va\\lue").end_object();
    EXPECT_EQ(w.str(), "{\"we\\\"ird\":\"va\\\\lue\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    JsonWriter w;
    w.begin_array()
        .value(std::nan(""))
        .value(std::numeric_limits<double>::infinity())
        .value(1.5)
        .end_array();
    EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriter, FixedDecimalsMatchSnprintf) {
    JsonWriter w;
    w.begin_array().value(3.14159, 4).end_array();
    EXPECT_EQ(w.str(), "[3.1416]");
}

TEST(JsonWriter, NegativeAndNullValues) {
    JsonWriter w;
    w.begin_object().field("d", std::int64_t{-7}).key("n").value_null().end_object();
    EXPECT_EQ(w.str(), "{\"d\":-7,\"n\":null}");
}

TEST(JsonWriter, RawSplicesPreserialized) {
    JsonWriter inner;
    inner.begin_object().field("a", 1).end_object();
    JsonWriter w;
    w.begin_object().key("in").raw(inner.str()).field("b", 2).end_object();
    EXPECT_EQ(w.str(), "{\"in\":{\"a\":1},\"b\":2}");
}

TEST(JsonWriter, RawInsideArrayGetsCommas) {
    JsonWriter w;
    w.begin_array().raw("{}").raw("{}").end_array();
    EXPECT_EQ(w.str(), "[{},{}]");
}

}  // namespace
}  // namespace narada::obs
