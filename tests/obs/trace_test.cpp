#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace narada::obs {
namespace {

TEST(TraceContext, DefaultIsUnsampled) {
    const TraceContext ctx;
    EXPECT_FALSE(ctx.sampled());
}

TEST(TraceContext, WireRoundTrip) {
    Rng rng(1);
    TraceContext ctx;
    ctx.trace_id = Uuid::random(rng);
    ctx.parent_span = 0xDEADBEEFCAFE;
    wire::ByteWriter writer;
    ctx.encode(writer);
    wire::ByteReader reader(writer.bytes());
    const TraceContext decoded = TraceContext::decode(reader);
    EXPECT_EQ(decoded, ctx);
    EXPECT_TRUE(decoded.sampled());
}

TEST(SpanRecorder, BeginEndProducesFinishedSpan) {
    Rng rng(2);
    SpanRecorder recorder;
    const Uuid trace = Uuid::random(rng);
    const std::uint64_t id = recorder.begin(trace, 0, "client.discover", "client", 100);
    ASSERT_NE(id, 0u);
    recorder.end(id, 250);
    const auto spans = recorder.trace(trace);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "client.discover");
    EXPECT_EQ(spans[0].node, "client");
    EXPECT_EQ(spans[0].start_utc, 100);
    EXPECT_EQ(spans[0].end_utc, 250);
    EXPECT_TRUE(spans[0].finished());
}

TEST(SpanRecorder, UnendedSpanStaysOpen) {
    Rng rng(3);
    SpanRecorder recorder;
    const Uuid trace = Uuid::random(rng);
    recorder.begin(trace, 0, "x", "n", 10);
    const auto spans = recorder.trace(trace);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_FALSE(spans[0].finished());
}

TEST(SpanRecorder, EndOnZeroOrUnknownIsNoop) {
    SpanRecorder recorder;
    recorder.end(0, 50);
    recorder.end(999, 50);
    EXPECT_EQ(recorder.size(), 0u);
}

TEST(SpanRecorder, TraceFiltersAndSortsByStart) {
    Rng rng(4);
    SpanRecorder recorder;
    const Uuid trace_a = Uuid::random(rng);
    const Uuid trace_b = Uuid::random(rng);
    recorder.begin(trace_a, 0, "late", "n", 300);
    recorder.begin(trace_b, 0, "other", "n", 50);
    recorder.begin(trace_a, 0, "early", "n", 100);
    const auto spans = recorder.trace(trace_a);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "early");
    EXPECT_EQ(spans[1].name, "late");
}

TEST(SpanRecorder, ParentChildIdsLink) {
    Rng rng(5);
    SpanRecorder recorder;
    const Uuid trace = Uuid::random(rng);
    const std::uint64_t root = recorder.begin(trace, 0, "root", "n", 1);
    const std::uint64_t child = recorder.begin(trace, root, "child", "n", 2);
    recorder.instant(trace, child, "event", "n", 3);
    const auto spans = recorder.trace(trace);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].parent_span, 0u);
    EXPECT_EQ(spans[1].parent_span, root);
    EXPECT_EQ(spans[2].parent_span, child);
    EXPECT_TRUE(spans[2].finished());  // instants are closed at creation
    EXPECT_EQ(spans[2].start_utc, spans[2].end_utc);
}

TEST(SpanRecorder, CapacityDropsReturnZero) {
    Rng rng(6);
    SpanRecorder recorder(2);
    const Uuid trace = Uuid::random(rng);
    EXPECT_NE(recorder.begin(trace, 0, "a", "n", 1), 0u);
    EXPECT_NE(recorder.begin(trace, 0, "b", "n", 2), 0u);
    EXPECT_EQ(recorder.begin(trace, 0, "c", "n", 3), 0u);
    EXPECT_EQ(recorder.size(), 2u);
    EXPECT_EQ(recorder.dropped(), 1u);
    recorder.end(0, 9);  // the dropped span's "id": must not corrupt anything
    recorder.clear();
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_NE(recorder.begin(trace, 0, "d", "n", 4), 0u);
}

TEST(SpanRecorder, ToJsonEmitsArray) {
    Rng rng(7);
    SpanRecorder recorder;
    const Uuid trace = Uuid::random(rng);
    const std::uint64_t id = recorder.begin(trace, 0, "bdn.request", "bdn0", 10);
    recorder.end(id, 20);
    recorder.begin(trace, id, "open", "bdn0", 15);
    const std::string json = recorder.to_json(trace);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"name\":\"bdn.request\""), std::string::npos);
    // Unfinished spans carry a null end timestamp.
    EXPECT_NE(json.find("\"end_utc_us\":null"), std::string::npos);
}

}  // namespace
}  // namespace narada::obs
