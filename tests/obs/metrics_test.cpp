#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace narada::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
    MetricsRegistry registry;
    Counter& c = registry.counter("bdn_requests_received", "bdn0");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(registry.counter_value("bdn_requests_received", "bdn0"), 42u);
}

TEST(Counter, FetchOrCreateReturnsSameHandle) {
    MetricsRegistry registry;
    Counter& a = registry.counter("x", "n");
    Counter& b = registry.counter("x", "n");
    EXPECT_EQ(&a, &b);
    // Different node label: a distinct series.
    Counter& c = registry.counter("x", "m");
    EXPECT_NE(&a, &c);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
    MetricsRegistry registry;
    Counter& c = registry.counter("hot", "node");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddMax) {
    MetricsRegistry registry;
    Gauge& g = registry.gauge("queue_depth", "bdn0");
    g.set(5.0);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.add(-2.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.max_of(10.0);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
    g.max_of(4.0);  // lower: no change
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Histogram, BucketsObservationsAtBounds) {
    MetricsRegistry registry;
    Histogram& h = registry.histogram("lat_ms", "n", {1.0, 10.0, 100.0});
    h.observe(0.5);    // <= 1
    h.observe(1.0);    // le semantics: lands in the 1.0 bucket
    h.observe(50.0);   // <= 100
    h.observe(1e9);    // +Inf bucket
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 0u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 50.0 + 1e9);
}

TEST(Histogram, LatencyLadderIsSorted) {
    const std::vector<double> bounds = latency_buckets_ms();
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Registry, PrometheusExposition) {
    MetricsRegistry registry;
    registry.counter("bdn_requests_received", "bdn0").inc(7);
    registry.gauge("queue_depth", "bdn0").set(2.0);
    registry.histogram("lat_ms", "bdn0", {1.0, 10.0}).observe(3.0);
    const std::string text = registry.to_prometheus();
    EXPECT_NE(text.find("narada_bdn_requests_received{node=\"bdn0\"} 7"), std::string::npos);
    EXPECT_NE(text.find("narada_queue_depth{node=\"bdn0\"} 2"), std::string::npos);
    // Cumulative buckets plus +Inf.
    EXPECT_NE(text.find("narada_lat_ms_bucket{node=\"bdn0\",le=\"10\"} 1"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("narada_lat_ms_count{node=\"bdn0\"} 1"), std::string::npos);
}

TEST(Registry, JsonSnapshotIsOneLine) {
    MetricsRegistry registry;
    registry.counter("a", "n").inc();
    registry.histogram("h", "n", {5.0}).observe(2.0);
    const std::string json = registry.to_json();
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
}

TEST(Registry, CounterValueMissingIsZero) {
    MetricsRegistry registry;
    EXPECT_EQ(registry.counter_value("never_created", "nowhere"), 0u);
}

TEST(ShardedCounter, SlotsSumAtScrapeTime) {
    MetricsRegistry registry;
    ShardedCounter& c = registry.sharded_counter("handoffs", "rt", 4);
    ASSERT_EQ(c.shards(), 4u);
    c.shard(0).inc(5);
    c.shard(2).inc();
    c.shard(3).inc(10);
    EXPECT_EQ(c.value(), 16u);
    // Same (name, node) returns the same instance; shard counts clamp >= 1.
    EXPECT_EQ(&registry.sharded_counter("handoffs", "rt", 4), &c);
    EXPECT_EQ(registry.sharded_counter("solo", "rt", 0).shards(), 1u);
}

TEST(ShardedCounter, FoldsIntoExportersAndLookup) {
    MetricsRegistry registry;
    ShardedCounter& c = registry.sharded_counter("handoffs", "rt", 3);
    c.shard(0).inc(2);
    c.shard(1).inc(3);
    // counter_value falls through to sharded counters: per-shard layout is
    // an implementation detail to every scrape-side consumer.
    EXPECT_EQ(registry.counter_value("handoffs", "rt"), 5u);
    EXPECT_NE(registry.to_prometheus().find("narada_handoffs{node=\"rt\"} 5"),
              std::string::npos);
    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"name\":\"handoffs\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":5"), std::string::npos);
}

TEST(ShardedHistogram, MergedSnapshotAggregatesAllShards) {
    MetricsRegistry registry;
    ShardedHistogram& h = registry.sharded_histogram("batch", "rt", 2, {1.0, 8.0});
    h.shard(0).observe(0.5);
    h.shard(0).observe(4.0);
    h.shard(1).observe(4.0);
    h.shard(1).observe(100.0);
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 3u);  // two bounds + Inf
    EXPECT_EQ(snap.counts[0], 1u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 4.0 + 4.0 + 100.0);
    // The exposition shows one merged histogram, cumulative buckets as
    // usual.
    const std::string text = registry.to_prometheus();
    EXPECT_NE(text.find("narada_batch_bucket{node=\"rt\",le=\"8\"} 3"), std::string::npos);
    EXPECT_NE(text.find("narada_batch_count{node=\"rt\"} 4"), std::string::npos);
}

}  // namespace
}  // namespace narada::obs
