#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace narada::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
    MetricsRegistry registry;
    Counter& c = registry.counter("bdn_requests_received", "bdn0");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(registry.counter_value("bdn_requests_received", "bdn0"), 42u);
}

TEST(Counter, FetchOrCreateReturnsSameHandle) {
    MetricsRegistry registry;
    Counter& a = registry.counter("x", "n");
    Counter& b = registry.counter("x", "n");
    EXPECT_EQ(&a, &b);
    // Different node label: a distinct series.
    Counter& c = registry.counter("x", "m");
    EXPECT_NE(&a, &c);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
    MetricsRegistry registry;
    Counter& c = registry.counter("hot", "node");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddMax) {
    MetricsRegistry registry;
    Gauge& g = registry.gauge("queue_depth", "bdn0");
    g.set(5.0);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.add(-2.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.max_of(10.0);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
    g.max_of(4.0);  // lower: no change
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Histogram, BucketsObservationsAtBounds) {
    MetricsRegistry registry;
    Histogram& h = registry.histogram("lat_ms", "n", {1.0, 10.0, 100.0});
    h.observe(0.5);    // <= 1
    h.observe(1.0);    // le semantics: lands in the 1.0 bucket
    h.observe(50.0);   // <= 100
    h.observe(1e9);    // +Inf bucket
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 0u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 50.0 + 1e9);
}

TEST(Histogram, LatencyLadderIsSorted) {
    const std::vector<double> bounds = latency_buckets_ms();
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Registry, PrometheusExposition) {
    MetricsRegistry registry;
    registry.counter("bdn_requests_received", "bdn0").inc(7);
    registry.gauge("queue_depth", "bdn0").set(2.0);
    registry.histogram("lat_ms", "bdn0", {1.0, 10.0}).observe(3.0);
    const std::string text = registry.to_prometheus();
    EXPECT_NE(text.find("narada_bdn_requests_received{node=\"bdn0\"} 7"), std::string::npos);
    EXPECT_NE(text.find("narada_queue_depth{node=\"bdn0\"} 2"), std::string::npos);
    // Cumulative buckets plus +Inf.
    EXPECT_NE(text.find("narada_lat_ms_bucket{node=\"bdn0\",le=\"10\"} 1"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("narada_lat_ms_count{node=\"bdn0\"} 1"), std::string::npos);
}

TEST(Registry, JsonSnapshotIsOneLine) {
    MetricsRegistry registry;
    registry.counter("a", "n").inc();
    registry.histogram("h", "n", {5.0}).observe(2.0);
    const std::string json = registry.to_json();
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
}

TEST(Registry, CounterValueMissingIsZero) {
    MetricsRegistry registry;
    EXPECT_EQ(registry.counter_value("never_created", "nowhere"), 0u);
}

}  // namespace
}  // namespace narada::obs
