#include "config/ini.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace narada::config {

Ini Ini::parse(const std::string& text) {
    Ini ini;
    std::string section;  // global section is ""
    std::size_t line_no = 0;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        ++line_no;
        std::string_view sv = trim(line);
        if (sv.empty() || sv.front() == '#' || sv.front() == ';') continue;
        if (sv.front() == '[') {
            if (sv.back() != ']' || sv.size() < 2) {
                throw IniError("line " + std::to_string(line_no) + ": malformed section header");
            }
            section = to_lower(trim(sv.substr(1, sv.size() - 2)));
            continue;
        }
        const std::size_t eq = sv.find('=');
        if (eq == std::string_view::npos) {
            throw IniError("line " + std::to_string(line_no) + ": expected key = value");
        }
        const std::string key = to_lower(trim(sv.substr(0, eq)));
        if (key.empty()) {
            throw IniError("line " + std::to_string(line_no) + ": empty key");
        }
        ini.data_[section][key] = std::string(trim(sv.substr(eq + 1)));
    }
    return ini;
}

Ini Ini::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw IniError("cannot open config file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool Ini::has(const std::string& section, const std::string& key) const {
    return get(section, key).has_value();
}

std::optional<std::string> Ini::get(const std::string& section, const std::string& key) const {
    const auto sit = data_.find(to_lower(section));
    if (sit == data_.end()) return std::nullopt;
    const auto kit = sit->second.find(to_lower(key));
    if (kit == sit->second.end()) return std::nullopt;
    return kit->second;
}

std::string Ini::get_or(const std::string& section, const std::string& key,
                        const std::string& fallback) const {
    return get(section, key).value_or(fallback);
}

std::int64_t Ini::get_int(const std::string& section, const std::string& key,
                          std::int64_t fallback) const {
    const auto v = get(section, key);
    if (!v) return fallback;
    try {
        std::size_t consumed = 0;
        const std::int64_t out = std::stoll(*v, &consumed);
        if (consumed != v->size()) throw IniError("trailing characters in integer: " + *v);
        return out;
    } catch (const IniError&) {
        throw;
    } catch (const std::exception&) {
        throw IniError("bad integer value for " + section + "." + key + ": " + *v);
    }
}

double Ini::get_double(const std::string& section, const std::string& key,
                       double fallback) const {
    const auto v = get(section, key);
    if (!v) return fallback;
    try {
        std::size_t consumed = 0;
        const double out = std::stod(*v, &consumed);
        if (consumed != v->size()) throw IniError("trailing characters in number: " + *v);
        return out;
    } catch (const IniError&) {
        throw;
    } catch (const std::exception&) {
        throw IniError("bad numeric value for " + section + "." + key + ": " + *v);
    }
}

bool Ini::get_bool(const std::string& section, const std::string& key, bool fallback) const {
    const auto v = get(section, key);
    if (!v) return fallback;
    const std::string lowered = to_lower(*v);
    if (lowered == "true" || lowered == "yes" || lowered == "on" || lowered == "1") return true;
    if (lowered == "false" || lowered == "no" || lowered == "off" || lowered == "0") return false;
    throw IniError("bad boolean value for " + section + "." + key + ": " + *v);
}

std::vector<std::string> Ini::get_list(const std::string& section, const std::string& key) const {
    const auto v = get(section, key);
    std::vector<std::string> out;
    if (!v) return out;
    for (std::string_view part : split_views(*v, ',')) {
        const std::string_view trimmed = trim(part);
        if (!trimmed.empty()) out.emplace_back(trimmed);
    }
    return out;
}

void Ini::set(const std::string& section, const std::string& key, const std::string& value) {
    data_[to_lower(section)][to_lower(key)] = value;
}

std::vector<std::string> Ini::sections() const {
    std::vector<std::string> out;
    out.reserve(data_.size());
    for (const auto& [name, _] : data_) out.push_back(name);
    return out;
}

std::vector<std::string> Ini::keys(const std::string& section) const {
    std::vector<std::string> out;
    const auto sit = data_.find(to_lower(section));
    if (sit == data_.end()) return out;
    out.reserve(sit->second.size());
    for (const auto& [key, _] : sit->second) out.push_back(key);
    return out;
}

}  // namespace narada::config
