// Typed node configurations.
//
// These structs carry every knob the paper describes as configurable, with
// defaults taken from the paper's own numbers:
//   * dedup cache of the last 1000 discovery-request UUIDs (§4)
//   * response-collection window of 4–5 s (§6) — default 4.5 s
//   * target set of ~10 brokers, configurable 5–20 (§6, §10)
//   * metric weights exactly as in the §9 pseudo-code
// Each struct can be loaded from an INI file ([broker], [bdn], [discovery]
// sections) or constructed programmatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "config/ini.hpp"

namespace narada::config {

/// Strategy a BDN uses to inject a discovery request into the broker
/// network (§4: "issued simultaneously to the brokers that are closest and
/// farthest from the BDN").
enum class InjectionStrategy : std::uint8_t {
    kClosestAndFarthest,  ///< the paper's scheme
    kClosestOnly,         ///< ablation: single nearest injection point
    kRandom,              ///< ablation: one random injection point
    kAll,                 ///< ablation: O(N) direct fan-out to every broker
};

InjectionStrategy parse_injection_strategy(const std::string& name);
std::string to_string(InjectionStrategy s);

/// How a broker disseminates events across its peer links.
enum class RoutingMode : std::uint8_t {
    /// Forward every event on every link (duplicate-suppressed flooding).
    kFlood,
    /// Forward only on links that announced matching subscription interest
    /// — the "optimized routing" the paper credits the broker network with
    /// (§9). Interest announcements are themselves flooded control
    /// messages, so the mode works on arbitrary (cyclic) overlays.
    kRouted,
};

RoutingMode parse_routing_mode(const std::string& name);
std::string to_string(RoutingMode m);

/// Weights from the paper's §9 pseudo-code. "Higher the better" terms are
/// added, "lower the better" terms subtracted by the scorer.
struct MetricWeights {
    double free_to_total_memory = 100.0;  ///< WEIGHTAGE_FREE_TO_TOTAL_MEMORY
    double total_memory_mb = 0.01;        ///< WEIGHTAGE_TOTAL_MEMORY (per MB)
    double num_links = 5.0;               ///< WEIGHTAGE_NUM_LINKS (subtracted)
    double cpu_load = 20.0;               ///< subtracted per unit of CPU load
    /// Weight on the estimated one-way delay in ms (subtracted); combines
    /// "nearest" with "least loaded" in a single score.
    double delay_ms = 1.0;
    /// Flat penalty subtracted when a broker's response carries the
    /// overload flag (the broker shed discovery work recently). Keeps
    /// storming brokers out of the target set without excluding them when
    /// nothing better answered.
    double overload_penalty = 50.0;

    static MetricWeights from_ini(const Ini& ini, const std::string& section = "weights");
};

/// Client-side discovery parameters (§3, §6, §7).
struct DiscoveryConfig {
    /// BDN endpoints from the node configuration file (§3).
    std::vector<Endpoint> bdns;
    /// How long to collect discovery responses before scoring (§6: 4–5 s).
    DurationUs response_window = from_ms(4500);
    /// Stop collecting after this many responses, 0 = unlimited (§9).
    std::uint32_t max_responses = 0;
    /// Size of the shortlisted target set (§6: "typically around 10").
    std::uint32_t target_set_size = 10;
    /// UDP pings sent per target-set broker to refine RTT (§10: may repeat).
    std::uint32_t pings_per_broker = 1;
    /// How long to wait for ping replies before selecting.
    DurationUs ping_window = from_ms(500);
    /// Retransmit the discovery request after this much silence (§7).
    DurationUs retransmit_interval = from_ms(2000);
    /// Maximum retransmissions before falling back to multicast / cache.
    std::uint32_t max_retransmits = 2;
    /// Also multicast the request (§7, §9: reaches lab-realm brokers).
    bool use_multicast = false;
    /// Credential string presented to brokers with response policies.
    std::string credential;
    MetricWeights weights;

    // --- overload resilience -------------------------------------------------
    /// Consecutive unacknowledged sends that open a BDN's circuit breaker
    /// (the BDN is then skipped instantly and requests fail over to the
    /// next configured BDN). 0 disables breakers: plain §7 rotation.
    std::uint32_t breaker_failure_threshold = 2;
    /// First cool-down before an open breaker admits a half-open probe.
    DurationUs breaker_open_initial = 2 * kSecond;
    /// Cap on the (exponentially grown, jittered) cool-down.
    DurationUs breaker_open_max = 30 * kSecond;

    /// Adaptive response window: once at least one response has arrived,
    /// close collection after `quiesce_ticks` consecutive silent ticks of
    /// `quiesce_tick` each, no earlier than `response_window_min` into the
    /// window. `response_window` stays the hard upper bound. Off by
    /// default: the fixed §9 window governs.
    bool adaptive_window = false;
    std::uint32_t quiesce_ticks = 3;
    DurationUs quiesce_tick = from_ms(100);
    DurationUs response_window_min = from_ms(200);

    static DiscoveryConfig from_ini(const Ini& ini);
};

/// Broker-side configuration (§2.1, §4, §5).
struct BrokerConfig {
    /// BDNs to advertise to directly (broker configuration file, §2.3).
    std::vector<Endpoint> advertise_bdns;
    /// Also publish the advertisement on the public topic (§2.3).
    bool advertise_on_topic = true;
    /// Re-advertise this often (soft-state registration: "broker
    /// advertisements may also be lost in transit to the BDNs", §7).
    /// 0 disables periodic re-advertisement.
    DurationUs advertise_interval = 30 * kSecond;
    /// Duplicate-request cache size (§4: "last 1000, configurable").
    std::uint32_t dedup_cache_size = 1000;
    /// Whether this broker answers discovery requests at all (§5).
    bool respond_to_discovery = true;
    /// Required credential; empty = accept anyone (§5).
    std::string required_credential;
    /// Network realms the broker answers; empty = all realms (§5).
    std::vector<std::string> allowed_realms;
    /// TTL for discovery-request propagation across broker links.
    std::uint32_t propagation_ttl = 32;
    /// Per-event processing cost before fan-out to peers/clients; models
    /// the broker's CPU time so multi-hop dissemination takes visible time.
    DurationUs processing_delay = from_ms(2.0);
    /// Event dissemination strategy across peer links.
    RoutingMode routing_mode = RoutingMode::kFlood;
    /// Peer-link liveness: ping established peers this often (0 disables).
    /// Brokers "may join and leave the broker network at arbitrary times"
    /// (§1.2); dead links must be detected and shed.
    DurationUs peer_heartbeat_interval = 5 * kSecond;
    /// Consecutive unanswered peer heartbeats before dropping the link.
    std::uint32_t peer_max_missed = 3;

    // --- discovery-plane load shedding ---------------------------------------
    /// Fresh discovery requests the broker processes per second (token
    /// bucket); requests over quota are shed — neither flooded onward nor
    /// answered. 0 = unlimited (no shedding).
    double discovery_rate_limit = 0.0;
    /// Token-bucket burst for `discovery_rate_limit`.
    double discovery_burst = 8.0;
    /// After shedding, responses advertise the overload flag for this long
    /// so requesters' scoring steers new clients elsewhere.
    DurationUs overload_hold = 2 * kSecond;

    // --- reliable-UDP bulk lane ----------------------------------------------
    /// Discovery responses whose encoded size exceeds this many bytes are
    /// delivered over the RUDP bulk lane (fragmented, NAK-repaired)
    /// instead of a single datagram. 0 keeps every response one lossy
    /// datagram — the paper's §5.2 self-filtering default.
    std::uint32_t response_rudp_threshold = 0;

    static BrokerConfig from_ini(const Ini& ini);
};

/// Overlay self-healing ([rejoin] section). A broker that falls below
/// `peer_floor` established peer links re-runs discovery and re-peers,
/// spacing attempts with jittered exponential backoff so simultaneous
/// rejoiners do not storm the surviving brokers/BDNs.
struct RejoinConfig {
    /// Minimum established peer links; below this the broker self-heals.
    /// 0 disables rejoin supervision.
    std::uint32_t peer_floor = 1;
    /// First retry delay after a failed (or insufficient) rejoin.
    DurationUs backoff_initial = 500 * kMillisecond;
    /// Cap on the backoff base delay.
    DurationUs backoff_max = 30 * kSecond;
    /// Base-delay growth factor per failed attempt.
    double backoff_multiplier = 2.0;
    /// Uniform jitter factor: each delay is scaled by [1-j, 1+j].
    double backoff_jitter = 0.2;

    static RejoinConfig from_ini(const Ini& ini);
};

/// Observability plane ([obs] section): the metrics registry and the
/// per-request trace spans piggybacked on discovery messages.
struct ObsConfig {
    /// Master switch: when false, no component is wired to a registry or
    /// span recorder and the only residual cost is a null-pointer branch.
    bool enabled = false;
    /// Probability that a discovery run is traced (0 = never, 1 = always).
    /// The sampling decision is made once per run at the client; every
    /// downstream hop honours the nil-trace-id convention.
    double trace_sample_rate = 0.0;
    /// Maximum spans the recorder retains; further spans are counted as
    /// dropped rather than evicting earlier ones (a trace with a hole at
    /// the end beats a trace with a hole at the root).
    std::uint32_t span_capacity = 4096;

    static ObsConfig from_ini(const Ini& ini);
};

/// Real-socket datapath ([transport] section): the thread-per-core sharded
/// runtime and the per-shard datapath knobs it passes through. Sim runs
/// ignore this section entirely (virtual time is single-threaded by
/// contract).
struct TransportConfig {
    /// Reactor shard count. 1 = the classic single-loop PosixTransport
    /// datapath; N > 1 binds every port N times with SO_REUSEPORT and lets
    /// the kernel spread flows across N epoll threads.
    std::uint32_t shards = 1;
    /// Optional CPU pins, one per shard ("pin_cpus = 0,1,2,3"); -1 entries
    /// (and shards past the list) stay unpinned.
    std::vector<int> pin_cpus;
    /// Capacity of each cross-shard handoff ring.
    std::uint32_t handoff_depth = 1024;
    /// recvmmsg/sendmmsg batch size per shard.
    std::uint32_t udp_batch = 32;
    /// Buffer-pool free-list capacity per shard.
    std::uint32_t pool_buffers = 64;
    /// SO_RCVBUF/SO_SNDBUF per UDP socket (0 = kernel default).
    std::uint32_t udp_sockbuf = 1 << 20;
    /// UDP generic segmentation/receive offload (probed; falls back).
    bool udp_gso = true;

    static TransportConfig from_ini(const Ini& ini);
};

/// Secured discovery plane ([security] section, paper §9.1). Governs the
/// session-envelope datapath in discovery/security.hpp: whether discovery
/// traffic is authenticated (and encrypted), how many per-peer session
/// keys are cached, and how often sessions are re-established.
struct SecurityConfig {
    enum class Mode : std::uint8_t {
        kOff,   ///< plain datagrams, no crypto on the datapath
        kSign,  ///< authenticate: cleartext payload + session MAC
        kSeal,  ///< authenticate + encrypt: AES-CBC payload + session MAC
    };

    Mode mode = Mode::kOff;
    /// Per-peer session entries kept by each component's SessionKeyCache
    /// (RSA is paid once per cached peer; eviction forces a re-handshake).
    std::uint32_t session_cache_size = 256;
    /// Re-establish a peer's session key after this long (0 = never).
    /// Receivers accept sessions up to twice this age so a sender mid-rekey
    /// never races its own traffic.
    DurationUs rekey_interval = 10 * 60 * kSecond;
    /// BDNs register only advertisements that arrived through a verified
    /// envelope whose certificate subject matches the advertised broker
    /// name; plain ads are rejected (and counted) instead of registered.
    bool authenticate_ads = false;

    [[nodiscard]] bool enabled() const { return mode != Mode::kOff; }
    [[nodiscard]] bool sealing() const { return mode == Mode::kSeal; }

    static SecurityConfig from_ini(const Ini& ini);
};

SecurityConfig::Mode parse_security_mode(const std::string& name);
std::string to_string(SecurityConfig::Mode mode);

/// BDN-side configuration (§2, §4).
struct BdnConfig {
    InjectionStrategy injection = InjectionStrategy::kClosestAndFarthest;
    /// Only store advertisements from these realms; empty = store all (§2.3).
    std::vector<std::string> accepted_realms;
    /// Re-ping registered brokers to refresh the distance table this often.
    DurationUs ping_refresh_interval = 30 * kSecond;
    /// Credential required before a private BDN serves a request (§2.4).
    std::string required_credential;
    /// Expire a broker's registration if it has not answered distance
    /// pings for this long (soft-state registry; 0 = registrations never
    /// expire). Keeps the injection targets honest under broker churn.
    DurationUs registration_expiry = 0;
    /// Advertisement lease: a registration lapses unless the broker
    /// re-advertises within this long (0 = ads never lapse). Unlike
    /// `registration_expiry`, pongs do NOT renew a lease — only a fresh
    /// advertisement does, so crashed brokers age out of the registry and
    /// rejoining brokers re-assert themselves by re-advertising.
    DurationUs ad_lease = 0;
    /// Per-injection cost at the BDN: connection setup to the broker plus
    /// request serialization and processing. Injections to multiple
    /// brokers are issued sequentially with this spacing, which is what
    /// makes the unconnected topology's O(N) distribution visibly slow
    /// (§9, Figure 2 — the paper's BDN opened a fresh connection per
    /// registered broker).
    DurationUs injection_spacing = from_ms(50.0);

    // --- bounded ingest / load shedding --------------------------------------
    /// Maximum discovery requests queued awaiting injection. 0 = legacy
    /// unbounded inline processing. When set, requests are admitted into a
    /// bounded queue and serviced at `request_service_cost` spacing;
    /// arrivals past the bound are shed (and not acked, so requesters fail
    /// over instead of waiting). Advertisements are never queued and never
    /// shed — a lease renewal is a registry write, not injection work.
    std::uint32_t ingest_queue_limit = 0;
    /// Per-request servicing time once dequeued (CPU cost of injection
    /// planning); the drain rate is 1 / request_service_cost.
    DurationUs request_service_cost = from_ms(1.0);
    /// Per-source-host token bucket: discovery requests admitted per
    /// second from any single host. 0 = unlimited. Over-quota requests
    /// are shed before they reach the queue.
    double per_source_rate = 0.0;
    /// Burst allowance for `per_source_rate`.
    double per_source_burst = 8.0;

    // --- bulk ad-registry sync over the reliable-UDP lane --------------------
    /// Peer BDNs that receive periodic full-registry snapshots over the
    /// RUDP bulk lane, so a BDN that was partitioned away (or freshly
    /// started) converges on the broker population without waiting a full
    /// re-advertisement cycle.
    std::vector<Endpoint> sync_peers;
    /// Push a registry snapshot to every sync peer this often (0 = never).
    DurationUs registry_sync_interval = 0;

    // --- federated registry plane (sharding + replication) -------------------
    /// The whole BDN peer group (including this BDN). Two or more members
    /// switch the BDN into federated mode: advertisements are partitioned
    /// across the group by consistent hashing on broker id, ads received by
    /// a non-owner are forwarded to their owners, and discovery requests
    /// scatter/gather candidates from the owning shards. Empty or
    /// single-member = the paper's monolithic registry.
    std::vector<Endpoint> peer_group;
    /// Owners per advertisement (clamped to the group size). R >= 2 keeps
    /// every lease alive through any single BDN crash.
    std::uint32_t replication_factor = 1;
    /// Virtual points per group member on the hash ring.
    std::uint32_t ring_vnodes = 64;
    /// Exchange shared-range registry digests with ring peers this often;
    /// mismatches trigger a lease-clamped push so replicas reconverge after
    /// crashes, partitions and rebalances. 0 = anti-entropy off.
    DurationUs anti_entropy_interval = 0;
    /// How long a scatter/gather coordinator waits for shard replies before
    /// injecting with whatever arrived (partial-result degradation).
    DurationUs shard_deadline = from_ms(150);
    /// Candidates a shard returns per query (its best-RTT slice).
    std::uint32_t shard_reply_limit = 8;

    static BdnConfig from_ini(const Ini& ini);
};

/// Parse "host:port" pairs such as "3:9000" used in config BDN lists.
Endpoint parse_endpoint(const std::string& text);

}  // namespace narada::config
