// INI-style configuration parser.
//
// The paper repeatedly refers to "the node configuration file" (the BDN
// list, §3), "the broker configuration file" (the duplicate-request cache
// size, §4), the discovery timeout, the target-set size and the metric
// weights (§9). This module parses those files. Syntax:
//
//   # comment          ; comment
//   [section]
//   key = value
//   list_key = a, b, c
//
// Keys are case-insensitive; values keep their case. Duplicate keys within
// a section: the last one wins (matching common INI semantics).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace narada::config {

class IniError : public std::runtime_error {
public:
    explicit IniError(const std::string& what) : std::runtime_error(what) {}
};

class Ini {
public:
    /// Parse from text. Throws IniError with a line number on bad syntax.
    static Ini parse(const std::string& text);
    /// Parse a file from disk. Throws IniError if unreadable.
    static Ini parse_file(const std::string& path);

    [[nodiscard]] bool has(const std::string& section, const std::string& key) const;

    [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                                 const std::string& key) const;
    [[nodiscard]] std::string get_or(const std::string& section, const std::string& key,
                                     const std::string& fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& section, const std::string& key,
                                       std::int64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& section, const std::string& key,
                                    double fallback) const;
    [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                                bool fallback) const;
    /// Comma-separated list value, each element trimmed. Empty if absent.
    [[nodiscard]] std::vector<std::string> get_list(const std::string& section,
                                                    const std::string& key) const;

    void set(const std::string& section, const std::string& key, const std::string& value);

    [[nodiscard]] std::vector<std::string> sections() const;
    [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

private:
    // section -> key -> value (section and key stored lower-cased).
    std::map<std::string, std::map<std::string, std::string>> data_;
};

}  // namespace narada::config
