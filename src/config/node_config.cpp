#include "config/node_config.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace narada::config {

InjectionStrategy parse_injection_strategy(const std::string& name) {
    const std::string lowered = to_lower(name);
    if (lowered == "closest_and_farthest") return InjectionStrategy::kClosestAndFarthest;
    if (lowered == "closest_only") return InjectionStrategy::kClosestOnly;
    if (lowered == "random") return InjectionStrategy::kRandom;
    if (lowered == "all") return InjectionStrategy::kAll;
    throw IniError("unknown injection strategy: " + name);
}

std::string to_string(InjectionStrategy s) {
    switch (s) {
        case InjectionStrategy::kClosestAndFarthest: return "closest_and_farthest";
        case InjectionStrategy::kClosestOnly: return "closest_only";
        case InjectionStrategy::kRandom: return "random";
        case InjectionStrategy::kAll: return "all";
    }
    return "?";
}

RoutingMode parse_routing_mode(const std::string& name) {
    const std::string lowered = to_lower(name);
    if (lowered == "flood") return RoutingMode::kFlood;
    if (lowered == "routed") return RoutingMode::kRouted;
    throw IniError("unknown routing mode: " + name);
}

std::string to_string(RoutingMode m) {
    switch (m) {
        case RoutingMode::kFlood: return "flood";
        case RoutingMode::kRouted: return "routed";
    }
    return "?";
}

Endpoint parse_endpoint(const std::string& text) {
    const auto parts = split(text, ':');
    if (parts.size() != 2) throw IniError("bad endpoint (want host:port): " + text);
    try {
        const auto host = static_cast<HostId>(std::stoul(parts[0]));
        const auto port_raw = std::stoul(parts[1]);
        if (port_raw > 0xFFFF) throw IniError("port out of range: " + text);
        return Endpoint{host, static_cast<std::uint16_t>(port_raw)};
    } catch (const IniError&) {
        throw;
    } catch (const std::exception&) {
        throw IniError("bad endpoint: " + text);
    }
}

namespace {

std::vector<Endpoint> parse_endpoint_list(const Ini& ini, const std::string& section,
                                          const std::string& key) {
    std::vector<Endpoint> out;
    for (const auto& item : ini.get_list(section, key)) {
        out.push_back(parse_endpoint(item));
    }
    return out;
}

}  // namespace

MetricWeights MetricWeights::from_ini(const Ini& ini, const std::string& section) {
    MetricWeights w;
    w.free_to_total_memory = ini.get_double(section, "free_to_total_memory", w.free_to_total_memory);
    w.total_memory_mb = ini.get_double(section, "total_memory_mb", w.total_memory_mb);
    w.num_links = ini.get_double(section, "num_links", w.num_links);
    w.cpu_load = ini.get_double(section, "cpu_load", w.cpu_load);
    w.delay_ms = ini.get_double(section, "delay_ms", w.delay_ms);
    w.overload_penalty = ini.get_double(section, "overload_penalty", w.overload_penalty);
    return w;
}

DiscoveryConfig DiscoveryConfig::from_ini(const Ini& ini) {
    DiscoveryConfig c;
    c.bdns = parse_endpoint_list(ini, "discovery", "bdns");
    c.response_window = from_ms(ini.get_double("discovery", "response_window_ms",
                                               to_ms(c.response_window)));
    c.max_responses =
        static_cast<std::uint32_t>(ini.get_int("discovery", "max_responses", c.max_responses));
    c.target_set_size =
        static_cast<std::uint32_t>(ini.get_int("discovery", "target_set_size", c.target_set_size));
    c.pings_per_broker = static_cast<std::uint32_t>(
        ini.get_int("discovery", "pings_per_broker", c.pings_per_broker));
    c.ping_window = from_ms(ini.get_double("discovery", "ping_window_ms", to_ms(c.ping_window)));
    c.retransmit_interval = from_ms(
        ini.get_double("discovery", "retransmit_interval_ms", to_ms(c.retransmit_interval)));
    c.max_retransmits = static_cast<std::uint32_t>(
        ini.get_int("discovery", "max_retransmits", c.max_retransmits));
    c.use_multicast = ini.get_bool("discovery", "use_multicast", c.use_multicast);
    c.credential = ini.get_or("discovery", "credential", c.credential);
    c.breaker_failure_threshold = static_cast<std::uint32_t>(
        ini.get_int("discovery", "breaker_failure_threshold", c.breaker_failure_threshold));
    c.breaker_open_initial = from_ms(
        ini.get_double("discovery", "breaker_open_initial_ms", to_ms(c.breaker_open_initial)));
    c.breaker_open_max =
        from_ms(ini.get_double("discovery", "breaker_open_max_ms", to_ms(c.breaker_open_max)));
    c.adaptive_window = ini.get_bool("discovery", "adaptive_window", c.adaptive_window);
    c.quiesce_ticks = static_cast<std::uint32_t>(
        ini.get_int("discovery", "quiesce_ticks", c.quiesce_ticks));
    c.quiesce_tick =
        from_ms(ini.get_double("discovery", "quiesce_tick_ms", to_ms(c.quiesce_tick)));
    c.response_window_min = from_ms(
        ini.get_double("discovery", "response_window_min_ms", to_ms(c.response_window_min)));
    c.weights = MetricWeights::from_ini(ini);
    return c;
}

BrokerConfig BrokerConfig::from_ini(const Ini& ini) {
    BrokerConfig c;
    c.advertise_bdns = parse_endpoint_list(ini, "broker", "advertise_bdns");
    c.advertise_on_topic = ini.get_bool("broker", "advertise_on_topic", c.advertise_on_topic);
    c.advertise_interval =
        from_ms(ini.get_double("broker", "advertise_interval_ms", to_ms(c.advertise_interval)));
    c.dedup_cache_size = static_cast<std::uint32_t>(
        ini.get_int("broker", "dedup_cache_size", c.dedup_cache_size));
    c.respond_to_discovery =
        ini.get_bool("broker", "respond_to_discovery", c.respond_to_discovery);
    c.required_credential = ini.get_or("broker", "required_credential", c.required_credential);
    c.allowed_realms = ini.get_list("broker", "allowed_realms");
    c.propagation_ttl =
        static_cast<std::uint32_t>(ini.get_int("broker", "propagation_ttl", c.propagation_ttl));
    c.processing_delay =
        from_ms(ini.get_double("broker", "processing_delay_ms", to_ms(c.processing_delay)));
    if (const auto mode = ini.get("broker", "routing_mode")) {
        c.routing_mode = parse_routing_mode(*mode);
    }
    c.peer_heartbeat_interval = from_ms(
        ini.get_double("broker", "peer_heartbeat_interval_ms", to_ms(c.peer_heartbeat_interval)));
    c.peer_max_missed = static_cast<std::uint32_t>(
        ini.get_int("broker", "peer_max_missed", c.peer_max_missed));
    c.discovery_rate_limit =
        ini.get_double("broker", "discovery_rate_limit", c.discovery_rate_limit);
    c.discovery_burst = ini.get_double("broker", "discovery_burst", c.discovery_burst);
    c.overload_hold =
        from_ms(ini.get_double("broker", "overload_hold_ms", to_ms(c.overload_hold)));
    c.response_rudp_threshold = static_cast<std::uint32_t>(
        ini.get_int("broker", "response_rudp_threshold", c.response_rudp_threshold));
    return c;
}

RejoinConfig RejoinConfig::from_ini(const Ini& ini) {
    RejoinConfig c;
    c.peer_floor =
        static_cast<std::uint32_t>(ini.get_int("rejoin", "peer_floor", c.peer_floor));
    c.backoff_initial = from_ms(
        ini.get_double("rejoin", "backoff_initial_ms", to_ms(c.backoff_initial)));
    c.backoff_max =
        from_ms(ini.get_double("rejoin", "backoff_max_ms", to_ms(c.backoff_max)));
    c.backoff_multiplier =
        ini.get_double("rejoin", "backoff_multiplier", c.backoff_multiplier);
    c.backoff_jitter = ini.get_double("rejoin", "backoff_jitter", c.backoff_jitter);
    return c;
}

ObsConfig ObsConfig::from_ini(const Ini& ini) {
    ObsConfig c;
    c.enabled = ini.get_bool("obs", "enabled", c.enabled);
    c.trace_sample_rate = ini.get_double("obs", "trace_sample_rate", c.trace_sample_rate);
    c.span_capacity =
        static_cast<std::uint32_t>(ini.get_int("obs", "span_capacity", c.span_capacity));
    return c;
}

TransportConfig TransportConfig::from_ini(const Ini& ini) {
    TransportConfig c;
    c.shards = static_cast<std::uint32_t>(ini.get_int("transport", "shards", c.shards));
    if (c.shards == 0) c.shards = 1;
    for (const auto& item : ini.get_list("transport", "pin_cpus")) {
        try {
            c.pin_cpus.push_back(std::stoi(item));
        } catch (const std::exception&) {
            throw IniError("bad pin_cpus entry: " + item);
        }
    }
    c.handoff_depth = static_cast<std::uint32_t>(
        ini.get_int("transport", "handoff_depth", c.handoff_depth));
    c.udp_batch =
        static_cast<std::uint32_t>(ini.get_int("transport", "udp_batch", c.udp_batch));
    c.pool_buffers = static_cast<std::uint32_t>(
        ini.get_int("transport", "pool_buffers", c.pool_buffers));
    c.udp_sockbuf = static_cast<std::uint32_t>(
        ini.get_int("transport", "udp_sockbuf", c.udp_sockbuf));
    c.udp_gso = ini.get_bool("transport", "udp_gso", c.udp_gso);
    return c;
}

SecurityConfig::Mode parse_security_mode(const std::string& name) {
    if (name == "off") return SecurityConfig::Mode::kOff;
    if (name == "sign") return SecurityConfig::Mode::kSign;
    if (name == "seal") return SecurityConfig::Mode::kSeal;
    throw IniError("unknown security mode: " + name);
}

std::string to_string(SecurityConfig::Mode mode) {
    switch (mode) {
        case SecurityConfig::Mode::kOff: return "off";
        case SecurityConfig::Mode::kSign: return "sign";
        case SecurityConfig::Mode::kSeal: return "seal";
    }
    return "?";
}

SecurityConfig SecurityConfig::from_ini(const Ini& ini) {
    SecurityConfig c;
    if (const auto mode = ini.get("security", "mode")) {
        c.mode = parse_security_mode(*mode);
    }
    c.session_cache_size = static_cast<std::uint32_t>(
        ini.get_int("security", "session_cache_size", c.session_cache_size));
    if (c.session_cache_size == 0) c.session_cache_size = 1;
    c.rekey_interval =
        from_ms(ini.get_double("security", "rekey_interval_ms", to_ms(c.rekey_interval)));
    c.authenticate_ads = ini.get_bool("security", "authenticate_ads", c.authenticate_ads);
    return c;
}

BdnConfig BdnConfig::from_ini(const Ini& ini) {
    BdnConfig c;
    if (const auto v = ini.get("bdn", "injection")) {
        c.injection = parse_injection_strategy(*v);
    }
    c.accepted_realms = ini.get_list("bdn", "accepted_realms");
    c.ping_refresh_interval = from_ms(
        ini.get_double("bdn", "ping_refresh_interval_ms", to_ms(c.ping_refresh_interval)));
    c.required_credential = ini.get_or("bdn", "required_credential", c.required_credential);
    c.injection_spacing =
        from_ms(ini.get_double("bdn", "injection_spacing_ms", to_ms(c.injection_spacing)));
    c.registration_expiry = from_ms(
        ini.get_double("bdn", "registration_expiry_ms", to_ms(c.registration_expiry)));
    c.ad_lease = from_ms(ini.get_double("bdn", "ad_lease_ms", to_ms(c.ad_lease)));
    c.ingest_queue_limit = static_cast<std::uint32_t>(
        ini.get_int("bdn", "ingest_queue_limit", c.ingest_queue_limit));
    c.request_service_cost = from_ms(
        ini.get_double("bdn", "request_service_cost_ms", to_ms(c.request_service_cost)));
    c.per_source_rate = ini.get_double("bdn", "per_source_rate", c.per_source_rate);
    c.per_source_burst = ini.get_double("bdn", "per_source_burst", c.per_source_burst);
    c.sync_peers = parse_endpoint_list(ini, "bdn", "sync_peers");
    c.registry_sync_interval = from_ms(
        ini.get_double("bdn", "registry_sync_interval_ms", to_ms(c.registry_sync_interval)));
    c.peer_group = parse_endpoint_list(ini, "bdn", "peer_group");
    c.replication_factor = static_cast<std::uint32_t>(
        ini.get_int("bdn", "replication_factor", c.replication_factor));
    c.ring_vnodes =
        static_cast<std::uint32_t>(ini.get_int("bdn", "ring_vnodes", c.ring_vnodes));
    c.anti_entropy_interval = from_ms(
        ini.get_double("bdn", "anti_entropy_interval_ms", to_ms(c.anti_entropy_interval)));
    c.shard_deadline =
        from_ms(ini.get_double("bdn", "shard_deadline_ms", to_ms(c.shard_deadline)));
    c.shard_reply_limit = static_cast<std::uint32_t>(
        ini.get_int("bdn", "shard_reply_limit", c.shard_reply_limit));
    return c;
}

}  // namespace narada::config
