#include "services/event_archive.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "wire/msg_types.hpp"

namespace narada::services {

void EventArchivePlugin::on_attach(broker::Broker& broker) {
    broker_ = &broker;
    // Under subscription routing the archive must declare its appetite or
    // the events it wants to record never reach this broker.
    broker.add_plugin_interest(options_.filter);
}

void EventArchivePlugin::on_event(const broker::Event& event) {
    if (!broker::topic_matches(options_.filter, event.topic)) return;

    auto it = topics_.find(event.topic);
    if (it == topics_.end()) {
        while (topics_.size() >= options_.max_topics && !lru_.empty()) {
            topics_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.topics_evicted;
        }
        TopicRing ring;
        lru_.push_front(event.topic);
        ring.lru_position = lru_.begin();
        it = topics_.emplace(event.topic, std::move(ring)).first;
    } else {
        lru_.erase(it->second.lru_position);
        lru_.push_front(event.topic);
        it->second.lru_position = lru_.begin();
    }

    TopicRing& ring = it->second;
    ring.events.push_back({next_seq_++, event});
    while (ring.events.size() > options_.capacity_per_topic) ring.events.pop_front();
    ++stats_.events_archived;
}

bool EventArchivePlugin::on_message(const Endpoint& from, std::uint8_t type,
                                    wire::ByteReader& reader, bool reliable) {
    (void)reliable;
    if (type != wire::kMsgReplayRequest) return false;
    handle_replay_request(from, reader);
    return true;
}

void EventArchivePlugin::handle_replay_request(const Endpoint& from,
                                               wire::ByteReader& reader) {
    const Uuid request_id = reader.uuid();
    const std::string filter = reader.str();
    std::uint32_t max_events = reader.u32();
    max_events = std::min(max_events, options_.max_replay_events);

    // Collect matching archived events across topics, newest `max_events`,
    // returned oldest-first (global arrival order).
    std::vector<const ArchivedEvent*> matched;
    if (broker::is_valid_filter(filter)) {
        for (const auto& [topic, ring] : topics_) {
            if (!broker::topic_matches(filter, topic)) continue;
            for (const ArchivedEvent& archived : ring.events) {
                matched.push_back(&archived);
            }
        }
    }
    std::sort(matched.begin(), matched.end(),
              [](const ArchivedEvent* a, const ArchivedEvent* b) { return a->seq < b->seq; });
    if (matched.size() > max_events) {
        matched.erase(matched.begin(),
                      matched.end() - static_cast<std::ptrdiff_t>(max_events));
    }

    wire::ByteWriter writer;
    writer.u8(wire::kMsgReplayBatch);
    writer.uuid(request_id);
    writer.u32(static_cast<std::uint32_t>(matched.size()));
    for (const ArchivedEvent* archived : matched) {
        archived->event.encode(writer);
    }
    // Reliable: a replay batch can be large and must arrive whole.
    broker_->transport().send_reliable(broker_->endpoint(), from, writer.take());
    ++stats_.replays_served;
    stats_.events_replayed += matched.size();
}

ReplayRequester::ReplayRequester(Scheduler& scheduler, transport::Transport& transport,
                                 const Endpoint& local)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      rng_(0x72657071ull ^ (std::uint64_t{local.host} << 16) ^ local.port) {
    transport_.bind(local_, this);
}

ReplayRequester::~ReplayRequester() {
    for (auto& [id, pending] : pending_) {
        scheduler_.cancel_timer(pending.timeout_timer);
    }
    transport_.unbind(local_);
}

void ReplayRequester::request(const Endpoint& archive_broker, const std::string& filter,
                              std::uint32_t max_events, Callback callback,
                              DurationUs timeout) {
    const Uuid request_id = Uuid::random(rng_);
    wire::ByteWriter writer;
    writer.u8(wire::kMsgReplayRequest);
    writer.uuid(request_id);
    writer.str(filter);
    writer.u32(max_events);
    transport_.send_reliable(local_, archive_broker, writer.take());

    PendingRequest pending;
    pending.callback = std::move(callback);
    pending.timeout_timer = scheduler_.schedule(timeout, [this, request_id] {
        const auto it = pending_.find(request_id);
        if (it == pending_.end()) return;
        Callback cb = std::move(it->second.callback);
        pending_.erase(it);
        cb({});  // timed out: report empty history
    });
    pending_.emplace(request_id, std::move(pending));
}

void ReplayRequester::on_datagram(const Endpoint& from, const Bytes& data) {
    (void)from;
    try {
        wire::ByteReader reader(data);
        if (reader.u8() != wire::kMsgReplayBatch) return;
        const Uuid request_id = reader.uuid();
        const auto it = pending_.find(request_id);
        if (it == pending_.end()) return;  // late or duplicate batch
        const std::uint32_t count = reader.u32();
        if (count > 100000) throw wire::WireError("unreasonable replay count");
        std::vector<broker::Event> events;
        events.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            events.push_back(broker::Event::decode(reader));
        }
        scheduler_.cancel_timer(it->second.timeout_timer);
        Callback cb = std::move(it->second.callback);
        pending_.erase(it);
        cb(std::move(events));
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("archive", "{}: malformed replay batch: {}", local_.str(), e.what());
    }
}

}  // namespace narada::services
