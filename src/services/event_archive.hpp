// Event archive — broker-hosted replay of recent history.
//
// NaradaBrokering lists "replays" among its substrate services (paper §1,
// ref [5]): consumers that join late or suffered an outage longer than
// publishers' replay buffers can fetch recent history from an archive
// hosted on a broker. EventArchivePlugin records events flowing through
// its broker into bounded per-topic rings; ReplayRequester fetches the
// archived tail for a topic filter.
//
// Wire: kMsgReplayRequest {request_id, filter, max_events, reply endpoint}
//       kMsgReplayBatch   {request_id, count, events...} (reliable)
#pragma once

#include <deque>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "broker/broker.hpp"
#include "broker/topic.hpp"

namespace narada::services {

/// Options for the archive plugin.
struct EventArchiveOptions {
    /// Topic filter selecting what gets archived ('#' = everything).
    std::string filter = "#";
    /// Events retained per topic (ring buffer).
    std::size_t capacity_per_topic = 256;
    /// Distinct topics tracked; least-recently-active evicted beyond this.
    std::size_t max_topics = 1024;
    /// Upper bound a single replay request may ask for.
    std::uint32_t max_replay_events = 512;
};

class EventArchivePlugin final : public broker::BrokerPlugin {
public:
    struct Stats {
        std::uint64_t events_archived = 0;
        std::uint64_t topics_evicted = 0;
        std::uint64_t replays_served = 0;
        std::uint64_t events_replayed = 0;
    };

    explicit EventArchivePlugin(EventArchiveOptions options = {})
        : options_(std::move(options)) {}

    void on_attach(broker::Broker& broker) override;
    bool on_message(const Endpoint& from, std::uint8_t type, wire::ByteReader& reader,
                    bool reliable) override;
    void on_event(const broker::Event& event) override;

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] std::size_t archived_topics() const { return topics_.size(); }

private:
    struct ArchivedEvent {
        std::uint64_t seq;  ///< arrival order across all topics
        broker::Event event;
    };
    struct TopicRing {
        std::deque<ArchivedEvent> events;
        std::list<std::string>::iterator lru_position;
    };

    void handle_replay_request(const Endpoint& from, wire::ByteReader& reader);

    EventArchiveOptions options_;
    broker::Broker* broker_ = nullptr;
    std::unordered_map<std::string, TopicRing> topics_;
    std::list<std::string> lru_;  // front = most recently active
    std::uint64_t next_seq_ = 0;
    Stats stats_;
};

/// Client-side: request an archived tail from a broker hosting the plugin.
class ReplayRequester final : public transport::MessageHandler {
public:
    using Callback = std::function<void(std::vector<broker::Event>)>;

    ReplayRequester(Scheduler& scheduler, transport::Transport& transport,
                    const Endpoint& local);
    ~ReplayRequester() override;

    ReplayRequester(const ReplayRequester&) = delete;
    ReplayRequester& operator=(const ReplayRequester&) = delete;

    /// Ask `archive_broker` for up to `max_events` archived events matching
    /// `filter`. The callback receives them oldest-first; an empty vector
    /// means nothing archived (or the request/response was lost — arm
    /// `timeout` for that case).
    void request(const Endpoint& archive_broker, const std::string& filter,
                 std::uint32_t max_events, Callback callback,
                 DurationUs timeout = 2 * kSecond);

    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    Rng rng_;

    struct PendingRequest {
        Callback callback;
        TimerHandle timeout_timer = kInvalidTimerHandle;
    };
    std::unordered_map<Uuid, PendingRequest> pending_;
};

}  // namespace narada::services
