#include "services/reliable_delivery.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "wire/codec.hpp"

namespace narada::services {
namespace {

constexpr const char* kControlSuffix = "/__nack";

Bytes encode_data(const Uuid& stream, std::uint64_t seq, const Bytes& payload) {
    wire::ByteWriter writer;
    writer.uuid(stream);
    writer.u64(seq);
    writer.blob(payload);
    return writer.take();
}

}  // namespace

ReliablePublisher::ReliablePublisher(broker::PubSubClient& client, std::string topic,
                                     std::size_t replay_capacity)
    : client_(client),
      topic_(std::move(topic)),
      control_topic_(topic_ + kControlSuffix),
      replay_capacity_(replay_capacity == 0 ? 1 : replay_capacity) {
    Rng rng(0x72656C70ull ^ (std::uint64_t{client.endpoint().host} << 16) ^
            client.endpoint().port);
    stream_id_ = Uuid::random(rng);
}

void ReliablePublisher::start() {
    client_.subscribe(control_topic_);
    client_.on_event([this](const broker::Event& event) {
        if (event.topic == control_topic_) handle_control(event);
    });
}

std::uint64_t ReliablePublisher::publish(Bytes payload) {
    const std::uint64_t seq = next_seq_++;
    replay_buffer_.emplace(seq, payload);
    while (replay_buffer_.size() > replay_capacity_) {
        replay_buffer_.erase(replay_buffer_.begin());
    }
    send(seq, payload, /*replay=*/false);
    ++stats_.published;
    return seq;
}

void ReliablePublisher::send(std::uint64_t seq, const Bytes& payload, bool replay) {
    std::map<std::string, std::string> headers;
    if (replay) headers.emplace("replay", "1");
    client_.publish(topic_, encode_data(stream_id_, seq, payload), std::move(headers));
}

void ReliablePublisher::handle_control(const broker::Event& event) {
    try {
        wire::ByteReader reader(event.payload);
        const Uuid stream = reader.uuid();
        if (stream != stream_id_) return;  // NACK for a different publisher
        ++stats_.nacks_received;
        // One or more {from,to} ranges per frame, read to the end.
        // Nonsensical ranges are skipped individually; a gap wider than the
        // replay buffer is a legitimate (if unrecoverable-in-part) request.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
        while (reader.remaining() >= 16) {
            const std::uint64_t from = reader.u64();
            const std::uint64_t to = reader.u64();
            if (to < from || to >= next_seq_ || to - from > (1u << 20)) continue;
            ranges.emplace_back(from, to);
        }
        if (ranges.empty()) return;
        // Coalesce overlapping/adjacent ranges so a seq requested twice in
        // one frame is replayed (and accounted) exactly once.
        std::sort(ranges.begin(), ranges.end());
        std::size_t merged = 0;
        for (std::size_t i = 1; i < ranges.size(); ++i) {
            if (ranges[i].first <= ranges[merged].second + 1) {
                ranges[merged].second = std::max(ranges[merged].second, ranges[i].second);
            } else {
                ranges[++merged] = ranges[i];
            }
        }
        ranges.resize(merged + 1);
        for (const auto& [from, to] : ranges) {
            for (std::uint64_t seq = from; seq <= to; ++seq) {
                const auto it = replay_buffer_.find(seq);
                if (it == replay_buffer_.end()) {
                    // Trimmed out of the bounded buffer: the consumer's gap
                    // is unrecoverable from here (paper [5] would escalate
                    // to the archival storage service). The watermark keeps
                    // re-NACKs of a known-lost range from recounting it.
                    if (seq >= miss_horizon_) {
                        ++stats_.replay_misses;
                        miss_horizon_ = seq + 1;
                    }
                    continue;
                }
                send(seq, it->second, /*replay=*/true);
                ++stats_.replayed;
            }
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("reliable", "bad NACK on {}: {}", control_topic_, e.what());
    }
}

ReliableConsumer::ReliableConsumer(broker::PubSubClient& client, std::string topic)
    : client_(client), topic_(std::move(topic)), control_topic_(topic_ + kControlSuffix) {}

void ReliableConsumer::start(Handler handler) {
    handler_ = std::move(handler);
    client_.subscribe(topic_);
    client_.on_event([this](const broker::Event& event) {
        if (event.topic == topic_) handle_event(event);
    });
}

void ReliableConsumer::handle_event(const broker::Event& event) {
    try {
        wire::ByteReader reader(event.payload);
        const Uuid stream = reader.uuid();
        const std::uint64_t seq = reader.u64();
        Bytes payload = reader.blob();

        if (!stream_known_) {
            stream_known_ = true;
            stream_id_ = stream;
            // Join mid-stream: deliver from wherever the stream is now.
            next_expected_ = seq;
        } else if (stream != stream_id_) {
            return;  // a different publisher's stream on the same topic
        }

        if (seq < next_expected_ || hold_back_.contains(seq)) {
            ++stats_.duplicates_ignored;
            return;
        }
        if (seq > next_expected_) {
            // Gap: hold this message back and ask for the missing range.
            const bool fresh_gap = hold_back_.empty() || seq < hold_back_.begin()->first;
            hold_back_.emplace(seq, std::move(payload));
            stats_.held_back = hold_back_.size();
            if (fresh_gap) {
                ++stats_.gaps_detected;
                request_replay(next_expected_, seq - 1);
            }
            return;
        }

        // In order: deliver, then drain the hold-back queue.
        handler_(seq, payload);
        ++stats_.delivered;
        ++next_expected_;
        while (!hold_back_.empty() && hold_back_.begin()->first == next_expected_) {
            handler_(next_expected_, hold_back_.begin()->second);
            ++stats_.delivered;
            hold_back_.erase(hold_back_.begin());
            ++next_expected_;
        }
        stats_.held_back = hold_back_.size();
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("reliable", "bad data event on {}: {}", topic_, e.what());
    }
}

void ReliableConsumer::request_replay(std::uint64_t from, std::uint64_t to) {
    wire::ByteWriter writer;
    writer.uuid(stream_id_);
    writer.u64(from);
    writer.u64(to);
    client_.publish(control_topic_, writer.take());
    ++stats_.nacks_sent;
}

}  // namespace narada::services
