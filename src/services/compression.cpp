#include "services/compression.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace narada::services {
namespace {

constexpr std::uint8_t kMagic = 0xC7;
constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeLzss = 1;

constexpr std::size_t kWindowSize = 4096;   // offset fits in 12 bits
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;       // length - kMinMatch fits in 4 bits
constexpr std::uint32_t kMaxOriginalSize = 0xFFFFFFFFu;

void put_header(Bytes& out, std::uint8_t mode, std::uint32_t original_size) {
    out.push_back(kMagic);
    out.push_back(mode);
    out.push_back(static_cast<std::uint8_t>(original_size >> 24));
    out.push_back(static_cast<std::uint8_t>(original_size >> 16));
    out.push_back(static_cast<std::uint8_t>(original_size >> 8));
    out.push_back(static_cast<std::uint8_t>(original_size));
}

/// Hash of a 3-byte prefix for the match-finder chains.
std::uint32_t hash3(const std::uint8_t* p) {
    return (static_cast<std::uint32_t>(p[0]) * 2654435761u ^
            static_cast<std::uint32_t>(p[1]) * 40503u ^ p[2]) &
           (kWindowSize - 1);
}

Bytes lzss_encode(const Bytes& data) {
    Bytes out;
    out.reserve(data.size() / 2 + 16);

    // Hash-head + prev chains over positions (bounded by the window).
    std::array<std::int32_t, kWindowSize> head;
    head.fill(-1);
    std::vector<std::int32_t> prev(data.size(), -1);

    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t flag_index = out.size();
        out.push_back(0);  // flag byte: bit set => literal
        std::uint8_t flags = 0;
        for (int bit = 0; bit < 8 && pos < data.size(); ++bit) {
            std::size_t best_len = 0;
            std::size_t best_offset = 0;
            if (pos + kMinMatch <= data.size()) {
                const std::uint32_t h = hash3(&data[pos]);
                std::int32_t candidate = head[h];
                int probes = 32;  // bounded effort per position
                while (candidate >= 0 && probes-- > 0 &&
                       pos - static_cast<std::size_t>(candidate) <= kWindowSize) {
                    const std::size_t start = static_cast<std::size_t>(candidate);
                    std::size_t len = 0;
                    const std::size_t limit = std::min(kMaxMatch, data.size() - pos);
                    while (len < limit && data[start + len] == data[pos + len]) ++len;
                    if (len > best_len) {
                        best_len = len;
                        best_offset = pos - start;
                        if (len == kMaxMatch) break;
                    }
                    candidate = prev[start];
                }
            }

            // Insert the current position into the chains.
            if (pos + kMinMatch <= data.size()) {
                const std::uint32_t h = hash3(&data[pos]);
                prev[pos] = head[h];
                head[h] = static_cast<std::int32_t>(pos);
            }

            if (best_len >= kMinMatch) {
                // Match token: 12-bit offset-1, 4-bit length-kMinMatch.
                const std::uint16_t token = static_cast<std::uint16_t>(
                    ((best_offset - 1) << 4) | (best_len - kMinMatch));
                out.push_back(static_cast<std::uint8_t>(token >> 8));
                out.push_back(static_cast<std::uint8_t>(token));
                // Also chain the skipped positions for future matches.
                for (std::size_t k = 1; k < best_len && pos + k + kMinMatch <= data.size();
                     ++k) {
                    const std::uint32_t h = hash3(&data[pos + k]);
                    prev[pos + k] = head[h];
                    head[h] = static_cast<std::int32_t>(pos + k);
                }
                pos += best_len;
            } else {
                flags = static_cast<std::uint8_t>(flags | (1u << bit));
                out.push_back(data[pos]);
                ++pos;
            }
        }
        out[flag_index] = flags;
    }
    return out;
}

std::optional<Bytes> lzss_decode(const std::uint8_t* in, std::size_t len,
                                 std::uint32_t original_size) {
    Bytes out;
    out.reserve(original_size);
    std::size_t pos = 0;
    while (pos < len && out.size() < original_size) {
        const std::uint8_t flags = in[pos++];
        for (int bit = 0; bit < 8 && out.size() < original_size; ++bit) {
            if (flags & (1u << bit)) {
                if (pos >= len) return std::nullopt;
                out.push_back(in[pos++]);
            } else {
                if (pos + 1 >= len) return std::nullopt;
                const std::uint16_t token =
                    static_cast<std::uint16_t>((in[pos] << 8) | in[pos + 1]);
                pos += 2;
                const std::size_t offset = static_cast<std::size_t>(token >> 4) + 1;
                const std::size_t match_len = (token & 0xF) + kMinMatch;
                if (offset > out.size()) return std::nullopt;
                const std::size_t start = out.size() - offset;
                for (std::size_t k = 0; k < match_len; ++k) {
                    out.push_back(out[start + k]);  // may overlap; byte-wise is correct
                }
            }
        }
    }
    if (out.size() != original_size) return std::nullopt;
    return out;
}

}  // namespace

Bytes compress(const Bytes& data) {
    if (data.size() > kMaxOriginalSize) {
        // Out of header range: store raw with a truncated... never — the
        // codec refuses silently-lossy behaviour. 4 GiB payloads are far
        // beyond event sizes; treat as programmer error.
        throw std::length_error("compress: payload exceeds 4 GiB");
    }
    Bytes out;
    const Bytes encoded = lzss_encode(data);
    if (encoded.size() < data.size()) {
        out.reserve(kCompressionHeaderSize + encoded.size());
        put_header(out, kModeLzss, static_cast<std::uint32_t>(data.size()));
        out.insert(out.end(), encoded.begin(), encoded.end());
    } else {
        out.reserve(kCompressionHeaderSize + data.size());
        put_header(out, kModeRaw, static_cast<std::uint32_t>(data.size()));
        out.insert(out.end(), data.begin(), data.end());
    }
    return out;
}

std::optional<Bytes> decompress(const Bytes& data) {
    if (data.size() < kCompressionHeaderSize || data[0] != kMagic) return std::nullopt;
    const std::uint8_t mode = data[1];
    const std::uint32_t original_size = (std::uint32_t{data[2]} << 24) |
                                        (std::uint32_t{data[3]} << 16) |
                                        (std::uint32_t{data[4]} << 8) | data[5];
    const std::uint8_t* body = data.data() + kCompressionHeaderSize;
    const std::size_t body_len = data.size() - kCompressionHeaderSize;
    if (mode == kModeRaw) {
        if (body_len != original_size) return std::nullopt;
        return Bytes(body, body + body_len);
    }
    if (mode == kModeLzss) {
        return lzss_decode(body, body_len, original_size);
    }
    return std::nullopt;
}

bool looks_compressed(const Bytes& data) { return !data.empty() && data[0] == kMagic; }

}  // namespace narada::services
