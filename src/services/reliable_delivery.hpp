// Reliable event delivery with replays.
//
// NaradaBrokering provides "reliable delivery [and] replays" (paper §1,
// ref [5]). This service layers per-stream sequencing on the pub/sub
// substrate: a ReliablePublisher numbers every message on a topic and
// keeps a bounded replay buffer; a ReliableConsumer delivers in order,
// detects sequence gaps (e.g. after a disconnect or a broker failure) and
// requests retransmission on a control topic, which the publisher answers
// by replaying from its buffer.
//
// Wire format: data events carry {stream-id uuid, seq u64, payload blob};
// NACKs travel on "<topic>/__nack" carrying {stream-id} followed by one or
// more {from u64, to u64} inclusive ranges (read to the end of the frame;
// single-range senders remain wire-compatible). The publisher coalesces
// overlapping/adjacent ranges before replaying, so a sequence requested
// twice in one frame replays once, and counts each irrecoverable sequence
// at most once across re-NACKs (miss watermark).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "broker/client.hpp"
#include "common/uuid.hpp"

namespace narada::services {

class ReliablePublisher {
public:
    struct Stats {
        std::uint64_t published = 0;
        std::uint64_t nacks_received = 0;
        std::uint64_t replayed = 0;
        /// Requested seqs already trimmed from the replay buffer. Each
        /// missing seq is counted once ever — a consumer re-NACKing a
        /// known-lost range does not inflate the loss accounting.
        std::uint64_t replay_misses = 0;
    };

    /// Publishes on `topic` through `client` (which must already be
    /// connected or connect later; PubSubClient queues subscriptions, and
    /// publishes require a live broker). Keeps the last `replay_capacity`
    /// messages for retransmission.
    ReliablePublisher(broker::PubSubClient& client, std::string topic,
                      std::size_t replay_capacity = 1024);

    /// Publish the next message in the stream. Returns its sequence.
    std::uint64_t publish(Bytes payload);

    [[nodiscard]] const Uuid& stream_id() const { return stream_id_; }
    [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Wire the NACK listener. Call once after the client is set up; the
    /// publisher subscribes to the control topic itself.
    void start();

private:
    void send(std::uint64_t seq, const Bytes& payload, bool replay);
    void handle_control(const broker::Event& event);

    broker::PubSubClient& client_;
    std::string topic_;
    std::string control_topic_;
    std::size_t replay_capacity_;
    Uuid stream_id_;
    std::uint64_t next_seq_ = 0;
    std::map<std::uint64_t, Bytes> replay_buffer_;
    /// Miss watermark: every irrecoverable seq below this has been counted
    /// in `replay_misses` (the replay buffer trims from the bottom, so
    /// misses only ever appear below the buffered range).
    std::uint64_t miss_horizon_ = 0;
    Stats stats_;
};

class ReliableConsumer {
public:
    struct Stats {
        std::uint64_t delivered = 0;
        std::uint64_t gaps_detected = 0;
        std::uint64_t nacks_sent = 0;
        std::uint64_t duplicates_ignored = 0;
        std::uint64_t held_back = 0;  ///< currently buffered out-of-order
    };

    using Handler = std::function<void(std::uint64_t seq, const Bytes& payload)>;

    ReliableConsumer(broker::PubSubClient& client, std::string topic);

    /// Set the in-order delivery callback and subscribe.
    void start(Handler handler);

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t next_expected() const { return next_expected_; }

private:
    void handle_event(const broker::Event& event);
    void request_replay(std::uint64_t from, std::uint64_t to);

    broker::PubSubClient& client_;
    std::string topic_;
    std::string control_topic_;
    Handler handler_;
    /// Stream currently being consumed; adopts the first stream id seen.
    Uuid stream_id_;
    bool stream_known_ = false;
    std::uint64_t next_expected_ = 0;
    std::map<std::uint64_t, Bytes> hold_back_;
    Stats stats_;
};

}  // namespace narada::services
