// Fragmentation and coalescing of large payloads.
//
// NaradaBrokering supports "fragmentation and coalescing of large
// datasets" (paper §1). A Fragmenter splits a payload into numbered
// fragments keyed by a payload UUID; a Coalescer reassembles them from
// arbitrary arrival order, tolerates duplicates, and bounds memory by
// evicting the least-recently-touched incomplete payload.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/uuid.hpp"
#include "wire/codec.hpp"

namespace narada::services {

struct Fragment {
    Uuid payload_id;
    std::uint32_t index = 0;
    std::uint32_t count = 0;
    std::uint64_t total_size = 0;  ///< full payload size (sanity / prealloc)
    Bytes chunk;

    void encode(wire::ByteWriter& writer) const;
    static Fragment decode(wire::ByteReader& reader);

    friend bool operator==(const Fragment&, const Fragment&) = default;
};

/// Split `payload` into fragments of at most `chunk_size` bytes. Always
/// produces at least one fragment (empty payloads yield one empty chunk).
std::vector<Fragment> fragment_payload(const Bytes& payload, std::size_t chunk_size,
                                       Uuid payload_id);

class Coalescer {
public:
    struct Stats {
        std::uint64_t fragments_accepted = 0;
        std::uint64_t duplicates_ignored = 0;
        std::uint64_t mismatches_rejected = 0;  ///< inconsistent count/size
        std::uint64_t payloads_completed = 0;
        std::uint64_t payloads_evicted = 0;
    };

    /// Keep at most `max_pending` incomplete payloads (LRU eviction) and
    /// refuse fragments announcing more than `max_payload_size` bytes.
    explicit Coalescer(std::size_t max_pending = 64,
                       std::uint64_t max_payload_size = 256ull << 20)
        : max_pending_(max_pending), max_payload_size_(max_payload_size) {}

    /// Feed one fragment. Returns the reassembled payload when this
    /// fragment completes it; nullopt otherwise.
    std::optional<Bytes> accept(const Fragment& fragment);

    [[nodiscard]] std::size_t pending() const { return pending_.size(); }
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    struct Pending {
        std::uint32_t count = 0;
        std::uint64_t total_size = 0;
        std::uint32_t received = 0;
        std::vector<bool> have;
        std::vector<Bytes> chunks;
        std::list<Uuid>::iterator lru_position;
    };

    void touch(Pending& entry, const Uuid& id);
    void evict_oldest();

    std::size_t max_pending_;
    std::uint64_t max_payload_size_;
    std::unordered_map<Uuid, Pending> pending_;
    std::list<Uuid> lru_;  // front = most recent
    Stats stats_;
};

}  // namespace narada::services
