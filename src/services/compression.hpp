// Payload (de)compression service.
//
// NaradaBrokering "includes services such as ... (de)compression of large
// payloads" (paper §1). This is a from-scratch LZSS codec: a 4 KiB
// sliding window, 3..18-byte matches, flag-byte framing, plus a small
// header carrying a magic, the original length and an incompressible-
// passthrough marker so compress() never expands data by more than the
// header.
#pragma once

#include <optional>

#include "common/types.hpp"

namespace narada::services {

/// Compress `data`. Always succeeds; incompressible input is stored raw
/// behind the header (overhead: kHeaderSize bytes).
Bytes compress(const Bytes& data);

/// Decompress a compress() result. nullopt on malformed/corrupt input.
std::optional<Bytes> decompress(const Bytes& data);

/// Header size in bytes (magic + mode + original length).
inline constexpr std::size_t kCompressionHeaderSize = 1 + 1 + 4;

/// True if `data` starts with the compression magic octet.
bool looks_compressed(const Bytes& data);

}  // namespace narada::services
