#include "services/fragmentation.hpp"

#include <stdexcept>

namespace narada::services {

void Fragment::encode(wire::ByteWriter& writer) const {
    writer.uuid(payload_id);
    writer.u32(index);
    writer.u32(count);
    writer.u64(total_size);
    writer.blob(chunk);
}

Fragment Fragment::decode(wire::ByteReader& reader) {
    Fragment f;
    f.payload_id = reader.uuid();
    f.index = reader.u32();
    f.count = reader.u32();
    f.total_size = reader.u64();
    f.chunk = reader.blob();
    return f;
}

std::vector<Fragment> fragment_payload(const Bytes& payload, std::size_t chunk_size,
                                       Uuid payload_id) {
    if (chunk_size == 0) throw std::invalid_argument("fragment_payload: zero chunk size");
    const std::size_t count =
        payload.empty() ? 1 : (payload.size() + chunk_size - 1) / chunk_size;
    std::vector<Fragment> fragments;
    fragments.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Fragment f;
        f.payload_id = payload_id;
        f.index = static_cast<std::uint32_t>(i);
        f.count = static_cast<std::uint32_t>(count);
        f.total_size = payload.size();
        const std::size_t begin = i * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, payload.size());
        if (begin < payload.size()) {
            f.chunk.assign(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                           payload.begin() + static_cast<std::ptrdiff_t>(end));
        }
        fragments.push_back(std::move(f));
    }
    return fragments;
}

void Coalescer::touch(Pending& entry, const Uuid& id) {
    lru_.erase(entry.lru_position);
    lru_.push_front(id);
    entry.lru_position = lru_.begin();
}

void Coalescer::evict_oldest() {
    if (lru_.empty()) return;
    const Uuid victim = lru_.back();
    lru_.pop_back();
    pending_.erase(victim);
    ++stats_.payloads_evicted;
}

std::optional<Bytes> Coalescer::accept(const Fragment& fragment) {
    // Structural sanity before touching state.
    if (fragment.count == 0 || fragment.index >= fragment.count ||
        fragment.total_size > max_payload_size_ ||
        fragment.chunk.size() > fragment.total_size) {
        ++stats_.mismatches_rejected;
        return std::nullopt;
    }

    // Single-fragment payloads short-circuit — unless the payload_id is
    // already reassembling as a multi-fragment payload. A corrupt (or
    // forged) count=1 fragment reusing an in-flight id must not hijack
    // that transfer's completion; the shape disagreement rejects it and
    // the pending entry stays intact.
    if (fragment.count == 1) {
        if (fragment.chunk.size() != fragment.total_size ||
            pending_.contains(fragment.payload_id)) {
            ++stats_.mismatches_rejected;
            return std::nullopt;
        }
        ++stats_.fragments_accepted;
        ++stats_.payloads_completed;
        return fragment.chunk;
    }

    auto it = pending_.find(fragment.payload_id);
    if (it == pending_.end()) {
        if (pending_.size() >= max_pending_) evict_oldest();
        Pending entry;
        entry.count = fragment.count;
        entry.total_size = fragment.total_size;
        entry.have.assign(fragment.count, false);
        entry.chunks.resize(fragment.count);
        lru_.push_front(fragment.payload_id);
        entry.lru_position = lru_.begin();
        it = pending_.emplace(fragment.payload_id, std::move(entry)).first;
    }
    Pending& entry = it->second;

    // All fragments of a payload must agree on its shape.
    if (entry.count != fragment.count || entry.total_size != fragment.total_size) {
        ++stats_.mismatches_rejected;
        return std::nullopt;
    }
    if (entry.have[fragment.index]) {
        ++stats_.duplicates_ignored;
        touch(entry, fragment.payload_id);
        return std::nullopt;
    }

    entry.have[fragment.index] = true;
    entry.chunks[fragment.index] = fragment.chunk;
    ++entry.received;
    ++stats_.fragments_accepted;
    touch(entry, fragment.payload_id);

    if (entry.received < entry.count) return std::nullopt;

    // Complete: concatenate and verify the announced size.
    Bytes payload;
    payload.reserve(entry.total_size);
    for (const Bytes& chunk : entry.chunks) {
        payload.insert(payload.end(), chunk.begin(), chunk.end());
    }
    lru_.erase(entry.lru_position);
    pending_.erase(it);
    if (payload.size() != fragment.total_size) {
        ++stats_.mismatches_rejected;
        return std::nullopt;
    }
    ++stats_.payloads_completed;
    return payload;
}

}  // namespace narada::services
