#include "scenario/swarm_scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace narada::scenario {
namespace {

// Port conventions, shared with Scenario where the roles overlap.
constexpr std::uint16_t kTimePort = 123;
constexpr std::uint16_t kBdnPort = 7100;
constexpr std::uint16_t kBrokerPort = 7000;
constexpr std::uint16_t kBrokerNtpPort = 7302;

// Swarm aggregate hosts bind [kSwarmPortLo, kSwarmPortLo + span).
constexpr std::uint16_t kSwarmPortLo = 1024;
constexpr std::uint32_t kSwarmPortSpanMax = 60'000;

// Broker placements cycle the catalog's five distributed sites.
constexpr sim::Site kBrokerSites[] = {
    sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn,
    sim::Site::kFsu, sim::Site::kCardiff,
};

}  // namespace

SwarmScenario::SwarmScenario(SwarmScenarioOptions options) : options_(std::move(options)) {
    build();
}

SwarmScenario::~SwarmScenario() = default;

void SwarmScenario::build() {
    if (options_.capacity == 0) {
        throw std::invalid_argument("swarm scenario: capacity must be positive");
    }
    if (options_.broker_count == 0 || options_.bdn_count == 0) {
        throw std::invalid_argument("swarm scenario: need at least one broker and one BDN");
    }
    if (options_.endpoints_per_host == 0 ||
        options_.endpoints_per_host > kSwarmPortSpanMax / 2) {
        throw std::invalid_argument("swarm scenario: endpoints_per_host out of range");
    }

    network_ = std::make_unique<sim::SimNetwork>(kernel_, options_.seed);
    network_->set_per_hop_loss(options_.per_hop_loss);
    // Swarm hosts are not in the WAN catalog; every link touching one
    // falls back to this default (a mid-continent WAN path).
    network_->set_default_link({from_ms(15.0), from_ms(5.0), 12});

    metrics_ = std::make_unique<obs::MetricsRegistry>();
    if (options_.observe_plane) {
        spans_ = std::make_unique<obs::SpanRecorder>(4096);
        bdn_utc_ = std::make_unique<timesvc::FixedUtcSource>(network_->true_clock());
    }

    // Deployment order: [0]=time server, [1..bdn_count]=BDNs, then brokers.
    std::vector<sim::Site> placements = {sim::Site::kBloomington};
    for (std::size_t i = 0; i < options_.bdn_count; ++i) {
        placements.push_back(sim::Site::kBloomington);
    }
    for (std::size_t i = 0; i < options_.broker_count; ++i) {
        placements.push_back(kBrokerSites[i % std::size(kBrokerSites)]);
    }
    deployment_ = std::make_unique<sim::WanDeployment>(*network_, placements);

    const HostId time_host = deployment_->host(0);
    const Endpoint time_ep{time_host, kTimePort};
    time_server_ = std::make_unique<timesvc::TimeServer>(*network_, time_ep,
                                                         network_->true_clock());

    // --- BDN group -----------------------------------------------------------
    std::vector<Endpoint> bdn_eps;
    for (std::size_t i = 0; i < options_.bdn_count; ++i) {
        bdn_eps.push_back({deployment_->host(1 + i), kBdnPort});
    }
    config::BdnConfig bdn_cfg = options_.bdn;
    if (bdn_eps.size() > 1 && bdn_cfg.peer_group.empty()) {
        bdn_cfg.peer_group = bdn_eps;
    }
    for (std::size_t i = 0; i < options_.bdn_count; ++i) {
        const HostId host = deployment_->host(1 + i);
        bdns_.push_back(std::make_unique<discovery::Bdn>(
            kernel_, *network_, bdn_eps[i], network_->host_clock(host), bdn_cfg,
            "bdn" + std::to_string(i) + ".swarm"));
    }

    // --- brokers -------------------------------------------------------------
    auto residual = [this]() -> DurationUs {
        const DurationUs magnitude = network_->rng().uniform_int(options_.ntp_residual_min,
                                                                 options_.ntp_residual_max);
        return network_->rng().chance(0.5) ? magnitude : -magnitude;
    };
    for (std::size_t i = 0; i < options_.broker_count; ++i) {
        const HostId host = deployment_->host(1 + options_.bdn_count + i);
        const Endpoint broker_ep{host, kBrokerPort};

        timesvc::NtpOptions ntp_options;
        ntp_options.injected_residual = residual();
        auto ntp = std::make_unique<timesvc::NtpService>(
            kernel_, *network_, Endpoint{host, kBrokerNtpPort}, network_->host_clock(host),
            time_ep, ntp_options);
        ntp->start();

        config::BrokerConfig broker_cfg = options_.broker;
        broker_cfg.advertise_bdns = {bdn_eps[i % bdn_eps.size()]};

        const sim::SiteInfo& info = sim::site_info(kBrokerSites[i % std::size(kBrokerSites)]);
        auto node = std::make_unique<broker::Broker>(
            kernel_, *network_, broker_ep, network_->host_clock(host), *ntp, broker_cfg,
            info.machine + "/broker" + std::to_string(i));

        discovery::BrokerIdentity identity;
        identity.hostname = info.machine + std::to_string(i);
        identity.realm = info.realm;
        identity.geo_location = info.location;
        identity.institution = info.site;
        auto plugin = std::make_unique<discovery::BrokerDiscoveryPlugin>(identity);
        node->add_plugin(plugin.get());

        broker_ntp_.push_back(std::move(ntp));
        plugins_.push_back(std::move(plugin));
        brokers_.push_back(std::move(node));
    }

    if (options_.observe_plane) {
        for (auto& b : bdns_) {
            b->set_observability(metrics_.get(), spans_.get(), bdn_utc_.get());
        }
        for (std::size_t i = 0; i < brokers_.size(); ++i) {
            brokers_[i]->set_observability(metrics_.get());
            plugins_[i]->set_observability(metrics_.get(), spans_.get());
        }
    }

    for (auto& b : bdns_) b->start();
    for (auto& b : brokers_) b->start();

    // --- the swarm -----------------------------------------------------------
    const std::uint32_t hosts_needed =
        (options_.capacity + options_.endpoints_per_host - 1) / options_.endpoints_per_host;
    const std::uint32_t span =
        std::min<std::uint32_t>(kSwarmPortSpanMax, 2 * options_.endpoints_per_host);
    for (std::uint32_t i = 0; i < hosts_needed; ++i) {
        swarm_hosts_.push_back(network_->add_host(
            {"swarm" + std::to_string(i) + ".edge", "SWARM", "swarm", 0}));
    }

    swarm::SwarmOptions swarm_opts = options_.swarm;
    swarm_opts.capacity = options_.capacity;
    swarm_opts.bdns = bdn_eps;
    swarm_opts.seed = options_.seed;
    swarm_ = std::make_unique<swarm::ClientSwarm>(kernel_, *network_, std::move(swarm_opts));
    swarm_->attach(swarm_hosts_, kSwarmPortLo,
                   static_cast<std::uint16_t>(kSwarmPortLo + span - 1));
    swarm_->set_observability(metrics_.get(), "swarm");

    workload_ = std::make_unique<swarm::Workload>(kernel_, *swarm_);
}

void SwarmScenario::warm_up() {
    if (warmed_up_) return;
    warmed_up_ = true;
    kernel_.run_until(kernel_.now() + options_.warmup);
}

std::size_t SwarmScenario::run_plan(const swarm::WorkloadPlan& plan, DurationUs drain,
                                    std::size_t max_events) {
    warm_up();
    // Plan wave times are relative to this call; shift them onto the
    // kernel's absolute clock.
    swarm::WorkloadPlan shifted = plan;
    const TimeUs base = kernel_.now();
    for (auto& wave : shifted.waves) wave.at += base;
    workload_->run(shifted);
    const std::size_t events = kernel_.run_until(shifted.end() + drain, max_events);
    swarm_->publish_metrics();
    return events;
}

std::uint64_t SwarmScenario::requests_shed() const {
    std::uint64_t total = 0;
    for (const auto& b : bdns_) total += b->stats().requests_shed();
    return total;
}

std::uint64_t SwarmScenario::requests_received() const {
    std::uint64_t total = 0;
    for (const auto& b : bdns_) total += b->stats().requests_received;
    return total;
}

double SwarmScenario::shed_rate() const {
    const std::uint64_t received = requests_received();
    if (received == 0) return 0.0;
    return static_cast<double>(requests_shed()) / static_cast<double>(received);
}

}  // namespace narada::scenario
