// Swarm scenario — the scale testbed in a box.
//
// Where Scenario reproduces the paper's five-broker testbed with one real
// discovery::Client, SwarmScenario points a ClientSwarm (100k-1M
// struct-of-arrays endpoints) at the same real control plane: a time
// server, a federated BDN group and a rack of brokers with the discovery
// plugin, all on the simulated WAN. The swarm's endpoints live on a few
// aggregate hosts bound through port ranges; workload waves (flash crowd,
// diurnal, NAT churn) drive the population. Benches and soak tests build
// on this so every scale experiment constructs the system the same way.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "config/node_config.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "sim/site_catalog.hpp"
#include "swarm/client_swarm.hpp"
#include "swarm/workload.hpp"
#include "timesvc/ntp.hpp"

namespace narada::scenario {

struct SwarmScenarioOptions {
    /// Endpoint slots in the swarm (the scale knob: 100k-1M).
    std::uint32_t capacity = 100'000;
    std::size_t broker_count = 8;
    std::size_t bdn_count = 2;  ///< 2+ = federated registry plane
    std::uint64_t seed = 1;
    double per_hop_loss = 0.0005;

    /// Endpoints per aggregate swarm host; each host binds a port range
    /// with 2x headroom for NAT rebinds.
    std::uint32_t endpoints_per_host = 16'384;

    /// Swarm behaviour. capacity/bdns/seed are filled in by the scenario.
    swarm::SwarmOptions swarm;

    config::BrokerConfig broker;
    /// BDN tuned for population-scale ingest: bounded queue with overflow
    /// shedding (the shed-rate experiments), fast drain, and injections
    /// spaced at connection-pool rather than cold-connect cost.
    config::BdnConfig bdn = [] {
        config::BdnConfig c;
        c.ingest_queue_limit = 4096;
        c.request_service_cost = from_ms(0.2);
        c.injection_spacing = from_ms(1.0);
        c.ping_refresh_interval = 60 * kSecond;
        return c;
    }();

    /// Virtual time before the swarm starts: NTP converges, brokers
    /// advertise, the BDN group measures distances.
    DurationUs warmup = 8 * kSecond;

    /// Wire BDN/broker observability too (the swarm's own metrics are
    /// always published to metrics()). Off by default to keep the 1M
    /// hot path lean.
    bool observe_plane = false;

    /// NTP residual error band for broker clocks.
    DurationUs ntp_residual_min = from_ms(1.0);
    DurationUs ntp_residual_max = from_ms(20.0);
};

class SwarmScenario {
public:
    explicit SwarmScenario(SwarmScenarioOptions options);
    ~SwarmScenario();

    SwarmScenario(const SwarmScenario&) = delete;
    SwarmScenario& operator=(const SwarmScenario&) = delete;

    /// Run the kernel through the warm-up period (idempotent).
    void warm_up();

    /// Play `plan` (wave times are relative to the call) and run virtual
    /// time to the plan's end plus `drain`, under an explicit kernel event
    /// budget — million-endpoint runs need more than the kernel default.
    /// Calls warm_up() first if it has not happened yet. Returns events
    /// executed.
    std::size_t run_plan(const swarm::WorkloadPlan& plan, DurationUs drain = 10 * kSecond,
                         std::size_t max_events = 4'000'000'000ull);

    // --- access to the assembled system ------------------------------------
    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] sim::SimNetwork& network() { return *network_; }
    [[nodiscard]] swarm::ClientSwarm& swarm() { return *swarm_; }
    [[nodiscard]] swarm::Workload& workload() { return *workload_; }
    [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
    [[nodiscard]] discovery::Bdn& bdn_at(std::size_t i) { return *bdns_.at(i); }
    [[nodiscard]] std::size_t bdn_count() const { return bdns_.size(); }
    [[nodiscard]] broker::Broker& broker_at(std::size_t i) { return *brokers_.at(i); }
    [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
    [[nodiscard]] HostId swarm_host(std::size_t i = 0) const { return swarm_hosts_.at(i); }
    [[nodiscard]] std::size_t swarm_host_count() const { return swarm_hosts_.size(); }
    [[nodiscard]] const SwarmScenarioOptions& options() const { return options_; }

    /// Aggregate BDN-side shed decisions (quota + queue overflow).
    [[nodiscard]] std::uint64_t requests_shed() const;
    /// Aggregate discovery requests that reached a BDN.
    [[nodiscard]] std::uint64_t requests_received() const;
    /// Shed decisions / received requests (0 when nothing received).
    [[nodiscard]] double shed_rate() const;

private:
    void build();

    SwarmScenarioOptions options_;
    sim::Kernel kernel_;
    std::unique_ptr<sim::SimNetwork> network_;
    std::unique_ptr<sim::WanDeployment> deployment_;

    std::unique_ptr<obs::MetricsRegistry> metrics_;
    std::unique_ptr<obs::SpanRecorder> spans_;
    std::unique_ptr<timesvc::FixedUtcSource> bdn_utc_;

    std::unique_ptr<timesvc::TimeServer> time_server_;
    std::vector<std::unique_ptr<discovery::Bdn>> bdns_;
    std::vector<std::unique_ptr<broker::Broker>> brokers_;
    std::vector<std::unique_ptr<discovery::BrokerDiscoveryPlugin>> plugins_;
    std::vector<std::unique_ptr<timesvc::NtpService>> broker_ntp_;

    std::vector<HostId> swarm_hosts_;
    std::unique_ptr<swarm::ClientSwarm> swarm_;
    std::unique_ptr<swarm::Workload> workload_;

    bool warmed_up_ = false;
};

}  // namespace narada::scenario
