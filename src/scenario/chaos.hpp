// Chaos-experiment helpers over an assembled Scenario.
//
// The chaos soak tests (and bench_churn's heal-time measurement) all ask
// the same questions after a FaultPlan has run: which brokers are alive,
// does the overlay form one component again, and did the system reach a
// goal state within bounded virtual time? These helpers answer them from
// the brokers' own link state so the assertions test what the overlay
// believes, not what the test wishes.
#pragma once

#include <functional>
#include <vector>

#include "scenario/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace narada::scenario {

/// Indices of brokers whose simulated host is currently up.
std::vector<std::size_t> live_brokers(Scenario& s);

/// Hosts of all brokers, in broker order — the target list for fault
/// plans (FaultPlan::random_crashes and friends).
std::vector<HostId> broker_hosts(Scenario& s);

/// True when every live broker can reach every other live broker over
/// established peer links (BFS treating links as undirected). Vacuously
/// true with fewer than two live brokers. Links to crashed brokers that
/// the liveness sweep has not yet shed do not help connectivity: only
/// edges between live brokers count.
bool overlay_connected(Scenario& s);

/// Step the kernel until `pred` holds or `timeout` virtual time elapses,
/// evaluating `pred` between events. Returns the predicate's final value.
bool run_until(Scenario& s, DurationUs timeout, const std::function<bool()>& pred);

/// A storm payload factory producing well-formed DiscoveryRequests with
/// fresh UUIDs drawn from the injector's Rng. `sources` must match the
/// sources given to FaultPlan::request_storm so each synthetic request's
/// reply_to mirrors the endpoint the storm actually sends from (an unbound
/// port — acks and responses to storm clients die on arrival).
sim::StormPayloadFactory discovery_storm_payload(std::vector<HostId> sources,
                                                 std::string realm = {},
                                                 std::string credential = {});

/// A ready-made plan: `clients` synthetic clients on the scenario's client
/// host flood the scenario BDN every `interval` from `at` for `duration`.
sim::FaultPlan request_storm_plan(Scenario& s, DurationUs at, std::uint32_t clients,
                                  DurationUs interval, DurationUs duration);

/// Deterministic fingerprint of every shed/breaker/overload counter in the
/// scenario (BDN ingest stats, client breaker stats, per-broker shed
/// counts). Two same-seed runs of the same storm must produce equal
/// digests.
std::vector<std::uint64_t> overload_digest(Scenario& s);

}  // namespace narada::scenario
