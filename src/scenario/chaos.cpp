#include "scenario/chaos.hpp"

#include <map>
#include <set>

namespace narada::scenario {

std::vector<std::size_t> live_brokers(Scenario& s) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        if (!s.network().host_down(s.broker_host(i))) out.push_back(i);
    }
    return out;
}

std::vector<HostId> broker_hosts(Scenario& s) {
    std::vector<HostId> out;
    out.reserve(s.broker_count());
    for (std::size_t i = 0; i < s.broker_count(); ++i) out.push_back(s.broker_host(i));
    return out;
}

bool overlay_connected(Scenario& s) {
    const std::vector<std::size_t> live = live_brokers(s);
    if (live.size() < 2) return true;

    std::map<Endpoint, std::size_t> index_of;
    for (const std::size_t i : live) index_of[s.broker_at(i).endpoint()] = i;

    // Undirected adjacency between live brokers: an edge exists if either
    // side considers the link established.
    std::map<std::size_t, std::set<std::size_t>> adj;
    for (const std::size_t i : live) {
        for (const Endpoint& peer : s.broker_at(i).peers()) {
            const auto it = index_of.find(peer);
            if (it == index_of.end()) continue;  // dead or foreign peer
            adj[i].insert(it->second);
            adj[it->second].insert(i);
        }
    }

    std::set<std::size_t> seen{live.front()};
    std::vector<std::size_t> frontier{live.front()};
    while (!frontier.empty()) {
        const std::size_t at = frontier.back();
        frontier.pop_back();
        for (const std::size_t next : adj[at]) {
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    return seen.size() == live.size();
}

bool run_until(Scenario& s, DurationUs timeout, const std::function<bool()>& pred) {
    const TimeUs deadline = s.kernel().now() + timeout;
    while (!pred()) {
        if (s.kernel().now() >= deadline) return false;
        if (!s.kernel().step()) return pred();
    }
    return true;
}

}  // namespace narada::scenario
