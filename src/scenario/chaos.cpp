#include "scenario/chaos.hpp"

#include <map>
#include <set>
#include <utility>

#include "common/uuid.hpp"
#include "discovery/messages.hpp"
#include "wire/msg_types.hpp"

namespace narada::scenario {

std::vector<std::size_t> live_brokers(Scenario& s) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        if (!s.network().host_down(s.broker_host(i))) out.push_back(i);
    }
    return out;
}

std::vector<HostId> broker_hosts(Scenario& s) {
    std::vector<HostId> out;
    out.reserve(s.broker_count());
    for (std::size_t i = 0; i < s.broker_count(); ++i) out.push_back(s.broker_host(i));
    return out;
}

bool overlay_connected(Scenario& s) {
    const std::vector<std::size_t> live = live_brokers(s);
    if (live.size() < 2) return true;

    std::map<Endpoint, std::size_t> index_of;
    for (const std::size_t i : live) index_of[s.broker_at(i).endpoint()] = i;

    // Undirected adjacency between live brokers: an edge exists if either
    // side considers the link established.
    std::map<std::size_t, std::set<std::size_t>> adj;
    for (const std::size_t i : live) {
        for (const Endpoint& peer : s.broker_at(i).peers()) {
            const auto it = index_of.find(peer);
            if (it == index_of.end()) continue;  // dead or foreign peer
            adj[i].insert(it->second);
            adj[it->second].insert(i);
        }
    }

    std::set<std::size_t> seen{live.front()};
    std::vector<std::size_t> frontier{live.front()};
    while (!frontier.empty()) {
        const std::size_t at = frontier.back();
        frontier.pop_back();
        for (const std::size_t next : adj[at]) {
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    return seen.size() == live.size();
}

bool run_until(Scenario& s, DurationUs timeout, const std::function<bool()>& pred) {
    const TimeUs deadline = s.kernel().now() + timeout;
    while (!pred()) {
        if (s.kernel().now() >= deadline) return false;
        if (!s.kernel().step()) return pred();
    }
    return true;
}

sim::StormPayloadFactory discovery_storm_payload(std::vector<HostId> sources,
                                                 std::string realm,
                                                 std::string credential) {
    return [sources = std::move(sources), realm = std::move(realm),
            credential = std::move(credential)](Rng& rng, std::uint32_t i) -> Bytes {
        discovery::DiscoveryRequest request;
        request.request_id = Uuid::random(rng);
        request.requester_hostname = "storm-client-" + std::to_string(i);
        const HostId source = sources.empty() ? kInvalidHost : sources[i % sources.size()];
        // Mirrors ChaosInjector::storm_tick's synthetic source endpoint.
        request.reply_to = Endpoint{source, static_cast<std::uint16_t>(50000 + (i % 10000))};
        request.protocols = {"tcp", "udp"};
        request.credential = credential;
        request.realm = realm;
        wire::ByteWriter writer;
        writer.u8(wire::kMsgDiscoveryRequest);
        request.encode(writer);
        return writer.take();
    };
}

sim::FaultPlan request_storm_plan(Scenario& s, DurationUs at, std::uint32_t clients,
                                  DurationUs interval, DurationUs duration) {
    std::vector<HostId> sources{s.client_host()};
    sim::FaultPlan plan;
    plan.request_storm(at, s.bdn().endpoint(), clients, interval, duration, sources,
                       discovery_storm_payload(sources));
    return plan;
}

std::vector<std::uint64_t> overload_digest(Scenario& s) {
    std::vector<std::uint64_t> digest;
    const discovery::Bdn::Stats& b = s.bdn().stats();
    digest.insert(digest.end(),
                  {b.requests_received, b.duplicate_requests, b.acks_sent, b.injections,
                   b.requests_shed_quota, b.requests_shed_overflow, b.requests_serviced,
                   b.queue_depth_peak});
    const discovery::DiscoveryClient::Stats& c = s.client().stats();
    digest.insert(digest.end(), {c.breaker_skips, c.forced_probes, c.adaptive_closes});
    for (std::size_t i = 0; i < s.broker_count(); ++i) {
        const discovery::BrokerDiscoveryPlugin::Stats& p = s.plugin_at(i).stats();
        digest.insert(digest.end(),
                      {p.requests_seen, p.requests_shed, p.responses_sent});
    }
    return digest;
}

}  // namespace narada::scenario
