// Experiment scenarios — the paper's testbed in a box.
//
// A Scenario assembles, on the simulated WAN: a time server, N brokers
// (each with the discovery plugin and an NTP service), one BDN, and one
// requesting node, wired into one of the paper's three broker-network
// topologies (Figures 1, 8, 10) or the extra shapes used by the ablation
// benches. Tests, benches and examples all build on this so every
// experiment constructs the system the same way.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "config/node_config.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"
#include "discovery/rejoin.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "sim/site_catalog.hpp"
#include "timesvc/ntp.hpp"

namespace narada::scenario {

/// Broker-network shapes. Unconnected, star and linear are the paper's
/// Figures 1, 8 and 10; full and ring serve the scaling ablation.
enum class Topology { kUnconnected, kStar, kLinear, kFull, kRing };

std::string to_string(Topology t);

struct ScenarioOptions {
    Topology topology = Topology::kStar;

    /// One broker per entry. Default: the paper's five distributed brokers.
    std::vector<sim::Site> broker_sites = {
        sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn,
        sim::Site::kFsu, sim::Site::kCardiff,
    };
    /// Where the requesting node runs (the paper varies this, Figs 3-7).
    sim::Site client_site = sim::Site::kBloomington;
    sim::Site bdn_site = sim::Site::kBloomington;

    /// BDNs in the deployment. With 2+, the BDNs form a federated peer
    /// group (shared registry plane: sharded ads, scatter/gather
    /// discovery), brokers advertise round-robin across them, and the
    /// client is configured with every BDN endpoint for failover. Extra
    /// BDN hosts are placed at `bdn_site` and appended after the brokers,
    /// so broker/client host indices do not shift against bdn_count.
    std::size_t bdn_count = 1;

    std::uint64_t seed = 1;
    /// Per-router-hop datagram loss (0.0005 => ~1 % loss over 20 hops).
    double per_hop_loss = 0.0005;

    /// How many brokers register with the BDN (from the front of
    /// broker_sites). The linear topology registers exactly one (§9).
    std::size_t register_with_bdn = SIZE_MAX;

    /// Client discovery parameters. The scenario fills in the BDN list and,
    /// if max_responses == 0 is not overridden here, leaves the window as
    /// the cutoff.
    config::DiscoveryConfig discovery = [] {
        config::DiscoveryConfig c;
        c.max_responses = 5;  // the paper's first-N cutoff with 5 brokers
        return c;
    }();
    config::BrokerConfig broker;
    config::BdnConfig bdn;

    /// Give every broker a RejoinSupervisor (with its own discovery client
    /// against the BDN) so the overlay self-heals after crashes and
    /// partitions. Tune thresholds through `rejoin`.
    bool enable_rejoin = false;
    config::RejoinConfig rejoin;

    /// NTP residual error band (paper: nodes within 1-20 ms of each other).
    DurationUs ntp_residual_min = from_ms(1.0);
    DurationUs ntp_residual_max = from_ms(20.0);

    /// Virtual time to run before discovery so NTP converges, brokers
    /// advertise and the BDN measures distances.
    DurationUs warmup = 8 * kSecond;

    /// Observability plane (off by default; obs.enabled = true wires a
    /// MetricsRegistry and SpanRecorder through every component).
    config::ObsConfig obs;
};

class Scenario {
public:
    explicit Scenario(ScenarioOptions options);
    ~Scenario();

    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    /// Run the kernel through the warm-up period (idempotent).
    void warm_up();

    /// Execute one complete discovery run on virtual time and return its
    /// report. Calls warm_up() if it has not happened yet.
    discovery::DiscoveryReport run_discovery();

    // --- access to the assembled system ------------------------------------
    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] sim::SimNetwork& network() { return *network_; }
    [[nodiscard]] discovery::Bdn& bdn() { return *bdns_.front(); }
    [[nodiscard]] discovery::Bdn& bdn_at(std::size_t i) { return *bdns_.at(i); }
    [[nodiscard]] std::size_t bdn_count() const { return bdns_.size(); }
    [[nodiscard]] discovery::DiscoveryClient& client() { return *client_; }
    [[nodiscard]] broker::Broker& broker_at(std::size_t i) { return *brokers_.at(i); }
    [[nodiscard]] discovery::BrokerDiscoveryPlugin& plugin_at(std::size_t i) {
        return *plugins_.at(i);
    }
    [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
    /// Valid only with options.enable_rejoin.
    [[nodiscard]] discovery::RejoinSupervisor& rejoin_at(std::size_t i) {
        return *rejoin_.at(i);
    }
    [[nodiscard]] discovery::DiscoveryClient& broker_client_at(std::size_t i) {
        return *broker_discovery_.at(i);
    }
    [[nodiscard]] HostId broker_host(std::size_t i) const;
    [[nodiscard]] HostId client_host() const;
    [[nodiscard]] HostId bdn_host(std::size_t i = 0) const;
    [[nodiscard]] const ScenarioOptions& options() const { return options_; }

    /// Replace a broker's load model (load-balancing experiments).
    void set_broker_load(std::size_t i, std::shared_ptr<const broker::LoadModel> model);

    // --- observability (valid only with options.obs.enabled) ----------------
    [[nodiscard]] bool observed() const { return metrics_ != nullptr; }
    [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
    [[nodiscard]] obs::SpanRecorder& spans() { return *spans_; }
    /// Aggregate JSON introspection dump over every wired component:
    /// {"bdn":{...},"client":{...},"brokers":[{...}],"plugins":[{...}],
    ///  "metrics":{...}}. Throws std::logic_error when obs is disabled.
    [[nodiscard]] std::string debug_snapshot() const;

private:
    void build();
    void wire_topology();

    ScenarioOptions options_;
    sim::Kernel kernel_;
    std::unique_ptr<sim::SimNetwork> network_;
    std::unique_ptr<sim::WanDeployment> deployment_;

    // Observability plane (options_.obs.enabled). Declared before the
    // components so instrument handles outlive their holders. The BDN has
    // no NTP service of its own, so its spans are stamped from a true-UTC
    // source over the network's reference clock.
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    std::unique_ptr<obs::SpanRecorder> spans_;
    std::unique_ptr<timesvc::FixedUtcSource> bdn_utc_;

    // Node order inside the deployment: [0]=time server, [1]=bdn,
    // [2]=client, [3..3+n)=brokers, [3+n..]=extra BDNs (bdn_count > 1).
    std::unique_ptr<timesvc::TimeServer> time_server_;
    std::vector<std::unique_ptr<discovery::Bdn>> bdns_;
    std::unique_ptr<discovery::DiscoveryClient> client_;
    std::unique_ptr<timesvc::NtpService> client_ntp_;
    std::vector<std::unique_ptr<broker::Broker>> brokers_;
    std::vector<std::unique_ptr<discovery::BrokerDiscoveryPlugin>> plugins_;
    std::vector<std::unique_ptr<timesvc::NtpService>> broker_ntp_;
    // Rejoin supervision (enable_rejoin): per-broker discovery clients and
    // their supervisors. rejoin_ is declared last so supervisors are
    // destroyed before the brokers/plugins/clients they reference.
    std::vector<std::unique_ptr<discovery::DiscoveryClient>> broker_discovery_;
    std::vector<std::unique_ptr<discovery::RejoinSupervisor>> rejoin_;

    bool warmed_up_ = false;
};

/// Phase-breakdown percentages for the Figure 2/9/11 charts.
struct PhaseBreakdown {
    double request_and_ack_pct = 0;   ///< request transmission + BDN ack
    double wait_responses_pct = 0;    ///< waiting for the initial responses
    double shortlist_pct = 0;         ///< response processing & shortlisting
    double ping_select_pct = 0;       ///< ping measurement & selection
};

/// Decompose one report into the paper's sub-activities.
PhaseBreakdown phase_breakdown(const discovery::DiscoveryReport& report);

}  // namespace narada::scenario
