#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace narada::scenario {
namespace {

// Port conventions inside a scenario.
constexpr std::uint16_t kTimePort = 123;
constexpr std::uint16_t kBdnPort = 7100;
constexpr std::uint16_t kClientPort = 7200;
constexpr std::uint16_t kNtpClientPort = 7301;
constexpr std::uint16_t kBrokerPort = 7000;
constexpr std::uint16_t kBrokerNtpPort = 7302;
constexpr std::uint16_t kBrokerDiscPort = 7400;

}  // namespace

std::string to_string(Topology t) {
    switch (t) {
        case Topology::kUnconnected: return "unconnected";
        case Topology::kStar: return "star";
        case Topology::kLinear: return "linear";
        case Topology::kFull: return "full";
        case Topology::kRing: return "ring";
    }
    return "?";
}

Scenario::Scenario(ScenarioOptions options) : options_(std::move(options)) { build(); }

Scenario::~Scenario() = default;

HostId Scenario::broker_host(std::size_t i) const { return deployment_->host(3 + i); }

HostId Scenario::client_host() const { return deployment_->host(2); }

HostId Scenario::bdn_host(std::size_t i) const {
    if (i == 0) return deployment_->host(1);
    return deployment_->host(3 + options_.broker_sites.size() + (i - 1));
}

void Scenario::build() {
    network_ = std::make_unique<sim::SimNetwork>(kernel_, options_.seed);
    network_->set_per_hop_loss(options_.per_hop_loss);

    if (options_.obs.enabled) {
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        spans_ = std::make_unique<obs::SpanRecorder>(options_.obs.span_capacity);
        bdn_utc_ = std::make_unique<timesvc::FixedUtcSource>(network_->true_clock());
    }

    // Deployment order: time server, BDN, client, one host per broker,
    // then extra BDN hosts (appended last so broker/client indices are
    // independent of bdn_count).
    const std::size_t bdn_count = std::max<std::size_t>(1, options_.bdn_count);
    std::vector<sim::Site> placements = {sim::Site::kBloomington, options_.bdn_site,
                                         options_.client_site};
    placements.insert(placements.end(), options_.broker_sites.begin(),
                      options_.broker_sites.end());
    for (std::size_t i = 1; i < bdn_count; ++i) placements.push_back(options_.bdn_site);
    deployment_ = std::make_unique<sim::WanDeployment>(*network_, placements);

    const HostId time_host = deployment_->host(0);
    const HostId client_host_id = deployment_->host(2);

    const Endpoint time_ep{time_host, kTimePort};
    // The time server reference is true UTC (an NTP stratum-1 source).
    time_server_ = std::make_unique<timesvc::TimeServer>(*network_, time_ep,
                                                         network_->true_clock());

    // --- BDNs ----------------------------------------------------------------
    std::vector<Endpoint> bdn_eps;
    for (std::size_t i = 0; i < bdn_count; ++i) {
        bdn_eps.push_back({bdn_host(i), kBdnPort});
    }
    config::BdnConfig bdn_cfg = options_.bdn;
    if (bdn_count > 1 && bdn_cfg.peer_group.empty()) {
        // Federated peer group: the shared registry plane over every BDN.
        bdn_cfg.peer_group = bdn_eps;
    }
    for (std::size_t i = 0; i < bdn_count; ++i) {
        const std::string name = i == 0 ? "gridservicelocator.org"
                                        : "bdn" + std::to_string(i) +
                                              ".gridservicelocator.org";
        bdns_.push_back(std::make_unique<discovery::Bdn>(
            kernel_, *network_, bdn_eps[i], network_->host_clock(bdn_host(i)), bdn_cfg,
            name));
    }

    // --- brokers -------------------------------------------------------------
    const std::size_t n = options_.broker_sites.size();
    auto residual = [this]() -> DurationUs {
        const DurationUs magnitude = network_->rng().uniform_int(options_.ntp_residual_min,
                                                                 options_.ntp_residual_max);
        return network_->rng().chance(0.5) ? magnitude : -magnitude;
    };

    for (std::size_t i = 0; i < n; ++i) {
        const HostId host = deployment_->host(3 + i);
        const Endpoint broker_ep{host, kBrokerPort};

        // Each broker runs its own NTP service against the time server (§5).
        timesvc::NtpOptions ntp_options;
        ntp_options.injected_residual = residual();
        auto ntp = std::make_unique<timesvc::NtpService>(
            kernel_, *network_, Endpoint{host, kBrokerNtpPort}, network_->host_clock(host),
            time_ep, ntp_options);
        ntp->start();

        config::BrokerConfig broker_cfg = options_.broker;
        if (i < options_.register_with_bdn) {
            // Round-robin across the BDN group: in federated mode the ring
            // forwards each ad to its owners anyway, so spreading the entry
            // points exercises the forwarding path.
            broker_cfg.advertise_bdns = {bdn_eps[i % bdn_eps.size()]};
        } else {
            broker_cfg.advertise_bdns.clear();
        }

        const sim::SiteInfo& info = sim::site_info(options_.broker_sites[i]);
        auto node = std::make_unique<broker::Broker>(
            kernel_, *network_, broker_ep, network_->host_clock(host), *ntp, broker_cfg,
            info.machine + "/broker" + std::to_string(i));

        discovery::BrokerIdentity identity;
        identity.hostname = info.machine;
        identity.realm = info.realm;
        identity.geo_location = info.location;
        identity.institution = info.site;
        auto plugin = std::make_unique<discovery::BrokerDiscoveryPlugin>(identity);
        node->add_plugin(plugin.get());

        broker_ntp_.push_back(std::move(ntp));
        plugins_.push_back(std::move(plugin));
        brokers_.push_back(std::move(node));

        if (options_.enable_rejoin) {
            // Each broker gets its own discovery client so healing runs
            // never contend with the requesting node's.
            config::DiscoveryConfig rejoin_cfg = options_.discovery;
            rejoin_cfg.bdns = bdn_eps;
            rejoin_cfg.use_multicast = false;
            auto rejoin_client = std::make_unique<discovery::DiscoveryClient>(
                kernel_, *network_, Endpoint{host, kBrokerDiscPort},
                network_->host_clock(host), *broker_ntp_.back(), rejoin_cfg,
                info.machine + "/rejoin", info.realm);
            auto supervisor = std::make_unique<discovery::RejoinSupervisor>(
                *brokers_.back(), *plugins_.back(), *rejoin_client, options_.rejoin);
            broker_discovery_.push_back(std::move(rejoin_client));
            rejoin_.push_back(std::move(supervisor));
        }
    }

    wire_topology();

    // --- requesting node -------------------------------------------------------
    timesvc::NtpOptions client_ntp_options;
    client_ntp_options.injected_residual = residual();
    client_ntp_ = std::make_unique<timesvc::NtpService>(
        kernel_, *network_, Endpoint{client_host_id, kNtpClientPort},
        network_->host_clock(client_host_id), time_ep, client_ntp_options);
    client_ntp_->start();

    config::DiscoveryConfig discovery_cfg = options_.discovery;
    if (discovery_cfg.bdns.empty() && !discovery_cfg.use_multicast) {
        discovery_cfg.bdns = bdn_eps;  // every BDN, for failover (§7)
    }
    const sim::SiteInfo& client_info = sim::site_info(options_.client_site);
    client_ = std::make_unique<discovery::DiscoveryClient>(
        kernel_, *network_, Endpoint{client_host_id, kClientPort},
        network_->host_clock(client_host_id), *client_ntp_, discovery_cfg,
        "client." + client_info.machine, client_info.realm);

    if (options_.obs.enabled) {
        for (auto& b : bdns_) {
            b->set_observability(metrics_.get(), spans_.get(), bdn_utc_.get());
        }
        client_->set_observability(metrics_.get(), spans_.get(),
                                   options_.obs.trace_sample_rate);
        for (std::size_t i = 0; i < brokers_.size(); ++i) {
            brokers_[i]->set_observability(metrics_.get());
            // Plugins are attached (add_plugin above), so instruments carry
            // the broker name.
            plugins_[i]->set_observability(metrics_.get(), spans_.get());
        }
    }

    // Brokers advertise on start; the BDNs start pinging registrants.
    for (auto& b : bdns_) b->start();
    for (auto& b : brokers_) b->start();
    for (auto& supervisor : rejoin_) supervisor->start();
}

void Scenario::wire_topology() {
    const std::size_t n = brokers_.size();
    if (n < 2) return;
    switch (options_.topology) {
        case Topology::kUnconnected:
            break;
        case Topology::kStar:
            // Figure 8: broker 0 is the hub.
            for (std::size_t i = 1; i < n; ++i) {
                brokers_[i]->connect_to_peer(brokers_[0]->endpoint());
            }
            break;
        case Topology::kLinear:
            // Figure 10: a chain; only the head registers with the BDN
            // (callers set register_with_bdn = 1).
            for (std::size_t i = 0; i + 1 < n; ++i) {
                brokers_[i]->connect_to_peer(brokers_[i + 1]->endpoint());
            }
            break;
        case Topology::kFull:
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = i + 1; j < n; ++j) {
                    brokers_[i]->connect_to_peer(brokers_[j]->endpoint());
                }
            }
            break;
        case Topology::kRing:
            for (std::size_t i = 0; i < n; ++i) {
                brokers_[i]->connect_to_peer(brokers_[(i + 1) % n]->endpoint());
            }
            break;
    }
}

void Scenario::warm_up() {
    if (warmed_up_) return;
    warmed_up_ = true;
    kernel_.run_until(kernel_.now() + options_.warmup);
}

discovery::DiscoveryReport Scenario::run_discovery() {
    warm_up();
    std::optional<discovery::DiscoveryReport> result;
    client_->discover([&result](const discovery::DiscoveryReport& report) { result = report; });

    // The BDN's periodic distance refresh keeps the event queue non-empty,
    // so step until the callback fires, with a generous time guard.
    const TimeUs deadline = kernel_.now() + 10 * 60 * kSecond;
    while (!result) {
        if (!kernel_.step()) {
            throw std::runtime_error("scenario: event queue drained before discovery finished");
        }
        if (kernel_.now() > deadline) {
            throw std::runtime_error("scenario: discovery did not finish within 10 minutes");
        }
    }
    return *result;
}

void Scenario::set_broker_load(std::size_t i, std::shared_ptr<const broker::LoadModel> model) {
    brokers_.at(i)->set_load_model(std::move(model));
}

std::string Scenario::debug_snapshot() const {
    if (metrics_ == nullptr) {
        throw std::logic_error("scenario: debug_snapshot() requires options.obs.enabled");
    }
    obs::JsonWriter w;
    w.begin_object();
    w.key("bdn").raw(bdns_.front()->debug_snapshot());
    if (bdns_.size() > 1) {
        w.key("bdns").begin_array();
        for (const auto& b : bdns_) w.raw(b->debug_snapshot());
        w.end_array();
    }
    w.key("client").raw(client_->debug_snapshot());
    w.key("brokers").begin_array();
    for (const auto& b : brokers_) w.raw(b->debug_snapshot());
    w.end_array();
    w.key("plugins").begin_array();
    for (const auto& p : plugins_) w.raw(p->debug_snapshot());
    w.end_array();
    if (!rejoin_.empty()) {
        w.key("rejoin").begin_array();
        for (const auto& s : rejoin_) {
            w.begin_object()
                .field("below_floor", s->below_floor())
                .field("healing", s->healing())
                .field("backoff_us", static_cast<std::int64_t>(s->current_backoff()))
                .field("floor_violations", s->stats().floor_violations)
                .field("attempts", s->stats().attempts)
                .field("successes", s->stats().successes)
                .field("failures", s->stats().failures)
                .end_object();
        }
        w.end_array();
    }
    w.key("metrics").raw(metrics_->to_json());
    w.end_object();
    return w.take();
}

PhaseBreakdown phase_breakdown(const discovery::DiscoveryReport& report) {
    PhaseBreakdown out;
    const double total = static_cast<double>(report.total_duration);
    if (total <= 0) return out;
    const double ack = static_cast<double>(report.time_to_ack < 0 ? 0 : report.time_to_ack);
    const double collect = static_cast<double>(report.collection_duration);
    const double wait = collect > ack ? collect - ack : 0.0;
    out.request_and_ack_pct = 100.0 * ack / total;
    out.wait_responses_pct = 100.0 * wait / total;
    out.shortlist_pct = 100.0 * static_cast<double>(report.scoring_duration) / total;
    out.ping_select_pct = 100.0 * static_cast<double>(report.ping_duration) / total;
    return out;
}

}  // namespace scenario
