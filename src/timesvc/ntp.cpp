#include "timesvc/ntp.hpp"

#include "common/log.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace narada::timesvc {

using wire::kMsgTimeRequest;
using wire::kMsgTimeResponse;

void NtpEstimator::add_sample(TimeUs t1, TimeUs t2, TimeUs t3, TimeUs t4) {
    const DurationUs offset = ((t2 - t1) + (t3 - t4)) / 2;
    const DurationUs delay = (t4 - t1) - (t3 - t2);
    ++samples_;
    if (!have_ || delay < best_delay_) {
        have_ = true;
        best_delay_ = delay;
        best_offset_ = offset;
    }
}

std::optional<DurationUs> NtpEstimator::offset() const {
    if (!have_) return std::nullopt;
    return best_offset_;
}

std::optional<DurationUs> NtpEstimator::best_delay() const {
    if (!have_) return std::nullopt;
    return best_delay_;
}

void NtpEstimator::reset() {
    samples_ = 0;
    have_ = false;
    best_offset_ = 0;
    best_delay_ = 0;
}

TimeServer::TimeServer(transport::Transport& transport, const Endpoint& local, const Clock& utc)
    : transport_(transport), local_(local), utc_(utc) {
    transport_.bind(local_, this);
}

TimeServer::~TimeServer() { transport_.unbind(local_); }

void TimeServer::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        if (reader.u8() != kMsgTimeRequest) return;
        const std::uint32_t seq = reader.u32();
        const TimeUs client_t1 = reader.i64();
        const TimeUs receive_utc = utc_.now();

        wire::ByteWriter writer;
        writer.u8(kMsgTimeResponse);
        writer.u32(seq);
        writer.i64(client_t1);
        writer.i64(receive_utc);
        writer.i64(utc_.now());  // transmit timestamp
        transport_.send_datagram(local_, from, writer.take());
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("timesvc", "malformed time request from {}: {}", from.str(), e.what());
    }
}

NtpService::NtpService(Scheduler& scheduler, transport::Transport& transport,
                       const Endpoint& local, const Clock& local_clock, const Endpoint& server,
                       Options options)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      server_(server),
      options_(options) {
    transport_.bind(local_, this);
}

NtpService::~NtpService() {
    scheduler_.cancel_timer(timer_);
    transport_.unbind(local_);
}

void NtpService::start() {
    if (probes_sent_ > 0 || synchronized_) return;
    send_probe();
}

void NtpService::send_probe() {
    if (probes_sent_ >= options_.sample_count) {
        finish();
        return;
    }
    ++probes_sent_;
    wire::ByteWriter writer;
    writer.u8(kMsgTimeRequest);
    writer.u32(next_seq_++);
    writer.i64(local_clock_.now());
    transport_.send_datagram(local_, server_, writer.take());

    timer_ = scheduler_.schedule(options_.sample_interval, [this] { send_probe(); });
}

void NtpService::on_datagram(const Endpoint& from, const Bytes& data) {
    if (from != server_) return;
    try {
        wire::ByteReader reader(data);
        if (reader.u8() != kMsgTimeResponse) return;
        (void)reader.u32();  // seq; probes are idempotent, any reply helps
        const TimeUs t1 = reader.i64();
        const TimeUs t2 = reader.i64();
        const TimeUs t3 = reader.i64();
        const TimeUs t4 = local_clock_.now();
        estimator_.add_sample(t1, t2, t3, t4);
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("timesvc", "malformed time response from {}: {}", from.str(), e.what());
    }
}

void NtpService::finish() {
    if (synchronized_) return;
    const auto estimated = estimator_.offset();
    if (!estimated) {
        // Every probe was lost (dead server / partitioned network). Retry
        // the whole schedule; a node cannot operate without UTC (§5).
        NARADA_WARN("timesvc", "{}: no NTP samples, retrying", local_.str());
        probes_sent_ = 0;
        timer_ = scheduler_.schedule(options_.sample_interval, [this] { send_probe(); });
        return;
    }
    offset_ = *estimated + options_.injected_residual;
    synchronized_ = true;
    NARADA_DEBUG("timesvc", "{}: synchronized, offset {} us ({} samples)", local_.str(),
                 offset_, estimator_.samples());
    if (on_sync_) on_sync_();
}

TimeUs NtpService::utc_now() const { return local_clock_.now() + offset_; }

}  // namespace narada::timesvc
