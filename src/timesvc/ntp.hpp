// NTP-style time service.
//
// NaradaBrokering timestamps are "based on the Network Time Protocol which
// ensures that every node is within 1-20 msecs of each other"; the NTP
// service is "initialized during node initializations and generally takes
// between 3-5 seconds before the local clock offsets are computed" (§5).
// The discovery client then estimates one-way delays by subtracting a
// response's embedded UTC timestamp from its own UTC estimate (§6).
//
// This module provides:
//   * NtpEstimator — the classic four-timestamp offset/delay computation,
//     keeping the minimum-delay sample (pure, unit-testable);
//   * TimeServer  — answers time requests with receive/transmit UTC stamps;
//   * NtpService  — a node-side actor that samples a TimeServer over the
//     transport, converges after its sample schedule (~3-5 s with the
//     default 8 samples x 500 ms), then serves UTC estimates. An optional
//     residual-error injection models the real-world 1-20 ms NTP accuracy
//     band on top of whatever asymmetry the network itself introduces.
#pragma once

#include <functional>
#include <optional>

#include "common/clock.hpp"
#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "transport/transport.hpp"

namespace narada::timesvc {

/// A node's view of UTC. The discovery protocol only ever consumes this.
class UtcSource {
public:
    virtual ~UtcSource() = default;
    [[nodiscard]] virtual TimeUs utc_now() const = 0;
    [[nodiscard]] virtual bool synchronized() const = 0;
};

/// Trivial UtcSource for tests and for nodes with perfect clocks.
class FixedUtcSource final : public UtcSource {
public:
    FixedUtcSource(const Clock& clock, DurationUs offset = 0)
        : clock_(clock), offset_(offset) {}
    [[nodiscard]] TimeUs utc_now() const override { return clock_.now() + offset_; }
    [[nodiscard]] bool synchronized() const override { return true; }

private:
    const Clock& clock_;
    DurationUs offset_;
};

/// Four-timestamp NTP offset estimation:
///   t1 = client transmit (local clock)     t2 = server receive (UTC)
///   t3 = server transmit (UTC)             t4 = client receive (local clock)
///   offset = ((t2 - t1) + (t3 - t4)) / 2   delay = (t4 - t1) - (t3 - t2)
/// The estimate with the smallest round-trip delay is retained, as in RFC
/// 5905's clock filter.
class NtpEstimator {
public:
    void add_sample(TimeUs t1, TimeUs t2, TimeUs t3, TimeUs t4);

    [[nodiscard]] std::size_t samples() const { return samples_; }
    [[nodiscard]] std::optional<DurationUs> offset() const;
    [[nodiscard]] std::optional<DurationUs> best_delay() const;
    void reset();

private:
    std::size_t samples_ = 0;
    DurationUs best_offset_ = 0;
    DurationUs best_delay_ = 0;
    bool have_ = false;
};

/// Server side: answers time requests with (receive, transmit) UTC stamps.
class TimeServer final : public transport::MessageHandler {
public:
    /// `utc` is this server's reference clock (true time in simulation).
    TimeServer(transport::Transport& transport, const Endpoint& local, const Clock& utc);
    ~TimeServer() override;

    TimeServer(const TimeServer&) = delete;
    TimeServer& operator=(const TimeServer&) = delete;

    void on_datagram(const Endpoint& from, const Bytes& data) override;

    [[nodiscard]] const Endpoint& endpoint() const { return local_; }

private:
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& utc_;
};

/// Client side: samples a TimeServer, converges, serves UTC estimates.
/// Tuning for NtpService's sampling schedule.
struct NtpOptions {
    std::uint32_t sample_count = 8;
    DurationUs sample_interval = from_ms(500);  ///< 8 x 500 ms ~= 4 s init
    /// Extra offset error applied after convergence; models the paper's
    /// 1-20 ms NTP accuracy band. 0 = trust the protocol's estimate.
    DurationUs injected_residual = 0;
};

class NtpService final : public transport::MessageHandler, public UtcSource {
public:
    using Options = NtpOptions;

    NtpService(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
               const Clock& local_clock, const Endpoint& server, Options options = {});
    ~NtpService() override;

    NtpService(const NtpService&) = delete;
    NtpService& operator=(const NtpService&) = delete;

    /// Begin the sampling schedule. Completion can be observed through
    /// synchronized() or the callback.
    void start();

    /// Invoked once when the offset is first computed.
    void on_synchronized(std::function<void()> callback) { on_sync_ = std::move(callback); }

    void on_datagram(const Endpoint& from, const Bytes& data) override;

    [[nodiscard]] TimeUs utc_now() const override;
    [[nodiscard]] bool synchronized() const override { return synchronized_; }
    [[nodiscard]] DurationUs offset() const { return offset_; }
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }

private:
    void send_probe();
    void finish();

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    Endpoint server_;
    Options options_;

    NtpEstimator estimator_;
    std::uint32_t probes_sent_ = 0;
    std::uint32_t next_seq_ = 1;
    bool synchronized_ = false;
    DurationUs offset_ = 0;
    TimerHandle timer_ = kInvalidTimerHandle;
    std::function<void()> on_sync_;
};

}  // namespace narada::timesvc
