// Swarm workload waves.
//
// Mirrors the sim::FaultPlan idiom: a WorkloadPlan is a declarative,
// seed-replayable schedule of population waves built with fluent helpers,
// and a Workload plays it against a ClientSwarm on the kernel. Waves are
// tick-based (one kernel event starts a whole cohort) so a million-arrival
// flash crowd costs hundreds of events, not a million.
//
//   * flash_crowd  — `count` clients arrive over `over`, linear ramp; the
//     paper-scale stampede onto a fresh broker plane.
//   * departures   — the mirror image: a cohort leaves over a window.
//   * diurnal      — the active population tracks
//     base * (1 + amplitude * sin(2*pi*t/period)) for `duration`.
//   * mobile_churn — every `interval`, `fraction` of the active population
//     rebinds to a fresh address (NAT expiry) and rediscovers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/kernel.hpp"
#include "swarm/client_swarm.hpp"

namespace narada::swarm {

struct WorkloadPlan {
    enum class Kind : std::uint8_t { kFlashCrowd, kDepartures, kDiurnal, kMobileChurn };

    struct Wave {
        Kind kind = Kind::kFlashCrowd;
        TimeUs at = 0;            ///< absolute virtual start time
        DurationUs over = 0;      ///< ramp window (flash crowd / departures)
        DurationUs period = 0;    ///< diurnal sine period
        DurationUs duration = 0;  ///< diurnal / churn lifetime
        DurationUs tick = kSecond;
        std::uint32_t count = 0;  ///< cohort size (crowd/departures), base (diurnal)
        double fraction = 0.0;    ///< churn fraction per tick
        double amplitude = 0.0;   ///< diurnal swing as a fraction of base
        std::uint32_t profile = 0;
    };

    std::vector<Wave> waves;

    WorkloadPlan& flash_crowd(TimeUs at, std::uint32_t clients, DurationUs over,
                              std::uint32_t profile = 0);
    WorkloadPlan& departures(TimeUs at, std::uint32_t clients, DurationUs over);
    WorkloadPlan& diurnal(TimeUs at, std::uint32_t base, double amplitude, DurationUs period,
                          DurationUs duration, std::uint32_t profile = 0);
    WorkloadPlan& mobile_churn(TimeUs at, double fraction, DurationUs interval,
                               DurationUs duration);

    /// Last scheduled wave activity (the time by which the plan is fully
    /// played; discovery traffic it provoked may run longer).
    [[nodiscard]] TimeUs end() const;
};

class Workload {
public:
    Workload(sim::Kernel& kernel, ClientSwarm& swarm);
    Workload(const Workload&) = delete;
    Workload& operator=(const Workload&) = delete;

    /// Schedule every wave of `plan`. Call once; times are absolute.
    void run(const WorkloadPlan& plan);

    struct Stats {
        std::uint64_t arrivals = 0;
        std::uint64_t departures = 0;
        std::uint64_t rebinds = 0;
        std::uint64_t ticks = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    struct WaveState {
        WorkloadPlan::Wave wave;
        std::uint32_t ticks_total = 0;
        std::uint32_t tick = 0;      ///< next tick ordinal
        std::uint32_t done = 0;      ///< cohort members handled so far
    };

    static void wave_trampoline(void* ctx, std::uint64_t arg);
    void on_wave_tick(std::uint32_t wave_index);
    void schedule_tick(std::uint32_t wave_index, TimeUs at);

    sim::Kernel& kernel_;
    ClientSwarm& swarm_;
    std::vector<WaveState> waves_;
    Stats stats_;
};

}  // namespace narada::swarm
