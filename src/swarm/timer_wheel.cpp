#include "swarm/timer_wheel.hpp"

#include <stdexcept>
#include <utility>

namespace narada::swarm {

namespace {
constexpr std::uint32_t kSlotMask = TimerWheel::kSlots - 1;
}  // namespace

TimerWheel::TimerWheel(std::uint32_t capacity, TimeUs start, std::uint32_t granularity_log2)
    : granularity_log2_(granularity_log2),
      granule_mask_((std::uint64_t{1} << granularity_log2) - 1),
      cur_tick_(start > 0 ? static_cast<std::uint64_t>(start) >> granularity_log2 : 0),
      deadline_(capacity, kUnarmed),
      gen_(capacity, 1),
      slots_(static_cast<std::size_t>(kLevels) * kSlots) {
    if (granularity_log2 >= 32) throw std::invalid_argument("TimerWheel: granularity too coarse");
}

void TimerWheel::insert(std::uint32_t index, std::uint64_t tick, bool allow_current) {
    const std::uint64_t floor_tick = allow_current ? cur_tick_ : cur_tick_ + 1;
    if (tick < floor_tick) tick = floor_tick;
    const std::uint64_t delta = tick - cur_tick_;
    std::uint32_t level = 0;
    if (delta < kSlots) {
        level = 0;
    } else if (delta < (std::uint64_t{1} << (2 * kSlotBits))) {
        level = 1;
    } else if (delta < (std::uint64_t{1} << (3 * kSlotBits))) {
        level = 2;
    } else {
        level = 3;
        // Beyond the total span: park at the far edge of the outer level;
        // the entry re-cascades (with its true deadline) when reached.
        const std::uint64_t span = std::uint64_t{1} << (4 * kSlotBits);
        if (delta >= span) tick = cur_tick_ + span - 1;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(tick >> (level * kSlotBits)) & kSlotMask;
    slots_[level * kSlots + slot].push_back((Entry{gen_[index]} << 32) | index);
}

void TimerWheel::schedule(std::uint32_t index, TimeUs deadline) {
    if (deadline == kUnarmed) {
        cancel(index);
        return;
    }
    if (++gen_[index] == 0) gen_[index] = 1;  // invalidate any old slot entry
    if (deadline_[index] == kUnarmed) ++armed_;
    deadline_[index] = deadline;
    insert(index, tick_of(deadline), /*allow_current=*/false);
}

void TimerWheel::cancel(std::uint32_t index) {
    if (deadline_[index] == kUnarmed) return;
    if (++gen_[index] == 0) gen_[index] = 1;
    deadline_[index] = kUnarmed;
    --armed_;
}

void TimerWheel::cascade(std::uint32_t level) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(cur_tick_ >> (level * kSlotBits)) & kSlotMask;
    std::vector<Entry>& bucket = slots_[level * kSlots + slot];
    if (bucket.empty()) return;
    cascade_scratch_.clear();
    cascade_scratch_.swap(bucket);
    for (const Entry e : cascade_scratch_) {
        const auto index = static_cast<std::uint32_t>(e & 0xFFFFFFFFu);
        if (static_cast<std::uint32_t>(e >> 32) != gen_[index]) continue;  // stale
        insert(index, tick_of(deadline_[index]), /*allow_current=*/true);
    }
}

std::uint64_t TimerWheel::next_event_tick() const {
    std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t level = 0; level < kLevels; ++level) {
        const std::uint32_t shift = level * kSlotBits;
        const std::uint64_t pos = cur_tick_ >> shift;
        for (std::uint64_t p = pos + 1; p <= pos + kSlots; ++p) {
            if (slots_[level * kSlots + (p & kSlotMask)].empty()) continue;
            const std::uint64_t tick = p << shift;
            if (tick < best_tick) best_tick = tick;
            break;  // first non-empty slot per level is the earliest there
        }
    }
    return best_tick;
}

void TimerWheel::advance(TimeUs now, std::vector<std::uint32_t>& due) {
    if (now < 0) return;
    const std::uint64_t target = static_cast<std::uint64_t>(now) >> granularity_log2_;
    while (cur_tick_ < target) {
        if (armed_ == 0) {
            // Nothing live anywhere: jump. Stale entries left behind are
            // dropped by their generation check whenever their slot is
            // next processed.
            cur_tick_ = target;
            break;
        }
        // Fast-forward across empty space: the next tick at which any slot
        // is processed (level-0 harvest at p, level-L cascade at p<<shift)
        // is exactly what the hint scan computes, so a lone far-future
        // deadline costs O(levels) wakes, not O(ticks) iterations.
        const std::uint64_t next = next_event_tick();
        if (next > target) {
            cur_tick_ = target;
            break;
        }
        if (next > cur_tick_ + 1) cur_tick_ = next - 1;
        ++cur_tick_;
        if ((cur_tick_ & kSlotMask) == 0) {
            // Outermost first: a higher-level cascade fills the slot the
            // next lower cascade is about to distribute.
            if (((cur_tick_ >> kSlotBits) & kSlotMask) == 0) {
                if (((cur_tick_ >> (2 * kSlotBits)) & kSlotMask) == 0) cascade(3);
                cascade(2);
            }
            cascade(1);
        }
        std::vector<Entry>& bucket = slots_[cur_tick_ & kSlotMask];
        if (bucket.empty()) continue;
        cascade_scratch_.clear();
        cascade_scratch_.swap(bucket);
        for (const Entry e : cascade_scratch_) {
            const auto index = static_cast<std::uint32_t>(e & 0xFFFFFFFFu);
            if (static_cast<std::uint32_t>(e >> 32) != gen_[index]) continue;  // stale
            if (tick_of(deadline_[index]) > cur_tick_) {
                // Defensive: a mis-binned entry goes back by its true
                // deadline instead of firing early.
                insert(index, tick_of(deadline_[index]), /*allow_current=*/false);
                continue;
            }
            deadline_[index] = kUnarmed;
            --armed_;
            due.push_back(index);
        }
    }
}

TimeUs TimerWheel::next_deadline_hint() const {
    if (armed_ == 0) return kUnarmed;
    std::uint64_t best_tick = next_event_tick();
    if (best_tick == std::numeric_limits<std::uint64_t>::max()) {
        best_tick = cur_tick_ + 1;  // defensive; armed_ > 0 implies a slot exists
    }
    return static_cast<TimeUs>(best_tick << granularity_log2_);
}

std::size_t TimerWheel::memory_bytes() const {
    std::size_t bytes = deadline_.capacity() * sizeof(TimeUs) +
                        gen_.capacity() * sizeof(std::uint32_t) +
                        cascade_scratch_.capacity() * sizeof(Entry) +
                        slots_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& bucket : slots_) bytes += bucket.capacity() * sizeof(Entry);
    return bytes;
}

}  // namespace narada::swarm
