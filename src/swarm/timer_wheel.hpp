// Bucketed hierarchical timer wheel for the client swarm.
//
// A million swarm endpoints each keep exactly one pending deadline
// (retransmit, backoff expiry, or rediscovery). Driving those through the
// kernel's general-purpose heap would mean a million live heap entries and
// O(log n) churn per reschedule; the wheel instead holds one slot entry per
// armed endpoint in O(1) schedule/cancel, and the swarm arms a single
// kernel timer at the wheel's next-deadline hint.
//
// Layout: four levels of 256 slots at a base granularity of 2^10 us
// (~1.024 ms per tick). Level 0 spans ~262 ms, level 1 ~67 s, level 2
// ~4.8 h, level 3 ~51 days; deadlines beyond the total span park in the
// outermost level and re-cascade. Cancellation is lazy: each endpoint has a
// generation counter and slot entries carry the generation they were
// inserted with, so a stale entry is dropped when its slot is processed.
//
// Timers are identified by a dense index in [0, capacity) chosen by the
// caller (the swarm uses the endpoint index); each index holds at most one
// armed deadline — scheduling again reschedules. Deadlines are rounded UP
// to the next tick boundary, so a timer never fires before its deadline;
// advance() yields due indices in deterministic slot-then-insertion order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace narada::swarm {

class TimerWheel {
public:
    /// Sentinel deadline meaning "not armed" / "no hint".
    static constexpr TimeUs kUnarmed = std::numeric_limits<TimeUs>::max();

    static constexpr std::uint32_t kSlotBits = 8;
    static constexpr std::uint32_t kSlots = 1u << kSlotBits;  // per level
    static constexpr std::uint32_t kLevels = 4;

    /// `capacity` timers (indices 0..capacity-1); `start` is the initial
    /// virtual time; ticks are 2^granularity_log2 microseconds.
    explicit TimerWheel(std::uint32_t capacity, TimeUs start = 0,
                        std::uint32_t granularity_log2 = 10);

    /// Arm (or re-arm) timer `index` for absolute time `deadline`.
    void schedule(std::uint32_t index, TimeUs deadline);

    /// Disarm timer `index`. No-op if not armed.
    void cancel(std::uint32_t index);

    [[nodiscard]] bool armed(std::uint32_t index) const { return deadline_[index] != kUnarmed; }
    [[nodiscard]] TimeUs deadline(std::uint32_t index) const { return deadline_[index]; }

    /// Advance wheel time to `now`, appending every index whose deadline
    /// has been reached to `due` (the caller clears the vector). Indices
    /// are disarmed before being reported; the handler may re-schedule.
    void advance(TimeUs now, std::vector<std::uint32_t>& due);

    /// A time T <= the earliest armed deadline such that advance(T) makes
    /// progress (fires timers or cascades toward them). Conservative: the
    /// wake-up may harvest nothing (stale entries, outer-level cascade), in
    /// which case the caller simply asks for a new hint — each hint is
    /// strictly later, so the process terminates at the real deadline.
    /// Returns kUnarmed when no timer is armed.
    [[nodiscard]] TimeUs next_deadline_hint() const;

    /// Round `t` up to the next tick boundary — the earliest time an
    /// advance() can harvest a deadline at `t` (callers arm the kernel
    /// here to avoid a wasted sub-granule wake-up).
    [[nodiscard]] TimeUs ceil_to_tick(TimeUs t) const {
        if (t <= 0) return 0;
        return static_cast<TimeUs>(tick_of(t) << granularity_log2_);
    }

    [[nodiscard]] std::size_t armed_count() const { return armed_; }
    [[nodiscard]] std::uint32_t capacity() const { return static_cast<std::uint32_t>(deadline_.size()); }

    /// Bytes of memory retained (arrays + slot vector capacities).
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    using Entry = std::uint64_t;  ///< (generation << 32) | index

    [[nodiscard]] std::uint64_t tick_of(TimeUs t) const {
        if (t <= 0) return 0;
        const auto u = static_cast<std::uint64_t>(t);
        return (u >> granularity_log2_) + ((u & granule_mask_) != 0 ? 1 : 0);
    }

    /// Place `index` (at its current generation) into the slot for
    /// `tick`. `allow_current` lets cascades target the tick being
    /// processed (its level-0 slot has not been harvested yet); external
    /// schedules go to the next tick at the earliest.
    void insert(std::uint32_t index, std::uint64_t tick, bool allow_current);

    /// Re-distribute the level-`level` slot under the current tick.
    void cascade(std::uint32_t level);

    /// Earliest tick > cur_tick_ at which any slot is processed: a level-0
    /// slot p harvests at tick p, a level-L slot p cascades at p << (L*8).
    /// uint64 max when every slot in range is empty.
    [[nodiscard]] std::uint64_t next_event_tick() const;

    std::uint32_t granularity_log2_;
    std::uint64_t granule_mask_;
    std::uint64_t cur_tick_;
    std::size_t armed_ = 0;

    std::vector<TimeUs> deadline_;      ///< kUnarmed when idle
    std::vector<std::uint32_t> gen_;    ///< bumped on every (re)schedule/cancel
    std::vector<std::vector<Entry>> slots_;  ///< kLevels * kSlots, capacity reused
    std::vector<Entry> cascade_scratch_;
};

}  // namespace narada::swarm
