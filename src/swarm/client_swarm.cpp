#include "swarm/client_swarm.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "discovery/messages.hpp"
#include "obs/memory.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace narada::swarm {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

std::uint64_t splitmix_step(std::uint64_t z) {
    z += kGolden;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void patch_be16(Bytes& buf, std::size_t off, std::uint16_t v) {
    buf[off] = static_cast<std::uint8_t>(v >> 8);
    buf[off + 1] = static_cast<std::uint8_t>(v);
}

void patch_be32(Bytes& buf, std::size_t off, std::uint32_t v) {
    patch_be16(buf, off, static_cast<std::uint16_t>(v >> 16));
    patch_be16(buf, off + 2, static_cast<std::uint16_t>(v));
}

void patch_be64(Bytes& buf, std::size_t off, std::uint64_t v) {
    patch_be32(buf, off, static_cast<std::uint32_t>(v >> 32));
    patch_be32(buf, off + 4, static_cast<std::uint32_t>(v));
}

}  // namespace

ClientSwarm::ClientSwarm(sim::Kernel& kernel, sim::SimNetwork& network, SwarmOptions options)
    : kernel_(kernel),
      network_(network),
      options_(std::move(options)),
      wheel_(options_.capacity, kernel.now()) {
    if (options_.capacity == 0) throw std::invalid_argument("ClientSwarm: zero capacity");
    if (options_.bdns.empty()) throw std::invalid_argument("ClientSwarm: no BDN endpoints");
    if (options_.profiles.empty()) throw std::invalid_argument("ClientSwarm: no profiles");
    const std::uint32_t n = options_.capacity;
    state_.assign(n, kDetached);
    profile_.assign(n, 0);
    flags_.assign(n, 0);
    attempts_.assign(n, 0);
    backoff_.assign(n, 0);
    last_bdn_.assign(n, 0);
    broker_.assign(n, kNoBroker);
    seq_.assign(n, 0);
    addr_.assign(n, kNoAddr);
    run_start_.assign(n, 0);
    rng_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        rng_[i] = options_.seed ^ (kGolden * (std::uint64_t{i} + 1));
    }
    bdn_health_.resize(options_.bdns.size());
    build_template();
}

ClientSwarm::~ClientSwarm() {
    if (armed_timer_ != sim::kInvalidTimer) kernel_.cancel(armed_timer_);
    for (const HostSlot& h : hosts_) network_.unbind_range(h.host);
}

void ClientSwarm::build_template() {
    const Uuid sentinel_id = Uuid::from_halves(0xA5A5A5A5A5A5A5A5ull, 0x5A5A5A5A5A5A5A5Aull);
    const Endpoint sentinel_reply{0xAABBCCDDu, 0xEEFF};
    discovery::DiscoveryRequest req;
    req.request_id = sentinel_id;
    req.requester_hostname = options_.hostname;
    req.reply_to = sentinel_reply;
    req.protocols = {"udp"};
    req.realm = options_.realm;
    wire::ByteWriter writer(1 + req.measured_size());
    writer.u8(wire::kMsgDiscoveryRequest);
    req.encode(writer);
    template_ = writer.take();
    uuid_offset_ = 1;
    reply_to_offset_ = 1 + 16 + 4 + options_.hostname.size();
    // Layout drift guard: the sentinel byte patterns must sit exactly at
    // the offsets the per-send patcher will overwrite.
    Bytes probe = template_;
    patch_be64(probe, uuid_offset_, sentinel_id.hi());
    patch_be64(probe, uuid_offset_ + 8, sentinel_id.lo());
    patch_be32(probe, reply_to_offset_, sentinel_reply.host);
    patch_be16(probe, reply_to_offset_ + 4, sentinel_reply.port);
    if (probe != template_) {
        throw std::logic_error("ClientSwarm: DiscoveryRequest wire layout drifted");
    }
}

void ClientSwarm::attach(const std::vector<HostId>& hosts, std::uint16_t port_lo,
                         std::uint16_t port_hi) {
    if (hosts.empty()) throw std::invalid_argument("ClientSwarm::attach: no hosts");
    if (port_lo > port_hi) throw std::invalid_argument("ClientSwarm::attach: bad port range");
    const std::uint64_t span = std::uint64_t{port_hi} - port_lo + 1;
    if (span * hosts.size() < options_.capacity) {
        throw std::invalid_argument("ClientSwarm::attach: port space below capacity");
    }
    port_lo_ = port_lo;
    port_hi_ = port_hi;
    hosts_.reserve(hosts.size());
    for (const HostId h : hosts) {
        host_slot_of_[h] = static_cast<std::uint16_t>(hosts_.size());
        HostSlot slot;
        slot.host = h;
        slot.port_owner.assign(span, kNoOwner);
        hosts_.push_back(std::move(slot));
        network_.bind_range(h, port_lo, port_hi, this);
    }
}

Uuid ClientSwarm::mint_uuid(std::uint32_t i) const {
    std::uint64_t s = options_.seed ^ (kGolden * (std::uint64_t{i} + 1)) ^
                      (0xD1B54A32D192ED03ull * std::uint64_t{seq_[i]});
    const std::uint64_t hi = splitmix_step(s);
    const std::uint64_t lo = splitmix_step(hi ^ s);
    return Uuid::from_halves(hi, lo);
}

std::uint64_t ClientSwarm::draw(std::uint32_t i) {
    rng_[i] += kGolden;
    std::uint64_t z = rng_[i];
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Endpoint ClientSwarm::endpoint_of(std::uint32_t i) const {
    const std::uint32_t addr = addr_[i];
    return Endpoint{hosts_[addr >> 16].host, static_cast<std::uint16_t>(addr & 0xFFFFu)};
}

std::uint16_t ClientSwarm::broker_index(const Endpoint& ep) {
    const auto it = broker_slot_of_.find(ep);
    if (it != broker_slot_of_.end()) return it->second;
    if (brokers_.size() >= kNoBroker) return kNoBroker;  // table full: unattributed
    const auto idx = static_cast<std::uint16_t>(brokers_.size());
    brokers_.push_back(ep);
    broker_slot_of_[ep] = idx;
    return idx;
}

std::size_t ClientSwarm::pick_bdn(std::uint32_t i) {
    const std::size_t n = options_.bdns.size();
    const std::size_t base = (std::size_t{i} + seq_[i] + attempts_[i]) % n;
    const TimeUs now = kernel_.now();
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t b = (base + k) % n;
        if (bdn_health_[b].open_until <= now) return b;
    }
    return base;  // every breaker open: probe anyway
}

void ClientSwarm::note_ackless(std::size_t bdn) {
    BdnHealth& h = bdn_health_[bdn];
    const TimeUs now = kernel_.now();
    if (h.open_until > now) return;  // already open
    if (++h.ackless >= options_.breaker_threshold) {
        h.ackless = 0;
        h.open_until = now + options_.breaker_cooldown;
        ++counters_.breaker_trips;
    }
}

void ClientSwarm::assign_port(std::uint32_t i) {
    const auto hs = static_cast<std::uint32_t>(i % hosts_.size());
    HostSlot& h = hosts_[hs];
    const auto span = static_cast<std::uint32_t>(h.port_owner.size());
    for (std::uint32_t k = 0; k < span; ++k) {
        const std::uint32_t p = h.alloc_cursor;
        h.alloc_cursor = (h.alloc_cursor + 1) % span;
        if (h.port_owner[p] != kNoOwner) continue;
        h.port_owner[p] = i;
        addr_[i] = (hs << 16) | static_cast<std::uint32_t>(port_lo_ + p);
        return;
    }
    throw std::runtime_error("ClientSwarm: port space exhausted on swarm host");
}

void ClientSwarm::release_port(std::uint32_t i) {
    if (addr_[i] == kNoAddr) return;
    HostSlot& h = hosts_[addr_[i] >> 16];
    h.port_owner[(addr_[i] & 0xFFFFu) - port_lo_] = kNoOwner;
    addr_[i] = kNoAddr;
}

void ClientSwarm::begin_run(std::uint32_t i) {
    ++seq_[i];
    attempts_[i] = 0;
    flags_[i] &= static_cast<std::uint8_t>(~kFlagAcked);
    run_start_[i] = kernel_.now();
    state_[i] = kWaiting;
    send_attempt(i);
}

void ClientSwarm::send_attempt(std::uint32_t i) {
    const ClientProfile& prof = options_.profiles[profile_[i]];
    ++attempts_[i];
    ++counters_.requests_sent;
    if (attempts_[i] > 1) ++counters_.retransmits;
    flags_[i] &= static_cast<std::uint8_t>(~kFlagAcked);
    const std::size_t bdn = pick_bdn(i);
    last_bdn_[i] = static_cast<std::uint8_t>(bdn);

    Bytes buf = network_.acquire_buffer();
    buf.assign(template_.begin(), template_.end());
    const Uuid id = mint_uuid(i);
    patch_be64(buf, uuid_offset_, id.hi());
    patch_be64(buf, uuid_offset_ + 8, id.lo());
    const Endpoint me = endpoint_of(i);
    patch_be32(buf, reply_to_offset_, me.host);
    patch_be16(buf, reply_to_offset_ + 4, me.port);
    network_.send_datagram(me, options_.bdns[bdn], std::move(buf));

    const TimeUs deadline = kernel_.now() + prof.response_deadline;
    wheel_.schedule(i, deadline);
    ensure_armed_by(wheel_.ceil_to_tick(deadline));
}

void ClientSwarm::handle_deadline(std::uint32_t i) {
    const ClientProfile& prof = options_.profiles[profile_[i]];
    switch (state_[i]) {
        case kWaiting: {
            if ((flags_[i] & kFlagAcked) == 0) {
                ++counters_.shed_suspected;
                note_ackless(last_bdn_[i]);
            }
            if (attempts_[i] < prof.max_attempts) {
                send_attempt(i);
                break;
            }
            // Run exhausted: back off exponentially with jitter.
            ++counters_.failed_runs;
            state_[i] = kBackoff;
            if (backoff_[i] < 0xFF) ++backoff_[i];
            const int shift = std::min<int>(backoff_[i] - 1, 20);
            DurationUs delay = std::min(prof.backoff_initial << shift, prof.backoff_max);
            if (prof.backoff_jitter > 0.0) {
                const double frac =
                    static_cast<double>(draw(i) >> 11) * 0x1.0p-53;  // [0, 1)
                const double scale = 1.0 + prof.backoff_jitter * (2.0 * frac - 1.0);
                delay = std::max<DurationUs>(static_cast<DurationUs>(delay * scale), kMillisecond);
            }
            const TimeUs at = kernel_.now() + delay;
            wheel_.schedule(i, at);
            ensure_armed_by(wheel_.ceil_to_tick(at));
            break;
        }
        case kBackoff:
            begin_run(i);
            break;
        case kConnected:
            // Periodic rediscovery profile: leave the current broker and
            // run discovery again.
            ++counters_.rediscoveries;
            --connected_;
            begin_run(i);
            break;
        case kDetached:
        default:
            break;
    }
}

std::uint32_t ClientSwarm::start_clients(std::uint32_t count, std::uint32_t profile) {
    if (hosts_.empty()) throw std::logic_error("ClientSwarm: attach() before start_clients()");
    if (profile >= options_.profiles.size()) {
        throw std::invalid_argument("ClientSwarm: bad profile index");
    }
    const std::uint32_t n = capacity();
    std::uint32_t started = 0;
    for (std::uint32_t scanned = 0; scanned < n && started < count; ++scanned) {
        const std::uint32_t i = start_cursor_;
        start_cursor_ = (start_cursor_ + 1) % n;
        if (state_[i] != kDetached) continue;
        if (addr_[i] == kNoAddr) assign_port(i);
        profile_[i] = static_cast<std::uint8_t>(profile);
        backoff_[i] = 0;
        broker_[i] = kNoBroker;
        ++active_;
        ++counters_.started;
        ++started;
        begin_run(i);
    }
    return started;
}

std::uint32_t ClientSwarm::stop_clients(std::uint32_t count) {
    const std::uint32_t n = capacity();
    std::uint32_t stopped = 0;
    for (std::uint32_t scanned = 0; scanned < n && stopped < count; ++scanned) {
        const std::uint32_t i = stop_cursor_;
        stop_cursor_ = (stop_cursor_ + 1) % n;
        if (state_[i] == kDetached) continue;
        if (state_[i] == kConnected) --connected_;
        state_[i] = kDetached;
        broker_[i] = kNoBroker;
        wheel_.cancel(i);  // port stays assigned for a cheap restart
        --active_;
        ++counters_.departed;
        ++stopped;
    }
    return stopped;
}

std::uint32_t ClientSwarm::rebind_clients(std::uint32_t count) {
    const std::uint32_t n = capacity();
    std::uint32_t rebound = 0;
    for (std::uint32_t scanned = 0; scanned < n && rebound < count; ++scanned) {
        const std::uint32_t i = rebind_cursor_;
        rebind_cursor_ = (rebind_cursor_ + 1) % n;
        if (state_[i] == kDetached) continue;
        release_port(i);
        assign_port(i);  // same host, fresh port: NAT rebinding
        ++counters_.rebinds;
        ++rebound;
        if (state_[i] == kConnected) {
            // The broker knows the old address only; rediscover from the
            // new one.
            ++counters_.rediscoveries;
            --connected_;
            begin_run(i);
        } else if (state_[i] == kWaiting) {
            // In-flight responses target the dead port; restart the run.
            begin_run(i);
        }
        // kBackoff: the pending expiry restarts discovery from the new
        // address on its own.
    }
    return rebound;
}

void ClientSwarm::ensure_armed_by(TimeUs t) {
    if (in_tick_) return;  // on_tick re-arms once, after the batch
    if (armed_timer_ != sim::kInvalidTimer) {
        if (armed_at_ <= t) return;
        kernel_.cancel(armed_timer_);
    }
    armed_timer_ = kernel_.schedule_raw_at(t, &ClientSwarm::tick_trampoline, this, 0);
    armed_at_ = t;
}

void ClientSwarm::arm_kernel() {
    const TimeUs hint = wheel_.next_deadline_hint();
    if (hint == TimerWheel::kUnarmed) {
        if (armed_timer_ != sim::kInvalidTimer) {
            kernel_.cancel(armed_timer_);
            armed_timer_ = sim::kInvalidTimer;
        }
        return;
    }
    if (armed_timer_ != sim::kInvalidTimer) {
        if (armed_at_ <= hint) return;
        kernel_.cancel(armed_timer_);
    }
    armed_timer_ = kernel_.schedule_raw_at(hint, &ClientSwarm::tick_trampoline, this, 0);
    armed_at_ = hint;
}

void ClientSwarm::tick_trampoline(void* ctx, std::uint64_t /*arg*/) {
    static_cast<ClientSwarm*>(ctx)->on_tick();
}

void ClientSwarm::on_tick() {
    armed_timer_ = sim::kInvalidTimer;
    in_tick_ = true;
    due_scratch_.clear();
    wheel_.advance(kernel_.now(), due_scratch_);
    for (const std::uint32_t i : due_scratch_) handle_deadline(i);
    in_tick_ = false;
    arm_kernel();
}

void ClientSwarm::on_range_datagram(const Endpoint& to, const Endpoint& from,
                                    const Bytes& data) {
    const auto hs = host_slot_of_.find(to.host);
    if (hs == host_slot_of_.end() || to.port < port_lo_ || to.port > port_hi_ || data.empty()) {
        ++counters_.misdelivered;
        return;
    }
    const std::uint32_t owner = hosts_[hs->second].port_owner[to.port - port_lo_];
    if (owner == kNoOwner) {
        ++counters_.misdelivered;
        return;
    }
    const std::uint32_t i = owner;
    try {
        if (data[0] == wire::kMsgDiscoveryAck) {
            wire::ByteReader reader(data.data() + 1, data.size() - 1);
            const Uuid id = reader.uuid();
            if (state_[i] == kWaiting && id == mint_uuid(i)) {
                flags_[i] |= kFlagAcked;
                ++counters_.acks;
                // An ack proves the BDN is alive: reset its breaker window.
                for (std::size_t b = 0; b < options_.bdns.size(); ++b) {
                    if (options_.bdns[b] == from) {
                        bdn_health_[b].ackless = 0;
                        bdn_health_[b].open_until = 0;
                        break;
                    }
                }
            } else {
                ++counters_.stale_responses;
            }
        } else if (data[0] == wire::kMsgDiscoveryResponse) {
            wire::ByteReader reader(data.data() + 1, data.size() - 1);
            const auto view = discovery::DiscoveryResponseView::peek(reader);
            if (state_[i] != kWaiting || view.request_id != mint_uuid(i)) {
                ++counters_.stale_responses;  // late, duplicate, or detached
                return;
            }
            state_[i] = kConnected;
            ++connected_;
            broker_[i] = broker_index(view.endpoint);
            backoff_[i] = 0;
            ++counters_.connects;
            const double ms = to_ms(kernel_.now() - run_start_[i]);
            latency_.add(ms);
            if (latency_hist_ != nullptr) latency_hist_->observe(ms);
            const ClientProfile& prof = options_.profiles[profile_[i]];
            if (prof.rediscovery_interval > 0) {
                // De-synchronize the cohort: up to +1/8 interval of jitter.
                const DurationUs jitter =
                    static_cast<DurationUs>(draw(i) % (prof.rediscovery_interval / 8 + 1));
                const TimeUs at = kernel_.now() + prof.rediscovery_interval + jitter;
                wheel_.schedule(i, at);
                ensure_armed_by(wheel_.ceil_to_tick(at));
            } else {
                wheel_.cancel(i);
            }
        } else {
            ++counters_.misdelivered;  // not a client-facing message type
        }
    } catch (const wire::WireError&) {
        ++counters_.misdelivered;  // truncated / malformed
    }
}

std::size_t ClientSwarm::state_bytes() const {
    auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    std::size_t bytes = vec(state_) + vec(profile_) + vec(flags_) + vec(attempts_) +
                        vec(backoff_) + vec(last_bdn_) + vec(broker_) + vec(seq_) + vec(addr_) +
                        vec(run_start_) + vec(rng_) + vec(due_scratch_) + vec(brokers_) +
                        vec(bdn_health_) + template_.capacity();
    bytes += wheel_.memory_bytes();
    for (const HostSlot& h : hosts_) bytes += h.port_owner.capacity() * sizeof(std::uint32_t);
    bytes += hosts_.capacity() * sizeof(HostSlot);
    // Hash-map nodes, approximated at bucket + node cost.
    bytes += (broker_slot_of_.size() + host_slot_of_.size()) * 48;
    bytes += latency_.values().capacity() * sizeof(double);
    return bytes;
}

std::uint64_t ClientSwarm::metrics_digest() const {
    std::uint64_t d = 0x6E61726164612121ull ^ options_.seed;
    auto mix = [&d](std::uint64_t v) { d = splitmix_step(d ^ v); };
    mix(counters_.started);
    mix(counters_.departed);
    mix(counters_.requests_sent);
    mix(counters_.retransmits);
    mix(counters_.acks);
    mix(counters_.connects);
    mix(counters_.stale_responses);
    mix(counters_.shed_suspected);
    mix(counters_.failed_runs);
    mix(counters_.rediscoveries);
    mix(counters_.rebinds);
    mix(counters_.breaker_trips);
    mix(counters_.misdelivered);
    mix(active_);
    mix(connected_);
    const std::uint32_t n = capacity();
    for (std::uint32_t i = 0; i < n; ++i) {
        mix(std::uint64_t{state_[i]} | (std::uint64_t{broker_[i]} << 8) |
            (std::uint64_t{addr_[i]} << 24) | (std::uint64_t{seq_[i]} << 56));
    }
    for (const double v : latency_.values()) {
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v * 1000.0)));
    }
    return d;
}

std::string ClientSwarm::metrics_digest_hex() const {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(metrics_digest()));
    return buf;
}

void ClientSwarm::set_observability(obs::MetricsRegistry* registry, std::string node) {
    registry_ = registry;
    obs_node_ = std::move(node);
    latency_hist_ = registry_ == nullptr
                        ? nullptr
                        : &registry_->histogram("swarm_discovery_latency_ms", obs_node_,
                                                obs::latency_buckets_ms());
}

void ClientSwarm::publish_metrics() {
    if (registry_ == nullptr) return;
    auto sync = [&](const char* name, std::uint64_t cur, std::uint64_t& last) {
        if (cur > last) registry_->counter(name, obs_node_).inc(cur - last);
        last = cur;
    };
    sync("swarm_started", counters_.started, published_.started);
    sync("swarm_departed", counters_.departed, published_.departed);
    sync("swarm_requests_sent", counters_.requests_sent, published_.requests_sent);
    sync("swarm_retransmits", counters_.retransmits, published_.retransmits);
    sync("swarm_acks", counters_.acks, published_.acks);
    sync("swarm_connects", counters_.connects, published_.connects);
    sync("swarm_stale_responses", counters_.stale_responses, published_.stale_responses);
    sync("swarm_shed_suspected", counters_.shed_suspected, published_.shed_suspected);
    sync("swarm_failed_runs", counters_.failed_runs, published_.failed_runs);
    sync("swarm_rediscoveries", counters_.rediscoveries, published_.rediscoveries);
    sync("swarm_rebinds", counters_.rebinds, published_.rebinds);
    sync("swarm_breaker_trips", counters_.breaker_trips, published_.breaker_trips);
    sync("swarm_misdelivered", counters_.misdelivered, published_.misdelivered);
    registry_->gauge("swarm_active", obs_node_).set(active_);
    registry_->gauge("swarm_connected", obs_node_).set(connected_);
    const std::size_t bytes = state_bytes();
    registry_->gauge("swarm_bytes_per_endpoint", obs_node_)
        .set(static_cast<double>(bytes) / static_cast<double>(capacity()));
    obs::update_memory_gauges(*registry_, obs_node_, {{"swarm_state", bytes}});
}

}  // namespace narada::swarm
