// Struct-of-arrays client swarm.
//
// Simulates 100k-1M discovery clients in one process against the *real*
// broker/BDN plane. A discovery::Client is a fine citizen at tens of nodes
// but costs kilobytes of objects, per-client std::functions and per-client
// kernel timers; the swarm replaces it with packed parallel arrays — one
// byte-or-few field per endpoint — a bucketed hierarchical TimerWheel, and
// a single kernel timer armed at the wheel's next-deadline hint.
//
// The wire shim: one DiscoveryRequest is encoded per swarm (the template);
// each send copies it into a pooled transport buffer and patches the two
// per-client fields in place (request UUID, reply-to endpoint). Request
// UUIDs are minted deterministically from (seed, endpoint index, run
// sequence) so response matching recomputes the UUID instead of storing
// it. Responses and acks are parsed with the borrowed views — the steady
// path allocates nothing.
//
// Endpoints live on a handful of aggregate sim hosts, each covering a port
// range bound through SimNetwork::bind_range; NAT-style mobility rebinds a
// client to a fresh port on its host and rediscovers. A shared per-BDN
// breaker (consecutive ack-less attempts trip it; virtual-time cooldown)
// steers the population away from a dead or shedding BDN.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/uuid.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "swarm/timer_wheel.hpp"

namespace narada::swarm {

/// Discovery behaviour for one population slice (mixed-profile swarms
/// assign different profiles to different cohorts).
struct ClientProfile {
    DurationUs response_deadline = from_ms(2000);  ///< per-attempt response wait
    std::uint32_t max_attempts = 4;                ///< sends per discovery run
    DurationUs backoff_initial = from_ms(500);     ///< after a failed run
    DurationUs backoff_max = 30 * kSecond;
    double backoff_jitter = 0.25;                  ///< uniform +/- fraction
    DurationUs rediscovery_interval = 0;           ///< 0 = keep the broker
};

struct SwarmOptions {
    std::uint32_t capacity = 0;       ///< endpoint slots
    std::vector<Endpoint> bdns;       ///< discovery entry points
    std::string hostname = "swarm";   ///< shared requester hostname
    std::string realm = "swarm";
    std::uint64_t seed = 1;
    std::vector<ClientProfile> profiles{ClientProfile{}};
    std::uint32_t breaker_threshold = 64;          ///< ack-less attempts to trip
    DurationUs breaker_cooldown = 5 * kSecond;
};

/// Plain counters (not atomics): the swarm is single-threaded on the
/// kernel, and plain integers keep the digest byte-deterministic.
struct SwarmCounters {
    std::uint64_t started = 0;          ///< client activations
    std::uint64_t departed = 0;
    std::uint64_t requests_sent = 0;    ///< every request datagram
    std::uint64_t retransmits = 0;      ///< attempts 2..N of a run
    std::uint64_t acks = 0;
    std::uint64_t connects = 0;         ///< accepted responses
    std::uint64_t stale_responses = 0;  ///< wrong/old UUID, detached target
    std::uint64_t shed_suspected = 0;   ///< attempt timed out with no ack
    std::uint64_t failed_runs = 0;      ///< runs that exhausted max_attempts
    std::uint64_t rediscoveries = 0;
    std::uint64_t rebinds = 0;
    std::uint64_t breaker_trips = 0;    ///< shared per-BDN breaker opens
    std::uint64_t misdelivered = 0;     ///< datagram for an unowned port
};

class ClientSwarm final : public sim::RangeHandler {
public:
    ClientSwarm(sim::Kernel& kernel, sim::SimNetwork& network, SwarmOptions options);
    ~ClientSwarm() override;
    ClientSwarm(const ClientSwarm&) = delete;
    ClientSwarm& operator=(const ClientSwarm&) = delete;

    /// Bind the swarm's aggregate hosts: each host serves ports
    /// [port_lo, port_hi] via one range binding. Total port space must
    /// cover `capacity` with headroom for NAT rebinds.
    void attach(const std::vector<HostId>& hosts, std::uint16_t port_lo, std::uint16_t port_hi);

    /// Activate up to `count` detached clients with `profile`; each starts
    /// a discovery run immediately. Returns the number started.
    std::uint32_t start_clients(std::uint32_t count, std::uint32_t profile = 0);

    /// Deactivate up to `count` active clients (diurnal downslope,
    /// departures). Returns the number stopped.
    std::uint32_t stop_clients(std::uint32_t count);

    /// NAT-style mobility: move up to `count` active clients to a fresh
    /// port on their host and rediscover. Returns the number rebound.
    std::uint32_t rebind_clients(std::uint32_t count);

    [[nodiscard]] std::uint32_t capacity() const {
        return static_cast<std::uint32_t>(state_.size());
    }
    [[nodiscard]] std::uint32_t active() const { return active_; }
    [[nodiscard]] std::uint32_t connected() const { return connected_; }

    [[nodiscard]] const SwarmCounters& counters() const { return counters_; }
    /// Time from run start to accepted response, milliseconds (virtual).
    [[nodiscard]] const SampleSet& discovery_latency_ms() const { return latency_; }

    /// Bytes of swarm state retained (arrays, wheel, port tables, pools) —
    /// the honest numerator of the bytes-per-endpoint gauge.
    [[nodiscard]] std::size_t state_bytes() const;

    /// Deterministic digest over counters, per-endpoint state and latency
    /// samples. Two runs with the same seed must produce identical digests.
    [[nodiscard]] std::uint64_t metrics_digest() const;
    [[nodiscard]] std::string metrics_digest_hex() const;

    /// Wire the swarm to a registry: counters/gauges are published under
    /// `node` by publish_metrics(); connects also observe the
    /// swarm_discovery_latency_ms histogram as they happen.
    void set_observability(obs::MetricsRegistry* registry, std::string node);
    /// Sync counters and gauges (active, connected, state bytes,
    /// bytes-per-endpoint, RSS) to the registry.
    void publish_metrics();

    // sim::RangeHandler
    void on_range_datagram(const Endpoint& to, const Endpoint& from, const Bytes& data) override;

private:
    enum State : std::uint8_t { kDetached = 0, kWaiting = 1, kBackoff = 2, kConnected = 3 };
    static constexpr std::uint8_t kFlagAcked = 0x01;
    static constexpr std::uint16_t kNoBroker = 0xFFFF;
    static constexpr std::uint32_t kNoAddr = 0xFFFFFFFFu;
    static constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

    struct HostSlot {
        HostId host = kInvalidHost;
        std::vector<std::uint32_t> port_owner;  ///< (port - port_lo) -> client
        std::uint32_t alloc_cursor = 0;         ///< rotating free-port scan
    };

    struct BdnHealth {
        std::uint32_t ackless = 0;   ///< consecutive attempts with no ack
        TimeUs open_until = 0;       ///< breaker-open horizon (virtual time)
    };

    void build_template();
    [[nodiscard]] Uuid mint_uuid(std::uint32_t i) const;
    [[nodiscard]] std::uint64_t draw(std::uint32_t i);  ///< per-endpoint stream
    [[nodiscard]] Endpoint endpoint_of(std::uint32_t i) const;
    [[nodiscard]] std::uint16_t broker_index(const Endpoint& ep);
    [[nodiscard]] std::size_t pick_bdn(std::uint32_t i);
    void assign_port(std::uint32_t i);
    void release_port(std::uint32_t i);

    void begin_run(std::uint32_t i);
    void send_attempt(std::uint32_t i);
    void handle_deadline(std::uint32_t i);
    void note_ackless(std::size_t bdn);

    /// Make sure the kernel wake-up fires no later than `t` (no-op inside
    /// a tick batch — on_tick re-arms once from the wheel hint).
    void ensure_armed_by(TimeUs t);
    void arm_kernel();
    static void tick_trampoline(void* ctx, std::uint64_t arg);
    void on_tick();

    sim::Kernel& kernel_;
    sim::SimNetwork& network_;
    SwarmOptions options_;

    // --- struct-of-arrays endpoint state (the per-endpoint budget) -------
    std::vector<std::uint8_t> state_;
    std::vector<std::uint8_t> profile_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint8_t> attempts_;   ///< sends in the current run
    std::vector<std::uint8_t> backoff_;    ///< consecutive failed runs
    std::vector<std::uint8_t> last_bdn_;   ///< BDN index of the last attempt
    std::vector<std::uint16_t> broker_;    ///< assigned broker (table index)
    std::vector<std::uint32_t> seq_;       ///< discovery-run sequence
    std::vector<std::uint32_t> addr_;      ///< (host slot << 16) | port
    std::vector<TimeUs> run_start_;        ///< for latency samples
    std::vector<std::uint64_t> rng_;       ///< per-endpoint splitmix cursor

    TimerWheel wheel_;
    std::vector<std::uint32_t> due_scratch_;

    std::vector<HostSlot> hosts_;
    std::unordered_map<HostId, std::uint16_t> host_slot_of_;
    std::uint16_t port_lo_ = 0;
    std::uint16_t port_hi_ = 0;

    std::vector<Endpoint> brokers_;  ///< interned broker endpoints
    std::unordered_map<Endpoint, std::uint16_t> broker_slot_of_;

    std::vector<BdnHealth> bdn_health_;

    Bytes template_;               ///< type octet + encoded DiscoveryRequest
    std::size_t uuid_offset_ = 0;
    std::size_t reply_to_offset_ = 0;

    sim::TimerId armed_timer_ = sim::kInvalidTimer;
    TimeUs armed_at_ = 0;
    bool in_tick_ = false;

    std::uint32_t start_cursor_ = 0;
    std::uint32_t stop_cursor_ = 0;
    std::uint32_t rebind_cursor_ = 0;
    std::uint32_t active_ = 0;
    std::uint32_t connected_ = 0;

    SwarmCounters counters_;
    SampleSet latency_;

    obs::MetricsRegistry* registry_ = nullptr;
    std::string obs_node_;
    obs::Histogram* latency_hist_ = nullptr;
    SwarmCounters published_;  ///< last values synced to the registry
};

}  // namespace narada::swarm
