#include "swarm/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace narada::swarm {

WorkloadPlan& WorkloadPlan::flash_crowd(TimeUs at, std::uint32_t clients, DurationUs over,
                                        std::uint32_t profile) {
    Wave w;
    w.kind = Kind::kFlashCrowd;
    w.at = at;
    w.count = clients;
    w.over = std::max<DurationUs>(over, 0);
    // Enough ticks for a smooth ramp, bounded so a 1M crowd stays a few
    // hundred kernel events.
    w.tick = std::clamp<DurationUs>(w.over / 200, 10 * kMillisecond, kSecond);
    w.profile = profile;
    waves.push_back(w);
    return *this;
}

WorkloadPlan& WorkloadPlan::departures(TimeUs at, std::uint32_t clients, DurationUs over) {
    Wave w;
    w.kind = Kind::kDepartures;
    w.at = at;
    w.count = clients;
    w.over = std::max<DurationUs>(over, 0);
    w.tick = std::clamp<DurationUs>(w.over / 200, 10 * kMillisecond, kSecond);
    waves.push_back(w);
    return *this;
}

WorkloadPlan& WorkloadPlan::diurnal(TimeUs at, std::uint32_t base, double amplitude,
                                    DurationUs period, DurationUs duration,
                                    std::uint32_t profile) {
    if (period <= 0) throw std::invalid_argument("diurnal: period must be positive");
    Wave w;
    w.kind = Kind::kDiurnal;
    w.at = at;
    w.count = base;
    w.amplitude = amplitude;
    w.period = period;
    w.duration = duration;
    w.tick = std::clamp<DurationUs>(period / 64, 100 * kMillisecond, 10 * kSecond);
    w.profile = profile;
    waves.push_back(w);
    return *this;
}

WorkloadPlan& WorkloadPlan::mobile_churn(TimeUs at, double fraction, DurationUs interval,
                                         DurationUs duration) {
    if (interval <= 0) throw std::invalid_argument("mobile_churn: interval must be positive");
    Wave w;
    w.kind = Kind::kMobileChurn;
    w.at = at;
    w.fraction = std::clamp(fraction, 0.0, 1.0);
    w.tick = interval;
    w.duration = duration;
    waves.push_back(w);
    return *this;
}

TimeUs WorkloadPlan::end() const {
    TimeUs last = 0;
    for (const Wave& w : waves) {
        const TimeUs wave_end =
            w.at + std::max(w.over, w.duration);
        last = std::max(last, wave_end);
    }
    return last;
}

Workload::Workload(sim::Kernel& kernel, ClientSwarm& swarm) : kernel_(kernel), swarm_(swarm) {}

void Workload::run(const WorkloadPlan& plan) {
    const auto first = static_cast<std::uint32_t>(waves_.size());
    for (const WorkloadPlan::Wave& w : plan.waves) {
        WaveState st;
        st.wave = w;
        switch (w.kind) {
            case WorkloadPlan::Kind::kFlashCrowd:
            case WorkloadPlan::Kind::kDepartures:
                st.ticks_total = w.over <= 0
                                     ? 1
                                     : static_cast<std::uint32_t>(
                                           std::max<DurationUs>(1, (w.over + w.tick - 1) / w.tick));
                break;
            case WorkloadPlan::Kind::kDiurnal:
            case WorkloadPlan::Kind::kMobileChurn:
                st.ticks_total = static_cast<std::uint32_t>(
                    std::max<DurationUs>(1, w.duration / w.tick));
                break;
        }
        waves_.push_back(st);
    }
    for (std::uint32_t idx = first; idx < waves_.size(); ++idx) {
        schedule_tick(idx, waves_[idx].wave.at);
    }
}

void Workload::schedule_tick(std::uint32_t wave_index, TimeUs at) {
    kernel_.schedule_raw_at(at, &Workload::wave_trampoline, this, wave_index);
}

void Workload::wave_trampoline(void* ctx, std::uint64_t arg) {
    static_cast<Workload*>(ctx)->on_wave_tick(static_cast<std::uint32_t>(arg));
}

void Workload::on_wave_tick(std::uint32_t wave_index) {
    WaveState& st = waves_[wave_index];
    const WorkloadPlan::Wave& w = st.wave;
    ++stats_.ticks;
    ++st.tick;
    switch (w.kind) {
        case WorkloadPlan::Kind::kFlashCrowd: {
            // Linear ramp: by tick k of K, k/K of the cohort has arrived.
            const auto target = static_cast<std::uint32_t>(
                (std::uint64_t{w.count} * st.tick) / st.ticks_total);
            if (target > st.done) {
                stats_.arrivals += swarm_.start_clients(target - st.done, w.profile);
                st.done = target;
            }
            break;
        }
        case WorkloadPlan::Kind::kDepartures: {
            const auto target = static_cast<std::uint32_t>(
                (std::uint64_t{w.count} * st.tick) / st.ticks_total);
            if (target > st.done) {
                stats_.departures += swarm_.stop_clients(target - st.done);
                st.done = target;
            }
            break;
        }
        case WorkloadPlan::Kind::kDiurnal: {
            const double elapsed = static_cast<double>(kernel_.now() - w.at);
            const double phase =
                2.0 * std::numbers::pi * elapsed / static_cast<double>(w.period);
            const double base = static_cast<double>(w.count);
            const auto target = static_cast<std::uint32_t>(
                std::max(0.0, base * (1.0 + w.amplitude * std::sin(phase))));
            const std::uint32_t current = swarm_.active();
            if (target > current) {
                stats_.arrivals += swarm_.start_clients(target - current, w.profile);
            } else if (current > target) {
                stats_.departures += swarm_.stop_clients(current - target);
            }
            break;
        }
        case WorkloadPlan::Kind::kMobileChurn: {
            const double share = w.fraction * static_cast<double>(swarm_.active());
            const auto cohort = static_cast<std::uint32_t>(std::ceil(share));
            if (cohort > 0) stats_.rebinds += swarm_.rebind_clients(cohort);
            break;
        }
    }
    if (st.tick < st.ticks_total) {
        schedule_tick(wave_index, w.at + static_cast<TimeUs>(st.tick) * w.tick);
    }
}

}  // namespace narada::swarm
