// Site catalog — the simulated analogue of the paper's Table 1.
//
// The paper's testbed consisted of five machines "separated by significant
// network distances": complexity.ucs.indiana.edu (Indianapolis, IN),
// webis.msi.umn.edu (Minneapolis, MN), tungsten.ncsa.uiuc.edu (Urbana, IL),
// pamd2.fsit.fsu.edu (Tallahassee, FL) and bouscat.cs.cf.ac.uk (Cardiff,
// UK), with the discovery client run from Bloomington, IN. We reproduce the
// testbed as simulated hosts with one-way latencies calibrated to
// 2005-era geographic RTTs, plus a "lab" realm in Bloomington so the
// multicast experiment (Figure 12) reproduces the paper's realm-limited
// behaviour.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace narada::sim {

struct SiteInfo {
    std::string site;       ///< short key, e.g. "UMN"
    std::string machine;    ///< Table 1 machine name analogue
    std::string location;   ///< human-readable location
    std::string realm;      ///< multicast/policy realm
};

/// Index order of the catalog's canonical sites.
enum class Site : std::size_t {
    kBloomington = 0,  ///< client's home in the paper's runs; "lab" realm
    kIndianapolis,     ///< complexity.ucs.indiana.edu
    kNcsa,             ///< tungsten.ncsa.uiuc.edu
    kUmn,              ///< webis.msi.umn.edu
    kFsu,              ///< pamd2.fsit.fsu.edu
    kCardiff,          ///< bouscat.cs.cf.ac.uk
    kCount,
};

constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

/// Static description of each canonical site.
const SiteInfo& site_info(Site s);
const std::vector<SiteInfo>& all_sites();

/// One-way latency between two sites in milliseconds (symmetric).
double site_latency_ms(Site a, Site b);
/// Jitter bound between two sites in milliseconds.
double site_jitter_ms(Site a, Site b);
/// Router hops between two sites (drives per-hop datagram loss).
int site_hops(Site a, Site b);

/// A WAN deployment: one host per requested site placement.
class WanDeployment {
public:
    /// Create hosts on `net` for each placement; wires all pairwise links
    /// from the catalog's latency table and assigns clock skews drawn
    /// uniformly from ±`max_skew` using the network's RNG.
    WanDeployment(SimNetwork& net, const std::vector<Site>& placements,
                  DurationUs max_skew = 2 * kSecond);

    [[nodiscard]] HostId host(std::size_t index) const { return hosts_.at(index); }
    [[nodiscard]] Site site(std::size_t index) const { return sites_.at(index); }
    [[nodiscard]] std::size_t size() const { return hosts_.size(); }

private:
    std::vector<HostId> hosts_;
    std::vector<Site> sites_;
};

/// Render the Table 1 analogue (site, machine, location, realm, latency to
/// the Bloomington client) as fixed-width text for the bench harness.
std::string render_site_catalog();

}  // namespace narada::sim
