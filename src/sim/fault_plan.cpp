#include "sim/fault_plan.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace narada::sim {

const char* to_string(FaultType t) {
    switch (t) {
        case FaultType::kHostCrash: return "host_crash";
        case FaultType::kLinkCut: return "link_cut";
        case FaultType::kPartition: return "partition";
        case FaultType::kLossStorm: return "loss_storm";
        case FaultType::kClockSkewStep: return "clock_skew_step";
        case FaultType::kRequestStorm: return "request_storm";
        case FaultType::kAsymmetricLoss: return "asymmetric_loss";
        case FaultType::kBurstReorder: return "burst_reorder";
    }
    return "?";
}

FaultPlan& FaultPlan::crash(DurationUs at, HostId host, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kHostCrash;
    action.at = at;
    action.duration = down_for;
    action.host = host;
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::cut_link(DurationUs at, HostId a, HostId b, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kLinkCut;
    action.at = at;
    action.duration = down_for;
    action.host = a;
    action.peer = b;
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::partition(DurationUs at, std::vector<HostId> side_a,
                                std::vector<HostId> side_b, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kPartition;
    action.at = at;
    action.duration = down_for;
    action.group_a = std::move(side_a);
    action.group_b = std::move(side_b);
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::loss_storm(DurationUs at, double per_hop_loss, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kLossStorm;
    action.at = at;
    action.duration = down_for;
    action.loss = per_hop_loss;
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::asymmetric_loss(DurationUs at, HostId from, HostId to,
                                      double per_hop_loss, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kAsymmetricLoss;
    action.at = at;
    action.duration = down_for;
    action.host = from;
    action.peer = to;
    action.loss = per_hop_loss;
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::burst_reorder(DurationUs at, double probability,
                                    DurationUs max_extra, DurationUs down_for) {
    FaultAction action;
    action.type = FaultType::kBurstReorder;
    action.at = at;
    action.duration = down_for;
    action.loss = probability;
    action.reorder_extra = max_extra;
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::request_storm(DurationUs at, Endpoint target, std::uint32_t clients,
                                    DurationUs interval, DurationUs down_for,
                                    std::vector<HostId> sources,
                                    StormPayloadFactory payload) {
    FaultAction action;
    action.type = FaultType::kRequestStorm;
    action.at = at;
    action.duration = down_for;
    action.storm_target = target;
    action.storm_clients = clients;
    action.storm_interval = interval;
    action.storm_sources = std::move(sources);
    action.storm_payload = std::move(payload);
    actions.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::rolling_crashes(DurationUs at, const std::vector<HostId>& hosts,
                                      DurationUs down_for, DurationUs stagger) {
    DurationUs strike = at;
    for (const HostId host : hosts) {
        crash(strike, host, down_for);
        strike += stagger;
    }
    return *this;
}

FaultPlan& FaultPlan::flapping_partition(DurationUs at, std::vector<HostId> side_a,
                                         std::vector<HostId> side_b, std::size_t rounds,
                                         DurationUs down_for, DurationUs gap) {
    DurationUs strike = at;
    for (std::size_t round = 0; round < rounds; ++round) {
        partition(strike, side_a, side_b, down_for);
        strike += down_for + gap;
    }
    return *this;
}

FaultPlan& FaultPlan::skew_step(DurationUs at, HostId host, DurationUs delta) {
    FaultAction action;
    action.type = FaultType::kClockSkewStep;
    action.at = at;
    action.host = host;
    action.skew_delta = delta;
    actions.push_back(std::move(action));
    return *this;
}

DurationUs FaultPlan::duration() const {
    DurationUs end = 0;
    for (const FaultAction& action : actions) {
        end = std::max(end, action.at + action.duration);
    }
    return end;
}

FaultPlan FaultPlan::random_crashes(std::uint64_t seed, const std::vector<HostId>& hosts,
                                    std::size_t crashes, DurationUs horizon,
                                    DurationUs min_down, DurationUs max_down) {
    FaultPlan plan;
    if (hosts.empty() || crashes == 0) return plan;
    Rng rng(seed);
    for (std::size_t i = 0; i < crashes; ++i) {
        const DurationUs at = rng.uniform_int(0, horizon);
        const DurationUs down = rng.uniform_int(min_down, max_down);
        const HostId host = hosts[rng.bounded(hosts.size())];
        plan.crash(at, host, down);
    }
    std::stable_sort(plan.actions.begin(), plan.actions.end(),
                     [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
    return plan;
}

void ChaosInjector::run(const FaultPlan& plan) {
    const TimeUs start = kernel_.now();
    for (const FaultAction& action : plan.actions) {
        kernel_.schedule_at(start + action.at, [this, action] { apply(action); });
        plan_end_ = std::max(plan_end_, start + action.at + action.duration);
    }
}

void ChaosInjector::apply(const FaultAction& action) {
    PriorState prior;
    switch (action.type) {
        case FaultType::kHostCrash:
            network_.set_host_down(action.host, true);
            ++stats_.crashes;
            break;
        case FaultType::kLinkCut:
            network_.set_link_down(action.host, action.peer, true);
            ++stats_.link_cuts;
            break;
        case FaultType::kPartition:
            set_partition(action.group_a, action.group_b, /*down=*/true);
            ++stats_.partitions;
            break;
        case FaultType::kLossStorm:
            prior.loss = network_.per_hop_loss();
            network_.set_per_hop_loss(action.loss);
            ++stats_.loss_storms;
            break;
        case FaultType::kAsymmetricLoss:
            prior.loss = network_.directed_loss(action.host, action.peer);
            network_.set_directed_loss(action.host, action.peer, action.loss);
            ++stats_.asymmetric_losses;
            break;
        case FaultType::kBurstReorder:
            prior.reorder_prob = network_.reorder_probability();
            prior.reorder_extra = network_.reorder_max_extra();
            network_.set_reorder(action.loss, action.reorder_extra);
            ++stats_.reorder_storms;
            break;
        case FaultType::kClockSkewStep:
            network_.step_clock_skew(action.host, action.skew_delta);
            ++stats_.skew_steps;
            return;  // one-way: nothing to revert
        case FaultType::kRequestStorm:
            ++stats_.request_storms;
            NARADA_DEBUG("chaos", "t={} inject request_storm ({} clients every {}us for {}us)",
                         kernel_.now(), action.storm_clients, action.storm_interval,
                         action.duration);
            storm_tick(action, kernel_.now() + action.duration);
            return;  // stops by itself at storm_end; nothing to revert
    }
    NARADA_DEBUG("chaos", "t={} inject {}", kernel_.now(), to_string(action.type));
    if (action.duration > 0) {
        kernel_.schedule_after(action.duration,
                               [this, action, prior] { revert(action, prior); });
    }
}

void ChaosInjector::revert(const FaultAction& action, const PriorState& prior) {
    switch (action.type) {
        case FaultType::kHostCrash:
            network_.set_host_down(action.host, false);
            ++stats_.restarts;
            break;
        case FaultType::kLinkCut:
            network_.set_link_down(action.host, action.peer, false);
            ++stats_.link_heals;
            break;
        case FaultType::kPartition:
            set_partition(action.group_a, action.group_b, /*down=*/false);
            ++stats_.partition_heals;
            break;
        case FaultType::kLossStorm:
            // Overlapping storms: each revert restores the loss seen when
            // its own storm began.
            network_.set_per_hop_loss(prior.loss);
            break;
        case FaultType::kAsymmetricLoss:
            network_.set_directed_loss(action.host, action.peer, prior.loss);
            break;
        case FaultType::kBurstReorder:
            network_.set_reorder(prior.reorder_prob, prior.reorder_extra);
            break;
        case FaultType::kClockSkewStep:
        case FaultType::kRequestStorm:
            break;
    }
    NARADA_DEBUG("chaos", "t={} revert {}", kernel_.now(), to_string(action.type));
}

void ChaosInjector::storm_tick(const FaultAction& action, TimeUs storm_end) {
    if (kernel_.now() >= storm_end) {
        NARADA_DEBUG("chaos", "t={} request_storm over", kernel_.now());
        return;
    }
    for (std::uint32_t i = 0; i < action.storm_clients; ++i) {
        const HostId source = action.storm_sources.empty()
                                  ? action.host
                                  : action.storm_sources[i % action.storm_sources.size()];
        // Ephemeral, unbound reply ports: storm responses die on arrival,
        // as real responses to a spoofed or overwhelmed client would.
        const Endpoint from{source, static_cast<std::uint16_t>(50000 + (i % 10000))};
        if (!action.storm_payload) continue;
        network_.send_datagram(from, action.storm_target, action.storm_payload(rng_, i));
        ++stats_.storm_requests_sent;
    }
    if (action.storm_interval <= 0) return;  // single burst
    kernel_.schedule_after(action.storm_interval,
                           [this, action, storm_end] { storm_tick(action, storm_end); });
}

void ChaosInjector::set_partition(const std::vector<HostId>& a, const std::vector<HostId>& b,
                                  bool down) {
    for (const HostId ha : a) {
        for (const HostId hb : b) {
            if (ha == hb) continue;
            network_.set_link_down(ha, hb, down);
        }
    }
}

}  // namespace narada::sim
