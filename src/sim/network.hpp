// Simulated wide-area network.
//
// Implements transport::Transport on virtual time. The model captures the
// properties the paper's scheme depends on:
//
//   * per-pair one-way latency with uniform jitter (site-to-site RTTs are
//     configured by the site catalog, mirroring the paper's Table 1 WAN);
//   * per-router-hop datagram loss — §5.2 argues that responses traversing
//     many hops are *more likely to be lost*, which usefully hides remote
//     brokers from the requesting node. Reliable messages never drop;
//   * multicast realms — a multicast send only reaches members whose host
//     is in the sender's realm, reproducing the paper's observation that
//     multicast was disabled outside the lab (§9, Figure 12);
//   * per-host clock skew — every host's local clock differs from true
//     (virtual) time; the NTP service (src/timesvc) estimates it back;
//   * host and link failures for fault-injection tests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/kernel.hpp"
#include "transport/buffer_pool.hpp"
#include "transport/transport.hpp"

namespace narada::sim {

/// Receiver for a whole port *range* on one host. A million-endpoint swarm
/// binds one of these per aggregate host instead of a million individual
/// MessageHandler entries; unlike MessageHandler::on_datagram it is told the
/// destination endpoint so the owner can demultiplex to the right endpoint
/// slot. Sim-only: the POSIX backend has real sockets per endpoint.
class RangeHandler {
public:
    virtual ~RangeHandler() = default;
    virtual void on_range_datagram(const Endpoint& to, const Endpoint& from,
                                   const Bytes& data) = 0;
};

struct HostSpec {
    std::string name;           ///< e.g. "webis.msi.umn.edu"
    std::string site;           ///< e.g. "UMN"
    std::string realm;          ///< multicast / policy realm, e.g. "umn"
    DurationUs clock_skew = 0;  ///< local clock = true time + skew
};

struct LinkQuality {
    DurationUs one_way = 100;  ///< base one-way propagation delay
    DurationUs jitter = 0;     ///< uniform extra delay in [0, jitter]
    int hops = 1;              ///< router hops, for per-hop datagram loss
};

struct NetworkStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_dropped = 0;   ///< loss model or down link/host
    std::uint64_t datagrams_delivered = 0;
    std::uint64_t datagrams_unrouteable = 0;  ///< no binding at destination
    std::uint64_t datagrams_reordered = 0;    ///< held back by the reorder model
    std::uint64_t reliable_sent = 0;
    std::uint64_t reliable_delivered = 0;
    std::uint64_t multicast_sent = 0;
    std::uint64_t multicast_delivered = 0;
};

class SimNetwork final : public transport::Transport {
public:
    SimNetwork(Kernel& kernel, std::uint64_t seed);

    // --- topology construction -------------------------------------------
    HostId add_host(HostSpec spec);
    [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
    [[nodiscard]] const HostSpec& host(HostId id) const;

    /// Symmetric link quality between two hosts. Unset pairs fall back to
    /// the default link.
    void set_link(HostId a, HostId b, LinkQuality q);
    void set_default_link(LinkQuality q) { default_link_ = q; }
    [[nodiscard]] LinkQuality link(HostId a, HostId b) const;

    /// Per-hop probability that a datagram is dropped at each router hop.
    /// Effective loss = 1 - (1 - p)^hops.
    void set_per_hop_loss(double p) { per_hop_loss_ = p; }
    [[nodiscard]] double per_hop_loss() const { return per_hop_loss_; }

    /// Directed per-hop loss override for datagrams flowing `from` -> `to`
    /// only (asymmetric congestion: a saturated uplink drops data while the
    /// reverse ack path stays clean). <= 0 clears the override and the pair
    /// falls back to the global per-hop loss.
    void set_directed_loss(HostId from, HostId to, double p);
    [[nodiscard]] double directed_loss(HostId from, HostId to) const;

    /// Burst reordering: each datagram is independently held back by an
    /// extra uniform delay in [0, max_extra] with probability `probability`,
    /// letting later sends overtake it. 0 disables.
    void set_reorder(double probability, DurationUs max_extra);
    [[nodiscard]] double reorder_probability() const { return reorder_prob_; }
    [[nodiscard]] DurationUs reorder_max_extra() const { return reorder_extra_; }

    /// Payload serialization rate (bytes/second) added to the latency.
    void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

    // --- fault injection ---------------------------------------------------
    void set_host_down(HostId h, bool down);
    [[nodiscard]] bool host_down(HostId h) const;
    void set_link_down(HostId a, HostId b, bool down);
    [[nodiscard]] bool link_down(HostId a, HostId b) const;

    // --- clocks ------------------------------------------------------------
    /// The host's skewed local clock. Valid for the network's lifetime.
    [[nodiscard]] const Clock& host_clock(HostId h) const;
    /// Step the host's clock skew (chaos injection: an operator fixing a
    /// clock, a VM migration, an NTP daemon restart). `delta` is added to
    /// the current skew; NTP services re-converge on the new offset.
    void step_clock_skew(HostId h, DurationUs delta);
    [[nodiscard]] DurationUs clock_skew(HostId h) const;
    /// True (virtual) UTC.
    [[nodiscard]] const Clock& true_clock() const { return kernel_.clock(); }
    [[nodiscard]] const std::string& realm_of(HostId h) const;

    // --- swarm-scale port-range bindings -----------------------------------
    /// Route every datagram addressed to `host` ports [port_lo, port_hi] to
    /// `handler`, unless an exact bind() exists for the endpoint (exact
    /// bindings win). One range per host; rebinding replaces it.
    void bind_range(HostId host, std::uint16_t port_lo, std::uint16_t port_hi,
                    RangeHandler* handler);
    void unbind_range(HostId host);

    // --- Transport interface -----------------------------------------------
    void bind(const Endpoint& local, transport::MessageHandler* handler) override;
    void unbind(const Endpoint& local) override;
    void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void join_multicast(transport::MulticastGroup group, const Endpoint& local) override;
    void leave_multicast(transport::MulticastGroup group, const Endpoint& local) override;
    void send_multicast(transport::MulticastGroup group, const Endpoint& from,
                        Bytes data) override;

    /// Encode buffers recycle through a network-owned pool, mirroring the
    /// POSIX backend: in-flight payloads return here after delivery, so a
    /// steady-state sender allocates nothing per message.
    Bytes acquire_buffer() override { return pool_.acquire(); }

    [[nodiscard]] const NetworkStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }
    [[nodiscard]] Kernel& kernel() { return kernel_; }
    [[nodiscard]] Rng& rng() { return rng_; }

    /// Delivery nodes ever allocated (in-flight + free-listed); plateaus in
    /// steady state — asserted by the allocation-counting kernel test.
    [[nodiscard]] std::size_t pooled_deliveries() const { return delivery_nodes_.size(); }

private:
    struct HostState {
        HostSpec spec;
        std::unique_ptr<OffsetClock> local_clock;
        bool down = false;
    };

    static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

    /// One in-flight message. Pooled (free-list) and scheduled through the
    /// kernel's raw-callback path so delivery allocates nothing per
    /// datagram in steady state.
    struct DeliveryNode {
        Endpoint from;
        Endpoint to;
        Bytes data;
        bool reliable = false;
        std::uint32_t next_free = kNoNode;
    };

    struct RangeBinding {
        std::uint16_t port_lo = 0;
        std::uint16_t port_hi = 0;
        RangeHandler* handler = nullptr;
    };

    [[nodiscard]] static std::uint64_t pair_key(HostId a, HostId b) {
        if (a > b) std::swap(a, b);
        return (std::uint64_t{a} << 32) | b;
    }

    /// Sampled delivery delay for one message over the link.
    DurationUs sample_delay(const LinkQuality& q, std::size_t payload_size);

    /// True if the loss model drops a datagram crossing `hops` hops at
    /// `per_hop` loss probability.
    bool drop_datagram(int hops, double per_hop);

    [[nodiscard]] static std::uint64_t directed_key(HostId from, HostId to) {
        return (std::uint64_t{from} << 32) | to;
    }

    void check_host(HostId h, const char* what) const;

    void deliver(const Endpoint& from, const Endpoint& to, Bytes data, bool reliable,
                 DurationUs delay);

    std::uint32_t acquire_delivery_node();
    void release_delivery_node(std::uint32_t index);
    static void deliver_trampoline(void* ctx, std::uint64_t arg);
    void on_deliver(std::uint32_t index);

    Kernel& kernel_;
    Rng rng_;
    std::vector<HostState> hosts_;
    std::unordered_map<std::uint64_t, LinkQuality> links_;
    std::unordered_map<std::uint64_t, bool> links_down_;
    LinkQuality default_link_{/*one_way=*/from_ms(5.0), /*jitter=*/from_ms(0.5), /*hops=*/4};
    double per_hop_loss_ = 0.0;
    std::unordered_map<std::uint64_t, double> directed_loss_;  ///< directed_key -> p
    double reorder_prob_ = 0.0;
    DurationUs reorder_extra_ = 0;
    double bandwidth_ = 12.5e6;  // 100 Mbit/s

    std::unordered_map<Endpoint, transport::MessageHandler*> bindings_;
    std::unordered_map<HostId, RangeBinding> range_bindings_;
    std::unordered_map<transport::MulticastGroup, std::vector<Endpoint>> groups_;
    // FIFO guarantee for reliable messages: last arrival per directed
    // (from, to) endpoint pair.
    std::map<std::pair<Endpoint, Endpoint>, TimeUs> reliable_horizon_;

    std::vector<DeliveryNode> delivery_nodes_;
    std::uint32_t delivery_free_ = kNoNode;
    transport::BufferPool pool_{/*max_buffers=*/8192, /*buffer_capacity=*/2048};

    NetworkStats stats_;
};

}  // namespace narada::sim
