#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"

namespace narada::sim {

SimNetwork::SimNetwork(Kernel& kernel, std::uint64_t seed) : kernel_(kernel), rng_(seed) {}

HostId SimNetwork::add_host(HostSpec spec) {
    const auto id = static_cast<HostId>(hosts_.size());
    HostState state;
    state.local_clock = std::make_unique<OffsetClock>(kernel_.clock(), spec.clock_skew);
    state.spec = std::move(spec);
    hosts_.push_back(std::move(state));
    return id;
}

const HostSpec& SimNetwork::host(HostId id) const {
    check_host(id, "host()");
    return hosts_[id].spec;
}

void SimNetwork::set_link(HostId a, HostId b, LinkQuality q) {
    check_host(a, "set_link");
    check_host(b, "set_link");
    links_[pair_key(a, b)] = q;
}

LinkQuality SimNetwork::link(HostId a, HostId b) const {
    if (a == b) {
        // Loopback: sub-millisecond, one hop, effectively loss-free.
        return LinkQuality{/*one_way=*/50, /*jitter=*/10, /*hops=*/0};
    }
    const auto it = links_.find(pair_key(a, b));
    return it != links_.end() ? it->second : default_link_;
}

void SimNetwork::set_host_down(HostId h, bool down) {
    check_host(h, "set_host_down");
    hosts_[h].down = down;
}

bool SimNetwork::host_down(HostId h) const {
    check_host(h, "host_down");
    return hosts_[h].down;
}

void SimNetwork::set_link_down(HostId a, HostId b, bool down) {
    check_host(a, "set_link_down");
    check_host(b, "set_link_down");
    links_down_[pair_key(a, b)] = down;
}

bool SimNetwork::link_down(HostId a, HostId b) const {
    const auto it = links_down_.find(pair_key(a, b));
    return it != links_down_.end() && it->second;
}

const Clock& SimNetwork::host_clock(HostId h) const {
    check_host(h, "host_clock");
    return *hosts_[h].local_clock;
}

void SimNetwork::step_clock_skew(HostId h, DurationUs delta) {
    check_host(h, "step_clock_skew");
    OffsetClock& clock = *hosts_[h].local_clock;
    clock.set_offset(clock.offset() + delta);
    hosts_[h].spec.clock_skew = clock.offset();
}

DurationUs SimNetwork::clock_skew(HostId h) const {
    check_host(h, "clock_skew");
    return hosts_[h].local_clock->offset();
}

const std::string& SimNetwork::realm_of(HostId h) const {
    check_host(h, "realm_of");
    return hosts_[h].spec.realm;
}

void SimNetwork::bind(const Endpoint& local, transport::MessageHandler* handler) {
    check_host(local.host, "bind");
    if (handler == nullptr) throw std::invalid_argument("bind: null handler");
    bindings_[local] = handler;
}

void SimNetwork::unbind(const Endpoint& local) {
    bindings_.erase(local);
    for (auto& [group, members] : groups_) {
        std::erase(members, local);
    }
}

DurationUs SimNetwork::sample_delay(const LinkQuality& q, std::size_t payload_size) {
    DurationUs delay = q.one_way;
    if (q.jitter > 0) delay += rng_.uniform_int(0, q.jitter);
    if (bandwidth_ > 0) {
        delay += static_cast<DurationUs>(static_cast<double>(payload_size) / bandwidth_ * 1e6);
    }
    return delay;
}

bool SimNetwork::drop_datagram(int hops, double per_hop) {
    if (per_hop <= 0.0 || hops <= 0) return false;
    const double survive = std::pow(1.0 - std::min(per_hop, 1.0), hops);
    return !rng_.chance(survive);
}

void SimNetwork::set_directed_loss(HostId from, HostId to, double p) {
    check_host(from, "set_directed_loss");
    check_host(to, "set_directed_loss");
    if (p <= 0.0) {
        directed_loss_.erase(directed_key(from, to));
    } else {
        directed_loss_[directed_key(from, to)] = p;
    }
}

double SimNetwork::directed_loss(HostId from, HostId to) const {
    const auto it = directed_loss_.find(directed_key(from, to));
    return it != directed_loss_.end() ? it->second : 0.0;
}

void SimNetwork::set_reorder(double probability, DurationUs max_extra) {
    reorder_prob_ = std::clamp(probability, 0.0, 1.0);
    reorder_extra_ = std::max<DurationUs>(max_extra, 0);
}

void SimNetwork::check_host(HostId h, const char* what) const {
    if (h >= hosts_.size()) {
        throw std::out_of_range(std::string("SimNetwork::") + what + ": bad host id " +
                                std::to_string(h));
    }
}

void SimNetwork::bind_range(HostId host, std::uint16_t port_lo, std::uint16_t port_hi,
                            RangeHandler* handler) {
    check_host(host, "bind_range");
    if (handler == nullptr) throw std::invalid_argument("bind_range: null handler");
    if (port_lo > port_hi) throw std::invalid_argument("bind_range: empty port range");
    range_bindings_[host] = RangeBinding{port_lo, port_hi, handler};
}

void SimNetwork::unbind_range(HostId host) { range_bindings_.erase(host); }

std::uint32_t SimNetwork::acquire_delivery_node() {
    if (delivery_free_ != kNoNode) {
        const std::uint32_t idx = delivery_free_;
        delivery_free_ = delivery_nodes_[idx].next_free;
        delivery_nodes_[idx].next_free = kNoNode;
        return idx;
    }
    delivery_nodes_.emplace_back();
    return static_cast<std::uint32_t>(delivery_nodes_.size() - 1);
}

void SimNetwork::release_delivery_node(std::uint32_t index) {
    DeliveryNode& node = delivery_nodes_[index];
    node.next_free = delivery_free_;
    delivery_free_ = index;
}

void SimNetwork::deliver_trampoline(void* ctx, std::uint64_t arg) {
    static_cast<SimNetwork*>(ctx)->on_deliver(static_cast<std::uint32_t>(arg));
}

void SimNetwork::on_deliver(std::uint32_t index) {
    // Move everything out and recycle the node *before* invoking the
    // handler: handlers send messages, which acquires delivery nodes and
    // may grow the pool — no reference into it may survive the call.
    const Endpoint from = delivery_nodes_[index].from;
    const Endpoint to = delivery_nodes_[index].to;
    const bool reliable = delivery_nodes_[index].reliable;
    Bytes data = std::move(delivery_nodes_[index].data);
    release_delivery_node(index);

    // Re-check liveness and binding at delivery time: the destination may
    // have died or unbound while the message was in flight.
    if (hosts_[to.host].down || hosts_[from.host].down) {
        ++stats_.datagrams_dropped;
    } else if (const auto it = bindings_.find(to); it != bindings_.end()) {
        if (reliable) {
            ++stats_.reliable_delivered;
            it->second->on_reliable(from, data);
        } else {
            ++stats_.datagrams_delivered;
            it->second->on_datagram(from, data);
        }
    } else if (const auto rit = range_bindings_.find(to.host);
               rit != range_bindings_.end() && to.port >= rit->second.port_lo &&
               to.port <= rit->second.port_hi) {
        if (reliable) {
            ++stats_.reliable_delivered;
        } else {
            ++stats_.datagrams_delivered;
        }
        rit->second.handler->on_range_datagram(to, from, data);
    } else {
        ++stats_.datagrams_unrouteable;
    }
    pool_.release(std::move(data));
}

void SimNetwork::deliver(const Endpoint& from, const Endpoint& to, Bytes data, bool reliable,
                         DurationUs delay) {
    const std::uint32_t idx = acquire_delivery_node();
    DeliveryNode& node = delivery_nodes_[idx];
    node.from = from;
    node.to = to;
    node.reliable = reliable;
    node.data = std::move(data);
    kernel_.schedule_raw_after(delay, &SimNetwork::deliver_trampoline, this, idx);
}

void SimNetwork::send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) {
    check_host(from.host, "send_datagram");
    check_host(to.host, "send_datagram");
    ++stats_.datagrams_sent;
    if (hosts_[from.host].down || hosts_[to.host].down || link_down(from.host, to.host)) {
        ++stats_.datagrams_dropped;
        return;
    }
    const LinkQuality q = link(from.host, to.host);
    // A directed override models asymmetric congestion; otherwise the
    // global per-hop loss applies.
    const double directed = directed_loss(from.host, to.host);
    if (drop_datagram(q.hops, directed > 0.0 ? directed : per_hop_loss_)) {
        ++stats_.datagrams_dropped;
        NARADA_TRACE("sim", "datagram {} -> {} dropped by loss model", from.str(), to.str());
        return;
    }
    DurationUs delay = sample_delay(q, data.size());
    if (reorder_prob_ > 0.0 && reorder_extra_ > 0 && rng_.chance(reorder_prob_)) {
        delay += rng_.uniform_int(0, reorder_extra_);
        ++stats_.datagrams_reordered;
    }
    deliver(from, to, std::move(data), /*reliable=*/false, delay);
}

void SimNetwork::send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) {
    check_host(from.host, "send_reliable");
    check_host(to.host, "send_reliable");
    ++stats_.reliable_sent;
    if (hosts_[from.host].down || hosts_[to.host].down || link_down(from.host, to.host)) {
        // A reliable link to a dead peer simply never delivers; the sender
        // notices through higher-level liveness (as with a broken TCP peer).
        return;
    }
    const LinkQuality q = link(from.host, to.host);
    DurationUs delay = sample_delay(q, data.size());
    // Enforce FIFO per directed pair: never arrive earlier than the
    // previously sent reliable message on the same pair.
    TimeUs& horizon = reliable_horizon_[{from, to}];
    TimeUs arrival = kernel_.now() + delay;
    if (arrival <= horizon) arrival = horizon + 1;
    horizon = arrival;
    deliver(from, to, std::move(data), /*reliable=*/true, arrival - kernel_.now());
}

void SimNetwork::join_multicast(transport::MulticastGroup group, const Endpoint& local) {
    check_host(local.host, "join_multicast");
    auto& members = groups_[group];
    if (std::find(members.begin(), members.end(), local) == members.end()) {
        members.push_back(local);
    }
}

void SimNetwork::leave_multicast(transport::MulticastGroup group, const Endpoint& local) {
    const auto it = groups_.find(group);
    if (it == groups_.end()) return;
    std::erase(it->second, local);
}

void SimNetwork::send_multicast(transport::MulticastGroup group, const Endpoint& from,
                                Bytes data) {
    check_host(from.host, "send_multicast");
    ++stats_.multicast_sent;
    if (hosts_[from.host].down) return;
    const auto it = groups_.find(group);
    if (it == groups_.end()) return;
    const std::string& sender_realm = realm_of(from.host);
    // Copy the member list: delivery handlers may join/leave groups.
    const std::vector<Endpoint> members = it->second;
    for (const Endpoint& member : members) {
        if (member == from) continue;
        // Realm scoping: multicast does not cross realm boundaries (§9).
        if (realm_of(member.host) != sender_realm) continue;
        if (hosts_[member.host].down || link_down(from.host, member.host)) continue;
        const LinkQuality q = link(from.host, member.host);
        const double directed = directed_loss(from.host, member.host);
        if (drop_datagram(q.hops, directed > 0.0 ? directed : per_hop_loss_)) continue;
        ++stats_.multicast_delivered;
        const DurationUs delay = sample_delay(q, data.size());
        deliver(from, member, data, /*reliable=*/false, delay);
    }
}

}  // namespace narada::sim
