// Deterministic chaos injection on the virtual-time kernel.
//
// The paper's environment is "very dynamic and fluid": "broker processes
// may join and leave the broker network at arbitrary times and intervals"
// (§1.2). A FaultPlan is a declarative, serializable-in-spirit schedule of
// such outages — host crashes with restarts, link flaps, realm partitions,
// datagram loss storms and clock-skew steps — and the ChaosInjector plays
// it against a SimNetwork by scheduling every application and reversal on
// the discrete-event kernel. Because both the kernel and every random
// draw are seeded, the same plan against the same seed produces the same
// event sequence bit-for-bit, so soak tests can inject a scripted outage
// and assert hard invariants about the healed system.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace narada::sim {

enum class FaultType : std::uint8_t {
    kHostCrash,      ///< host down for `duration`, then restarted
    kLinkCut,        ///< link host<->peer down for `duration` (a "flap")
    kPartition,      ///< every link between group_a and group_b cut
    kLossStorm,      ///< per-hop datagram loss raised to `loss`
    kClockSkewStep,  ///< host's local clock jumps by `skew_delta`
    kRequestStorm,   ///< synthetic clients flood `storm_target` with datagrams
    kAsymmetricLoss, ///< directed host->peer per-hop loss raised to `loss`
    kBurstReorder,   ///< datagrams held back randomly so later sends overtake
};

/// Builds one synthetic storm datagram. The sim layer knows nothing about
/// the discovery wire format (layering: narada_sim depends only on
/// narada_common), so the payload — typically an encoded DiscoveryRequest
/// with a fresh UUID — is produced by the caller from the injector's seeded
/// Rng and the synthetic client's index, keeping storms reproducible.
using StormPayloadFactory = std::function<Bytes(Rng& rng, std::uint32_t client_index)>;

const char* to_string(FaultType t);

struct FaultAction {
    FaultType type = FaultType::kHostCrash;
    /// When the fault strikes, relative to ChaosInjector::run().
    DurationUs at = 0;
    /// How long it lasts before the injector reverts it. 0 = permanent
    /// (crashes with duration 0 never restart). Ignored by kClockSkewStep,
    /// which is a one-way step.
    DurationUs duration = 0;

    HostId host = kInvalidHost;  ///< crash / skew-step subject
    HostId peer = kInvalidHost;  ///< second endpoint of a link cut
    std::vector<HostId> group_a;  ///< partition side A
    std::vector<HostId> group_b;  ///< partition side B
    double loss = 0.0;            ///< storm per-hop drop / reorder probability
    DurationUs skew_delta = 0;    ///< clock step amount
    DurationUs reorder_extra = 0; ///< kBurstReorder: max extra holding delay

    // kRequestStorm only.
    Endpoint storm_target{};             ///< flood destination (usually a BDN)
    std::uint32_t storm_clients = 0;     ///< synthetic clients per round
    DurationUs storm_interval = 0;       ///< spacing between rounds
    std::vector<HostId> storm_sources;   ///< source hosts, cycled per client
    StormPayloadFactory storm_payload;   ///< datagram builder per client
};

/// An ordered fault schedule with fluent builders:
///
///   FaultPlan plan;
///   plan.crash(5 * kSecond, hub, 10 * kSecond)
///       .partition(20 * kSecond, {a, b}, {c, d}, 8 * kSecond)
///       .loss_storm(35 * kSecond, 0.05, 5 * kSecond);
struct FaultPlan {
    std::vector<FaultAction> actions;

    FaultPlan& crash(DurationUs at, HostId host, DurationUs down_for);
    FaultPlan& cut_link(DurationUs at, HostId a, HostId b, DurationUs down_for);
    FaultPlan& partition(DurationUs at, std::vector<HostId> side_a,
                         std::vector<HostId> side_b, DurationUs down_for);
    FaultPlan& loss_storm(DurationUs at, double per_hop_loss, DurationUs down_for);
    /// One-way congestion: datagrams `from` -> `to` suffer `per_hop_loss`
    /// per hop while the reverse direction keeps the ambient loss. The
    /// classic trap for ack-clocked protocols.
    FaultPlan& asymmetric_loss(DurationUs at, HostId from, HostId to,
                               double per_hop_loss, DurationUs down_for);
    /// Burst reordering: each datagram is independently held back by up to
    /// `max_extra` with probability `probability`.
    FaultPlan& burst_reorder(DurationUs at, double probability, DurationUs max_extra,
                             DurationUs down_for);
    FaultPlan& skew_step(DurationUs at, HostId host, DurationUs delta);
    /// A scripted request storm: every `interval`, each of `clients`
    /// synthetic clients (sending from `sources`, cycled, on ephemeral
    /// ports) fires one `payload(rng, i)` datagram at `target`, for
    /// `down_for` of virtual time.
    FaultPlan& request_storm(DurationUs at, Endpoint target, std::uint32_t clients,
                             DurationUs interval, DurationUs down_for,
                             std::vector<HostId> sources, StormPayloadFactory payload);

    // --- compound waves --------------------------------------------------
    /// One crash/restart per host, staggered `stagger` apart starting at
    /// `at`, each down for `down_for`. With stagger < down_for the outages
    /// overlap — the rolling-upgrade-gone-wrong wave a replicated registry
    /// must ride out (crash-during-rebalance: each restart triggers
    /// handoffs while the next host is already going down).
    FaultPlan& rolling_crashes(DurationUs at, const std::vector<HostId>& hosts,
                               DurationUs down_for, DurationUs stagger);
    /// `rounds` partitions of side_a from side_b, each `down_for` long with
    /// `gap` of healed time between them: a flapping split the anti-entropy
    /// plane must re-converge after every time.
    FaultPlan& flapping_partition(DurationUs at, std::vector<HostId> side_a,
                                  std::vector<HostId> side_b, std::size_t rounds,
                                  DurationUs down_for, DurationUs gap);

    /// When the last fault has been reverted, relative to run().
    [[nodiscard]] DurationUs duration() const;
    [[nodiscard]] bool empty() const { return actions.empty(); }

    /// A seeded random plan over `hosts`: `crashes` crash/restart cycles
    /// spread uniformly over `horizon`, each down for [min_down, max_down].
    /// The same seed always yields the same plan.
    static FaultPlan random_crashes(std::uint64_t seed, const std::vector<HostId>& hosts,
                                    std::size_t crashes, DurationUs horizon,
                                    DurationUs min_down, DurationUs max_down);
};

/// Plays a FaultPlan against a SimNetwork on its kernel.
class ChaosInjector {
public:
    struct Stats {
        std::uint64_t crashes = 0;
        std::uint64_t restarts = 0;
        std::uint64_t link_cuts = 0;
        std::uint64_t link_heals = 0;
        std::uint64_t partitions = 0;
        std::uint64_t partition_heals = 0;
        std::uint64_t loss_storms = 0;
        std::uint64_t skew_steps = 0;
        std::uint64_t request_storms = 0;       ///< storms started
        std::uint64_t storm_requests_sent = 0;  ///< synthetic datagrams fired
        std::uint64_t asymmetric_losses = 0;
        std::uint64_t reorder_storms = 0;
    };

    /// `seed` feeds the injector's own Rng (storm payload UUIDs etc.), so
    /// chaos draws never perturb the streams of the system under test.
    ChaosInjector(Kernel& kernel, SimNetwork& network,
                  std::uint64_t seed = 0x73746F726Dull)
        : kernel_(kernel), network_(network), rng_(seed) {}

    ChaosInjector(const ChaosInjector&) = delete;
    ChaosInjector& operator=(const ChaosInjector&) = delete;

    /// Schedule every action of `plan` from now. May be called more than
    /// once; plans accumulate. The injector must outlive the kernel run.
    void run(const FaultPlan& plan);

    /// Absolute virtual time at which the last scheduled fault has been
    /// reverted (the plan "ends"); 0 before any run().
    [[nodiscard]] TimeUs plan_end() const { return plan_end_; }
    /// True once virtual time has passed plan_end().
    [[nodiscard]] bool done() const { return kernel_.now() >= plan_end_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    /// Network knobs captured when a fault strikes, restored by revert()
    /// so overlapping faults each put back what they found.
    struct PriorState {
        double loss = 0.0;
        double reorder_prob = 0.0;
        DurationUs reorder_extra = 0;
    };

    void apply(const FaultAction& action);
    void revert(const FaultAction& action, const PriorState& prior);
    void set_partition(const std::vector<HostId>& a, const std::vector<HostId>& b,
                       bool down);
    /// One storm round; self-reschedules until `storm_end`.
    void storm_tick(const FaultAction& action, TimeUs storm_end);

    Kernel& kernel_;
    SimNetwork& network_;
    TimeUs plan_end_ = 0;
    Stats stats_;
    Rng rng_;
};

}  // namespace narada::sim
