#include "sim/kernel.hpp"

#include <stdexcept>
#include <utility>

namespace narada::sim {

TimerId Kernel::schedule_at(TimeUs t, Task task) {
    if (t < now_) t = now_;  // past deadlines fire "immediately"
    const TimerId id = next_timer_++;
    queue_.push(Event{t, next_seq_++, id, std::move(task)});
    return id;
}

TimerId Kernel::schedule_after(DurationUs delay, Task task) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(task));
}

void Kernel::cancel(TimerId id) {
    if (id == kInvalidTimer) return;
    cancelled_.insert(id);
}

bool Kernel::step() {
    while (!queue_.empty()) {
        // priority_queue::top returns const&; we must copy the task out
        // before pop. Tasks are small closures so this is cheap.
        Event ev = queue_.top();
        queue_.pop();
        if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.time;
        ev.task();
        return true;
    }
    return false;
}

std::size_t Kernel::run(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    if (n == max_events) {
        throw std::runtime_error("sim::Kernel::run exceeded event budget (runaway loop?)");
    }
    return n;
}

std::size_t Kernel::run_until(TimeUs deadline, std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && !queue_.empty()) {
        // Drop cancelled events from the head so the deadline peek below
        // sees the next *live* event.
        while (!queue_.empty()) {
            const auto it = cancelled_.find(queue_.top().id);
            if (it == cancelled_.end()) break;
            cancelled_.erase(it);
            queue_.pop();
        }
        if (queue_.empty()) break;
        // Peek: do not run events scheduled past the deadline.
        if (queue_.top().time > deadline) break;
        if (step()) ++n;
    }
    if (n == max_events) {
        throw std::runtime_error("sim::Kernel::run_until exceeded event budget (runaway loop?)");
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace narada::sim
