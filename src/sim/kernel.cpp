#include "sim/kernel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace narada::sim {

std::uint32_t Kernel::acquire_node() {
    if (free_head_ != kNoNode) {
        const std::uint32_t idx = free_head_;
        free_head_ = nodes_[idx].next_free;
        nodes_[idx].next_free = kNoNode;
        return idx;
    }
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Kernel::release_node(std::uint32_t index) {
    EventNode& node = nodes_[index];
    // Bumping the generation invalidates any outstanding TimerId for this
    // slot; generation 0 is skipped so a TimerId can never equal
    // kInvalidTimer (index 0 with generation 0 would be id 0).
    if (++node.gen == 0) node.gen = 1;
    node.cancelled = false;
    node.raw_fn = nullptr;
    node.raw_ctx = nullptr;
    node.task = nullptr;  // drop captured state eagerly
    node.next_free = free_head_;
    free_head_ = index;
}

TimerId Kernel::arm_node(TimeUs t, std::uint32_t index) {
    EventNode& node = nodes_[index];
    node.time = t < now_ ? now_ : t;  // past deadlines fire "immediately"
    node.seq = next_seq_++;
    heap_.push_back(index);
    std::push_heap(heap_.begin(), heap_.end(), later());
    ++live_;
    return make_id(node.gen, index);
}

TimerId Kernel::schedule_at(TimeUs t, Task task) {
    const std::uint32_t idx = acquire_node();
    nodes_[idx].task = std::move(task);
    return arm_node(t, idx);
}

TimerId Kernel::schedule_after(DurationUs delay, Task task) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(task));
}

TimerId Kernel::schedule_raw_at(TimeUs t, RawFn fn, void* ctx, std::uint64_t arg) {
    const std::uint32_t idx = acquire_node();
    EventNode& node = nodes_[idx];
    node.raw_fn = fn;
    node.raw_ctx = ctx;
    node.raw_arg = arg;
    return arm_node(t, idx);
}

TimerId Kernel::schedule_raw_after(DurationUs delay, RawFn fn, void* ctx, std::uint64_t arg) {
    if (delay < 0) delay = 0;
    return schedule_raw_at(now_ + delay, fn, ctx, arg);
}

void Kernel::cancel(TimerId id) {
    if (id == kInvalidTimer) return;
    const auto idx = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (idx >= nodes_.size()) return;
    EventNode& node = nodes_[idx];
    if (node.gen != gen || node.cancelled) return;  // already fired / cancelled
    node.cancelled = true;
    --live_;
}

void Kernel::reserve(std::size_t events) {
    heap_.reserve(events);
    if (nodes_.size() >= events) return;
    nodes_.reserve(events);
    while (nodes_.size() < events) {
        nodes_.emplace_back();
        release_node(static_cast<std::uint32_t>(nodes_.size() - 1));
    }
}

bool Kernel::step() {
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), later());
        const std::uint32_t idx = heap_.back();
        heap_.pop_back();
        if (nodes_[idx].cancelled) {
            release_node(idx);
            continue;
        }
        now_ = nodes_[idx].time;
        --live_;
        if (nodes_[idx].raw_fn != nullptr) {
            // Copy the callback out and recycle the node *before* invoking
            // it: the callback may schedule (growing nodes_) or reuse the
            // slot, so no reference into the pool may survive the call.
            const RawFn fn = nodes_[idx].raw_fn;
            void* ctx = nodes_[idx].raw_ctx;
            const std::uint64_t arg = nodes_[idx].raw_arg;
            release_node(idx);
            fn(ctx, arg);
        } else {
            Task task = std::move(nodes_[idx].task);
            release_node(idx);
            task();
        }
        return true;
    }
    return false;
}

std::size_t Kernel::run(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    if (n == max_events) {
        throw std::runtime_error("sim::Kernel::run exceeded event budget (runaway loop?)");
    }
    return n;
}

void Kernel::drop_cancelled_head() {
    while (!heap_.empty() && nodes_[heap_.front()].cancelled) {
        std::pop_heap(heap_.begin(), heap_.end(), later());
        release_node(heap_.back());
        heap_.pop_back();
    }
}

std::size_t Kernel::run_until(TimeUs deadline, std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events) {
        // Drop cancelled events from the head so the deadline peek below
        // sees the next *live* event.
        drop_cancelled_head();
        if (heap_.empty()) break;
        // Peek: do not run events scheduled past the deadline.
        if (nodes_[heap_.front()].time > deadline) break;
        if (step()) ++n;
    }
    if (n == max_events) {
        throw std::runtime_error("sim::Kernel::run_until exceeded event budget (runaway loop?)");
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace narada::sim
