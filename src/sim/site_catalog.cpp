#include "sim/site_catalog.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace narada::sim {
namespace {

const std::vector<SiteInfo> kSites = {
    {"Bloomington", "gf1.ucs.indiana.edu", "Bloomington, IN, USA", "iu-lab"},
    {"Indianapolis", "complexity.ucs.indiana.edu", "Indianapolis, IN, USA", "iupui"},
    {"NCSA", "tungsten.ncsa.uiuc.edu", "NCSA, UIUC, IL, USA", "ncsa"},
    {"UMN", "webis.msi.umn.edu", "Minneapolis, MN, USA", "umn"},
    {"FSU", "pamd2.fsit.fsu.edu", "Tallahassee, FL, USA", "fsu"},
    {"Cardiff", "bouscat.cs.cf.ac.uk", "Cardiff, UK", "cardiff"},
};

// One-way latency in milliseconds, symmetric, indexed [a][b]. Values are
// calibrated to 2005-era WAN RTTs between the paper's sites: intra-campus
// links are sub-millisecond, Midwest academic backbones (Abilene) run
// 5–15 ms one-way, the IN→FL path ~18 ms, and the transatlantic IN→UK path
// ~50+ ms one-way.
constexpr double kLatencyMs[kSiteCount][kSiteCount] = {
    //  Blo    Indy   NCSA   UMN    FSU    Cardiff
    {0.15, 1.6, 5.5, 11.0, 18.0, 52.0},   // Bloomington
    {1.6, 0.15, 5.0, 10.5, 17.0, 51.0},   // Indianapolis
    {5.5, 5.0, 0.15, 8.0, 21.0, 55.0},    // NCSA
    {11.0, 10.5, 8.0, 0.15, 25.0, 58.0},  // UMN
    {18.0, 17.0, 21.0, 25.0, 0.15, 62.0}, // FSU
    {52.0, 51.0, 55.0, 58.0, 62.0, 0.15}, // Cardiff
};

// Uniform jitter bound in milliseconds (longer paths jitter more).
constexpr double kJitterMs[kSiteCount][kSiteCount] = {
    {0.05, 0.3, 0.8, 1.5, 2.5, 6.0},
    {0.3, 0.05, 0.8, 1.5, 2.4, 6.0},
    {0.8, 0.8, 0.05, 1.2, 3.0, 6.5},
    {1.5, 1.5, 1.2, 0.05, 3.5, 7.0},
    {2.5, 2.4, 3.0, 3.5, 0.05, 7.5},
    {6.0, 6.0, 6.5, 7.0, 7.5, 0.05},
};

// Router hops between sites (drives the per-hop datagram-loss model that
// the paper's §5.2 relies on to filter far-away brokers).
constexpr int kHops[kSiteCount][kSiteCount] = {
    {1, 3, 6, 9, 12, 18},
    {3, 1, 6, 9, 11, 18},
    {6, 6, 1, 7, 13, 19},
    {9, 9, 7, 1, 14, 20},
    {12, 11, 13, 14, 1, 21},
    {18, 18, 19, 20, 21, 1},
};

std::size_t index_of(Site s) {
    const auto i = static_cast<std::size_t>(s);
    if (i >= kSiteCount) throw std::out_of_range("bad Site");
    return i;
}

}  // namespace

const SiteInfo& site_info(Site s) { return kSites[index_of(s)]; }

const std::vector<SiteInfo>& all_sites() { return kSites; }

double site_latency_ms(Site a, Site b) { return kLatencyMs[index_of(a)][index_of(b)]; }

double site_jitter_ms(Site a, Site b) { return kJitterMs[index_of(a)][index_of(b)]; }

int site_hops(Site a, Site b) { return kHops[index_of(a)][index_of(b)]; }

WanDeployment::WanDeployment(SimNetwork& net, const std::vector<Site>& placements,
                             DurationUs max_skew) {
    hosts_.reserve(placements.size());
    sites_ = placements;
    for (Site s : placements) {
        const SiteInfo& info = site_info(s);
        HostSpec spec;
        spec.name = info.machine + "#" + std::to_string(hosts_.size());
        spec.site = info.site;
        spec.realm = info.realm;
        spec.clock_skew = net.rng().uniform_int(-max_skew, max_skew);
        hosts_.push_back(net.add_host(spec));
    }
    // Wire every pair from the catalog's tables.
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
        for (std::size_t j = i + 1; j < hosts_.size(); ++j) {
            LinkQuality q;
            q.one_way = from_ms(site_latency_ms(sites_[i], sites_[j]));
            q.jitter = from_ms(site_jitter_ms(sites_[i], sites_[j]));
            q.hops = site_hops(sites_[i], sites_[j]);
            net.set_link(hosts_[i], hosts_[j], q);
        }
    }
}

std::string render_site_catalog() {
    std::string out;
    char buf[256];
    out += "Site catalog (Table 1 analogue)\n";
    std::snprintf(buf, sizeof(buf), "%-14s %-28s %-26s %-9s %s\n", "Site", "Machine",
                  "Location", "Realm", "One-way to client (ms)");
    out += buf;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        const SiteInfo& info = kSites[i];
        std::snprintf(buf, sizeof(buf), "%-14s %-28s %-26s %-9s %22.2f\n", info.site.c_str(),
                      info.machine.c_str(), info.location.c_str(), info.realm.c_str(),
                      kLatencyMs[0][i]);
        out += buf;
    }
    out += "\nOne-way latency matrix (ms):\n";
    std::snprintf(buf, sizeof(buf), "%-14s", "");
    out += buf;
    for (const auto& info : kSites) {
        std::snprintf(buf, sizeof(buf), "%10s", info.site.c_str());
        out += buf;
    }
    out += "\n";
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        std::snprintf(buf, sizeof(buf), "%-14s", kSites[i].site.c_str());
        out += buf;
        for (std::size_t j = 0; j < kSiteCount; ++j) {
            std::snprintf(buf, sizeof(buf), "%10.2f", kLatencyMs[i][j]);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

}  // namespace narada::sim
