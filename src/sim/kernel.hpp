// Discrete-event simulation kernel.
//
// A single-threaded priority queue of (virtual-time, sequence, task). All
// simulated network delivery, protocol timers and node behaviour run as
// events on this kernel, which makes every experiment deterministic for a
// given seed: two events at the same virtual time fire in scheduling order.
//
// Per CP.4 the unit of concurrency here is the *task*, not the thread; the
// kernel is deliberately single-threaded and the POSIX transport backend
// (src/transport/posix_transport.*) supplies real concurrency instead.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/scheduler.hpp"
#include "common/types.hpp"

namespace narada::sim {

using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

class Kernel final : public Scheduler {
public:
    using Task = std::function<void()>;

    Kernel() : clock_(*this) {}
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    [[nodiscard]] TimeUs now() const { return now_; }

    /// Clock view of virtual time ("true" UTC in the simulated world).
    [[nodiscard]] const Clock& clock() const { return clock_; }

    /// Schedule `task` at absolute virtual time `t` (>= now). Returns an id
    /// that can be passed to cancel().
    TimerId schedule_at(TimeUs t, Task task);

    /// Schedule `task` after `delay` from now.
    TimerId schedule_after(DurationUs delay, Task task);

    /// Cancel a pending timer. Cancelling an already-fired or invalid id is
    /// a no-op (protocols routinely cancel timers that may have fired).
    void cancel(TimerId id);

    // Scheduler interface (delay-based view of the same queue).
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override {
        return schedule_after(delay, std::move(task));
    }
    void cancel_timer(TimerHandle handle) override { cancel(handle); }

    /// Execute the next event. Returns false if the queue is empty.
    bool step();

    /// Run until the queue drains or `max_events` fire. Returns events run.
    std::size_t run(std::size_t max_events = kDefaultEventBudget);

    /// Run events with time <= `deadline`; afterwards now() == deadline if
    /// the queue drained past it. Returns events run.
    std::size_t run_until(TimeUs deadline, std::size_t max_events = kDefaultEventBudget);

    [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }
    [[nodiscard]] bool empty() const { return pending() == 0; }

    /// Guard against runaway event loops in tests and benches.
    static constexpr std::size_t kDefaultEventBudget = 100'000'000;

private:
    struct Event {
        TimeUs time;
        std::uint64_t seq;
        TimerId id;
        Task task;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    class VirtualClock final : public Clock {
    public:
        explicit VirtualClock(const Kernel& kernel) : kernel_(kernel) {}
        [[nodiscard]] TimeUs now() const override { return kernel_.now(); }

    private:
        const Kernel& kernel_;
    };

    TimeUs now_ = 0;
    std::uint64_t next_seq_ = 1;
    TimerId next_timer_ = 1;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<TimerId> cancelled_;
    VirtualClock clock_;
};

}  // namespace narada::sim
