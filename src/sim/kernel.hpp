// Discrete-event simulation kernel.
//
// A single-threaded priority queue of (virtual-time, sequence, task). All
// simulated network delivery, protocol timers and node behaviour run as
// events on this kernel, which makes every experiment deterministic for a
// given seed: two events at the same virtual time fire in scheduling order.
//
// Event storage is pooled: each scheduled event lives in a recycled
// EventNode slot (free-list, same idiom as transport::BufferPool) and the
// priority queue is an indexed binary heap over slot numbers. Cancellation
// is O(1) (generation check + lazy removal) and the raw-callback path
// (schedule_raw_at) performs no allocation in steady state, which is what
// lets a million-endpoint swarm run without thrashing the allocator.
//
// Per CP.4 the unit of concurrency here is the *task*, not the thread; the
// kernel is deliberately single-threaded and the POSIX transport backend
// (src/transport/posix_transport.*) supplies real concurrency instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/scheduler.hpp"
#include "common/types.hpp"

namespace narada::sim {

using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

class Kernel final : public Scheduler {
public:
    using Task = std::function<void()>;

    /// Allocation-free callback: a plain function pointer plus an opaque
    /// context and a 64-bit argument (typically a pooled-object index).
    using RawFn = void (*)(void* ctx, std::uint64_t arg);

    Kernel() : clock_(*this) {}
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    [[nodiscard]] TimeUs now() const { return now_; }

    /// Clock view of virtual time ("true" UTC in the simulated world).
    [[nodiscard]] const Clock& clock() const { return clock_; }

    /// Schedule `task` at absolute virtual time `t` (>= now). Returns an id
    /// that can be passed to cancel().
    TimerId schedule_at(TimeUs t, Task task);

    /// Schedule `task` after `delay` from now.
    TimerId schedule_after(DurationUs delay, Task task);

    /// Zero-allocation scheduling path: no std::function, no captures. The
    /// callback receives (ctx, arg) when the event fires. Steady-state use
    /// (schedule/fire/schedule...) recycles event nodes and never touches
    /// the allocator once pools are warm.
    TimerId schedule_raw_at(TimeUs t, RawFn fn, void* ctx = nullptr, std::uint64_t arg = 0);

    /// Raw-callback variant of schedule_after.
    TimerId schedule_raw_after(DurationUs delay, RawFn fn, void* ctx = nullptr,
                               std::uint64_t arg = 0);

    /// Cancel a pending timer. Cancelling an already-fired or invalid id is
    /// a no-op (protocols routinely cancel timers that may have fired).
    void cancel(TimerId id);

    // Scheduler interface (delay-based view of the same queue).
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override {
        return schedule_after(delay, std::move(task));
    }
    void cancel_timer(TimerHandle handle) override { cancel(handle); }

    /// Execute the next event. Returns false if the queue is empty.
    bool step();

    /// Run until the queue drains or `max_events` fire. Returns events run.
    std::size_t run(std::size_t max_events = kDefaultEventBudget);

    /// Run events with time <= `deadline`; afterwards now() == deadline if
    /// the queue drained past it. Returns events run.
    std::size_t run_until(TimeUs deadline, std::size_t max_events = kDefaultEventBudget);

    /// Pre-size the node pool and heap for `events` concurrent events so a
    /// large scenario never reallocates mid-run.
    void reserve(std::size_t events);

    [[nodiscard]] std::size_t pending() const { return live_; }
    [[nodiscard]] bool empty() const { return live_ == 0; }

    /// Total event nodes ever allocated (live + cancelled + free-listed).
    /// A steady-state workload should see this plateau — asserted by the
    /// allocation-counting kernel test.
    [[nodiscard]] std::size_t pooled_nodes() const { return nodes_.size(); }

    /// Guard against runaway event loops in tests and benches.
    static constexpr std::size_t kDefaultEventBudget = 100'000'000;

private:
    static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

    struct EventNode {
        TimeUs time = 0;
        std::uint64_t seq = 0;
        RawFn raw_fn = nullptr;
        void* raw_ctx = nullptr;
        std::uint64_t raw_arg = 0;
        Task task;  // used only when raw_fn == nullptr
        std::uint32_t gen = 1;
        std::uint32_t next_free = kNoNode;
        bool cancelled = false;
    };

    // Orders heap slot indices by (time, seq); min-heap via std::push_heap.
    struct Later {
        const Kernel* kernel;
        bool operator()(std::uint32_t a, std::uint32_t b) const {
            const EventNode& na = kernel->nodes_[a];
            const EventNode& nb = kernel->nodes_[b];
            if (na.time != nb.time) return na.time > nb.time;
            return na.seq > nb.seq;
        }
    };

    class VirtualClock final : public Clock {
    public:
        explicit VirtualClock(const Kernel& kernel) : kernel_(kernel) {}
        [[nodiscard]] TimeUs now() const override { return kernel_.now(); }

    private:
        const Kernel& kernel_;
    };

    [[nodiscard]] Later later() const { return Later{this}; }
    [[nodiscard]] static TimerId make_id(std::uint32_t gen, std::uint32_t index) {
        return (static_cast<TimerId>(gen) << 32) | index;
    }

    std::uint32_t acquire_node();
    void release_node(std::uint32_t index);
    TimerId arm_node(TimeUs t, std::uint32_t index);
    void drop_cancelled_head();

    TimeUs now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::vector<EventNode> nodes_;
    std::vector<std::uint32_t> heap_;
    std::uint32_t free_head_ = kNoNode;
    std::size_t live_ = 0;
    VirtualClock clock_;
};

}  // namespace narada::sim
