#include "crypto/envelope.hpp"

namespace narada::crypto {

const char* to_string(EnvelopeError error) {
    switch (error) {
        case EnvelopeError::kOk: return "ok";
        case EnvelopeError::kTruncated: return "truncated";
        case EnvelopeError::kSessionSize: return "session-size";
        case EnvelopeError::kSessionDecrypt: return "session-decrypt";
        case EnvelopeError::kCipherAlignment: return "cipher-alignment";
        case EnvelopeError::kBadPadding: return "bad-padding";
        case EnvelopeError::kBundleParse: return "bundle-parse";
        case EnvelopeError::kTrailingGarbage: return "trailing-garbage";
        case EnvelopeError::kUnknownSubtype: return "unknown-subtype";
        case EnvelopeError::kNoSession: return "no-session";
        case EnvelopeError::kKeyMismatch: return "key-mismatch";
        case EnvelopeError::kBadTag: return "bad-tag";
        case EnvelopeError::kUnknownSigner: return "unknown-signer";
        case EnvelopeError::kBadCertChain: return "bad-cert-chain";
        case EnvelopeError::kBadKeySignature: return "bad-key-signature";
        case EnvelopeError::kRecipientMismatch: return "recipient-mismatch";
    }
    return "unknown";
}

void SecureEnvelope::encode(wire::ByteWriter& writer) const {
    writer.blob(encrypted_session);
    writer.blob(ciphertext);
    writer.str(recipient_hint);
}

SecureEnvelope SecureEnvelope::decode(wire::ByteReader& reader) {
    SecureEnvelope env;
    env.encrypted_session = reader.blob();
    env.ciphertext = reader.blob();
    env.recipient_hint = reader.str();
    return env;
}

std::optional<SecureEnvelope> seal(const Bytes& payload, const std::string& signer_name,
                                   const RsaPrivateKey& signer_key,
                                   const RsaPublicKey& recipient_key,
                                   const std::string& recipient_hint, Rng& rng) {
    // Inner bundle: payload, signature over the payload, signer name.
    const Bytes signature = rsa_sign(signer_key, payload);
    wire::ByteWriter bundle;
    bundle.blob(payload);
    bundle.blob(signature);
    bundle.str(signer_name);

    // Fresh AES-128 session key and IV.
    Aes128::Key key;
    Aes128::Block iv;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());

    SecureEnvelope env;
    env.recipient_hint = recipient_hint;
    env.ciphertext = Aes128(key).encrypt_cbc(bundle.take(), iv);

    Bytes session;
    session.insert(session.end(), key.begin(), key.end());
    session.insert(session.end(), iv.begin(), iv.end());
    auto encrypted = rsa_encrypt(recipient_key, session, rng);
    if (!encrypted) return std::nullopt;  // recipient modulus too small
    env.encrypted_session = std::move(*encrypted);
    return env;
}

OpenOutcome open_checked(const SecureEnvelope& envelope, const RsaPrivateKey& recipient_key,
                         const RsaPublicKey& signer_key) {
    OpenOutcome out;
    // The ciphertext length gate comes first: it is the cheapest check and
    // rejects the common truncation corruptions before any RSA work.
    if (envelope.ciphertext.empty() ||
        envelope.ciphertext.size() % Aes128::kBlockSize != 0) {
        out.error = EnvelopeError::kCipherAlignment;
        return out;
    }
    const auto session = rsa_decrypt(recipient_key, envelope.encrypted_session);
    if (!session) {
        out.error = EnvelopeError::kSessionDecrypt;
        return out;
    }
    if (session->size() != Aes128::kKeySize + Aes128::kBlockSize) {
        out.error = EnvelopeError::kSessionSize;
        return out;
    }
    Aes128::Key key;
    Aes128::Block iv;
    std::copy_n(session->begin(), key.size(), key.begin());
    std::copy_n(session->begin() + static_cast<std::ptrdiff_t>(key.size()), iv.size(),
                iv.begin());

    Bytes bundle;
    if (!Aes128(key).decrypt_cbc(
            std::span<const std::uint8_t>(envelope.ciphertext.data(),
                                          envelope.ciphertext.size()),
            iv, bundle)) {
        out.error = EnvelopeError::kBadPadding;
        return out;
    }

    // Every field of the bundle is length-prefixed; the reader bounds-checks
    // each prefix against the remaining bytes, so a forged length cannot
    // read past the decrypted buffer — it surfaces as kTruncated here.
    try {
        wire::ByteReader reader(bundle);
        out.opened.payload = reader.blob();
        const Bytes signature = reader.blob();
        out.opened.signer_name = reader.str();
        if (reader.remaining() != 0) {
            out = OpenOutcome{};
            out.error = EnvelopeError::kTrailingGarbage;
            return out;
        }
        out.opened.signature_valid = rsa_verify(signer_key, out.opened.payload, signature);
        out.error = EnvelopeError::kOk;
        return out;
    } catch (const wire::WireError&) {
        out = OpenOutcome{};
        out.error = EnvelopeError::kTruncated;
        return out;
    }
}

std::optional<OpenedEnvelope> open(const SecureEnvelope& envelope,
                                   const RsaPrivateKey& recipient_key,
                                   const RsaPublicKey& signer_key) {
    OpenOutcome outcome = open_checked(envelope, recipient_key, signer_key);
    if (outcome.error != EnvelopeError::kOk) return std::nullopt;
    return std::move(outcome.opened);
}

}  // namespace narada::crypto
