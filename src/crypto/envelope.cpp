#include "crypto/envelope.hpp"

namespace narada::crypto {

void SecureEnvelope::encode(wire::ByteWriter& writer) const {
    writer.blob(encrypted_session);
    writer.blob(ciphertext);
    writer.str(recipient_hint);
}

SecureEnvelope SecureEnvelope::decode(wire::ByteReader& reader) {
    SecureEnvelope env;
    env.encrypted_session = reader.blob();
    env.ciphertext = reader.blob();
    env.recipient_hint = reader.str();
    return env;
}

std::optional<SecureEnvelope> seal(const Bytes& payload, const std::string& signer_name,
                                   const RsaPrivateKey& signer_key,
                                   const RsaPublicKey& recipient_key,
                                   const std::string& recipient_hint, Rng& rng) {
    // Inner bundle: payload, signature over the payload, signer name.
    const Bytes signature = rsa_sign(signer_key, payload);
    wire::ByteWriter bundle;
    bundle.blob(payload);
    bundle.blob(signature);
    bundle.str(signer_name);

    // Fresh AES-128 session key and IV.
    Aes128::Key key;
    Aes128::Block iv;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());

    SecureEnvelope env;
    env.recipient_hint = recipient_hint;
    env.ciphertext = Aes128(key).encrypt_cbc(bundle.take(), iv);

    Bytes session;
    session.insert(session.end(), key.begin(), key.end());
    session.insert(session.end(), iv.begin(), iv.end());
    auto encrypted = rsa_encrypt(recipient_key, session, rng);
    if (!encrypted) return std::nullopt;  // recipient modulus too small
    env.encrypted_session = std::move(*encrypted);
    return env;
}

std::optional<OpenedEnvelope> open(const SecureEnvelope& envelope,
                                   const RsaPrivateKey& recipient_key,
                                   const RsaPublicKey& signer_key) {
    const auto session = rsa_decrypt(recipient_key, envelope.encrypted_session);
    if (!session || session->size() != Aes128::kKeySize + Aes128::kBlockSize) {
        return std::nullopt;
    }
    Aes128::Key key;
    Aes128::Block iv;
    std::copy_n(session->begin(), key.size(), key.begin());
    std::copy_n(session->begin() + static_cast<std::ptrdiff_t>(key.size()), iv.size(),
                iv.begin());

    Bytes bundle;
    try {
        bundle = Aes128(key).decrypt_cbc(envelope.ciphertext, iv);
    } catch (const std::invalid_argument&) {
        return std::nullopt;
    }

    try {
        wire::ByteReader reader(bundle);
        OpenedEnvelope out;
        out.payload = reader.blob();
        const Bytes signature = reader.blob();
        out.signer_name = reader.str();
        reader.expect_end();
        out.signature_valid = rsa_verify(signer_key, out.payload, signature);
        return out;
    } catch (const wire::WireError&) {
        return std::nullopt;
    }
}

}  // namespace narada::crypto
