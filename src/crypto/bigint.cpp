#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace narada::crypto {
namespace {

constexpr std::uint64_t kBase = 1ull << 32;

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

BigInt::BigInt(std::uint64_t value) {
    if (value == 0) return;
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(const Bytes& bytes) {
    BigInt out;
    for (std::uint8_t byte : bytes) {
        out = (out << 8) + BigInt(byte);
    }
    return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
    Bytes out;
    const std::size_t byte_len = (bit_length() + 7) / 8;
    out.reserve(std::max(byte_len, min_len));
    for (std::size_t i = byte_len; i-- > 0;) {
        const std::size_t limb = i / 4;
        const std::size_t shift = (i % 4) * 8;
        out.push_back(static_cast<std::uint8_t>(limbs_[limb] >> shift));
    }
    while (out.size() < min_len) out.insert(out.begin(), 0);
    return out;
}

std::optional<BigInt> BigInt::from_hex(const std::string& hex) {
    BigInt out;
    for (char c : hex) {
        const int v = hex_value(c);
        if (v < 0) return std::nullopt;
        out = (out << 4) + BigInt(static_cast<std::uint64_t>(v));
    }
    return out;
}

std::string BigInt::to_hex() const {
    if (is_zero()) return "0";
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int nibble = 7; nibble >= 0; --nibble) {
            out.push_back(kDigits[(limbs_[i] >> (nibble * 4)) & 0xF]);
        }
    }
    const std::size_t first = out.find_first_not_of('0');
    return out.substr(first);
}

std::size_t BigInt::bit_length() const {
    if (limbs_.empty()) return 0;
    std::size_t bits = (limbs_.size() - 1) * 32;
    std::uint32_t top = limbs_.back();
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool BigInt::bit(std::size_t index) const {
    const std::size_t limb = index / 32;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (index % 32)) & 1u;
}

std::uint64_t BigInt::low_u64() const {
    std::uint64_t out = 0;
    if (!limbs_.empty()) out = limbs_[0];
    if (limbs_.size() > 1) out |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return out;
}

std::strong_ordering BigInt::compare(const BigInt& a, const BigInt& b) {
    if (a.limbs_.size() != b.limbs_.size()) {
        return a.limbs_.size() <=> b.limbs_.size();
    }
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
    }
    return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& other) const {
    BigInt out;
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    out.limbs_.reserve(n + 1);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < limbs_.size()) sum += limbs_[i];
        if (i < other.limbs_.size()) sum += other.limbs_[i];
        out.limbs_.push_back(static_cast<std::uint32_t>(sum));
        carry = sum >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
    return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
    if (*this < other) throw std::underflow_error("BigInt subtraction underflow");
    BigInt out;
    out.limbs_.reserve(limbs_.size());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
        if (i < other.limbs_.size()) diff -= other.limbs_[i];
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_.push_back(static_cast<std::uint32_t>(diff));
    }
    out.trim();
    return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
    if (is_zero() || other.is_zero()) return BigInt{};
    BigInt out;
    out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
            const std::uint64_t cur =
                out.limbs_[i + j] + a * other.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + other.limbs_.size();
        while (carry) {
            const std::uint64_t cur = out.limbs_[k] + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
    if (is_zero() || bits == 0) {
        BigInt out = *this;
        return out;
    }
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    BigInt out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    if (limb_shift >= limbs_.size()) return BigInt{};
    BigInt out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
            v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
        }
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
    if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
    if (*this < divisor) return {BigInt{}, *this};
    if (divisor.limbs_.size() == 1) {
        // Fast single-limb path.
        const std::uint64_t d = divisor.limbs_[0];
        BigInt quotient;
        quotient.limbs_.assign(limbs_.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | limbs_[i];
            quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        quotient.trim();
        return {quotient, BigInt(rem)};
    }

    // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top limb
    // has its high bit set; estimate each quotient digit from the top two
    // limbs and correct (at most twice).
    const std::size_t shift = 32 - (divisor.bit_length() % 32 == 0
                                        ? 32
                                        : divisor.bit_length() % 32);
    const BigInt u = *this << shift;
    const BigInt v = divisor << shift;
    const std::size_t n = v.limbs_.size();
    const std::size_t m = u.limbs_.size() - n;

    std::vector<std::uint32_t> un(u.limbs_);
    un.push_back(0);  // extra high limb for the algorithm
    const std::vector<std::uint32_t>& vn = v.limbs_;

    BigInt quotient;
    quotient.limbs_.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat from the top two limbs of the current window.
        const std::uint64_t numerator =
            (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
        std::uint64_t q_hat = numerator / vn[n - 1];
        std::uint64_t r_hat = numerator % vn[n - 1];
        while (q_hat >= kBase ||
               q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
            --q_hat;
            r_hat += vn[n - 1];
            if (r_hat >= kBase) break;
        }

        // Multiply-subtract q_hat * v from the window.
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product = q_hat * vn[i] + carry;
            carry = product >> 32;
            std::int64_t diff = static_cast<std::int64_t>(un[i + j]) -
                                static_cast<std::int64_t>(product & 0xFFFFFFFFull) - borrow;
            if (diff < 0) {
                diff += static_cast<std::int64_t>(kBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            un[i + j] = static_cast<std::uint32_t>(diff);
        }
        std::int64_t top = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
        if (top < 0) {
            // q_hat was one too large: add v back once.
            top += static_cast<std::int64_t>(kBase);
            --q_hat;
            std::uint64_t add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum =
                    static_cast<std::uint64_t>(un[i + j]) + vn[i] + add_carry;
                un[i + j] = static_cast<std::uint32_t>(sum);
                add_carry = sum >> 32;
            }
            top += static_cast<std::int64_t>(add_carry);
            top &= 0xFFFFFFFFll;
        }
        un[j + n] = static_cast<std::uint32_t>(top);
        quotient.limbs_[j] = static_cast<std::uint32_t>(q_hat);
    }
    quotient.trim();

    BigInt remainder;
    remainder.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
    remainder.trim();
    remainder = remainder >> shift;
    return {quotient, remainder};
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
    if (modulus.is_zero()) throw std::domain_error("mod_pow: zero modulus");
    if (modulus == BigInt(1)) return BigInt{};
    BigInt result(1);
    BigInt b = base % modulus;
    const std::size_t bits = exponent.bit_length();
    for (std::size_t i = 0; i < bits; ++i) {
        if (exponent.bit(i)) result = (result * b) % modulus;
        b = (b * b) % modulus;
    }
    return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
    while (!b.is_zero()) {
        BigInt r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

std::optional<BigInt> BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
    // Extended Euclid tracking coefficients as (sign, magnitude) pairs to
    // stay within unsigned arithmetic.
    BigInt old_r = a % m;
    BigInt r = m;
    BigInt old_s(1);
    BigInt s{};
    bool old_s_neg = false;
    bool s_neg = false;

    while (!r.is_zero()) {
        const auto [q, rem] = old_r.divmod(r);
        old_r = std::move(r);
        r = rem;

        // new_s = old_s - q * s (signed).
        const BigInt qs = q * s;
        BigInt new_s;
        bool new_s_neg = false;
        if (old_s_neg == s_neg) {
            if (old_s >= qs) {
                new_s = old_s - qs;
                new_s_neg = old_s_neg;
            } else {
                new_s = qs - old_s;
                new_s_neg = !old_s_neg;
            }
        } else {
            new_s = old_s + qs;
            new_s_neg = old_s_neg;
        }
        old_s = std::move(s);
        old_s_neg = s_neg;
        s = std::move(new_s);
        s_neg = new_s_neg;
    }

    if (!(old_r == BigInt(1))) return std::nullopt;  // not coprime
    if (old_s_neg) return m - (old_s % m);
    return old_s % m;
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
    if (bits == 0) return BigInt{};
    BigInt out;
    out.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
    const std::size_t top_bit = (bits - 1) % 32;
    out.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
    out.limbs_.back() |= 1u << top_bit;  // exact bit length
    out.trim();
    return out;
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
    if (bound.is_zero()) return BigInt{};
    const std::size_t bits = bound.bit_length();
    while (true) {
        BigInt candidate;
        candidate.limbs_.assign((bits + 31) / 32, 0);
        for (auto& limb : candidate.limbs_) limb = static_cast<std::uint32_t>(rng.next());
        const std::size_t top_bit = (bits - 1) % 32;
        candidate.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
        candidate.trim();
        if (candidate < bound) return candidate;
    }
}

bool BigInt::is_probable_prime(Rng& rng, int rounds) const {
    if (*this < BigInt(2)) return false;
    static constexpr std::uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                                     23, 29, 31, 37, 41, 43, 47};
    for (std::uint32_t p : kSmallPrimes) {
        if (*this == BigInt(p)) return true;
        if ((*this % BigInt(p)).is_zero()) return false;
    }
    // Miller-Rabin: write n-1 = d * 2^r.
    const BigInt n_minus_1 = *this - BigInt(1);
    BigInt d = n_minus_1;
    std::size_t r = 0;
    while (!d.is_odd()) {
        d = d >> 1;
        ++r;
    }
    for (int round = 0; round < rounds; ++round) {
        const BigInt a = BigInt(2) + random_below(rng, *this - BigInt(4));
        BigInt x = mod_pow(a, d, *this);
        if (x == BigInt(1) || x == n_minus_1) continue;
        bool witness = true;
        for (std::size_t i = 1; i < r; ++i) {
            x = (x * x) % *this;
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness) return false;
    }
    return true;
}

BigInt BigInt::random_prime(Rng& rng, std::size_t bits, int rounds) {
    if (bits < 2) throw std::invalid_argument("random_prime: need >= 2 bits");
    while (true) {
        BigInt candidate = random_bits(rng, bits);
        if (!candidate.is_odd()) candidate = candidate + BigInt(1);
        if (candidate.is_probable_prime(rng, rounds)) return candidate;
    }
}

}  // namespace narada::crypto
