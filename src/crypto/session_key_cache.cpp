#include "crypto/session_key_cache.hpp"

#include <cstring>

namespace narada::crypto {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_key_id(const Aes128::Key& key) {
    std::uint64_t lo = 0, hi = 0;
    std::memcpy(&lo, key.data(), 8);
    std::memcpy(&hi, key.data() + 8, 8);
    std::uint64_t id = splitmix64(lo) ^ splitmix64(hi ^ 0xa5a5a5a5a5a5a5a5ULL);
    // 0 is the "no session" sentinel on the wire.
    return id == 0 ? 1 : id;
}

SessionKeyCache::Session SessionKeyCache::Session::derive(const Aes128::Key& key, TimeUs now) {
    Session s;
    s.key = key;
    s.key_id = derive_key_id(key);
    s.cipher = Aes128(key);
    // MAC key = AES_k(tweak): distinct from the cipher key, derivable by
    // both ends without extra wire bytes.
    Aes128::Key mac_key;
    const Aes128::Block tweak = {0x6d, 0x61, 0x63, 0x2d, 0x6b, 0x65, 0x79, 0x00,
                                 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01};
    s.cipher.encrypt_block(tweak.data(), mac_key.data());
    s.mac = Cmac(Aes128(mac_key));
    s.established_at = now;
    return s;
}

SessionKeyCache::SessionKeyCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

SessionKeyCache::Session* SessionKeyCache::find(std::string_view peer) {
    const auto it = index_.find(peer);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
}

SessionKeyCache::Session& SessionKeyCache::put(std::string_view peer, const Aes128::Key& key,
                                               TimeUs now) {
    const auto it = index_.find(peer);
    if (it != index_.end()) {
        // Rekey in place, bumped to most recently used.
        it->second->second = Session::derive(key, now);
        entries_.splice(entries_.begin(), entries_, it->second);
        ++stats_.insertions;
        return it->second->second;
    }
    if (entries_.size() >= capacity_) {
        // Evict the least recently used peer.
        const auto& victim = entries_.back();
        index_.erase(std::string_view(victim.first));
        entries_.pop_back();
        ++stats_.evictions;
    }
    entries_.emplace_front(std::string(peer), Session::derive(key, now));
    index_.emplace(std::string_view(entries_.front().first), entries_.begin());
    ++stats_.insertions;
    return entries_.front().second;
}

void SessionKeyCache::erase(std::string_view peer) {
    const auto it = index_.find(peer);
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
}

void SessionKeyCache::clear() {
    entries_.clear();
    index_.clear();
}

}  // namespace narada::crypto
