// Secured message envelope: sign-then-encrypt.
//
// "a discovery request and response may be secured by sending credentials
// verifying the authenticity of the clients and also encrypting the
// discovery request and response" (paper §9.1). Figure 14 times exactly
// this operation pair over a BrokerDiscoveryRequest: digitally sign and
// encrypt, then later decrypt and extract.
//
// Construction: RSA-sign SHA-256(payload) with the sender's key; bundle
// {payload, signature, signer-name}; AES-128-CBC encrypt the bundle under
// a fresh session key; RSA-encrypt (session key || IV) to the recipient.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "wire/codec.hpp"

namespace narada::crypto {

struct SecureEnvelope {
    Bytes encrypted_session;  ///< RSA(recipient, session key || IV)
    Bytes ciphertext;         ///< AES-CBC(payload || signature || signer)
    std::string recipient_hint;  ///< which key to decrypt with (cleartext)

    void encode(wire::ByteWriter& writer) const;
    static SecureEnvelope decode(wire::ByteReader& reader);
};

/// Sign `payload` with the sender's key and encrypt to the recipient.
/// Returns nullopt if the recipient key is too small for a session block.
std::optional<SecureEnvelope> seal(const Bytes& payload, const std::string& signer_name,
                                   const RsaPrivateKey& signer_key,
                                   const RsaPublicKey& recipient_key,
                                   const std::string& recipient_hint, Rng& rng);

struct OpenedEnvelope {
    Bytes payload;
    std::string signer_name;
    bool signature_valid = false;
};

/// Decrypt with the recipient's key and verify against the signer's key.
/// Returns nullopt if decryption fails structurally; a wrong signature
/// yields a result with signature_valid == false.
std::optional<OpenedEnvelope> open(const SecureEnvelope& envelope,
                                   const RsaPrivateKey& recipient_key,
                                   const RsaPublicKey& signer_key);

}  // namespace narada::crypto
