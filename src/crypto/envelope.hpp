// Secured message envelope: sign-then-encrypt.
//
// "a discovery request and response may be secured by sending credentials
// verifying the authenticity of the clients and also encrypting the
// discovery request and response" (paper §9.1). Figure 14 times exactly
// this operation pair over a BrokerDiscoveryRequest: digitally sign and
// encrypt, then later decrypt and extract.
//
// Construction: RSA-sign SHA-256(payload) with the sender's key; bundle
// {payload, signature, signer-name}; AES-128-CBC encrypt the bundle under
// a fresh session key; RSA-encrypt (session key || IV) to the recipient.
//
// Opening is hardened for untrusted network input: every length field is
// bounds-checked and failures surface as a typed EnvelopeError instead of
// an exception or a read past the buffer (the session-envelope datapath in
// discovery/security.hpp reuses the same error taxonomy).
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "wire/codec.hpp"

namespace narada::crypto {

/// Why an envelope failed to open. kOk aside, every value is a distinct
/// malformed-input class so counters can tell truncation from tampering.
enum class EnvelopeError : std::uint8_t {
    kOk,
    kTruncated,        ///< input ended inside a length-prefixed field
    kSessionSize,      ///< RSA-decrypted session blob has the wrong size
    kSessionDecrypt,   ///< RSA decryption failed structurally
    kCipherAlignment,  ///< ciphertext empty or not a block multiple
    kBadPadding,       ///< CBC padding invalid after decryption
    kBundleParse,      ///< decrypted bundle fails to parse
    kTrailingGarbage,  ///< bytes left over after the last field
    kUnknownSubtype,   ///< session envelope with an unknown subtype octet
    kNoSession,        ///< no cached session for the claimed signer
    kKeyMismatch,      ///< session key id does not match the cached session
    kBadTag,           ///< MAC verification failed
    kUnknownSigner,    ///< signer identity is not in the peer directory
    kBadCertChain,     ///< handshake certificate chain failed validation
    kBadKeySignature,  ///< handshake key binding signature invalid
    kRecipientMismatch,///< envelope addressed to a different identity
};

const char* to_string(EnvelopeError error);

struct SecureEnvelope {
    Bytes encrypted_session;  ///< RSA(recipient, session key || IV)
    Bytes ciphertext;         ///< AES-CBC(payload || signature || signer)
    std::string recipient_hint;  ///< which key to decrypt with (cleartext)

    void encode(wire::ByteWriter& writer) const;
    static SecureEnvelope decode(wire::ByteReader& reader);
};

/// Sign `payload` with the sender's key and encrypt to the recipient.
/// Returns nullopt if the recipient key is too small for a session block.
std::optional<SecureEnvelope> seal(const Bytes& payload, const std::string& signer_name,
                                   const RsaPrivateKey& signer_key,
                                   const RsaPublicKey& recipient_key,
                                   const std::string& recipient_hint, Rng& rng);

struct OpenedEnvelope {
    Bytes payload;
    std::string signer_name;
    bool signature_valid = false;
};

struct OpenOutcome {
    OpenedEnvelope opened;  ///< valid only when error == kOk
    EnvelopeError error = EnvelopeError::kOk;
};

/// Decrypt with the recipient's key and verify against the signer's key,
/// reporting exactly which structural check rejected a malformed envelope.
/// A wrong signature still opens (error == kOk) with
/// signature_valid == false — a policy decision, not a parse failure.
OpenOutcome open_checked(const SecureEnvelope& envelope, const RsaPrivateKey& recipient_key,
                         const RsaPublicKey& signer_key);

/// Compatibility wrapper: nullopt on any structural failure.
std::optional<OpenedEnvelope> open(const SecureEnvelope& envelope,
                                   const RsaPrivateKey& recipient_key,
                                   const RsaPublicKey& signer_key);

}  // namespace narada::crypto
