// AES-128 (FIPS 197) with CBC mode and PKCS#7 padding, from scratch.
//
// The symmetric half of the secured discovery envelope (paper §9.1): the
// discovery request/response body is AES-encrypted under a fresh session
// key which travels RSA-encrypted.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace narada::crypto {

class Aes128 {
public:
    static constexpr std::size_t kBlockSize = 16;
    static constexpr std::size_t kKeySize = 16;
    using Block = std::array<std::uint8_t, kBlockSize>;
    using Key = std::array<std::uint8_t, kKeySize>;

    explicit Aes128(const Key& key);

    /// Single-block ECB primitives (building blocks; use CBC for data).
    void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
    void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /// CBC with PKCS#7 padding. Output is a multiple of 16 bytes.
    [[nodiscard]] Bytes encrypt_cbc(const Bytes& plaintext, const Block& iv) const;
    /// Throws std::invalid_argument on bad length or bad padding.
    [[nodiscard]] Bytes decrypt_cbc(const Bytes& ciphertext, const Block& iv) const;

private:
    // 11 round keys x 16 bytes.
    std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace narada::crypto
