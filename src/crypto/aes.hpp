// AES-128 (FIPS 197) with CBC mode, PKCS#7 padding and AES-CMAC, from
// scratch — with a hardware fast path.
//
// The symmetric half of the secured discovery envelope (paper §9.1): the
// discovery request/response body is AES-encrypted under a fresh session
// key which travels RSA-encrypted.
//
// Two implementations share one key schedule:
//   * a portable scalar cipher (the original from-scratch FIPS 197 code);
//   * an AES-NI path (AESENC/AESDEC intrinsics) selected once per process
//     via __builtin_cpu_supports("aes"). The hot-path CBC loops run whole
//     buffers inside one target("aes") function, so secured discovery pays
//     ~1 cycle/byte instead of the scalar cipher's ~100.
// The span-based CBC overloads write into a caller-owned buffer and report
// padding failures by return value — no exception and no allocation on the
// datapath (the Bytes overloads remain for off-path callers).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace narada::crypto {

class Aes128 {
public:
    static constexpr std::size_t kBlockSize = 16;
    static constexpr std::size_t kKeySize = 16;
    using Block = std::array<std::uint8_t, kBlockSize>;
    using Key = std::array<std::uint8_t, kKeySize>;

    /// Zeroed schedule; encrypts nothing useful. Exists so session-cache
    /// entries can be aggregate members rekeyed in place.
    Aes128() = default;
    explicit Aes128(const Key& key);

    /// True when the AES-NI fast path is compiled in and the CPU has it.
    [[nodiscard]] static bool accelerated();

    /// Single-block ECB primitives (building blocks; use CBC for data).
    void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
    void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /// Ciphertext size for `plaintext_size` bytes under PKCS#7 (always at
    /// least one padding byte).
    [[nodiscard]] static constexpr std::size_t padded_size(std::size_t plaintext_size) {
        return plaintext_size + kBlockSize - (plaintext_size % kBlockSize);
    }

    /// CBC-encrypt `plaintext` with PKCS#7 padding into `out`, which must
    /// hold padded_size(plaintext.size()) bytes. No allocation.
    void encrypt_cbc(std::span<const std::uint8_t> plaintext, const Block& iv,
                     std::uint8_t* out) const;
    /// CBC-decrypt into `out` (resized to the plaintext length; existing
    /// capacity is reused). Returns false on empty/misaligned input or bad
    /// padding — never throws. No allocation once `out` has capacity.
    [[nodiscard]] bool decrypt_cbc(std::span<const std::uint8_t> ciphertext, const Block& iv,
                                   Bytes& out) const;

    /// CBC with PKCS#7 padding. Output is a multiple of 16 bytes.
    [[nodiscard]] Bytes encrypt_cbc(const Bytes& plaintext, const Block& iv) const;
    /// Throws std::invalid_argument on bad length or bad padding.
    [[nodiscard]] Bytes decrypt_cbc(const Bytes& ciphertext, const Block& iv) const;

private:
    friend struct Cmac;

    // 11 round keys x 16 bytes.
    std::array<std::uint8_t, 176> round_keys_{};
    // AESDEC wants InvMixColumns-transformed keys in reverse order
    // ("equivalent inverse cipher"); derived at construction when the
    // hardware path is active, unused by the scalar cipher.
    std::array<std::uint8_t, 176> dec_round_keys_{};
};

/// AES-CMAC (NIST SP 800-38B / RFC 4493): a MAC that rides the same AES-NI
/// pipeline as the cipher, so a secured datagram's integrity check costs a
/// handful of block operations instead of a full HMAC-SHA256. Subkeys are
/// derived once per session key and cached alongside the schedule.
struct Cmac {
    Cmac() = default;
    explicit Cmac(const Aes128& cipher);

    /// MAC over `data`. Allocation-free.
    [[nodiscard]] Aes128::Block compute(std::span<const std::uint8_t> data) const;
    /// compute() over the concatenation a || b without copying either.
    [[nodiscard]] Aes128::Block compute2(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b) const;

    Aes128 cipher;         ///< schedule for the (derived) MAC key
    Aes128::Block k1{};    ///< subkey for complete final blocks
    Aes128::Block k2{};    ///< subkey for padded final blocks
};

/// Constant-time block comparison for MAC tags.
[[nodiscard]] bool tags_equal(const Aes128::Block& a, const Aes128::Block& b);

}  // namespace narada::crypto
