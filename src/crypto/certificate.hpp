// X.509-style certificates and chain validation.
//
// "the broker and client may be augmented with digital certificates and
// PKI authentication schemes" (paper §9.1); Figure 13 times the validation
// of a client's X.509 certificate. This is a structural analogue of X.509:
// a signed binding of a subject name to an RSA public key with a validity
// window, chained to a trusted root. The encoding is our wire codec rather
// than ASN.1 DER, which preserves the costed operations (signature checks
// along a chain, expiry checks) without an ASN.1 parser.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "crypto/rsa.hpp"
#include "wire/codec.hpp"

namespace narada::crypto {

struct Certificate {
    std::string subject;
    std::string issuer;
    RsaPublicKey public_key;
    TimeUs valid_from = 0;
    TimeUs valid_to = 0;
    std::uint64_t serial = 0;
    Bytes signature;  ///< issuer's RSA signature over tbs_bytes()

    /// The canonical "to be signed" encoding (everything but the signature).
    [[nodiscard]] Bytes tbs_bytes() const;

    void encode(wire::ByteWriter& writer) const;
    static Certificate decode(wire::ByteReader& reader);

    friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// Sign `tbs` fields of a certificate with the issuer's private key.
Certificate issue_certificate(const std::string& subject, const RsaPublicKey& subject_key,
                              const std::string& issuer, const RsaPrivateKey& issuer_key,
                              TimeUs valid_from, TimeUs valid_to, std::uint64_t serial);

/// Root certificates sign themselves.
Certificate make_self_signed(const std::string& subject, const RsaKeyPair& keys,
                             TimeUs valid_from, TimeUs valid_to, std::uint64_t serial);

enum class CertStatus {
    kOk,
    kEmptyChain,
    kBadSignature,
    kNotYetValid,
    kExpired,
    kIssuerMismatch,  ///< chain names do not line up
    kUntrustedRoot,
};

const char* to_string(CertStatus status);

/// Validate `chain` (leaf first, root last) at time `now` against a set of
/// trusted root certificates. Every link's signature, validity window and
/// issuer/subject continuity are checked; the final certificate must be a
/// trusted root (compared by subject and key).
CertStatus verify_chain(const std::vector<Certificate>& chain,
                        const std::vector<Certificate>& trusted_roots, TimeUs now);

/// Same validation with "now" read through the deployment's clock
/// abstraction. Expiry is a *time-dependent* check: components must route
/// it through their injected Clock (virtual time in sim runs, the skewed
/// node-local clock under chaos clock-skew waves) rather than sampling the
/// wall clock directly, so a certificate expiring mid-scenario behaves
/// identically in simulation and production.
CertStatus verify_chain(const std::vector<Certificate>& chain,
                        const std::vector<Certificate>& trusted_roots, const Clock& clock);

}  // namespace narada::crypto
