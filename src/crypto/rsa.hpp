// RSA with PKCS#1 v1.5 padding, built on the from-scratch BigInt.
//
// Backs the certificate signatures and the session-key encryption of the
// secured discovery envelope (paper §9.1). Key sizes are configurable;
// tests use small keys for speed, the security benchmarks use 1024-bit
// keys comparable to the paper's 2004-era PKI deployments.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"

namespace narada::crypto {

struct RsaPublicKey {
    BigInt n;  ///< modulus
    BigInt e;  ///< public exponent

    [[nodiscard]] std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
    friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
    BigInt n;
    BigInt d;  ///< private exponent

    [[nodiscard]] std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
    RsaPublicKey public_key;
    RsaPrivateKey private_key;
};

/// Generate a key pair with a modulus of roughly `bits` bits (e = 65537).
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits);

/// PKCS#1 v1.5 signature over SHA-256(message). Returns modulus-sized bytes.
Bytes rsa_sign(const RsaPrivateKey& key, const Bytes& message);

/// Verify a PKCS#1 v1.5 SHA-256 signature.
bool rsa_verify(const RsaPublicKey& key, const Bytes& message, const Bytes& signature);

/// PKCS#1 v1.5 (type 2) encryption. Plaintext must be at most
/// modulus_bytes() - 11 bytes; returns nullopt otherwise.
std::optional<Bytes> rsa_encrypt(const RsaPublicKey& key, const Bytes& plaintext, Rng& rng);

/// Decrypt; nullopt if the padding is invalid.
std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext);

}  // namespace narada::crypto
