// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests in the secured discovery envelope (paper §9.1)
// and as the hash inside HMAC and the certificate signatures.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace narada::crypto {

class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256();

    void update(const std::uint8_t* data, std::size_t len);
    void update(const Bytes& data) { update(data.data(), data.size()); }
    void update(std::string_view text) {
        update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    }

    /// Finalize and return the digest. The object must not be reused
    /// afterwards without reset().
    Digest finish();

    void reset();

    /// One-shot convenience.
    static Digest hash(const Bytes& data);
    static Digest hash(std::string_view text);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_{};
    std::uint64_t total_len_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Sha256::Digest hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace narada::crypto
