#include "crypto/rsa.hpp"

#include <stdexcept>

namespace narada::crypto {
namespace {

// DER prefix of the DigestInfo structure for SHA-256 (RFC 8017 §9.2).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20,
};

/// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo || digest.
std::optional<Bytes> emsa_encode(const Bytes& message, std::size_t em_len) {
    const auto digest = Sha256::hash(message);
    const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
    if (em_len < t_len + 11) return std::nullopt;
    Bytes em;
    em.reserve(em_len);
    em.push_back(0x00);
    em.push_back(0x01);
    em.insert(em.end(), em_len - t_len - 3, 0xFF);
    em.push_back(0x00);
    em.insert(em.end(), std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo));
    em.insert(em.end(), digest.begin(), digest.end());
    return em;
}

}  // namespace

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
    const BigInt e(65537);
    while (true) {
        const BigInt p = BigInt::random_prime(rng, bits / 2);
        const BigInt q = BigInt::random_prime(rng, bits - bits / 2);
        if (p == q) continue;
        const BigInt n = p * q;
        const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
        const auto d = BigInt::mod_inverse(e, phi);
        if (!d) continue;  // e not coprime with phi; rare
        RsaKeyPair pair;
        pair.public_key = {n, e};
        pair.private_key = {n, *d};
        return pair;
    }
}

Bytes rsa_sign(const RsaPrivateKey& key, const Bytes& message) {
    const std::size_t k = key.modulus_bytes();
    const auto em = emsa_encode(message, k);
    if (!em) throw std::invalid_argument("rsa_sign: modulus too small for SHA-256 DigestInfo");
    const BigInt m = BigInt::from_bytes_be(*em);
    const BigInt s = BigInt::mod_pow(m, key.d, key.n);
    return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, const Bytes& message, const Bytes& signature) {
    const std::size_t k = key.modulus_bytes();
    if (signature.size() != k) return false;
    const BigInt s = BigInt::from_bytes_be(signature);
    if (!(s < key.n)) return false;
    const BigInt m = BigInt::mod_pow(s, key.e, key.n);
    const auto expected = emsa_encode(message, k);
    if (!expected) return false;
    return m.to_bytes_be(k) == *expected;
}

std::optional<Bytes> rsa_encrypt(const RsaPublicKey& key, const Bytes& plaintext, Rng& rng) {
    const std::size_t k = key.modulus_bytes();
    if (k < 11 || plaintext.size() > k - 11) return std::nullopt;
    // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero random) 0x00 M.
    Bytes em;
    em.reserve(k);
    em.push_back(0x00);
    em.push_back(0x02);
    const std::size_t ps_len = k - plaintext.size() - 3;
    for (std::size_t i = 0; i < ps_len; ++i) {
        std::uint8_t b = 0;
        do {
            b = static_cast<std::uint8_t>(rng.next());
        } while (b == 0);
        em.push_back(b);
    }
    em.push_back(0x00);
    em.insert(em.end(), plaintext.begin(), plaintext.end());

    const BigInt m = BigInt::from_bytes_be(em);
    const BigInt c = BigInt::mod_pow(m, key.e, key.n);
    return c.to_bytes_be(k);
}

std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext) {
    const std::size_t k = key.modulus_bytes();
    if (ciphertext.size() != k) return std::nullopt;
    const BigInt c = BigInt::from_bytes_be(ciphertext);
    if (!(c < key.n)) return std::nullopt;
    const BigInt m = BigInt::mod_pow(c, key.d, key.n);
    const Bytes em = m.to_bytes_be(k);
    if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
    // Find the 0x00 separator after at least 8 padding bytes.
    std::size_t separator = 0;
    for (std::size_t i = 2; i < em.size(); ++i) {
        if (em[i] == 0x00) {
            separator = i;
            break;
        }
    }
    if (separator < 10) return std::nullopt;
    return Bytes(em.begin() + static_cast<std::ptrdiff_t>(separator) + 1, em.end());
}

}  // namespace narada::crypto
