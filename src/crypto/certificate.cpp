#include "crypto/certificate.hpp"

namespace narada::crypto {
namespace {

void encode_public_key(wire::ByteWriter& writer, const RsaPublicKey& key) {
    writer.blob(key.n.to_bytes_be());
    writer.blob(key.e.to_bytes_be());
}

RsaPublicKey decode_public_key(wire::ByteReader& reader) {
    RsaPublicKey key;
    key.n = BigInt::from_bytes_be(reader.blob());
    key.e = BigInt::from_bytes_be(reader.blob());
    return key;
}

}  // namespace

Bytes Certificate::tbs_bytes() const {
    wire::ByteWriter writer;
    writer.str(subject);
    writer.str(issuer);
    encode_public_key(writer, public_key);
    writer.i64(valid_from);
    writer.i64(valid_to);
    writer.u64(serial);
    return writer.take();
}

void Certificate::encode(wire::ByteWriter& writer) const {
    writer.str(subject);
    writer.str(issuer);
    encode_public_key(writer, public_key);
    writer.i64(valid_from);
    writer.i64(valid_to);
    writer.u64(serial);
    writer.blob(signature);
}

Certificate Certificate::decode(wire::ByteReader& reader) {
    Certificate cert;
    cert.subject = reader.str();
    cert.issuer = reader.str();
    cert.public_key = decode_public_key(reader);
    cert.valid_from = reader.i64();
    cert.valid_to = reader.i64();
    cert.serial = reader.u64();
    cert.signature = reader.blob();
    return cert;
}

Certificate issue_certificate(const std::string& subject, const RsaPublicKey& subject_key,
                              const std::string& issuer, const RsaPrivateKey& issuer_key,
                              TimeUs valid_from, TimeUs valid_to, std::uint64_t serial) {
    Certificate cert;
    cert.subject = subject;
    cert.issuer = issuer;
    cert.public_key = subject_key;
    cert.valid_from = valid_from;
    cert.valid_to = valid_to;
    cert.serial = serial;
    cert.signature = rsa_sign(issuer_key, cert.tbs_bytes());
    return cert;
}

Certificate make_self_signed(const std::string& subject, const RsaKeyPair& keys,
                             TimeUs valid_from, TimeUs valid_to, std::uint64_t serial) {
    return issue_certificate(subject, keys.public_key, subject, keys.private_key, valid_from,
                             valid_to, serial);
}

const char* to_string(CertStatus status) {
    switch (status) {
        case CertStatus::kOk: return "ok";
        case CertStatus::kEmptyChain: return "empty chain";
        case CertStatus::kBadSignature: return "bad signature";
        case CertStatus::kNotYetValid: return "not yet valid";
        case CertStatus::kExpired: return "expired";
        case CertStatus::kIssuerMismatch: return "issuer mismatch";
        case CertStatus::kUntrustedRoot: return "untrusted root";
    }
    return "?";
}

CertStatus verify_chain(const std::vector<Certificate>& chain,
                        const std::vector<Certificate>& trusted_roots, TimeUs now) {
    if (chain.empty()) return CertStatus::kEmptyChain;

    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Certificate& cert = chain[i];
        if (now < cert.valid_from) return CertStatus::kNotYetValid;
        if (now > cert.valid_to) return CertStatus::kExpired;

        // The signer is the next certificate in the chain; the last one
        // must be self-signed.
        const Certificate& signer = (i + 1 < chain.size()) ? chain[i + 1] : cert;
        if (cert.issuer != signer.subject) return CertStatus::kIssuerMismatch;
        if (!rsa_verify(signer.public_key, cert.tbs_bytes(), cert.signature)) {
            return CertStatus::kBadSignature;
        }
    }

    // Anchor: the chain's root must be one of the trusted roots.
    const Certificate& root = chain.back();
    for (const Certificate& trusted : trusted_roots) {
        if (trusted.subject == root.subject && trusted.public_key == root.public_key) {
            return CertStatus::kOk;
        }
    }
    return CertStatus::kUntrustedRoot;
}

CertStatus verify_chain(const std::vector<Certificate>& chain,
                        const std::vector<Certificate>& trusted_roots, const Clock& clock) {
    return verify_chain(chain, trusted_roots, clock.now());
}

}  // namespace narada::crypto
