// Bounded LRU cache of per-peer symmetric session state.
//
// The paper costs an RSA sign + encrypt on every secured discovery request
// (§9.1, Figure 14). At line rate that price is unpayable, so the secured
// datapath amortizes it: the first envelope from a peer carries an
// RSA-established session key, and every later envelope rides AES under
// the cached session (see discovery/security.hpp for the wire format).
// This cache holds those sessions — keyed by peer identity, bounded, LRU
// evicted — with everything derivable precomputed at insertion time:
//   * the AES-128 encryption schedule for the session key,
//   * a derived MAC key + CMAC subkeys (so integrity rides AES-NI too),
//   * a 64-bit key id both ends derive from the key bytes alone, used to
//     detect stale sessions after a rekey without an extra round trip.
//
// Single-threaded by design: a session cache lives inside one protocol
// component (BDN, broker plugin, client) whose callbacks the sharded
// runtime already serializes on its home shard (DESIGN.md threading
// model). Lookups are heterogeneous (string_view) and allocation-free on
// the hit path; only inserting a previously unseen peer allocates.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "common/types.hpp"
#include "crypto/aes.hpp"

namespace narada::crypto {

/// Both sides derive the id from the key bytes alone (splitmix64 over the
/// two key halves), so a session id never travels with key material and a
/// rekeyed peer is detected by mismatch.
[[nodiscard]] std::uint64_t derive_key_id(const Aes128::Key& key);

class SessionKeyCache {
public:
    struct Session {
        Aes128::Key key{};
        std::uint64_t key_id = 0;
        Aes128 cipher;        ///< schedule for `key` (CBC payload encryption)
        Cmac mac;             ///< CMAC under a key derived from `key`
        TimeUs established_at = 0;

        /// Precompute every schedule for `key`. The MAC key is the AES
        /// encryption of a fixed tweak block under the session key, so the
        /// cipher and MAC never share a schedule.
        static Session derive(const Aes128::Key& key, TimeUs now);
    };

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
    };

    explicit SessionKeyCache(std::size_t capacity);

    /// The live session for `peer`, bumped to most-recently-used; nullptr
    /// on miss. Allocation-free. The pointer stays valid until the next
    /// put/erase/clear.
    [[nodiscard]] Session* find(std::string_view peer);

    /// Install (or replace) `peer`'s session, evicting the least recently
    /// used entry if the cache is full. Returns the stored session.
    Session& put(std::string_view peer, const Aes128::Key& key, TimeUs now);

    void erase(std::string_view peer);
    void clear();

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    // MRU-first list; the index maps peer identity to its list node. Index
    // keys are views into the node's own string (stable under splice), so
    // lookups never build a temporary std::string.
    using Entry = std::pair<std::string, Session>;
    std::list<Entry> entries_;
    std::map<std::string_view, std::list<Entry>::iterator> index_;
    std::size_t capacity_;
    Stats stats_;
};

}  // namespace narada::crypto
