#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NARADA_AES_NI 1
#include <immintrin.h>
#endif

namespace narada::crypto {
namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7,
    0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde,
    0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42,
    0xfa, 0xc3, 0x4e, 0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c,
    0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15,
    0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84, 0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7,
    0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc,
    0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73, 0x96, 0xac, 0x74, 0x22, 0xe7, 0xad,
    0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d,
    0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4, 0x1f, 0xdd, 0xa8,
    0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f, 0x60, 0x51,
    0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0,
    0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c,
    0x7d,
};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) {
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gf_mul(std::uint8_t x, std::uint8_t y) {
    std::uint8_t result = 0;
    while (y) {
        if (y & 1) result ^= x;
        x = xtime(x);
        y >>= 1;
    }
    return result;
}

// --- scalar cipher (the original from-scratch FIPS 197 implementation) ------

void scalar_encrypt_block(const std::uint8_t* round_keys, const std::uint8_t in[16],
                          std::uint8_t out[16]) {
    std::uint8_t state[16];
    for (int i = 0; i < 16; ++i) state[i] = static_cast<std::uint8_t>(in[i] ^ round_keys[i]);

    for (int round = 1; round <= 10; ++round) {
        // SubBytes.
        for (auto& b : state) b = kSbox[b];
        // ShiftRows (column-major state layout: state[col*4 + row]).
        std::uint8_t tmp[16];
        for (int col = 0; col < 4; ++col) {
            for (int row = 0; row < 4; ++row) {
                tmp[col * 4 + row] = state[((col + row) % 4) * 4 + row];
            }
        }
        std::memcpy(state, tmp, 16);
        // MixColumns (all rounds but the last).
        if (round != 10) {
            for (int col = 0; col < 4; ++col) {
                std::uint8_t* c = &state[col * 4];
                const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
                c[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
                c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
                c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
                c[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
            }
        }
        // AddRoundKey.
        for (int i = 0; i < 16; ++i) {
            state[i] = static_cast<std::uint8_t>(state[i] ^ round_keys[round * 16 + i]);
        }
    }
    std::memcpy(out, state, 16);
}

void scalar_decrypt_block(const std::uint8_t* round_keys, const std::uint8_t in[16],
                          std::uint8_t out[16]) {
    std::uint8_t state[16];
    for (int i = 0; i < 16; ++i) {
        state[i] = static_cast<std::uint8_t>(in[i] ^ round_keys[160 + i]);
    }

    for (int round = 9; round >= 0; --round) {
        // InvShiftRows.
        std::uint8_t tmp[16];
        for (int col = 0; col < 4; ++col) {
            for (int row = 0; row < 4; ++row) {
                tmp[((col + row) % 4) * 4 + row] = state[col * 4 + row];
            }
        }
        std::memcpy(state, tmp, 16);
        // InvSubBytes.
        for (auto& b : state) b = kInvSbox[b];
        // AddRoundKey.
        for (int i = 0; i < 16; ++i) {
            state[i] = static_cast<std::uint8_t>(state[i] ^ round_keys[round * 16 + i]);
        }
        // InvMixColumns (all rounds but the last processed, i.e. round 0).
        if (round != 0) {
            for (int col = 0; col < 4; ++col) {
                std::uint8_t* c = &state[col * 4];
                const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
                c[0] = static_cast<std::uint8_t>(gf_mul(a0, 0x0e) ^ gf_mul(a1, 0x0b) ^
                                                 gf_mul(a2, 0x0d) ^ gf_mul(a3, 0x09));
                c[1] = static_cast<std::uint8_t>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0e) ^
                                                 gf_mul(a2, 0x0b) ^ gf_mul(a3, 0x0d));
                c[2] = static_cast<std::uint8_t>(gf_mul(a0, 0x0d) ^ gf_mul(a1, 0x09) ^
                                                 gf_mul(a2, 0x0e) ^ gf_mul(a3, 0x0b));
                c[3] = static_cast<std::uint8_t>(gf_mul(a0, 0x0b) ^ gf_mul(a1, 0x0d) ^
                                                 gf_mul(a2, 0x09) ^ gf_mul(a3, 0x0e));
            }
        }
    }
    std::memcpy(out, state, 16);
}

// --- AES-NI fast path --------------------------------------------------------
//
// The round keys are the standard FIPS 197 schedule the scalar expansion
// already produces; AESENC consumes them directly. AESDEC implements the
// "equivalent inverse cipher" and wants InvMixColumns-transformed keys in
// reverse order, derived once per schedule with AESIMC.

#if NARADA_AES_NI

__attribute__((target("aes"))) void ni_make_dec_keys(const std::uint8_t* rk, std::uint8_t* out) {
    __m128i k[11];
    for (int i = 0; i < 11; ++i) {
        k[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + i * 16));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), k[10]);
    for (int i = 1; i < 10; ++i) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i * 16), _mm_aesimc_si128(k[10 - i]));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 160), k[0]);
}

__attribute__((target("aes"))) inline __m128i ni_encrypt_one(const std::uint8_t* rk,
                                                             __m128i block) {
    block = _mm_xor_si128(block, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
    for (int i = 1; i < 10; ++i) {
        block = _mm_aesenc_si128(block,
                                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + i * 16)));
    }
    return _mm_aesenclast_si128(block,
                                _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 160)));
}

__attribute__((target("aes"))) void ni_encrypt_block(const std::uint8_t* rk,
                                                     const std::uint8_t in[16],
                                                     std::uint8_t out[16]) {
    const __m128i c = ni_encrypt_one(rk, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), c);
}

__attribute__((target("aes"))) void ni_decrypt_block(const std::uint8_t* drk,
                                                     const std::uint8_t in[16],
                                                     std::uint8_t out[16]) {
    __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    block = _mm_xor_si128(block, _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk)));
    for (int i = 1; i < 10; ++i) {
        block = _mm_aesdec_si128(block,
                                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + i * 16)));
    }
    block = _mm_aesdeclast_si128(block,
                                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + 160)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), block);
}

// Whole-buffer CBC encryption of complete blocks. Chaining makes encryption
// inherently serial; keeping the loop inside one target function avoids a
// dispatch per block.
__attribute__((target("aes"))) void ni_cbc_encrypt(const std::uint8_t* rk, const std::uint8_t* iv,
                                                   const std::uint8_t* src, std::size_t blocks,
                                                   std::uint8_t* dst) {
    __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
    for (std::size_t i = 0; i < blocks; ++i) {
        const __m128i p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 16));
        chain = ni_encrypt_one(rk, _mm_xor_si128(p, chain));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 16), chain);
    }
}

// Whole-buffer CBC decryption, four blocks at a time: the block cipher has
// no cross-block dependency on decrypt (the chain XOR happens after), so
// four AESDEC latency chains overlap.
__attribute__((target("aes"))) void ni_cbc_decrypt(const std::uint8_t* drk, const std::uint8_t* iv,
                                                   const std::uint8_t* src, std::size_t blocks,
                                                   std::uint8_t* dst) {
    __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
    std::size_t i = 0;
    while (i + 4 <= blocks) {
        const __m128i c0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (i + 0) * 16));
        const __m128i c1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (i + 1) * 16));
        const __m128i c2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (i + 2) * 16));
        const __m128i c3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (i + 3) * 16));
        const __m128i k0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk));
        __m128i d0 = _mm_xor_si128(c0, k0), d1 = _mm_xor_si128(c1, k0);
        __m128i d2 = _mm_xor_si128(c2, k0), d3 = _mm_xor_si128(c3, k0);
        for (int r = 1; r < 10; ++r) {
            const __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + r * 16));
            d0 = _mm_aesdec_si128(d0, k);
            d1 = _mm_aesdec_si128(d1, k);
            d2 = _mm_aesdec_si128(d2, k);
            d3 = _mm_aesdec_si128(d3, k);
        }
        const __m128i kl = _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + 160));
        d0 = _mm_aesdeclast_si128(d0, kl);
        d1 = _mm_aesdeclast_si128(d1, kl);
        d2 = _mm_aesdeclast_si128(d2, kl);
        d3 = _mm_aesdeclast_si128(d3, kl);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 0) * 16),
                         _mm_xor_si128(d0, chain));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 1) * 16), _mm_xor_si128(d1, c0));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 2) * 16), _mm_xor_si128(d2, c1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 3) * 16), _mm_xor_si128(d3, c2));
        chain = c3;
        i += 4;
    }
    for (; i < blocks; ++i) {
        const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 16));
        __m128i d = _mm_xor_si128(c, _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk)));
        for (int r = 1; r < 10; ++r) {
            d = _mm_aesdec_si128(d,
                                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + r * 16)));
        }
        d = _mm_aesdeclast_si128(d,
                                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(drk + 160)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 16), _mm_xor_si128(d, chain));
        chain = c;
    }
}

#endif  // NARADA_AES_NI

bool has_aes_ni() {
#if NARADA_AES_NI
    static const bool supported = __builtin_cpu_supports("aes") != 0;
    return supported;
#else
    return false;
#endif
}

}  // namespace

bool Aes128::accelerated() { return has_aes_ni(); }

Aes128::Aes128(const Key& key) {
    // Key expansion (FIPS 197 §5.2).
    std::memcpy(round_keys_.data(), key.data(), 16);
    for (int i = 4; i < 44; ++i) {
        std::uint8_t temp[4];
        std::memcpy(temp, &round_keys_[(i - 1) * 4], 4);
        if (i % 4 == 0) {
            const std::uint8_t t = temp[0];
            temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4 - 1]);
            temp[1] = kSbox[temp[2]];
            temp[2] = kSbox[temp[3]];
            temp[3] = kSbox[t];
        }
        for (int b = 0; b < 4; ++b) {
            round_keys_[i * 4 + b] =
                static_cast<std::uint8_t>(round_keys_[(i - 4) * 4 + b] ^ temp[b]);
        }
    }
#if NARADA_AES_NI
    if (has_aes_ni()) ni_make_dec_keys(round_keys_.data(), dec_round_keys_.data());
#endif
}

void Aes128::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if NARADA_AES_NI
    if (has_aes_ni()) {
        ni_encrypt_block(round_keys_.data(), in, out);
        return;
    }
#endif
    scalar_encrypt_block(round_keys_.data(), in, out);
}

void Aes128::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if NARADA_AES_NI
    if (has_aes_ni()) {
        ni_decrypt_block(dec_round_keys_.data(), in, out);
        return;
    }
#endif
    scalar_decrypt_block(round_keys_.data(), in, out);
}

void Aes128::encrypt_cbc(std::span<const std::uint8_t> plaintext, const Block& iv,
                         std::uint8_t* out) const {
    const std::size_t full = plaintext.size() / kBlockSize;
    const std::uint8_t* chain = iv.data();
    if (full > 0) {
#if NARADA_AES_NI
        if (has_aes_ni()) {
            ni_cbc_encrypt(round_keys_.data(), chain, plaintext.data(), full, out);
        } else
#endif
        {
            for (std::size_t b = 0; b < full; ++b) {
                std::uint8_t block[16];
                for (std::size_t i = 0; i < kBlockSize; ++i) {
                    block[i] =
                        static_cast<std::uint8_t>(plaintext[b * kBlockSize + i] ^ chain[i]);
                }
                scalar_encrypt_block(round_keys_.data(), block, out + b * kBlockSize);
                chain = out + b * kBlockSize;
            }
        }
        chain = out + (full - 1) * kBlockSize;
    }
    // Final block: the plaintext remainder plus PKCS#7 padding (a whole
    // block of padding when the input is block-aligned).
    const std::size_t rem = plaintext.size() % kBlockSize;
    const std::uint8_t pad = static_cast<std::uint8_t>(kBlockSize - rem);
    std::uint8_t tail[16];
    if (rem > 0) std::memcpy(tail, plaintext.data() + full * kBlockSize, rem);
    std::memset(tail + rem, pad, pad);
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        tail[i] = static_cast<std::uint8_t>(tail[i] ^ chain[i]);
    }
#if NARADA_AES_NI
    if (has_aes_ni()) {
        ni_encrypt_block(round_keys_.data(), tail, out + full * kBlockSize);
        return;
    }
#endif
    scalar_encrypt_block(round_keys_.data(), tail, out + full * kBlockSize);
}

bool Aes128::decrypt_cbc(std::span<const std::uint8_t> ciphertext, const Block& iv,
                         Bytes& out) const {
    if (ciphertext.empty() || ciphertext.size() % kBlockSize != 0) return false;
    out.resize(ciphertext.size());
    const std::size_t blocks = ciphertext.size() / kBlockSize;
#if NARADA_AES_NI
    if (has_aes_ni()) {
        ni_cbc_decrypt(dec_round_keys_.data(), iv.data(), ciphertext.data(), blocks, out.data());
    } else
#endif
    {
        const std::uint8_t* chain = iv.data();
        for (std::size_t b = 0; b < blocks; ++b) {
            std::uint8_t block[16];
            scalar_decrypt_block(round_keys_.data(), ciphertext.data() + b * kBlockSize, block);
            for (std::size_t i = 0; i < kBlockSize; ++i) {
                out[b * kBlockSize + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
            }
            chain = ciphertext.data() + b * kBlockSize;
        }
    }
    const std::uint8_t pad = out.back();
    if (pad == 0 || pad > kBlockSize) return false;
    for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
        if (out[i] != pad) return false;
    }
    out.resize(out.size() - pad);
    return true;
}

Bytes Aes128::encrypt_cbc(const Bytes& plaintext, const Block& iv) const {
    Bytes out(padded_size(plaintext.size()));
    encrypt_cbc(std::span<const std::uint8_t>(plaintext.data(), plaintext.size()), iv,
                out.data());
    return out;
}

Bytes Aes128::decrypt_cbc(const Bytes& ciphertext, const Block& iv) const {
    if (ciphertext.empty() || ciphertext.size() % kBlockSize != 0) {
        throw std::invalid_argument("AES-CBC: ciphertext length not a block multiple");
    }
    Bytes out;
    if (!decrypt_cbc(std::span<const std::uint8_t>(ciphertext.data(), ciphertext.size()), iv,
                     out)) {
        throw std::invalid_argument("AES-CBC: bad padding");
    }
    return out;
}

// --- AES-CMAC (NIST SP 800-38B / RFC 4493) ----------------------------------

namespace {

/// GF(2^128) doubling over the big-endian block (the CMAC subkey step).
Aes128::Block cmac_double(const Aes128::Block& in) {
    Aes128::Block out;
    std::uint8_t carry = 0;
    for (int i = 15; i >= 0; --i) {
        out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
        carry = in[i] >> 7;
    }
    if (carry) out[15] = static_cast<std::uint8_t>(out[15] ^ 0x87);
    return out;
}

/// Streaming CMAC state: lets compute2 walk two spans as one message
/// without concatenating them.
struct CmacStream {
    const Cmac& mac;
    Aes128::Block x{};     ///< running CBC-MAC state
    std::uint8_t buf[16];  ///< pending (possibly final) block
    std::size_t buffered = 0;
    bool any = false;

    explicit CmacStream(const Cmac& m) : mac(m) {}

    void update(std::span<const std::uint8_t> data) {
        std::size_t off = 0;
        while (off < data.size()) {
            if (buffered == 16) flush();
            const std::size_t take = std::min<std::size_t>(16 - buffered, data.size() - off);
            std::memcpy(buf + buffered, data.data() + off, take);
            buffered += take;
            off += take;
            any = true;
        }
    }

    /// Process the buffered block as a non-final block.
    void flush() {
        for (std::size_t i = 0; i < 16; ++i) {
            x[i] = static_cast<std::uint8_t>(x[i] ^ buf[i]);
        }
        mac.cipher.encrypt_block(x.data(), x.data());
        buffered = 0;
    }

    Aes128::Block finish() {
        const Aes128::Block& subkey = (any && buffered == 16) ? mac.k1 : mac.k2;
        if (buffered < 16) {
            buf[buffered] = 0x80;
            std::memset(buf + buffered + 1, 0, 16 - buffered - 1);
        }
        for (std::size_t i = 0; i < 16; ++i) {
            x[i] = static_cast<std::uint8_t>(x[i] ^ buf[i] ^ subkey[i]);
        }
        Aes128::Block tag;
        mac.cipher.encrypt_block(x.data(), tag.data());
        return tag;
    }
};

}  // namespace

Cmac::Cmac(const Aes128& c) : cipher(c) {
    Aes128::Block l{};
    cipher.encrypt_block(l.data(), l.data());
    k1 = cmac_double(l);
    k2 = cmac_double(k1);
}

Aes128::Block Cmac::compute(std::span<const std::uint8_t> data) const {
    CmacStream s(*this);
    s.update(data);
    return s.finish();
}

Aes128::Block Cmac::compute2(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) const {
    CmacStream s(*this);
    s.update(a);
    s.update(b);
    return s.finish();
}

bool tags_equal(const Aes128::Block& a, const Aes128::Block& b) {
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

}  // namespace narada::crypto
