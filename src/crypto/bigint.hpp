// Arbitrary-precision unsigned integers, from scratch.
//
// The substrate under RSA (src/crypto/rsa.*), which in turn backs the
// paper's §9.1 security experiments (X.509 validation, signing and
// encrypting BrokerDiscoveryRequests — Figures 13 and 14). Little-endian
// uint32 limbs with uint64 intermediates; division is Knuth's Algorithm D,
// so 1024-bit modular exponentiation is fast enough for the benchmarks.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace narada::crypto {

struct BigIntDivMod;

class BigInt {
public:
    BigInt() = default;
    BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor) numeric literal init

    /// Big-endian byte import/export (the wire and padding formats).
    static BigInt from_bytes_be(const Bytes& bytes);
    /// Export big-endian, left-padded with zeros to at least `min_len`.
    [[nodiscard]] Bytes to_bytes_be(std::size_t min_len = 0) const;

    static std::optional<BigInt> from_hex(const std::string& hex);
    [[nodiscard]] std::string to_hex() const;

    [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
    [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
    [[nodiscard]] std::size_t bit_length() const;
    [[nodiscard]] bool bit(std::size_t index) const;
    [[nodiscard]] std::uint64_t low_u64() const;

    friend bool operator==(const BigInt& a, const BigInt& b) { return a.limbs_ == b.limbs_; }
    friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
        return compare(a, b);
    }

    BigInt operator+(const BigInt& other) const;
    /// Requires *this >= other (unsigned arithmetic); throws otherwise.
    BigInt operator-(const BigInt& other) const;
    BigInt operator*(const BigInt& other) const;
    BigInt operator<<(std::size_t bits) const;
    BigInt operator>>(std::size_t bits) const;

    using DivMod = BigIntDivMod;
    /// Knuth Algorithm D. Throws std::domain_error on division by zero.
    [[nodiscard]] DivMod divmod(const BigInt& divisor) const;
    BigInt operator/(const BigInt& other) const;
    BigInt operator%(const BigInt& other) const;

    /// (base ^ exponent) mod modulus; modulus must be non-zero.
    static BigInt mod_pow(const BigInt& base, const BigInt& exponent, const BigInt& modulus);
    static BigInt gcd(BigInt a, BigInt b);
    /// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
    static std::optional<BigInt> mod_inverse(const BigInt& a, const BigInt& m);

    /// Uniform integer with exactly `bits` bits (top bit set).
    static BigInt random_bits(Rng& rng, std::size_t bits);
    /// Uniform integer in [0, bound).
    static BigInt random_below(Rng& rng, const BigInt& bound);
    /// Miller-Rabin probable-prime generation/testing.
    static BigInt random_prime(Rng& rng, std::size_t bits, int rounds = 20);
    [[nodiscard]] bool is_probable_prime(Rng& rng, int rounds = 20) const;

private:
    static std::strong_ordering compare(const BigInt& a, const BigInt& b);
    void trim();

    // Little-endian limbs; empty represents zero.
    std::vector<std::uint32_t> limbs_;
};

struct BigIntDivMod {
    BigInt quotient;
    BigInt remainder;
};

inline BigInt BigInt::operator/(const BigInt& other) const { return divmod(other).quotient; }
inline BigInt BigInt::operator%(const BigInt& other) const { return divmod(other).remainder; }

}  // namespace narada::crypto
