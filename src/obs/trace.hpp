// Per-request trace spans for the discovery plane.
//
// A sampled discovery carries a TraceContext (trace id + parent span id)
// on the DiscoveryRequest/DiscoveryResponse wire messages. Each component
// that touches the request opens a span against a SpanRecorder, stamps it
// off its NTP-corrected UTC source (raw local clocks skew by seconds in
// the simulated WAN — see sim/site_catalog), and rewrites the context's
// parent span before forwarding, so a single discovery can be
// reconstructed end-to-end:
//
//   client.discover
//   ├── client.collect       (request sent -> collection closed)
//   ├── bdn.request          (receipt -> ack/queue decision)
//   │   └── bdn.inject       (first -> last spaced injection send)
//   │       └── broker.process    (dedup, policy, shed, flood, respond)
//   │           └── client.response  (instant; the client records each
//   │                                 accepted response under the echoed
//   │                                 responding-broker span)
//   └── client.ping          (ping measurement -> selection)
//
// A nil trace id means "unsampled": components skip recording entirely, so
// the only cost on the unsampled path is a branch.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "common/uuid.hpp"
#include "wire/codec.hpp"

namespace narada::obs {

/// Piggybacked on discovery wire messages (16-byte trace id + 8-byte
/// parent span id appended to DiscoveryRequest and DiscoveryResponse).
struct TraceContext {
    Uuid trace_id;                  ///< nil = this request is not sampled
    std::uint64_t parent_span = 0;  ///< span id of the sender's active span

    /// Exact encoded size (16-byte trace id + 8-byte parent span); used by
    /// the measure-then-encode fast path of the discovery messages.
    static constexpr std::size_t kWireSize = 16 + 8;

    [[nodiscard]] bool sampled() const { return !trace_id.is_nil(); }

    void encode(wire::ByteWriter& writer) const;
    static TraceContext decode(wire::ByteReader& reader);

    friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct SpanRecord {
    Uuid trace_id;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span = 0;  ///< 0 = root
    std::string name;               ///< e.g. "bdn.inject"
    std::string node;               ///< emitting node's hostname/role
    TimeUs start_utc = 0;
    TimeUs end_utc = kOpenEnd;      ///< kOpenEnd until end() is called

    /// Sentinel for a span that was started but never ended.
    static constexpr TimeUs kOpenEnd = std::numeric_limits<TimeUs>::min();

    [[nodiscard]] bool finished() const { return end_utc != kOpenEnd; }
};

/// Bounded in-memory span store. One recorder typically serves a whole
/// scenario (every simulated node), so span ids are unique across nodes
/// and a trace can be reassembled with a single query. Guarded by a mutex:
/// span recording only happens on sampled requests, never on the unsampled
/// hot path (the metrics registry covers always-on accounting).
class SpanRecorder {
public:
    explicit SpanRecorder(std::size_t capacity = 4096);

    /// Open a span; returns its id (0 if the recorder is full — end() on 0
    /// is a no-op, so callers never need to check).
    std::uint64_t begin(const Uuid& trace_id, std::uint64_t parent_span, std::string name,
                        std::string node, TimeUs start_utc);
    void end(std::uint64_t span_id, TimeUs end_utc);
    /// A zero-duration span (events like "response accepted").
    std::uint64_t instant(const Uuid& trace_id, std::uint64_t parent_span, std::string name,
                          std::string node, TimeUs at_utc);

    [[nodiscard]] std::vector<SpanRecord> trace(const Uuid& trace_id) const;
    [[nodiscard]] std::vector<SpanRecord> all() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::uint64_t dropped() const;
    void clear();

    /// JSON array of span objects for one trace, ordered by start time.
    [[nodiscard]] std::string to_json(const Uuid& trace_id) const;

private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::uint64_t next_id_ = 1;
    std::uint64_t dropped_ = 0;
    std::vector<SpanRecord> spans_;
    std::unordered_map<std::uint64_t, std::size_t> index_;  ///< span id -> position
};

}  // namespace narada::obs
