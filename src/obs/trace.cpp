#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace narada::obs {

void TraceContext::encode(wire::ByteWriter& writer) const {
    writer.uuid(trace_id);
    writer.u64(parent_span);
}

TraceContext TraceContext::decode(wire::ByteReader& reader) {
    TraceContext ctx;
    ctx.trace_id = reader.uuid();
    ctx.parent_span = reader.u64();
    return ctx;
}

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity) {
    spans_.reserve(std::min<std::size_t>(capacity_, 256));
}

std::uint64_t SpanRecorder::begin(const Uuid& trace_id, std::uint64_t parent_span,
                                  std::string name, std::string node, TimeUs start_utc) {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= capacity_) {
        ++dropped_;
        return 0;
    }
    SpanRecord span;
    span.trace_id = trace_id;
    span.span_id = next_id_++;
    span.parent_span = parent_span;
    span.name = std::move(name);
    span.node = std::move(node);
    span.start_utc = start_utc;
    index_[span.span_id] = spans_.size();
    spans_.push_back(std::move(span));
    return spans_.back().span_id;
}

void SpanRecorder::end(std::uint64_t span_id, TimeUs end_utc) {
    if (span_id == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(span_id);
    if (it == index_.end()) return;
    spans_[it->second].end_utc = end_utc;
}

std::uint64_t SpanRecorder::instant(const Uuid& trace_id, std::uint64_t parent_span,
                                    std::string name, std::string node, TimeUs at_utc) {
    const std::uint64_t id =
        begin(trace_id, parent_span, std::move(name), std::move(node), at_utc);
    end(id, at_utc);
    return id;
}

std::vector<SpanRecord> SpanRecorder::trace(const Uuid& trace_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    for (const SpanRecord& span : spans_) {
        if (span.trace_id == trace_id) out.push_back(span);
    }
    std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
        return a.start_utc < b.start_utc;
    });
    return out;
}

std::vector<SpanRecord> SpanRecorder::all() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::size_t SpanRecorder::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::uint64_t SpanRecorder::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void SpanRecorder::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    index_.clear();
    dropped_ = 0;
}

std::string SpanRecorder::to_json(const Uuid& trace_id) const {
    const auto records = trace(trace_id);
    JsonWriter w;
    w.begin_array();
    for (const SpanRecord& span : records) {
        w.begin_object()
            .field("trace_id", span.trace_id.str())
            .field("span_id", span.span_id)
            .field("parent_span", span.parent_span)
            .field("name", span.name)
            .field("node", span.node)
            .field("start_utc_us", static_cast<std::int64_t>(span.start_utc));
        if (span.finished()) {
            w.field("end_utc_us", static_cast<std::int64_t>(span.end_utc));
        } else {
            w.key("end_utc_us").value_null();
        }
        w.end_object();
    }
    w.end_array();
    return w.take();
}

}  // namespace narada::obs
