// Minimal JSON emitter shared by the observability exporters and the
// bench harness.
//
// The bench harness used to hand-roll `NARADA_JSON` lines with snprintf,
// which silently produced invalid JSON whenever a bench name or field key
// contained a quote or backslash. Every machine-readable line the repo
// emits (bench records, metric snapshots, trace dumps, debug snapshots)
// now goes through this writer, so escaping is correct in exactly one
// place. The writer is append-only and allocation-light: one std::string,
// no DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace narada::obs {

/// Escape `s` for inclusion inside a JSON string literal. Quotes are NOT
/// added; control characters become \uXXXX sequences.
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Call sequence is the caller's responsibility
/// (begin_object -> field... -> end_object); the writer only tracks where
/// commas belong. Doubles print as %.17g by default or with a fixed number
/// of decimals when requested; non-finite doubles print as null (JSON has
/// no NaN/Inf).
class JsonWriter {
public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }
    JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
    JsonWriter& value(bool v);
    JsonWriter& value(double v, int decimals = -1);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter& value_null();
    /// Splice pre-serialized JSON (e.g. a component's debug snapshot).
    JsonWriter& raw(std::string_view json);

    JsonWriter& field(std::string_view k, std::string_view v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, const char* v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, const std::string& v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, bool v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, double v, int decimals = -1) {
        return key(k).value(v, decimals);
    }
    JsonWriter& field(std::string_view k, std::int64_t v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, std::uint64_t v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, int v) { return key(k).value(v); }
    JsonWriter& field(std::string_view k, unsigned v) { return key(k).value(v); }

    [[nodiscard]] const std::string& str() const { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    void comma();

    std::string out_;
    bool need_comma_ = false;
};

}  // namespace narada::obs
