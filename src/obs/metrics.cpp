#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"

namespace narada::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void Histogram::observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

ShardedCounter::ShardedCounter(std::size_t shards) : n_(shards == 0 ? 1 : shards) {
    slots_ = std::make_unique<Slot[]>(n_);
}

std::uint64_t ShardedCounter::value() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n_; ++i) total += slots_[i].c.value();
    return total;
}

ShardedHistogram::ShardedHistogram(std::size_t shards, std::vector<double> upper_bounds) {
    if (shards == 0) shards = 1;
    slots_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        slots_.push_back(std::make_unique<Histogram>(upper_bounds));
    }
}

Histogram::Snapshot ShardedHistogram::snapshot() const {
    Histogram::Snapshot merged = slots_[0]->snapshot();
    for (std::size_t s = 1; s < slots_.size(); ++s) {
        const auto snap = slots_[s]->snapshot();
        for (std::size_t i = 0; i < merged.counts.size(); ++i) merged.counts[i] += snap.counts[i];
        merged.count += snap.count;
        merged.sum += snap.sum;
    }
    return merged;
}

std::vector<double> latency_buckets_ms() {
    return {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};
}

std::vector<double> batch_buckets() { return {1, 2, 4, 8, 16, 32, 64}; }

Counter& MetricsRegistry::counter(const std::string& name, const std::string& node) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[{name, node}];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& node) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[{name, node}];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& node,
                                      std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[{name, node}];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

ShardedCounter& MetricsRegistry::sharded_counter(const std::string& name,
                                                 const std::string& node, std::size_t shards) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = sharded_counters_[{name, node}];
    if (!slot) slot = std::make_unique<ShardedCounter>(shards);
    return *slot;
}

ShardedHistogram& MetricsRegistry::sharded_histogram(const std::string& name,
                                                     const std::string& node, std::size_t shards,
                                                     std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = sharded_histograms_[{name, node}];
    if (!slot) slot = std::make_unique<ShardedHistogram>(shards, std::move(bounds));
    return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const std::string& node) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = counters_.find({name, node}); it != counters_.end()) {
        return it->second->value();
    }
    const auto sit = sharded_counters_.find({name, node});
    return sit == sharded_counters_.end() ? 0 : sit->second->value();
}

namespace {

void append_labels(std::string& out, const std::string& node) {
    if (node.empty()) return;
    out += "{node=\"";
    out += node;  // node labels are hostnames/roles; no quotes expected
    out += "\"}";
}

std::string format_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [key, counter] : counters_) {
        out += "# TYPE narada_" + key.first + " counter\n";
        out += "narada_" + key.first;
        append_labels(out, key.second);
        out += " " + std::to_string(counter->value()) + "\n";
    }
    for (const auto& [key, counter] : sharded_counters_) {
        out += "# TYPE narada_" + key.first + " counter\n";
        out += "narada_" + key.first;
        append_labels(out, key.second);
        out += " " + std::to_string(counter->value()) + "\n";
    }
    for (const auto& [key, gauge] : gauges_) {
        out += "# TYPE narada_" + key.first + " gauge\n";
        out += "narada_" + key.first;
        append_labels(out, key.second);
        out += " " + format_double(gauge->value()) + "\n";
    }
    const auto emit_histogram = [&out](const Key& key, const Histogram::Snapshot& snap) {
        out += "# TYPE narada_" + key.first + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            out += "narada_" + key.first + "_bucket{";
            if (!key.second.empty()) out += "node=\"" + key.second + "\",";
            out += "le=\"" + format_double(snap.bounds[i]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += "narada_" + key.first + "_bucket{";
        if (!key.second.empty()) out += "node=\"" + key.second + "\",";
        out += "le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
        out += "narada_" + key.first + "_sum";
        append_labels(out, key.second);
        out += " " + format_double(snap.sum) + "\n";
        out += "narada_" + key.first + "_count";
        append_labels(out, key.second);
        out += " " + std::to_string(snap.count) + "\n";
    };
    for (const auto& [key, hist] : histograms_) emit_histogram(key, hist->snapshot());
    for (const auto& [key, hist] : sharded_histograms_) emit_histogram(key, hist->snapshot());
    return out;
}

std::string MetricsRegistry::to_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w;
    w.begin_object();
    w.key("counters").begin_array();
    for (const auto& [key, counter] : counters_) {
        w.begin_object()
            .field("name", key.first)
            .field("node", key.second)
            .field("value", counter->value())
            .end_object();
    }
    for (const auto& [key, counter] : sharded_counters_) {
        w.begin_object()
            .field("name", key.first)
            .field("node", key.second)
            .field("value", counter->value())
            .end_object();
    }
    w.end_array();
    w.key("gauges").begin_array();
    for (const auto& [key, gauge] : gauges_) {
        w.begin_object()
            .field("name", key.first)
            .field("node", key.second)
            .field("value", gauge->value())
            .end_object();
    }
    w.end_array();
    w.key("histograms").begin_array();
    const auto emit_histogram = [&w](const Key& key, const Histogram::Snapshot& snap) {
        w.begin_object()
            .field("name", key.first)
            .field("node", key.second)
            .field("count", snap.count)
            .field("sum", snap.sum);
        w.key("buckets").begin_array();
        for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            w.begin_array().value(snap.bounds[i]).value(snap.counts[i]).end_array();
        }
        w.begin_array().value_null().value(snap.counts[snap.bounds.size()]).end_array();
        w.end_array();
        w.end_object();
    };
    for (const auto& [key, hist] : histograms_) emit_histogram(key, hist->snapshot());
    for (const auto& [key, hist] : sharded_histograms_) emit_histogram(key, hist->snapshot());
    w.end_array();
    w.end_object();
    return w.take();
}

}  // namespace narada::obs
