#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace narada::obs {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::comma() {
    if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
    comma();
    out_ += '{';
    need_comma_ = false;
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    out_ += '}';
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    comma();
    out_ += '[';
    need_comma_ = false;
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    out_ += ']';
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    need_comma_ = false;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    comma();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(double v, int decimals) {
    comma();
    if (!std::isfinite(v)) {
        out_ += "null";
    } else {
        char buf[48];
        if (decimals >= 0) {
            std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        }
        out_ += buf;
    }
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value_null() {
    comma();
    out_ += "null";
    need_comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
    comma();
    out_ += json;
    need_comma_ = true;
    return *this;
}

}  // namespace narada::obs
