#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace narada::obs {

std::uint64_t process_rss_bytes() {
#if defined(__linux__)
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) return 0;
    unsigned long long total_pages = 0;
    unsigned long long resident_pages = 0;
    const int matched = std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
    std::fclose(f);
    if (matched != 2) return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0) return 0;
    return static_cast<std::uint64_t>(resident_pages) * static_cast<std::uint64_t>(page);
#else
    return 0;
#endif
}

std::uint64_t process_peak_rss_bytes() {
#if defined(__linux__)
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    char line[256];
    unsigned long long peak_kib = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            if (std::sscanf(line + 6, "%llu", &peak_kib) != 1) peak_kib = 0;
            break;
        }
    }
    std::fclose(f);
    return static_cast<std::uint64_t>(peak_kib) * 1024;
#else
    return 0;
#endif
}

void update_memory_gauges(
    MetricsRegistry& registry, const std::string& node,
    std::initializer_list<std::pair<const char*, std::uint64_t>> components) {
    registry.gauge("process_rss_bytes", node).set(static_cast<double>(process_rss_bytes()));
    registry.gauge("process_peak_rss_bytes", node)
        .set(static_cast<double>(process_peak_rss_bytes()));
    for (const auto& [component, bytes] : components) {
        registry.gauge(std::string(component) + "_bytes", node)
            .set(static_cast<double>(bytes));
    }
}

}  // namespace narada::obs
