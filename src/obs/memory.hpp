// Process memory gauges.
//
// BENCH_scale.json reports memory-per-endpoint honestly: alongside the
// accounted per-component byte totals (array capacities, pools), the bench
// samples the process resident set so hidden costs — allocator slack, heap
// metadata, code — show up in the same record. On non-Linux hosts the
// /proc readers return 0 and the gauges simply stay absent from reports.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace narada::obs {

/// Current resident-set size of this process in bytes (Linux:
/// /proc/self/statm). Returns 0 when unavailable.
std::uint64_t process_rss_bytes();

/// Peak resident-set size (Linux: VmHWM from /proc/self/status). Returns 0
/// when unavailable.
std::uint64_t process_peak_rss_bytes();

/// Publish the standard memory gauges on `registry` under `node`:
/// `process_rss_bytes`, `process_peak_rss_bytes`, and one
/// `<component>_bytes` gauge per (component, bytes) pair of accounted
/// per-component usage (e.g. {"swarm_state", swarm.state_bytes()}).
void update_memory_gauges(
    MetricsRegistry& registry, const std::string& node,
    std::initializer_list<std::pair<const char*, std::uint64_t>> components = {});

}  // namespace narada::obs
