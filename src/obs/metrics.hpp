// Lock-light metrics registry.
//
// Components take instrument handles (Counter&, Gauge&, Histogram&) from a
// MetricsRegistry once, at wiring time; from then on every update is a
// single relaxed atomic operation — no lock is ever taken on a hot path.
// The registry itself serializes only instrument creation and snapshotting
// behind a mutex, and instruments live behind unique_ptr so handles stay
// stable for the registry's lifetime no matter how many instruments are
// registered afterwards.
//
// Naming scheme (DESIGN.md §7): metric names are lower_snake_case and
// component-prefixed (`bdn_requests_received`, `broker_events_forwarded`,
// `transport_bytes_in`); the `node` label carries the emitting node's
// hostname or role so one registry can serve a whole simulated deployment.
// Exporters emit Prometheus-style text (names prefixed `narada_`) and a
// single-line JSON snapshot compatible with the bench `NARADA_JSON`
// convention.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace narada::obs {

/// Monotonic counter. Relaxed atomics: totals are exact, cross-counter
/// ordering is not promised (snapshots are advisory, not transactional).
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge with CAS-based add/max updates.
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(double d) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    /// Raise the gauge to `v` if `v` exceeds the current value (high-watermarks).
    void max_of(double v) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are set at construction and never
/// change; observe() is a bounds scan plus three relaxed atomic updates.
/// Buckets are non-cumulative internally; the snapshot reports them
/// Prometheus-style (cumulative, with an implicit +Inf bucket).
class Histogram {
public:
    /// `upper_bounds` must be sorted ascending; an implicit +Inf bucket is
    /// always appended.
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v) noexcept;

    struct Snapshot {
        std::vector<double> bounds;          ///< finite upper bounds (le)
        std::vector<std::uint64_t> counts;   ///< per-bucket, bounds.size()+1 entries
        std::uint64_t count = 0;
        double sum = 0;
    };
    [[nodiscard]] Snapshot snapshot() const;
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size()+1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Per-shard counter: one cache-line-padded Counter slot per shard, so N
/// reactor threads incrementing "the same" metric never touch a shared
/// cache line. Aggregated (summed) only at scrape time. shard(i) hands out
/// a plain Counter&, so hot-path code wires a shard slot exactly like any
/// other counter.
class ShardedCounter {
public:
    explicit ShardedCounter(std::size_t shards);

    [[nodiscard]] Counter& shard(std::size_t i) noexcept { return slots_[i].c; }
    [[nodiscard]] std::size_t shards() const noexcept { return n_; }
    /// Sum across shards (scrape-time only).
    [[nodiscard]] std::uint64_t value() const noexcept;

private:
    struct alignas(64) Slot {
        Counter c;
    };
    std::unique_ptr<Slot[]> slots_;
    std::size_t n_;
};

/// Per-shard histogram: one full Histogram per shard (identical bounds),
/// merged at scrape time. shard(i) is a plain Histogram&.
class ShardedHistogram {
public:
    ShardedHistogram(std::size_t shards, std::vector<double> upper_bounds);

    [[nodiscard]] Histogram& shard(std::size_t i) noexcept { return *slots_[i]; }
    [[nodiscard]] std::size_t shards() const noexcept { return slots_.size(); }
    /// Merged snapshot (per-bucket counts and sums added across shards).
    [[nodiscard]] Histogram::Snapshot snapshot() const;

private:
    std::vector<std::unique_ptr<Histogram>> slots_;
};

/// Default bucket ladder for latency histograms, in milliseconds: covers
/// sub-millisecond LAN hops up through the paper's 4.5 s response window.
std::vector<double> latency_buckets_ms();

/// Power-of-two ladder for syscall batch-size histograms (recvmmsg /
/// sendmmsg datagrams per call): {1, 2, 4, 8, 16, 32, 64}.
std::vector<double> batch_buckets();

class MetricsRegistry {
public:
    /// Fetch-or-create. Handles remain valid for the registry's lifetime.
    Counter& counter(const std::string& name, const std::string& node = "");
    Gauge& gauge(const std::string& name, const std::string& node = "");
    /// `bounds` is only consulted on first creation of (name, node).
    Histogram& histogram(const std::string& name, const std::string& node,
                         std::vector<double> bounds);
    /// Sharded variants: `shards`/`bounds` are only consulted on first
    /// creation of (name, node). Exporters fold the aggregate into the same
    /// counter/histogram sections as the plain instruments.
    ShardedCounter& sharded_counter(const std::string& name, const std::string& node,
                                    std::size_t shards);
    ShardedHistogram& sharded_histogram(const std::string& name, const std::string& node,
                                        std::size_t shards, std::vector<double> bounds);

    /// Prometheus text exposition (names prefixed `narada_`, node label).
    [[nodiscard]] std::string to_prometheus() const;
    /// Single-line JSON object:
    /// {"counters":[{"name","node","value"}...],"gauges":[...],"histograms":[...]}
    [[nodiscard]] std::string to_json() const;

    [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                              const std::string& node = "") const;

private:
    using Key = std::pair<std::string, std::string>;  ///< (name, node)

    mutable std::mutex mu_;  ///< creation + snapshot only; never on update paths
    std::map<Key, std::unique_ptr<Counter>> counters_;
    std::map<Key, std::unique_ptr<Gauge>> gauges_;
    std::map<Key, std::unique_ptr<Histogram>> histograms_;
    std::map<Key, std::unique_ptr<ShardedCounter>> sharded_counters_;
    std::map<Key, std::unique_ptr<ShardedHistogram>> sharded_histograms_;
};

}  // namespace narada::obs
