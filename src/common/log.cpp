#include "common/log.hpp"

#include <cstdio>

namespace narada {
namespace {

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::write(LogLevel level, std::string_view module, std::string_view message) {
    std::scoped_lock lock(mutex_);
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
                 static_cast<int>(module.size()), module.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace narada
