// 128-bit universally unique identifiers.
//
// Every broker discovery request carries a UUID (paper §3); brokers use the
// UUID to suppress duplicate processing (paper §4). UUIDs here follow the
// RFC 4122 version-4 layout and are generated from an injected Rng so that
// simulated runs remain deterministic.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/rng.hpp"

namespace narada {

class Uuid {
public:
    /// The nil UUID (all zero); used as "no id".
    constexpr Uuid() = default;

    /// Generate a random (version 4) UUID from the given generator.
    static Uuid random(Rng& rng);

    /// Parse the canonical 8-4-4-4-12 hex form. Returns nullopt on bad input.
    static std::optional<Uuid> parse(const std::string& text);

    /// Construct from two raw 64-bit halves (used by the wire codec).
    static Uuid from_halves(std::uint64_t hi, std::uint64_t lo);

    [[nodiscard]] std::uint64_t hi() const { return hi_; }
    [[nodiscard]] std::uint64_t lo() const { return lo_; }
    [[nodiscard]] bool is_nil() const { return hi_ == 0 && lo_ == 0; }

    /// Canonical lower-case 8-4-4-4-12 string form.
    [[nodiscard]] std::string str() const;

    friend bool operator==(const Uuid&, const Uuid&) = default;
    friend auto operator<=>(const Uuid&, const Uuid&) = default;

private:
    std::uint64_t hi_ = 0;
    std::uint64_t lo_ = 0;
};

}  // namespace narada

template <>
struct std::hash<narada::Uuid> {
    std::size_t operator()(const narada::Uuid& u) const noexcept {
        // Halves are already uniformly random; xor-fold is sufficient.
        return static_cast<std::size_t>(u.hi() ^ (u.lo() * 0x9E3779B97F4A7C15ull));
    }
};
