#include "common/types.hpp"

namespace narada {

std::string Endpoint::str() const {
    return "host" + std::to_string(host) + ":" + std::to_string(port);
}

}  // namespace narada
