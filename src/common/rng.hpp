// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (latency jitter, packet loss,
// clock skew, load models) is driven by explicitly-seeded generators so
// every experiment is reproducible bit-for-bit. We use xoshiro256** seeded
// through SplitMix64, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>

namespace narada {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x6E61726164615F21ull) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() { return next(); }

    std::uint64_t next() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(bounded(span));
    }

    /// Bernoulli trial with probability p of returning true.
    bool chance(double p) { return uniform() < p; }

    /// Normally-distributed sample (Box–Muller, one value per call).
    double gaussian(double mean, double stddev);

    /// Unbiased uniform value in [0, bound) via Lemire rejection.
    std::uint64_t bounded(std::uint64_t bound);

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4]{};
};

}  // namespace narada
