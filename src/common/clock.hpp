// Clock abstraction decoupling protocol code from the time source.
//
// Every node reads time through a Clock&. In simulation the clock is the
// node's *skewed local clock* derived from virtual time (see sim/ and
// timesvc/); over real sockets it is the machine's wall clock. The paper's
// whole latency-estimation trick (§5, §6) depends on the difference between
// local clocks and NTP-corrected UTC, so the distinction is modelled
// explicitly rather than hidden behind std::chrono.
#pragma once

#include "common/types.hpp"

namespace narada {

/// Read-only time source.
class Clock {
public:
    virtual ~Clock() = default;
    /// Current reading of this clock, microseconds since the epoch.
    [[nodiscard]] virtual TimeUs now() const = 0;
};

/// Wall clock backed by the system's realtime clock (POSIX backend).
class WallClock final : public Clock {
public:
    [[nodiscard]] TimeUs now() const override;
};

/// A clock that applies a fixed additive offset to a base clock; used both
/// for skewed node-local clocks and for NTP-corrected UTC estimates.
class OffsetClock final : public Clock {
public:
    OffsetClock(const Clock& base, DurationUs offset) : base_(base), offset_(offset) {}

    void set_offset(DurationUs offset) { offset_ = offset; }
    [[nodiscard]] DurationUs offset() const { return offset_; }

    [[nodiscard]] TimeUs now() const override { return base_.now() + offset_; }

private:
    const Clock& base_;
    DurationUs offset_;
};

/// Manually-stepped clock for unit tests.
class ManualClock final : public Clock {
public:
    explicit ManualClock(TimeUs start = 0) : now_(start) {}
    void advance(DurationUs d) { now_ += d; }
    void set(TimeUs t) { now_ = t; }
    [[nodiscard]] TimeUs now() const override { return now_; }

private:
    TimeUs now_;
};

}  // namespace narada
