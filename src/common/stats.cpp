#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace narada {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
    if (n_ == 0) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

double SampleSet::mean() const {
    if (samples_.empty()) return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::std_error() const {
    if (samples_.empty()) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double SampleSet::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

SampleSet SampleSet::trim_outliers(std::size_t keep) const {
    if (keep >= samples_.size()) return *this;
    const double med = median();
    std::vector<double> sorted = samples_;
    // Order by absolute deviation from the median, keep the closest `keep`.
    std::sort(sorted.begin(), sorted.end(), [med](double a, double b) {
        return std::abs(a - med) < std::abs(b - med);
    });
    sorted.resize(keep);
    return SampleSet(std::move(sorted));
}

std::string SampleSet::metric_table(const std::string& unit) const {
    char buf[256];
    std::string out;
    out += "Metric                 Time (" + unit + ")\n";
    const auto row = [&](const char* name, double v) {
        std::snprintf(buf, sizeof(buf), "%-22s %12.3f\n", name, v);
        out += buf;
    };
    row("Mean", mean());
    row("Standard deviation", stddev());
    row("Maximum", max());
    row("Minimum", min());
    row("Error", std_error());
    return out;
}

}  // namespace narada
