// Timer scheduling abstraction.
//
// Protocol nodes (brokers, BDNs, discovery clients) arm timers through this
// interface so the identical protocol code runs on the discrete-event
// kernel's virtual time and on the POSIX backend's wall-clock timer thread.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace narada {

using TimerHandle = std::uint64_t;
constexpr TimerHandle kInvalidTimerHandle = 0;

class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Run `task` once after `delay`. Returns a handle usable with cancel().
    virtual TimerHandle schedule(DurationUs delay, std::function<void()> task) = 0;

    /// Cancel a pending timer; cancelling a fired/invalid handle is a no-op.
    virtual void cancel_timer(TimerHandle handle) = 0;
};

}  // namespace narada
