// Jittered exponential backoff.
//
// Retry loops that share a failure cause (a crashed BDN, a partitioned
// overlay) must not retry in lockstep or the recovering component is hit
// by a synchronized storm the moment it returns. Every retrying component
// (RejoinSupervisor, ManagedConnection) therefore draws its delays from
// this helper: the base delay grows geometrically up to a cap, each drawn
// delay is multiplied by a uniform jitter factor in [1 - jitter, 1 + jitter],
// and a success resets the base. Delays come from the caller's seeded Rng,
// so simulated runs stay deterministic.
#pragma once

#include <algorithm>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace narada {

struct BackoffOptions {
    DurationUs initial = 500 * kMillisecond;  ///< first retry delay
    DurationUs max = 30 * kSecond;            ///< base-delay cap
    double multiplier = 2.0;                  ///< base-delay growth per failure
    double jitter = 0.2;                      ///< uniform factor in [1-j, 1+j]
};

class JitteredBackoff {
public:
    JitteredBackoff() = default;
    explicit JitteredBackoff(BackoffOptions options) : options_(options) {
        options_.initial = std::max<DurationUs>(options_.initial, 1);
        options_.max = std::max(options_.max, options_.initial);
        options_.multiplier = std::max(options_.multiplier, 1.0);
        options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
        base_ = options_.initial;
    }

    /// Draw the next delay and advance the base toward the cap.
    DurationUs next(Rng& rng) {
        const DurationUs delay = jittered(base_, rng);
        base_ = std::min<DurationUs>(
            options_.max, static_cast<DurationUs>(static_cast<double>(base_) *
                                                  options_.multiplier));
        return delay;
    }

    /// Peek at what next() would use as its base, without advancing.
    [[nodiscard]] DurationUs current() const { return base_; }

    /// A success: the next failure starts over from the initial delay.
    void reset() { base_ = options_.initial; }

    [[nodiscard]] bool at_cap() const { return base_ >= options_.max; }
    [[nodiscard]] const BackoffOptions& options() const { return options_; }

private:
    [[nodiscard]] DurationUs jittered(DurationUs base, Rng& rng) const {
        if (options_.jitter <= 0.0) return base;
        const double factor =
            rng.uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
        const auto scaled = static_cast<DurationUs>(static_cast<double>(base) * factor);
        return std::max<DurationUs>(scaled, 1);
    }

    BackoffOptions options_{};
    DurationUs base_ = BackoffOptions{}.initial;
};

}  // namespace narada
