#include "common/rng.hpp"

#include <cmath>

namespace narada {

double Rng::gaussian(double mean, double stddev) {
    // Box–Muller transform; u1 must be strictly positive for the log.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace narada
