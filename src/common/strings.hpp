// Small string utilities shared across modules (topic parsing, config files,
// endpoint rendering). Kept allocation-aware: split returns views into the
// caller's string where possible via split_views.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace narada {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split as string_views into `text` (caller keeps `text` alive).
std::vector<std::string_view> split_views(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join elements with `sep`.
std::string join(const std::vector<std::string>& parts, char sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// ASCII lower-casing (config keys, protocol names).
std::string to_lower(std::string_view text);

}  // namespace narada
