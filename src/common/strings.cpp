#include "common/strings.hpp"

#include <cctype>

namespace narada {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    for (std::string_view part : split_views(text, sep)) {
        out.emplace_back(part);
    }
    return out;
}

std::vector<std::string_view> split_views(std::string_view text, char sep) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, char sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out.push_back(sep);
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

}  // namespace narada
