// Deterministic token-bucket rate limiter.
//
// Overload protection at the BDN and the broker discovery plugin admits
// work through token buckets: tokens refill continuously at `rate` per
// second up to `burst`, and each admitted unit of work consumes one token.
// The bucket is purely a function of the timestamps the caller feeds it —
// no wall clock, no hidden state — so rate-limited components stay
// bit-for-bit reproducible on the discrete-event kernel.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace narada {

class TokenBucket {
public:
    /// `rate_per_sec` <= 0 disables limiting: try_consume always admits.
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(std::max(burst, 1.0)), tokens_(burst_) {}
    TokenBucket() : TokenBucket(0.0, 1.0) {}

    /// Admit `cost` units of work at time `now`; false = over quota.
    bool try_consume(TimeUs now, double cost = 1.0) {
        if (rate_ <= 0.0) return true;
        refill(now);
        if (tokens_ < cost) return false;
        tokens_ -= cost;
        return true;
    }

    /// Tokens available right now (after refill), for watermark checks.
    [[nodiscard]] double available(TimeUs now) {
        if (rate_ <= 0.0) return burst_;
        refill(now);
        return tokens_;
    }

    [[nodiscard]] bool limited() const { return rate_ > 0.0; }
    [[nodiscard]] double rate() const { return rate_; }
    [[nodiscard]] double burst() const { return burst_; }

private:
    void refill(TimeUs now) {
        if (!primed_) {
            primed_ = true;
            last_refill_ = now;
            return;
        }
        if (now <= last_refill_) return;  // clock steps backwards: hold
        // Subtract in unsigned space: the timestamps may sit at opposite
        // extremes of the TimeUs range (e.g. a clock-skew chaos step), and
        // signed overflow would be UB. The true difference always fits in
        // a u64 once now > last_refill_.
        const std::uint64_t elapsed_us = static_cast<std::uint64_t>(now) -
                                         static_cast<std::uint64_t>(last_refill_);
        const double elapsed_s =
            static_cast<double>(elapsed_us) / static_cast<double>(kSecond);
        // Saturate: a huge gap (or a huge rate) refills to the burst cap
        // directly instead of pushing rate * elapsed through an addition
        // that could lose precision or overflow to +inf.
        if (rate_ * elapsed_s >= burst_) {
            tokens_ = burst_;
        } else {
            tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_s);
        }
        last_refill_ = now;
    }

    double rate_;
    double burst_;
    double tokens_;
    TimeUs last_refill_ = 0;
    bool primed_ = false;
};

}  // namespace narada
