// Deterministic token-bucket rate limiter.
//
// Overload protection at the BDN and the broker discovery plugin admits
// work through token buckets: tokens refill continuously at `rate` per
// second up to `burst`, and each admitted unit of work consumes one token.
// The bucket is purely a function of the timestamps the caller feeds it —
// no wall clock, no hidden state — so rate-limited components stay
// bit-for-bit reproducible on the discrete-event kernel.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace narada {

class TokenBucket {
public:
    /// `rate_per_sec` <= 0 disables limiting: try_consume always admits.
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(std::max(burst, 1.0)), tokens_(burst_) {}
    TokenBucket() : TokenBucket(0.0, 1.0) {}

    /// Admit `cost` units of work at time `now`; false = over quota.
    bool try_consume(TimeUs now, double cost = 1.0) {
        if (rate_ <= 0.0) return true;
        refill(now);
        if (tokens_ < cost) return false;
        tokens_ -= cost;
        return true;
    }

    /// Tokens available right now (after refill), for watermark checks.
    [[nodiscard]] double available(TimeUs now) {
        if (rate_ <= 0.0) return burst_;
        refill(now);
        return tokens_;
    }

    [[nodiscard]] bool limited() const { return rate_ > 0.0; }
    [[nodiscard]] double rate() const { return rate_; }
    [[nodiscard]] double burst() const { return burst_; }

private:
    void refill(TimeUs now) {
        if (!primed_) {
            primed_ = true;
            last_refill_ = now;
            return;
        }
        if (now <= last_refill_) return;  // clock steps backwards: hold
        const double elapsed_s =
            static_cast<double>(now - last_refill_) / static_cast<double>(kSecond);
        tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_s);
        last_refill_ = now;
    }

    double rate_;
    double burst_;
    double tokens_;
    TimeUs last_refill_ = 0;
    bool primed_ = false;
};

}  // namespace narada
