#include "common/clock.hpp"

#include <chrono>

namespace narada {

TimeUs WallClock::now() const {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

}  // namespace narada
