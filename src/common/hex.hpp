// Hex encoding/decoding for digests, keys and debugging output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace narada {

/// Lower-case hex encoding of a byte buffer.
std::string hex_encode(const Bytes& data);
std::string hex_encode(const std::uint8_t* data, std::size_t len);

/// Decode a hex string (even length, case-insensitive). nullopt on bad input.
std::optional<Bytes> hex_decode(std::string_view text);

}  // namespace narada
