// Minimal leveled logger.
//
// Protocol modules log through this sink so that tests can silence output
// and examples can show the discovery conversation. Not thread-hot: the
// simulator is single-threaded; the POSIX backend serializes via a mutex.
//
// Messages use "{}" placeholders filled left-to-right via operator<<
// (GCC 12 ships no <format>, so we provide this small equivalent).
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace narada {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace detail {

inline void format_impl(std::ostringstream& out, std::string_view fmt) { out << fmt; }

template <typename First, typename... Rest>
void format_impl(std::ostringstream& out, std::string_view fmt, First&& first, Rest&&... rest) {
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        out << fmt;
        return;
    }
    out << fmt.substr(0, pos) << std::forward<First>(first);
    format_impl(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
    std::ostringstream out;
    format_impl(out, fmt, std::forward<Args>(args)...);
    return out.str();
}

}  // namespace detail

class Logger {
public:
    /// Global process-wide logger instance.
    static Logger& instance();

    void set_level(LogLevel level) { level_ = level; }
    [[nodiscard]] LogLevel level() const { return level_; }

    void write(LogLevel level, std::string_view module, std::string_view message);

    template <typename... Args>
    void log(LogLevel level, std::string_view module, std::string_view fmt, Args&&... args) {
        if (level < level_) return;
        write(level, module, detail::format(fmt, std::forward<Args>(args)...));
    }

private:
    Logger() = default;
    LogLevel level_ = LogLevel::kWarn;
    std::mutex mutex_;
};

#define NARADA_LOG(level, module, ...) \
    ::narada::Logger::instance().log((level), (module), __VA_ARGS__)

#define NARADA_TRACE(module, ...) NARADA_LOG(::narada::LogLevel::kTrace, module, __VA_ARGS__)
#define NARADA_DEBUG(module, ...) NARADA_LOG(::narada::LogLevel::kDebug, module, __VA_ARGS__)
#define NARADA_INFO(module, ...) NARADA_LOG(::narada::LogLevel::kInfo, module, __VA_ARGS__)
#define NARADA_WARN(module, ...) NARADA_LOG(::narada::LogLevel::kWarn, module, __VA_ARGS__)
#define NARADA_ERROR(module, ...) NARADA_LOG(::narada::LogLevel::kError, module, __VA_ARGS__)

}  // namespace narada
