// Fundamental value types shared by every narada module.
//
// All protocol code expresses time as integral microseconds (TimeUs /
// DurationUs) rather than std::chrono so that the same code runs unchanged
// on the virtual clock of the discrete-event simulator and on the wall
// clock of the POSIX transport backend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace narada {

/// Raw octet buffer used for every wire payload.
using Bytes = std::vector<std::uint8_t>;

/// Absolute time in microseconds since an epoch (virtual or UNIX).
using TimeUs = std::int64_t;

/// Time interval in microseconds.
using DurationUs = std::int64_t;

constexpr DurationUs kMicrosecond = 1;
constexpr DurationUs kMillisecond = 1000;
constexpr DurationUs kSecond = 1000 * kMillisecond;

constexpr double to_ms(DurationUs us) { return static_cast<double>(us) / 1000.0; }
constexpr DurationUs from_ms(double ms) { return static_cast<DurationUs>(ms * 1000.0); }

/// Identifier of a simulated or real host within a deployment.
using HostId = std::uint32_t;
constexpr HostId kInvalidHost = 0xFFFFFFFFu;

/// A transport-level endpoint: host plus port.
struct Endpoint {
    HostId host = kInvalidHost;
    std::uint16_t port = 0;

    friend bool operator==(const Endpoint&, const Endpoint&) = default;
    friend auto operator<=>(const Endpoint&, const Endpoint&) = default;

    [[nodiscard]] bool valid() const { return host != kInvalidHost; }
    [[nodiscard]] std::string str() const;
};

}  // namespace narada

template <>
struct std::hash<narada::Endpoint> {
    std::size_t operator()(const narada::Endpoint& e) const noexcept {
        return std::hash<std::uint64_t>{}((std::uint64_t{e.host} << 16) | e.port);
    }
};
