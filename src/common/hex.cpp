#include "common/hex.hpp"

namespace narada {
namespace {

int nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::string hex_encode(const std::uint8_t* data, std::size_t len) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (std::size_t i = 0; i < len; ++i) {
        out.push_back(kDigits[data[i] >> 4]);
        out.push_back(kDigits[data[i] & 0xF]);
    }
    return out;
}

std::string hex_encode(const Bytes& data) { return hex_encode(data.data(), data.size()); }

std::optional<Bytes> hex_decode(std::string_view text) {
    if (text.size() % 2 != 0) return std::nullopt;
    Bytes out;
    out.reserve(text.size() / 2);
    for (std::size_t i = 0; i < text.size(); i += 2) {
        const int hi = nibble(text[i]);
        const int lo = nibble(text[i + 1]);
        if (hi < 0 || lo < 0) return std::nullopt;
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

}  // namespace narada
