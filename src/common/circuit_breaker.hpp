// Closed -> open -> half-open circuit breaker.
//
// A dead or storming BDN must not cost every discovery run a full
// retransmit timeout before the client fails over. The breaker counts
// consecutive failures against one endpoint; at the threshold it opens and
// callers skip the endpoint instantly. After a cool-down (drawn from the
// shared jittered-backoff helper so probes from many clients never
// synchronize) one probe is let through half-open: success closes the
// breaker, failure re-opens it with a longer cool-down. All time comes
// from the caller's clock and all jitter from the caller's seeded Rng, so
// breaker timelines are reproducible in simulation.
#pragma once

#include <cstdint>

#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace narada {

struct CircuitBreakerOptions {
    /// Consecutive failures that open the breaker.
    std::uint32_t failure_threshold = 2;
    /// Cool-down before a half-open probe; grows per re-open, jittered.
    BackoffOptions open_backoff{/*initial=*/2 * kSecond, /*max=*/30 * kSecond,
                                /*multiplier=*/2.0, /*jitter=*/0.2};
};

class CircuitBreaker {
public:
    enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

    struct Stats {
        std::uint64_t opens = 0;    ///< closed/half-open -> open transitions
        std::uint64_t probes = 0;   ///< half-open probes admitted
        std::uint64_t rejections = 0;  ///< allow() calls answered false
    };

    explicit CircuitBreaker(CircuitBreakerOptions options = {})
        : options_(options), backoff_(options.open_backoff) {}

    /// May a request be sent to this endpoint right now? An open breaker
    /// whose cool-down elapsed transitions to half-open and admits exactly
    /// one probe; further calls are rejected until the probe resolves.
    bool allow(TimeUs now, Rng& rng) {
        (void)rng;
        switch (state_) {
            case State::kClosed:
                return true;
            case State::kHalfOpen:
                ++stats_.rejections;
                return false;  // a probe is already in flight
            case State::kOpen:
                if (now >= retry_at_) {
                    state_ = State::kHalfOpen;
                    ++stats_.probes;
                    return true;
                }
                ++stats_.rejections;
                return false;
        }
        return true;
    }

    /// Force a half-open probe even though the cool-down has not elapsed —
    /// used when *every* configured endpoint is open and a request must go
    /// somewhere rather than nowhere.
    void force_probe() {
        if (state_ == State::kClosed) return;
        state_ = State::kHalfOpen;
        ++stats_.probes;
    }

    /// The endpoint answered: close and forget the failure history.
    void record_success() {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        backoff_.reset();
    }

    /// The endpoint stayed silent. Half-open probes re-open immediately
    /// (with a longer cool-down); closed breakers open at the threshold.
    void record_failure(TimeUs now, Rng& rng) {
        if (options_.failure_threshold == 0) return;  // breaker disabled
        if (state_ == State::kHalfOpen || state_ == State::kOpen) {
            open(now, rng);
            return;
        }
        ++consecutive_failures_;
        if (consecutive_failures_ >= options_.failure_threshold) open(now, rng);
    }

    [[nodiscard]] State state() const { return state_; }
    /// Earliest time an open breaker will admit a half-open probe.
    [[nodiscard]] TimeUs retry_at() const { return retry_at_; }
    [[nodiscard]] std::uint32_t consecutive_failures() const { return consecutive_failures_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const CircuitBreakerOptions& options() const { return options_; }

private:
    void open(TimeUs now, Rng& rng) {
        state_ = State::kOpen;
        consecutive_failures_ = 0;
        retry_at_ = now + backoff_.next(rng);
        ++stats_.opens;
    }

    CircuitBreakerOptions options_;
    JitteredBackoff backoff_;
    State state_ = State::kClosed;
    std::uint32_t consecutive_failures_ = 0;
    TimeUs retry_at_ = 0;
    Stats stats_;
};

inline const char* to_string(CircuitBreaker::State s) {
    switch (s) {
        case CircuitBreaker::State::kClosed: return "closed";
        case CircuitBreaker::State::kOpen: return "open";
        case CircuitBreaker::State::kHalfOpen: return "half-open";
    }
    return "?";
}

}  // namespace narada
