#include "common/uuid.hpp"

#include <cctype>

namespace narada {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

Uuid Uuid::random(Rng& rng) {
    Uuid u;
    u.hi_ = rng.next();
    u.lo_ = rng.next();
    // Set RFC 4122 version (4) and variant (10xx) bits.
    u.hi_ = (u.hi_ & ~0xF000ull) | 0x4000ull;
    u.lo_ = (u.lo_ & ~(0xC0ull << 56)) | (0x80ull << 56);
    return u;
}

Uuid Uuid::from_halves(std::uint64_t hi, std::uint64_t lo) {
    Uuid u;
    u.hi_ = hi;
    u.lo_ = lo;
    return u;
}

std::string Uuid::str() const {
    // Layout: xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx where the first three
    // groups come from hi_ and the last two from lo_.
    std::string out;
    out.reserve(36);
    auto emit = [&out](std::uint64_t value, int nibbles) {
        for (int i = nibbles - 1; i >= 0; --i) {
            out.push_back(kHexDigits[(value >> (i * 4)) & 0xF]);
        }
    };
    emit(hi_ >> 32, 8);
    out.push_back('-');
    emit((hi_ >> 16) & 0xFFFF, 4);
    out.push_back('-');
    emit(hi_ & 0xFFFF, 4);
    out.push_back('-');
    emit(lo_ >> 48, 4);
    out.push_back('-');
    emit(lo_ & 0xFFFFFFFFFFFFull, 12);
    return out;
}

std::optional<Uuid> Uuid::parse(const std::string& text) {
    if (text.size() != 36) return std::nullopt;
    static constexpr int kDashPositions[] = {8, 13, 18, 23};
    for (int pos : kDashPositions) {
        if (text[pos] != '-') return std::nullopt;
    }
    std::uint64_t halves[2] = {0, 0};
    int nibble_index = 0;
    for (char c : text) {
        if (c == '-') continue;
        const int v = hex_value(c);
        if (v < 0) return std::nullopt;
        halves[nibble_index / 16] = (halves[nibble_index / 16] << 4) | static_cast<std::uint64_t>(v);
        ++nibble_index;
    }
    if (nibble_index != 32) return std::nullopt;
    return from_halves(halves[0], halves[1]);
}

}  // namespace narada
