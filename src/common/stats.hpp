// Descriptive statistics used by the benchmark harness and the discovery
// client's latency estimation.
//
// The paper reports, for every timing figure, the metrics
// {Mean, Standard deviation, Maximum, Minimum, Error} where Error is the
// standard error of the mean, computed over 100 samples retained from 120
// runs after outlier removal (paper §9). SampleSet reproduces exactly that
// pipeline; RunningStats is the allocation-free online variant (Welford).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace narada {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample standard deviation (n-1 denominator).
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    /// Standard error of the mean.
    [[nodiscard]] double std_error() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch sample container with the paper's outlier-trimming pipeline.
class SampleSet {
public:
    SampleSet() = default;
    explicit SampleSet(std::vector<double> samples) : samples_(std::move(samples)) {}

    void add(double x) { samples_.push_back(x); }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] const std::vector<double>& values() const { return samples_; }

    [[nodiscard]] double mean() const;
    [[nodiscard]] double stddev() const;   ///< sample stddev (n-1)
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double std_error() const;
    /// Interpolated percentile, p in [0, 100].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double median() const { return percentile(50.0); }

    /// Paper §9 pipeline: drop the most extreme samples (by distance from
    /// the median) until `keep` remain. Returns the trimmed set.
    [[nodiscard]] SampleSet trim_outliers(std::size_t keep) const;

    /// Render the paper's five-row metric table (times in the unit given).
    [[nodiscard]] std::string metric_table(const std::string& unit = "MilliSec") const;

private:
    std::vector<double> samples_;
};

}  // namespace narada
