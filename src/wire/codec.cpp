#include "wire/codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace narada::wire {

void ByteWriter::u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::str(std::string_view v) {
    if (v.size() > kMaxFieldLength) throw WireError("string too long");
    u32(static_cast<std::uint32_t>(v.size()));
    raw(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
}

void ByteWriter::blob(const Bytes& v) {
    if (v.size() > kMaxFieldLength) throw WireError("blob too long");
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::uuid(const Uuid& v) {
    u64(v.hi());
    u64(v.lo());
}

void ByteReader::need(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("truncated message");
}

void ByteReader::set_max_field_length(std::uint32_t limit) {
    max_field_length_ = std::min(limit, kMaxFieldLength);
}

void ByteReader::check_length(std::uint32_t len) const {
    if (len > max_field_length_) throw FrameTooLargeError(len, max_field_length_);
}

std::uint8_t ByteReader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t ByteReader::u32() {
    const auto hi = static_cast<std::uint32_t>(u16());
    const auto lo = static_cast<std::uint32_t>(u16());
    return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    const auto lo = static_cast<std::uint64_t>(u32());
    return (hi << 32) | lo;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
    const std::uint32_t len = u32();
    check_length(len);
    need(len);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
}

Bytes ByteReader::blob() {
    const std::uint32_t len = u32();
    check_length(len);
    need(len);
    Bytes out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
}

std::string_view ByteReader::str_view() {
    const std::uint32_t len = u32();
    check_length(len);
    need(len);
    const std::string_view out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
}

std::span<const std::uint8_t> ByteReader::blob_view() {
    const std::uint32_t len = u32();
    check_length(len);
    need(len);
    const std::span<const std::uint8_t> out(data_ + pos_, len);
    pos_ += len;
    return out;
}

void ByteReader::skip(std::size_t n) {
    need(n);
    pos_ += n;
}

std::span<const std::uint8_t> ByteReader::span_from(std::size_t pos) const {
    if (pos > pos_) throw WireError("span_from beyond current position");
    return {data_ + pos, pos_ - pos};
}

Uuid ByteReader::uuid() {
    const std::uint64_t hi = u64();
    const std::uint64_t lo = u64();
    return Uuid::from_halves(hi, lo);
}

void ByteReader::expect_end() const {
    if (!at_end()) throw WireError("trailing bytes after message");
}

}  // namespace narada::wire
