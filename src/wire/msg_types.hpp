// Wire message-type catalogue.
//
// Every narada datagram / reliable message starts with one of these type
// octets. Centralized so the broker, discovery and time modules can never
// collide.
#pragma once

#include <cstdint>

namespace narada::wire {

// --- pub/sub client <-> broker ---------------------------------------------
constexpr std::uint8_t kMsgClientHello = 0x01;    ///< client joins a broker
constexpr std::uint8_t kMsgClientWelcome = 0x02;  ///< broker accepts client
constexpr std::uint8_t kMsgSubscribe = 0x03;      ///< topic filter registration
constexpr std::uint8_t kMsgUnsubscribe = 0x04;
constexpr std::uint8_t kMsgPublish = 0x05;       ///< client-originated event
constexpr std::uint8_t kMsgEventDeliver = 0x06;  ///< broker -> subscriber
constexpr std::uint8_t kMsgClientBye = 0x07;     ///< client leaves

// --- broker <-> broker overlay ---------------------------------------------
constexpr std::uint8_t kMsgLinkHello = 0x10;   ///< broker link setup
constexpr std::uint8_t kMsgLinkAccept = 0x11;
constexpr std::uint8_t kMsgEventFlood = 0x12;  ///< event propagation
constexpr std::uint8_t kMsgInterest = 0x13;    ///< subscription-interest announcement

// --- discovery (the paper's protocol) ---------------------------------------
constexpr std::uint8_t kMsgBrokerAdvertisement = 0x20;  ///< broker -> BDN (§2.2)
constexpr std::uint8_t kMsgDiscoveryRequest = 0x21;     ///< node -> BDN / flood (§3)
constexpr std::uint8_t kMsgDiscoveryAck = 0x22;         ///< BDN timely ack (§3)
constexpr std::uint8_t kMsgDiscoveryResponse = 0x23;    ///< broker -> node, UDP (§5)
constexpr std::uint8_t kMsgPing = 0x24;                 ///< UDP ping (§6)
constexpr std::uint8_t kMsgPong = 0x25;
constexpr std::uint8_t kMsgBdnAdvertisement = 0x26;     ///< private BDN ad (§2.4)

// --- BDN federation ----------------------------------------------------------
constexpr std::uint8_t kMsgBdnRegistrySync = 0x27;   ///< bulk ad-registry push (RUDP payload)
constexpr std::uint8_t kMsgBdnRegistrySync2 = 0x28;  ///< v2 push: leases + versions (RUDP payload)
constexpr std::uint8_t kMsgShardQuery = 0x29;        ///< gather: ask a shard for candidates
constexpr std::uint8_t kMsgShardReply = 0x2A;        ///< gather: shard's candidate slice
constexpr std::uint8_t kMsgAdForward = 0x2B;         ///< ad relayed to its ring owners
constexpr std::uint8_t kMsgRegistryDigest = 0x2C;    ///< anti-entropy shared-range digest

// --- event archive / replays (§1 services) -----------------------------------
constexpr std::uint8_t kMsgReplayRequest = 0x50;  ///< fetch archived history
constexpr std::uint8_t kMsgReplayBatch = 0x51;    ///< archived events, oldest first

// --- security (§9.1) ---------------------------------------------------------
constexpr std::uint8_t kMsgSecureEnvelope = 0x40;  ///< signed + encrypted wrapper

// --- reliable-UDP bulk lane --------------------------------------------------
constexpr std::uint8_t kMsgRudpData = 0x60;  ///< paced bulk segment (seq + fragment)
constexpr std::uint8_t kMsgRudpAck = 0x61;   ///< cumulative ack + selective-NAK ranges

// --- time service (§5) -------------------------------------------------------
constexpr std::uint8_t kMsgTimeRequest = 0x71;
constexpr std::uint8_t kMsgTimeResponse = 0x72;

}  // namespace narada::wire
