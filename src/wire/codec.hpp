// Portable binary wire codec.
//
// Every protocol message (broker advertisements, discovery requests and
// responses, pings, pub/sub events) is encoded through ByteWriter and
// decoded through ByteReader. Integers are big-endian (network order);
// variable-size fields carry a u32 length prefix. Decoding is strict:
// truncated or malformed input throws WireError, which transports catch and
// count as a dropped packet — a hostile datagram can never crash a broker.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "common/uuid.hpp"

namespace narada::wire {

class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
public:
    ByteWriter() = default;

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Length-prefixed UTF-8 string.
    void str(std::string_view v);
    /// Length-prefixed byte blob.
    void blob(const Bytes& v);
    /// Raw bytes, no length prefix (caller manages framing).
    void raw(const std::uint8_t* data, std::size_t len);
    void uuid(const Uuid& v);

    [[nodiscard]] const Bytes& bytes() const { return buf_; }
    [[nodiscard]] Bytes take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    Bytes buf_;
};

class ByteReader {
public:
    explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
    ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean() { return u8() != 0; }
    std::string str();
    Bytes blob();
    Uuid uuid();

    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
    [[nodiscard]] bool at_end() const { return pos_ == size_; }

    /// Throw unless the whole buffer was consumed (tail garbage detection).
    void expect_end() const;

private:
    void need(std::size_t n) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Limit on any length-prefixed field; rejects absurd lengths from corrupt
/// or hostile datagrams before any allocation happens.
constexpr std::uint32_t kMaxFieldLength = 16 * 1024 * 1024;

}  // namespace narada::wire
