// Portable binary wire codec.
//
// Every protocol message (broker advertisements, discovery requests and
// responses, pings, pub/sub events) is encoded through ByteWriter and
// decoded through ByteReader. Integers are big-endian (network order);
// variable-size fields carry a u32 length prefix. Decoding is strict:
// truncated or malformed input throws WireError, which transports catch and
// count as a dropped packet — a hostile datagram can never crash a broker.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "common/uuid.hpp"

namespace narada::wire {

/// Limit on any length-prefixed field; rejects absurd lengths from corrupt
/// or hostile datagrams before any allocation happens. Readers may lower
/// this per-instance via ByteReader::set_max_field_length.
constexpr std::uint32_t kMaxFieldLength = 16 * 1024 * 1024;

class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// A length prefix exceeded the reader's frame-size cap. Raised before any
/// allocation, so a hostile 4 GB length prefix costs nothing. Typed so
/// transports can count oversized frames separately from plain corruption.
class FrameTooLargeError : public WireError {
public:
    FrameTooLargeError(std::uint32_t length, std::uint32_t limit)
        : WireError("length prefix " + std::to_string(length) + " exceeds frame cap " +
                    std::to_string(limit)),
          length_(length),
          limit_(limit) {}

    [[nodiscard]] std::uint32_t length() const { return length_; }
    [[nodiscard]] std::uint32_t limit() const { return limit_; }

private:
    std::uint32_t length_;
    std::uint32_t limit_;
};

class ByteWriter {
public:
    ByteWriter() = default;

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Length-prefixed UTF-8 string.
    void str(std::string_view v);
    /// Length-prefixed byte blob.
    void blob(const Bytes& v);
    /// Raw bytes, no length prefix (caller manages framing).
    void raw(const std::uint8_t* data, std::size_t len);
    void uuid(const Uuid& v);

    [[nodiscard]] const Bytes& bytes() const { return buf_; }
    [[nodiscard]] Bytes take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    Bytes buf_;
};

class ByteReader {
public:
    explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
    ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean() { return u8() != 0; }
    std::string str();
    Bytes blob();
    Uuid uuid();

    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
    [[nodiscard]] bool at_end() const { return pos_ == size_; }

    /// Tighten (or relax, up to the global kMaxFieldLength) the cap applied
    /// to every subsequent length prefix. Transports that know their MTU
    /// can reject oversized frames long before the global cap.
    void set_max_field_length(std::uint32_t limit);
    [[nodiscard]] std::uint32_t max_field_length() const { return max_field_length_; }

    /// Throw unless the whole buffer was consumed (tail garbage detection).
    void expect_end() const;

private:
    void need(std::size_t n) const;
    /// Validate a just-read length prefix before any allocation.
    void check_length(std::uint32_t len) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint32_t max_field_length_ = kMaxFieldLength;
};

}  // namespace narada::wire
