// Portable binary wire codec.
//
// Every protocol message (broker advertisements, discovery requests and
// responses, pings, pub/sub events) is encoded through ByteWriter and
// decoded through ByteReader. Integers are big-endian (network order);
// variable-size fields carry a u32 length prefix. Decoding is strict:
// truncated or malformed input throws WireError, which transports catch and
// count as a dropped packet — a hostile datagram can never crash a broker.
//
// Hot-path support (DESIGN.md transport section):
//   * ByteWriter can be seeded with a recycled buffer (its capacity is
//     reused) and pre-sized with reserve(), so the measure()-then-encode
//     pattern produces a message with at most one allocation — zero when
//     the recycled buffer is large enough;
//   * ByteMeter mirrors ByteWriter's method surface but only counts bytes,
//     giving encoders an exact size to reserve;
//   * ByteReader offers borrowed accessors (str_view / blob_view /
//     span_from) that return views into the underlying buffer instead of
//     copies. Borrowed views are valid only while the decoded buffer is
//     alive and unmodified — a handler that retains data past its callback
//     must copy (see the decode-borrowing rules in DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "common/uuid.hpp"

namespace narada::wire {

/// Limit on any length-prefixed field; rejects absurd lengths from corrupt
/// or hostile datagrams before any allocation happens. Readers may lower
/// this per-instance via ByteReader::set_max_field_length.
constexpr std::uint32_t kMaxFieldLength = 16 * 1024 * 1024;

class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// A length prefix exceeded the reader's frame-size cap. Raised before any
/// allocation, so a hostile 4 GB length prefix costs nothing. Typed so
/// transports can count oversized frames separately from plain corruption.
class FrameTooLargeError : public WireError {
public:
    FrameTooLargeError(std::uint32_t length, std::uint32_t limit)
        : WireError("length prefix " + std::to_string(length) + " exceeds frame cap " +
                    std::to_string(limit)),
          length_(length),
          limit_(limit) {}

    [[nodiscard]] std::uint32_t length() const { return length_; }
    [[nodiscard]] std::uint32_t limit() const { return limit_; }

private:
    std::uint32_t length_;
    std::uint32_t limit_;
};

class ByteWriter {
public:
    ByteWriter() = default;
    /// Pre-size the buffer (single-allocation encode when `reserve_bytes`
    /// came from a ByteMeter measurement).
    explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }
    /// Reuse a recycled buffer's capacity: the contents are discarded but
    /// the allocation is kept, so steady-state encoding allocates nothing.
    explicit ByteWriter(Bytes&& recycle) : buf_(std::move(recycle)) { buf_.clear(); }

    void reserve(std::size_t n) { buf_.reserve(n); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Length-prefixed UTF-8 string.
    void str(std::string_view v);
    /// Length-prefixed byte blob.
    void blob(const Bytes& v);
    /// Raw bytes, no length prefix (caller manages framing).
    void raw(const std::uint8_t* data, std::size_t len);
    void uuid(const Uuid& v);

    [[nodiscard]] const Bytes& bytes() const { return buf_; }
    [[nodiscard]] Bytes take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    Bytes buf_;
};

/// Counts the bytes an encode would produce without writing anything.
/// Mirrors ByteWriter's method surface so a message's encode logic can be
/// written once against either (or a measured_size() kept in lockstep —
/// tests assert measurement == encoded size).
class ByteMeter {
public:
    void u8(std::uint8_t) { n_ += 1; }
    void u16(std::uint16_t) { n_ += 2; }
    void u32(std::uint32_t) { n_ += 4; }
    void u64(std::uint64_t) { n_ += 8; }
    void i64(std::int64_t) { n_ += 8; }
    void f64(double) { n_ += 8; }
    void boolean(bool) { n_ += 1; }
    void str(std::string_view v) { n_ += 4 + v.size(); }
    void blob(const Bytes& v) { n_ += 4 + v.size(); }
    void raw(const std::uint8_t*, std::size_t len) { n_ += len; }
    void uuid(const Uuid&) { n_ += 16; }

    [[nodiscard]] std::size_t size() const { return n_; }

private:
    std::size_t n_ = 0;
};

class ByteReader {
public:
    explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
    ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
    explicit ByteReader(std::span<const std::uint8_t> data)
        : data_(data.data()), size_(data.size()) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean() { return u8() != 0; }
    std::string str();
    Bytes blob();
    Uuid uuid();

    // --- borrowed (zero-copy) accessors ---------------------------------
    // Same wire format and validation as str()/blob(), but the returned
    // view aliases the reader's underlying buffer: no allocation, no copy.
    // The view is invalidated when that buffer is destroyed, shrunk, or
    // recycled (e.g. a transport returning a pooled receive buffer); a
    // caller that needs the data afterwards must copy it out.
    std::string_view str_view();
    std::span<const std::uint8_t> blob_view();

    /// Skip `n` raw bytes (bounds-checked); lets inspect-only decoders
    /// step over fields they do not care about without materializing them.
    void skip(std::size_t n);

    /// Borrowed window [pos, current position) over the underlying buffer;
    /// used to capture a whole message region for verbatim re-forwarding.
    [[nodiscard]] std::span<const std::uint8_t> span_from(std::size_t pos) const;
    /// Borrowed view of everything not yet consumed.
    [[nodiscard]] std::span<const std::uint8_t> remaining_span() const {
        return {data_ + pos_, size_ - pos_};
    }
    [[nodiscard]] std::size_t position() const { return pos_; }

    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
    [[nodiscard]] bool at_end() const { return pos_ == size_; }

    /// Tighten (or relax, up to the global kMaxFieldLength) the cap applied
    /// to every subsequent length prefix. Transports that know their MTU
    /// can reject oversized frames long before the global cap.
    void set_max_field_length(std::uint32_t limit);
    [[nodiscard]] std::uint32_t max_field_length() const { return max_field_length_; }

    /// Throw unless the whole buffer was consumed (tail garbage detection).
    void expect_end() const;

private:
    void need(std::size_t n) const;
    /// Validate a just-read length prefix before any allocation.
    void check_length(std::uint32_t len) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint32_t max_field_length_ = kMaxFieldLength;
};

}  // namespace narada::wire
