// Bounded duplicate-suppression cache.
//
// "Every broker keeps track of the last 1000 (this number can be configured
// through the broker configuration file) broker discovery requests so that
// additional CPU/network cycles are not expended on previously processed
// requests" (paper §4). The same structure suppresses duplicate events
// during overlay flooding.
//
// Implementation: a single open-addressed hash table (linear probing,
// backward-shift deletion) whose slots double as the FIFO ring. One
// up-front allocation at construction, zero allocations afterwards, and
// roughly half the memory of the former unordered_set + deque pair (which
// paid a heap node and two deque copies of every UUID). Load factor is
// kept at <= 0.5 so probes stay O(1) expected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/uuid.hpp"
#include "obs/metrics.hpp"

namespace narada::broker {

class DedupCache {
public:
    explicit DedupCache(std::size_t capacity = 1000) : capacity_(capacity) {
        if (capacity_ == 0) return;  // caching disabled: no storage at all
        std::size_t slots = 8;
        while (slots < capacity_ * 2) slots *= 2;
        slots_.resize(slots);
        ring_.resize(capacity_);
    }

    /// Record `id`. Returns true if it was new (caller should process),
    /// false if it was already present (duplicate — skip).
    bool insert(const Uuid& id) {
        if (capacity_ == 0) return true;  // caching disabled: everything "new"
        if (find_slot(id) != kNotFound) return false;
        if (size_ == capacity_) {
            evict_oldest();
            ++evictions_;
            if (evictions_counter_ != nullptr) evictions_counter_->inc();
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = std::hash<Uuid>{}(id)&mask;
        while (slots_[i].occupied) i = (i + 1) & mask;
        const std::uint32_t tail = static_cast<std::uint32_t>((head_ + size_) % capacity_);
        slots_[i] = Slot{id, tail, true};
        ring_[tail] = static_cast<std::uint32_t>(i);
        ++size_;
        if (occupancy_gauge_ != nullptr) occupancy_gauge_->set(static_cast<double>(size_));
        return true;
    }

    [[nodiscard]] bool contains(const Uuid& id) const { return find_slot(id) != kNotFound; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    /// Entries pushed out by FIFO ageing since construction (a persistently
    /// climbing rate means the cache is undersized for the request flow).
    [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

    /// Optional instruments (may be null): an evictions counter and an
    /// occupancy gauge, updated on the owner's thread alongside the cache.
    void set_instruments(obs::Counter* evictions, obs::Gauge* occupancy) {
        evictions_counter_ = evictions;
        occupancy_gauge_ = occupancy;
        if (evictions_counter_ != nullptr && evictions_ > 0) evictions_counter_->inc(evictions_);
        if (occupancy_gauge_ != nullptr) occupancy_gauge_->set(static_cast<double>(size_));
    }

    void clear() {
        for (Slot& s : slots_) s.occupied = false;
        head_ = 0;
        size_ = 0;
        if (occupancy_gauge_ != nullptr) occupancy_gauge_->set(0.0);
    }

private:
    struct Slot {
        Uuid id;
        std::uint32_t ring_pos = 0;  ///< index into ring_ (FIFO age)
        bool occupied = false;       ///< nil UUID is a legal key, so a flag, not a sentinel
    };

    static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

    [[nodiscard]] std::size_t find_slot(const Uuid& id) const {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = std::hash<Uuid>{}(id)&mask;
        while (slots_[i].occupied) {
            if (slots_[i].id == id) return i;
            i = (i + 1) & mask;
        }
        return kNotFound;
    }

    void evict_oldest() {
        const std::size_t mask = slots_.size() - 1;
        std::size_t hole = ring_[head_];
        slots_[hole].occupied = false;
        // Backward-shift deletion: slide displaced entries into the hole so
        // probe chains never need tombstones. Each move updates the ring's
        // back-pointer to the entry's new slot.
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask;
            if (!slots_[j].occupied) break;
            const std::size_t home = std::hash<Uuid>{}(slots_[j].id) & mask;
            // Move j into the hole only if its home position does not lie
            // cyclically inside (hole, j] — otherwise j is already as close
            // to home as it can get.
            const bool displaced = (j > hole) ? (home <= hole || home > j)
                                              : (home <= hole && home > j);
            if (displaced) {
                slots_[hole] = slots_[j];
                ring_[slots_[hole].ring_pos] = static_cast<std::uint32_t>(hole);
                slots_[j].occupied = false;
                hole = j;
            }
        }
        head_ = (head_ + 1) % capacity_;
        --size_;
    }

    std::size_t capacity_;
    std::vector<Slot> slots_;        ///< open-addressed table, power-of-two size
    std::vector<std::uint32_t> ring_;  ///< FIFO position -> slot index
    std::size_t head_ = 0;           ///< ring index of the oldest entry
    std::size_t size_ = 0;
    std::uint64_t evictions_ = 0;
    obs::Counter* evictions_counter_ = nullptr;
    obs::Gauge* occupancy_gauge_ = nullptr;
};

}  // namespace narada::broker
