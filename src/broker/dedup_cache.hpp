// Bounded duplicate-suppression cache.
//
// "Every broker keeps track of the last 1000 (this number can be configured
// through the broker configuration file) broker discovery requests so that
// additional CPU/network cycles are not expended on previously processed
// requests" (paper §4). The same structure suppresses duplicate events
// during overlay flooding. FIFO eviction over an unordered set: O(1)
// insert/lookup, strictly "the last N".
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

#include "common/uuid.hpp"

namespace narada::broker {

class DedupCache {
public:
    explicit DedupCache(std::size_t capacity = 1000) : capacity_(capacity) {}

    /// Record `id`. Returns true if it was new (caller should process),
    /// false if it was already present (duplicate — skip).
    bool insert(const Uuid& id) {
        if (capacity_ == 0) return true;  // caching disabled: everything "new"
        if (seen_.contains(id)) return false;
        seen_.insert(id);
        order_.push_back(id);
        while (order_.size() > capacity_) {
            seen_.erase(order_.front());
            order_.pop_front();
        }
        return true;
    }

    [[nodiscard]] bool contains(const Uuid& id) const { return seen_.contains(id); }
    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    void clear() {
        seen_.clear();
        order_.clear();
    }

private:
    std::size_t capacity_;
    std::unordered_set<Uuid> seen_;
    std::deque<Uuid> order_;
};

}  // namespace narada::broker
