#include "broker/topic.hpp"

#include "common/strings.hpp"

namespace narada::broker {

std::vector<std::string> topic_segments(std::string_view topic) {
    std::vector<std::string> out;
    for (std::string_view part : split_views(topic, '/')) {
        out.emplace_back(part);
    }
    return out;
}

bool is_valid_topic(std::string_view topic) {
    if (topic.empty()) return false;
    for (std::string_view part : split_views(topic, '/')) {
        if (part.empty()) return false;
        if (part == kSingleWildcard || part == kMultiWildcard) return false;
    }
    return true;
}

bool is_valid_filter(std::string_view filter) {
    if (filter.empty()) return false;
    const auto parts = split_views(filter, '/');
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].empty()) return false;
        if (parts[i] == kMultiWildcard && i + 1 != parts.size()) return false;
    }
    return true;
}

bool topic_matches(std::string_view filter, std::string_view topic) {
    const auto fparts = split_views(filter, '/');
    const auto tparts = split_views(topic, '/');
    std::size_t fi = 0;
    std::size_t ti = 0;
    while (fi < fparts.size()) {
        if (fparts[fi] == kMultiWildcard) {
            // '#' swallows the remainder, including zero segments.
            return true;
        }
        if (ti >= tparts.size()) return false;
        if (fparts[fi] != kSingleWildcard && fparts[fi] != tparts[ti]) return false;
        ++fi;
        ++ti;
    }
    return ti == tparts.size();
}

}  // namespace narada::broker
