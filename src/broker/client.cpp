#include "broker/client.hpp"

#include "common/log.hpp"
#include "wire/msg_types.hpp"

namespace narada::broker {

PubSubClient::PubSubClient(Scheduler& scheduler, transport::Transport& transport,
                           const Endpoint& local, std::string credential)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      credential_(std::move(credential)),
      rng_(0x636C6E74ull ^ (std::uint64_t{local.host} << 16) ^ local.port) {
    transport_.bind(local_, this);
}

PubSubClient::~PubSubClient() {
    disconnect();
    transport_.unbind(local_);
}

void PubSubClient::connect(const Endpoint& broker) {
    if (connected_ && broker_ == broker) return;
    if (connected_) disconnect();
    broker_ = broker;
    wire::ByteWriter writer;
    writer.u8(wire::kMsgClientHello);
    writer.str(credential_);
    transport_.send_reliable(local_, broker_, writer.take());
}

void PubSubClient::disconnect() {
    if (!broker_.valid()) return;
    wire::ByteWriter writer;
    writer.u8(wire::kMsgClientBye);
    transport_.send_reliable(local_, broker_, writer.take());
    connected_ = false;
    broker_ = Endpoint{};
}

void PubSubClient::subscribe(const std::string& filter) {
    if (!filters_.insert(filter).second) return;
    if (connected_) send_subscribe(filter, /*add=*/true);
}

void PubSubClient::unsubscribe(const std::string& filter) {
    if (filters_.erase(filter) == 0) return;
    if (connected_) send_subscribe(filter, /*add=*/false);
}

void PubSubClient::send_subscribe(const std::string& filter, bool add) {
    wire::ByteWriter writer;
    writer.u8(add ? wire::kMsgSubscribe : wire::kMsgUnsubscribe);
    writer.str(filter);
    transport_.send_reliable(local_, broker_, writer.take());
}

void PubSubClient::publish(const std::string& topic, Bytes payload,
                           std::map<std::string, std::string> headers) {
    if (!broker_.valid()) {
        NARADA_WARN("client", "{}: publish with no broker", local_.str());
        return;
    }
    Event event;
    event.id = Uuid::random(rng_);
    event.topic = topic;
    event.payload = std::move(payload);
    event.headers = std::move(headers);
    wire::ByteWriter writer;
    writer.u8(wire::kMsgPublish);
    event.encode(writer);
    transport_.send_reliable(local_, broker_, writer.take());
}

void PubSubClient::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgClientWelcome: {
                if (from != broker_) return;
                connected_ = true;
                // Replay standing subscriptions on (re)connection.
                for (const std::string& filter : filters_) send_subscribe(filter, true);
                if (on_connected_) on_connected_();
                return;
            }
            case wire::kMsgEventDeliver: {
                const Event event = Event::decode(reader);
                for (const auto& handler : event_handlers_) handler(event);
                return;
            }
            default:
                NARADA_DEBUG("client", "{}: unexpected message type {}", local_.str(),
                             static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("client", "{}: malformed message from {}: {}", local_.str(), from.str(),
                     e.what());
    }
}

}  // namespace narada::broker
