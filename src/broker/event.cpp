#include "broker/event.hpp"

namespace narada::broker {

void Event::encode(wire::ByteWriter& writer) const {
    writer.uuid(id);
    writer.str(topic);
    writer.blob(payload);
    writer.u32(static_cast<std::uint32_t>(headers.size()));
    for (const auto& [key, value] : headers) {
        writer.str(key);
        writer.str(value);
    }
    writer.u32(ttl);
}

Event Event::decode(wire::ByteReader& reader) {
    Event event;
    event.id = reader.uuid();
    event.topic = reader.str();
    event.payload = reader.blob();
    const std::uint32_t header_count = reader.u32();
    if (header_count > 4096) throw wire::WireError("unreasonable header count");
    for (std::uint32_t i = 0; i < header_count; ++i) {
        std::string key = reader.str();
        std::string value = reader.str();
        event.headers.emplace(std::move(key), std::move(value));
    }
    event.ttl = reader.u32();
    return event;
}

}  // namespace narada::broker
