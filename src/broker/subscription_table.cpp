#include "broker/subscription_table.hpp"

#include <functional>

#include "broker/topic.hpp"

namespace narada::broker {

bool SubscriptionTable::subscribe(std::string_view filter, SubscriberToken token) {
    if (!is_valid_filter(filter)) return false;
    Node* node = &root_;
    for (const std::string& segment : topic_segments(filter)) {
        if (segment == kMultiWildcard) {
            // '#' is always terminal (validated); register and stop.
            if (!node->multi_subscribers.insert(token).second) return true;
            ++filter_count_;
            return true;
        }
        if (segment == kSingleWildcard) {
            if (!node->single) node->single = std::make_unique<Node>();
            node = node->single.get();
        } else {
            auto& child = node->children[segment];
            if (!child) child = std::make_unique<Node>();
            node = child.get();
        }
    }
    if (!node->subscribers.insert(token).second) return true;  // already present
    ++filter_count_;
    return true;
}

bool SubscriptionTable::unsubscribe(std::string_view filter, SubscriberToken token) {
    if (!is_valid_filter(filter)) return false;
    // Walk down remembering the path so empty nodes can be pruned on the
    // way back up.
    std::vector<std::pair<Node*, std::string>> path;  // (parent, segment taken)
    Node* node = &root_;
    bool is_multi_terminal = false;
    for (const std::string& segment : topic_segments(filter)) {
        if (segment == kMultiWildcard) {
            is_multi_terminal = true;
            break;
        }
        path.emplace_back(node, segment);
        if (segment == kSingleWildcard) {
            if (!node->single) return false;
            node = node->single.get();
        } else {
            const auto it = node->children.find(segment);
            if (it == node->children.end()) return false;
            node = it->second.get();
        }
    }
    const bool removed = is_multi_terminal ? node->multi_subscribers.erase(token) > 0
                                           : node->subscribers.erase(token) > 0;
    if (!removed) return false;
    --filter_count_;
    // Prune now-empty trie nodes bottom-up.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        Node* parent = it->first;
        const std::string& segment = it->second;
        Node* child = segment == kSingleWildcard ? parent->single.get()
                                                 : parent->children.at(segment).get();
        if (!child->prunable()) break;
        if (segment == kSingleWildcard) {
            parent->single.reset();
        } else {
            parent->children.erase(segment);
        }
    }
    return true;
}

void SubscriptionTable::remove_subscriber(SubscriberToken token) {
    // Depth-first sweep removing the token everywhere and pruning.
    std::size_t removed = 0;
    const std::function<void(Node&)> sweep = [&](Node& node) {
        removed += node.subscribers.erase(token);
        removed += node.multi_subscribers.erase(token);
        for (auto it = node.children.begin(); it != node.children.end();) {
            sweep(*it->second);
            it = it->second->prunable() ? node.children.erase(it) : std::next(it);
        }
        if (node.single) {
            sweep(*node.single);
            if (node.single->prunable()) node.single.reset();
        }
    };
    sweep(root_);
    filter_count_ -= removed;
}

void SubscriptionTable::collect(const Node& node, const std::vector<std::string>& segments,
                                std::size_t index, std::set<SubscriberToken>& out) {
    // '#' registered at this node matches any remaining suffix.
    out.insert(node.multi_subscribers.begin(), node.multi_subscribers.end());
    if (index == segments.size()) {
        out.insert(node.subscribers.begin(), node.subscribers.end());
        return;
    }
    const auto it = node.children.find(segments[index]);
    if (it != node.children.end()) collect(*it->second, segments, index + 1, out);
    if (node.single) collect(*node.single, segments, index + 1, out);
}

std::vector<SubscriberToken> SubscriptionTable::match(std::string_view topic) const {
    std::set<SubscriberToken> out;
    if (is_valid_topic(topic)) {
        collect(root_, topic_segments(topic), 0, out);
    }
    return {out.begin(), out.end()};
}

bool SubscriptionTable::matches_subscriber(std::string_view topic, SubscriberToken token) const {
    for (SubscriberToken t : match(topic)) {
        if (t == token) return true;
    }
    return false;
}

}  // namespace narada::broker
