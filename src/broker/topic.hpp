// Topics and topic filters.
//
// "In publish/subscribe systems a subscriber registers its interest in
// events by subscribing to topics. In its simplest form these topics are
// typically / separated Strings" (paper §1). We implement exactly that
// model plus the two conventional wildcards used by topic-based MoMs:
//   *   matches exactly one segment       Services/*/Advertisement
//   #   matches zero or more trailing segments   Services/#
// A filter without wildcards matches only the identical topic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace narada::broker {

/// Segment wildcards.
inline constexpr std::string_view kSingleWildcard = "*";
inline constexpr std::string_view kMultiWildcard = "#";

/// The public topic all BDNs subscribe to for broker advertisements (§2.3).
inline constexpr std::string_view kBrokerAdvertisementTopic =
    "Services/BrokerDiscoveryNodes/BrokerAdvertisement";

/// The reserved topic on which brokers flood discovery requests so a
/// request "can reach each broker connected in the network" (§10).
inline constexpr std::string_view kDiscoveryRequestTopic =
    "Services/BrokerDiscoveryNodes/DiscoveryRequest";

/// Split a topic into its / separated segments. Leading/trailing slashes
/// produce empty segments, which are invalid (see is_valid_topic).
std::vector<std::string> topic_segments(std::string_view topic);

/// A concrete topic: non-empty, no empty segments, no wildcard segments.
bool is_valid_topic(std::string_view topic);

/// A subscription filter: like a topic but may contain wildcards; `#` only
/// in the final position.
bool is_valid_filter(std::string_view filter);

/// True if `filter` matches `topic`. Both must be valid; a concrete filter
/// matches only itself.
bool topic_matches(std::string_view filter, std::string_view topic);

}  // namespace narada::broker
